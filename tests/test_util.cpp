#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/cli.hpp"
#include "util/heap.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), orig.begin()));
}

TEST(Heap, MinHeapBehavior) {
  // With greater<> as Less, the top is the minimum.
  BinaryHeap<int, std::greater<int>> h;
  for (int x : {5, 1, 4, 2, 3}) h.push(x);
  EXPECT_EQ(h.size(), 5u);
  for (int expect : {1, 2, 3, 4, 5}) EXPECT_EQ(h.pop(), expect);
  EXPECT_TRUE(h.empty());
}

TEST(Heap, MaxHeapBehavior) {
  BinaryHeap<int> h;  // default less -> max on top
  for (int x : {2, 9, 4}) h.push(x);
  EXPECT_EQ(h.top(), 9);
  EXPECT_EQ(h.pop(), 9);
  EXPECT_EQ(h.pop(), 4);
  EXPECT_EQ(h.pop(), 2);
}

TEST(Heap, StressAgainstSort) {
  Rng rng(12);
  BinaryHeap<std::uint64_t, std::greater<std::uint64_t>> h;
  std::vector<std::uint64_t> ref;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(1000);
    h.push(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (std::uint64_t expect : ref) EXPECT_EQ(h.pop(), expect);
}

TEST(ParallelFor, CoversAllIndices) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 8);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> hits(10, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--alpha", "3",  "--beta=x",
                        "pos1", "--gamma", "--delta", "4.5"};
  CliArgs args(8, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "x");
  EXPECT_TRUE(args.get_bool("gamma", false));
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), 4.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, FallbacksAndUnknownRejection) {
  const char* argv[] = {"prog", "--known", "1", "--typo", "2"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("known", 0), 1);
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_THROW(args.reject_unknown(), std::invalid_argument);
  args.describe("typo");
  EXPECT_NO_THROW(args.reject_unknown());
}

TEST(Cli, BadBooleanThrows) {
  const char* argv[] = {"prog", "--flag", "maybe"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_THROW((void)args.get_bool("flag", false), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

// Binary protocol v3 (src/net/frame.hpp + service/request_view.hpp):
// zero-copy request parsing pinned grammar-equivalent to the v2 text
// parser, frame round trips under adversarial chunkings, hostile-frame
// rejection (truncated length prefix, oversized length, garbage magic,
// mid-frame disconnect), and end-to-end coverage of the negotiated
// binary mode over real sockets — pipelined batch frames, out-of-order
// tagged answers, bit-identical v2/v3 schedule payloads, unix-domain
// sockets, and the v3 protocol counters in `stats`.

#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "service/request_view.hpp"
#include "service/service.hpp"
#include "util/thread_pool.hpp"

namespace treesched {
namespace {

using net::Client;
using net::decode_batch;
using net::decode_response_frame;
using net::Frame;
using net::FrameReader;
using net::FrameWriter;
using net::kFlagCacheHit;
using net::kFlagHasId;
using net::kFlagOk;
using net::kFrameHeaderLen;
using net::kFrameMagic;
using net::Opcode;
using net::Protocol;
using net::Server;
using net::ServerConfig;

// ---------------------------------------------------------------------------
// RequestView: the zero-copy parser, alone and against the v2 parser.
// ---------------------------------------------------------------------------

TEST(RequestView, ParsesAFullScheduleLine) {
  RequestView req;
  std::string error;
  ASSERT_TRUE(parse_request_view(
      "synthetic:500:7 ParSubtrees 8 1048576 priority=interactive "
      "deadline_ms=12.5 id=42",
      req, error))
      << error;
  EXPECT_EQ(req.kind, RequestLine::Kind::kSchedule);
  EXPECT_EQ(req.tree_spec, "synthetic:500:7");
  EXPECT_EQ(req.algo, "ParSubtrees");
  EXPECT_EQ(req.p, 8);
  EXPECT_EQ(req.memory_cap, 1048576u);
  EXPECT_EQ(req.priority, Priority::kInteractive);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 12.5);
  EXPECT_EQ(req.id, 42u);
}

TEST(RequestView, ParsesControlLines) {
  RequestView req;
  std::string error;
  ASSERT_TRUE(parse_request_view("cancel id=7", req, error)) << error;
  EXPECT_EQ(req.kind, RequestLine::Kind::kCancel);
  EXPECT_EQ(req.id, 7u);
  ASSERT_TRUE(parse_request_view("ping", req, error)) << error;
  EXPECT_EQ(req.kind, RequestLine::Kind::kPing);
  EXPECT_FALSE(req.id.has_value());
  ASSERT_TRUE(parse_request_view("stats id=9", req, error)) << error;
  EXPECT_EQ(req.kind, RequestLine::Kind::kStats);
  EXPECT_EQ(req.id, 9u);
}

TEST(RequestView, SuccessPathTakesViewsIntoTheInput) {
  const std::string line = "random:300:1 Liu 4 id=3";
  RequestView req;
  std::string error;
  ASSERT_TRUE(parse_request_view(line, req, error)) << error;
  // The views must alias the caller's buffer — that IS the zero-copy
  // contract the connection relies on.
  EXPECT_GE(req.tree_spec.data(), line.data());
  EXPECT_LT(req.tree_spec.data(), line.data() + line.size());
  EXPECT_GE(req.algo.data(), line.data());
  EXPECT_LT(req.algo.data(), line.data() + line.size());
}

/// The pinned contract: every line is accepted by BOTH parsers with the
/// same fields, or rejected by BOTH (messages may differ; acceptance may
/// not). Grammar drift between the protocols would split clients.
TEST(RequestView, AgreesWithTheV2ParserAcrossTheCorpus) {
  const char* corpus[] = {
      // accepted
      "random:300:1 Liu 1",
      "random:300:1 Liu 1 1048576",
      "synthetic:500:7 ParSubtrees 8 priority=interactive",
      "t Liu +3",
      "t Liu -2",
      "t Liu 2 id=0",
      "t Liu 2 deadline_ms=0.5 id=3 priority=bulk",
      "  t   Liu  4  ",
      "t Liu 1 0",
      "cancel id=12",
      "ping",
      "ping id=9",
      "stats",
      "stats id=18446744073709551615",
      "trace start",
      "trace stop id=4",
      "trace status",
      "trace dump=/tmp/out.json",
      "trace dump=/tmp/out.json id=2",
      // rejected
      "",
      "   ",
      "t",
      "t Liu",
      "t Liu x",
      "t Liu 1e3",
      "t Liu 0x10",
      "t Liu 99999999999999999999",
      "t Liu 1 -5",
      "t Liu 1 +5",
      "t Liu 1 2 3",
      "t Liu 1 1024 extra",
      "t Liu 1 priority=speedy",
      "t Liu 1 priority=batch priority=bulk",
      "t Liu 1 deadline_ms=-1",
      "t Liu 1 deadline_ms=0",
      "t Liu 1 deadline_ms=abc",
      "t Liu 1 id=-1",
      "t Liu 1 id=+2",
      "t Liu 1 id=1 id=2",
      "t Liu 1 id=18446744073709551616",
      "t Liu 1 unknown=3",
      "cancel",
      "cancel id=",
      "cancel foo=1",
      "cancel id=1 id=2",
      "ping extra",
      "ping id=1 id=2",
      "stats id=x",
      "trace",
      "trace restart",
      "trace start stop",
      "trace dump=",
      "trace dump=/a dump=/b",
      "trace start dump=/a",
      "trace start trailing",
      "trace unknown=1",
      "trace start id=1 id=2",
  };
  for (const char* raw : corpus) {
    const std::string line = raw;
    bool v2_ok = true;
    RequestLine parsed;
    try {
      parsed = parse_request_line(line);
    } catch (const std::invalid_argument&) {
      v2_ok = false;
    }
    RequestView view;
    std::string error;
    const bool v3_ok = parse_request_view(line, view, error);
    EXPECT_EQ(v2_ok, v3_ok) << "parsers disagree on acceptance of: \"" << line
                            << "\" (v3 error: " << error << ")";
    if (!v2_ok || !v3_ok) continue;
    const RequestView expected = as_view(parsed);
    EXPECT_EQ(view.kind, expected.kind) << line;
    EXPECT_EQ(view.id, expected.id) << line;
    EXPECT_EQ(view.tree_spec, expected.tree_spec) << line;
    EXPECT_EQ(view.algo, expected.algo) << line;
    EXPECT_EQ(view.p, expected.p) << line;
    EXPECT_EQ(view.memory_cap, expected.memory_cap) << line;
    EXPECT_EQ(view.priority, expected.priority) << line;
    EXPECT_EQ(view.deadline_ms, expected.deadline_ms) << line;
    EXPECT_EQ(view.trace_action, expected.trace_action) << line;
    EXPECT_EQ(view.trace_path, expected.trace_path) << line;
  }
}

// ---------------------------------------------------------------------------
// FrameReader / FrameWriter: round trips and chunkings.
// ---------------------------------------------------------------------------

TEST(FrameCodec, RequestFrameRoundTrips) {
  std::string wire;
  FrameWriter writer(wire);
  writer.request("random:300:1 Liu 1 id=1");
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kRequest);
  EXPECT_EQ(frame.payload, "random:300:1 Liu 1 id=1");
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, ByteByByteDeliveryProducesTheSameFrames) {
  std::string wire;
  FrameWriter writer(wire);
  writer.request("a Liu 1");
  writer.cancel(7);
  writer.ping(std::nullopt);
  writer.stats(9);
  FrameReader reader;
  std::vector<Opcode> opcodes;
  Frame frame;
  for (const char c : wire) {
    reader.feed(&c, 1);
    while (reader.next(frame) == FrameReader::Status::kFrame) {
      opcodes.push_back(frame.opcode);
      if (frame.opcode == Opcode::kRequest) {
        EXPECT_EQ(frame.payload, "a Liu 1");
      }
    }
  }
  EXPECT_EQ(opcodes, (std::vector<Opcode>{Opcode::kRequest, Opcode::kCancel,
                                          Opcode::kPing, Opcode::kStats}));
}

TEST(FrameCodec, BatchFrameRoundTrips) {
  const std::vector<std::string> lines = {"a Liu 1", "", "b ParSubtrees 4"};
  std::string wire;
  FrameWriter writer(wire);
  writer.batch(lines);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.opcode, Opcode::kBatch);
  std::vector<std::string_view> entries;
  std::string error;
  ASSERT_TRUE(decode_batch(frame.payload, entries, error)) << error;
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], "a Liu 1");
  EXPECT_EQ(entries[1], "");
  EXPECT_EQ(entries[2], "b ParSubtrees 4");
}

TEST(FrameCodec, ZeroLengthFramesAreLegal) {
  std::string wire;
  FrameWriter writer(wire);
  writer.ping(std::nullopt);  // no id: empty payload
  EXPECT_EQ(wire.size(), kFrameHeaderLen);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameCodec, OkResponseRoundTripsBitForBit) {
  ResponseLine resp;
  resp.kind = ResponseLine::Kind::kSchedule;
  resp.ok = true;
  resp.id = 42;
  resp.tree_hash = 0xdeadbeefcafef00dull;
  resp.n = 4321;
  resp.algo = "ParSubtrees";
  resp.p = 16;
  resp.makespan = 123.45600000000013;  // a double that needs all 17 digits
  resp.peak_memory = 1u << 30;
  resp.cache_hit = true;
  resp.priority = Priority::kInteractive;
  std::string wire;
  FrameWriter(wire).response(resp);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.flags & kFlagOk, kFlagOk);
  EXPECT_EQ(frame.flags & kFlagCacheHit, kFlagCacheHit);
  ResponseLine decoded;
  std::string error;
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.tree_hash, resp.tree_hash);
  EXPECT_EQ(decoded.n, resp.n);
  EXPECT_EQ(decoded.algo, resp.algo);
  EXPECT_EQ(decoded.p, resp.p);
  EXPECT_EQ(decoded.makespan, resp.makespan) << "IEEE bits, not text";
  EXPECT_EQ(decoded.peak_memory, resp.peak_memory);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_EQ(decoded.priority, resp.priority);
}

TEST(FrameCodec, ErrorAndControlResponsesRoundTrip) {
  ResponseLine err;
  err.ok = false;
  err.code = ErrorCode::kQueueFull;
  err.message = "window full";
  std::string wire;
  FrameWriter(wire).response(err);
  ResponseLine pong;
  pong.kind = ResponseLine::Kind::kPong;
  pong.ok = true;
  pong.id = 5;
  FrameWriter(wire).response(pong);
  ResponseLine stats;
  stats.kind = ResponseLine::Kind::kStats;
  stats.ok = true;
  stats.stats = {{"conns", 3}, {"frames_in", 12}};
  FrameWriter(wire).response(stats);

  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ResponseLine decoded;
  std::string error;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  EXPECT_FALSE(decoded.ok);
  EXPECT_FALSE(decoded.id.has_value());
  EXPECT_EQ(decoded.code, ErrorCode::kQueueFull);
  EXPECT_EQ(decoded.message, "window full");
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.kind, ResponseLine::Kind::kPong);
  EXPECT_EQ(decoded.id, 5u);
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.kind, ResponseLine::Kind::kStats);
  ASSERT_EQ(decoded.stats.size(), 2u);
  EXPECT_EQ(decoded.stats[0].first, "conns");
  EXPECT_EQ(decoded.stats[1].second, 12u);
}

/// The client-side decoder must be exactly as strict about frame shape
/// as the server's decode_control_id/decode_batch: trailing payload
/// bytes are a protocol violation in BOTH directions, or the two sides
/// disagree on what a valid frame is.
TEST(FrameCodec, ResponseFramesWithTrailingBytesAreRejected) {
  ResponseLine decoded;
  std::string error;

  // An untagged pong carries an empty payload — nothing else.
  Frame pong;
  pong.opcode = Opcode::kPong;
  pong.flags = 0;
  pong.payload = "junk";
  EXPECT_FALSE(decode_response_frame(pong, decoded, error));

  // A tagged pong carries exactly its 8-byte id.
  const std::string tagged_payload = std::string(8, '\0') + "x";
  pong.flags = kFlagHasId;
  pong.payload = tagged_payload;
  EXPECT_FALSE(decode_response_frame(pong, decoded, error));

  // A stats reply carries exactly its declared entries; pad a valid one
  // and the decode must flip to rejection.
  ResponseLine stats;
  stats.kind = ResponseLine::Kind::kStats;
  stats.ok = true;
  stats.stats = {{"conns", 3}};
  std::string wire;
  FrameWriter(wire).response(stats);
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  const std::string padded = std::string(frame.payload) + '\0';
  Frame bad = frame;
  bad.payload = padded;
  EXPECT_FALSE(decode_response_frame(bad, decoded, error));

  // Same for an ok schedule response.
  ResponseLine ok;
  ok.kind = ResponseLine::Kind::kSchedule;
  ok.ok = true;
  ok.id = 1;
  ok.algo = "Liu";
  ok.n = 10;
  ok.p = 2;
  std::string ok_wire;
  FrameWriter(ok_wire).response(ok);
  FrameReader ok_reader;
  ok_reader.feed(ok_wire.data(), ok_wire.size());
  ASSERT_EQ(ok_reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  const std::string ok_padded = std::string(frame.payload) + "x";
  bad = frame;
  bad.payload = ok_padded;
  EXPECT_FALSE(decode_response_frame(bad, decoded, error));
}

TEST(FrameCodec, TraceReplyRoundTripsUnderItsOwnOpcode) {
  ResponseLine trace;
  trace.kind = ResponseLine::Kind::kTrace;
  trace.ok = true;
  trace.id = 11;
  trace.stats = {{"enabled", 1}, {"spans", 42}, {"dropped", 0}};
  std::string wire;
  FrameWriter(wire).response(trace);
  EXPECT_EQ(static_cast<std::uint8_t>(wire[0]),
            static_cast<std::uint8_t>(Opcode::kTraceReply))
      << "trace replies must not masquerade as stats replies";

  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ResponseLine decoded;
  std::string error;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
  EXPECT_EQ(decoded.kind, ResponseLine::Kind::kTrace);
  EXPECT_EQ(decoded.id, 11u);
  ASSERT_EQ(decoded.stats.size(), 3u);
  EXPECT_EQ(decoded.stats[0].first, "enabled");
  EXPECT_EQ(decoded.stats[1].first, "spans");
  EXPECT_EQ(decoded.stats[1].second, 42u);
}

// ---------------------------------------------------------------------------
// Trace-context extension (kFlagHasTrace): the 12-byte payload prefix
// that threads one trace id across tiers — and the compatibility pin
// that untraced traffic stays byte-identical to the pre-extension wire.
// ---------------------------------------------------------------------------

TEST(FrameCodec, TracedRequestRoundTripsItsContext) {
  std::string wire;
  FrameWriter(wire).request("random:300:1 Liu 1 id=1",
                            net::TraceContext{42, 7});
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.opcode, Opcode::kRequest);
  ASSERT_EQ(frame.flags & net::kFlagHasTrace, net::kFlagHasTrace);
  net::TraceContext ctx;
  std::string_view rest;
  std::string error;
  ASSERT_TRUE(net::split_trace_context(frame, ctx, rest, error)) << error;
  EXPECT_EQ(ctx.trace_id, 42u);
  EXPECT_EQ(ctx.origin, 7u);
  EXPECT_EQ(rest, "random:300:1 Liu 1 id=1")
      << "the request line follows the extension unchanged";
}

TEST(FrameCodec, ZeroTraceIdEmitsTheByteIdenticalPlainFrame) {
  std::string plain;
  FrameWriter(plain).request("a Liu 1");
  std::string via_ctx;
  FrameWriter(via_ctx).request("a Liu 1", net::TraceContext{0, 7});
  EXPECT_EQ(plain, via_ctx)
      << "untraced traffic must never grow on the wire";

  // And a flag-free frame splits to a zeroed context + full payload.
  FrameReader reader;
  reader.feed(plain.data(), plain.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.flags & net::kFlagHasTrace, 0);
  net::TraceContext ctx{99, 99};
  std::string_view rest;
  std::string error;
  ASSERT_TRUE(net::split_trace_context(frame, ctx, rest, error)) << error;
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_EQ(ctx.origin, 0u);
  EXPECT_EQ(rest, "a Liu 1");
}

TEST(FrameCodec, TracedBatchSharesOneContextAcrossItsEntries) {
  std::string wire;
  FrameWriter(wire).batch({"a Liu 1 id=1", "b Liu 2 id=2"},
                          net::TraceContext{1234, 1});
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.opcode, Opcode::kBatch);
  ASSERT_EQ(frame.flags & net::kFlagHasTrace, net::kFlagHasTrace);
  net::TraceContext ctx;
  std::string_view rest;
  std::string error;
  ASSERT_TRUE(net::split_trace_context(frame, ctx, rest, error)) << error;
  EXPECT_EQ(ctx.trace_id, 1234u);
  std::vector<std::string_view> entries;
  ASSERT_TRUE(decode_batch(rest, entries, error)) << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "a Liu 1 id=1");
  EXPECT_EQ(entries[1], "b Liu 2 id=2");
}

TEST(FrameCodec, TruncatedTraceExtensionIsAProtocolViolation) {
  // The flag promises 12 bytes; a payload that can't hold them must be
  // refused, not decoded out of thin air.
  std::string wire;
  FrameWriter(wire).raw_frame(static_cast<std::uint8_t>(Opcode::kRequest),
                              net::kFlagHasTrace, "short");
  FrameReader reader;
  reader.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame)
      << "the frame itself is well-formed; the extension is what's broken";
  net::TraceContext ctx;
  std::string_view rest;
  std::string error;
  EXPECT_FALSE(net::split_trace_context(frame, ctx, rest, error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Hostile frames, unit level: the reader must go sticky-bad without
// over-reading or buffering hostile lengths.
// ---------------------------------------------------------------------------

std::string header_bytes(std::uint8_t opcode, std::uint8_t flags,
                         std::uint16_t reserved, std::uint32_t length) {
  std::string out;
  out.push_back(static_cast<char>(opcode));
  out.push_back(static_cast<char>(flags));
  out.push_back(static_cast<char>(reserved & 0xff));
  out.push_back(static_cast<char>((reserved >> 8) & 0xff));
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  return out;
}

TEST(FrameCodec, TruncatedHeaderNeedsMoreNotBad) {
  const std::string hdr =
      header_bytes(static_cast<std::uint8_t>(Opcode::kRequest), 0, 0, 12);
  FrameReader reader;
  reader.feed(hdr.data(), 3);  // truncated length prefix
  Frame frame;
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 3u) << "EOF here would be a mid-frame close";
}

TEST(FrameCodec, OversizedLengthIsRejectedBeforeItsPayloadArrives) {
  FrameReader reader(/*max_frame=*/1024);
  const std::string hdr = header_bytes(
      static_cast<std::uint8_t>(Opcode::kRequest), 0, 0, 1u << 30);
  reader.feed(hdr.data(), hdr.size());  // header only, payload never sent
  Frame frame;
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kBad);
  EXPECT_NE(reader.bad_reason().find("exceeds"), std::string::npos);
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kBad) << "sticky";
}

TEST(FrameCodec, NonzeroReservedBytesAreRejected) {
  FrameReader reader;
  const std::string hdr =
      header_bytes(static_cast<std::uint8_t>(Opcode::kPing), 0, 1, 0);
  reader.feed(hdr.data(), hdr.size());
  Frame frame;
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kBad);
}

TEST(FrameCodec, HostileBatchPayloadsAreRejected) {
  std::vector<std::string_view> entries;
  std::string error;
  // Count field truncated.
  EXPECT_FALSE(decode_batch(std::string_view("\x01\x00", 2), entries, error));
  // Count claims more entries than the payload can hold.
  std::string huge_count;
  for (const char c : {'\xff', '\xff', '\xff', '\xff'}) huge_count += c;
  EXPECT_FALSE(decode_batch(huge_count, entries, error));
  EXPECT_NE(error.find("count"), std::string::npos);
  // Entry length runs past the payload.
  std::string truncated;
  truncated += std::string("\x01\x00\x00\x00", 4);  // count = 1
  truncated += std::string("\x10\x00\x00\x00", 4);  // len = 16
  truncated += "short";
  EXPECT_FALSE(decode_batch(truncated, entries, error));
  // Trailing garbage after the last entry.
  std::string trailing;
  FrameWriter(trailing).batch({"a Liu 1"});
  std::string payload = trailing.substr(kFrameHeaderLen) + "junk";
  EXPECT_FALSE(decode_batch(payload, entries, error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
}

TEST(FrameCodec, MalformedResponsePayloadsAreRejected) {
  ResponseLine decoded;
  std::string error;
  Frame frame;
  frame.opcode = Opcode::kResponse;
  frame.flags = kFlagOk;
  frame.payload = "too short";
  EXPECT_FALSE(decode_response_frame(frame, decoded, error));
  // Unknown numeric error code.
  std::string err_payload(8, '\0');
  err_payload.push_back('\x63');  // code = 99
  err_payload.push_back('\0');
  frame.flags = 0;
  frame.payload = err_payload;
  EXPECT_FALSE(decode_response_frame(frame, decoded, error));
  EXPECT_NE(error.find("unknown error code"), std::string::npos);
  // A request opcode is never a response.
  frame.opcode = Opcode::kRequest;
  frame.payload = "";
  EXPECT_FALSE(decode_response_frame(frame, decoded, error));
}

// ---------------------------------------------------------------------------
// End-to-end: negotiated binary mode against a real Server.
// ---------------------------------------------------------------------------

/// Service + server + I/O thread, torn down in the right order.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config = {},
                         ServiceConfig service_config = {})
      : service_(service_config), server_(service_, config) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.stop();
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

 private:
  SchedulingService service_;
  Server server_;
  std::thread thread_;
};

Client connect_v3(const ServerHarness& harness) {
  return Client("127.0.0.1", harness.port(), Protocol::kV3);
}

/// Sends raw bytes on the client's socket — how the hostile-frame tests
/// speak v3 without the Client's well-formed framing in the way.
void send_raw(const Client& client, const std::string& bytes) {
  ASSERT_EQ(::send(client.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

TEST(ScheduleServerV3, AnswersAndCachesOverTheWire) {
  ServerHarness harness;
  Client client = connect_v3(harness);
  const ResponseLine first = client.request("random:300:1 Liu 1 id=1");
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(first.algo, "Liu");
  EXPECT_EQ(first.n, 300);
  EXPECT_GT(first.makespan, 0.0);
  const ResponseLine second = client.request("random:300:1 Liu 1 id=2");
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit) << "same key must hit the result cache";
  EXPECT_EQ(second.makespan, first.makespan);
}

TEST(ScheduleServerV3, BatchFramePipelinesManyRequests) {
  ServerHarness harness;
  Client client = connect_v3(harness);
  std::vector<std::string> lines;
  for (int i = 0; i < 32; ++i) {
    lines.push_back("random:200:1 Liu 1 id=" + std::to_string(i));
  }
  client.send_batch(lines);  // ONE frame, one write
  std::vector<bool> seen(lines.size(), false);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    ASSERT_TRUE(resp->ok) << resp->message;
    ASSERT_TRUE(resp->id.has_value());
    ASSERT_LT(*resp->id, lines.size());
    EXPECT_FALSE(seen[*resp->id]) << "answered twice";
    seen[*resp->id] = true;
  }
  client.shutdown_write();
  EXPECT_FALSE(client.recv_response().has_value());
}

TEST(ScheduleServerV3, TaggedAnswersMayArriveOutOfOrder) {
  ServerHarness harness;
  Client client = connect_v3(harness);
  client.send_batch({"random:400:2 ParSubtrees 4 id=10",
                     "random:200:3 Liu 1 id=11"});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 2; ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->ok);
    ASSERT_TRUE(resp->id.has_value());
    ids.push_back(*resp->id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{10, 11}));
}

TEST(ScheduleServerV3, BadGrammarInABatchAnswersTypedErrorsInStreamOrder) {
  ServerHarness harness;
  Client client = connect_v3(harness);
  client.send_batch({"random:100:1 Liu 1", "not a request at all ===",
                     "random:100:1 Liu 2"});
  const auto ok1 = client.recv_response();
  ASSERT_TRUE(ok1 && ok1->ok);
  const auto err = client.recv_response();
  ASSERT_TRUE(err.has_value());
  EXPECT_FALSE(err->ok);
  EXPECT_EQ(err->code, ErrorCode::kBadRequest);
  const auto ok2 = client.recv_response();
  ASSERT_TRUE(ok2 && ok2->ok) << "the connection survives a grammar error";
}

TEST(ScheduleServerV3, ControlFramesAnswerPingStatsAndCancel) {
  ServerConfig config;
  config.max_pending = 1024;
  ServerHarness harness(config);
  Client client = connect_v3(harness);
  // Dedicated kPing opcode, no id: a zero-length frame both ways.
  std::string wire;
  FrameWriter(wire).ping(std::nullopt);
  send_raw(client, wire);
  const auto pong = client.recv_response();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->kind, ResponseLine::Kind::kPong);
  EXPECT_FALSE(pong->id.has_value());

  // kCancel opcode against a still-queued bulk request behind a wall of
  // interactive work (the saturate() pattern from the v2 tests).
  const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < backlog; ++i) {
    lines.push_back("synthetic:20000:1 ParDeepestFirst " +
                    std::to_string(2 + i) + " priority=interactive id=" +
                    std::to_string(100 + i));
  }
  lines.push_back("random:100:1 Liu 1 priority=bulk id=7");
  client.send_batch(lines);
  wire.clear();
  FrameWriter(wire).cancel(7);
  send_raw(client, wire);
  client.shutdown_write();
  std::size_t answers = 0;
  bool id7_cancelled = false;
  while (const auto resp = client.recv_response()) {
    ++answers;
    if (resp->kind == ResponseLine::Kind::kSchedule && resp->id &&
        *resp->id == 7) {
      EXPECT_FALSE(resp->ok);
      id7_cancelled = resp->code == ErrorCode::kCancelled;
    }
  }
  EXPECT_EQ(answers, backlog + 1) << "every request answered exactly once";
  EXPECT_TRUE(id7_cancelled);
}

TEST(ScheduleServerV3, StatsReportTheProtocolCounters) {
  ServerHarness harness;
  Client client = connect_v3(harness);
  client.send_batch({"random:100:1 Liu 1 id=1", "garbage === line",
                     "ping id=2"});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.recv_response().has_value());
  }
  const ResponseLine stats = client.request("stats id=9");
  EXPECT_EQ(stats.kind, ResponseLine::Kind::kStats);
  EXPECT_EQ(stats.id, 9u);
  std::uint64_t v3_conns = 0, frames_in = 0, batch_requests = 0,
                parse_errors = 0, frames_bad = 0;
  int found = 0;
  for (const auto& [key, value] : stats.stats) {
    if (key == "v3_conns") v3_conns = value, ++found;
    if (key == "frames_in") frames_in = value, ++found;
    if (key == "batch_requests") batch_requests = value, ++found;
    if (key == "parse_errors") parse_errors = value, ++found;
    if (key == "frames_bad") frames_bad = value, ++found;
  }
  EXPECT_EQ(found, 5) << "all five protocol counters must be reported";
  EXPECT_EQ(v3_conns, 1u);
  EXPECT_GE(frames_in, 2u) << "the batch frame and the stats frame";
  EXPECT_EQ(batch_requests, 3u);
  EXPECT_EQ(parse_errors, 1u);
  EXPECT_EQ(frames_bad, 0u);
}

/// The golden corpus: one request set, both protocols, one server — the
/// schedule payloads must agree bit for bit (makespan as exact doubles,
/// not text approximations), errors must agree on the typed code.
TEST(ScheduleServerV3, V2AndV3AgreeBitForBitAcrossTheGoldenCorpus) {
  const char* corpus[] = {
      "random:300:1 Liu 1 id=1",
      "random:500:2 ParSubtrees 4 id=2",
      "synthetic:400:3 ParDeepestFirst 3 id=3",
      "random:250:4 CappedSubtrees 2 id=4",
      "random:200:5 Liu 1 priority=interactive id=5",
      "random:100:1 NoSuchAlgo 1 id=6",
      "bogus-spec Liu 1 id=7",
      "random:100:1 Liu 0 id=8",
  };
  ServerHarness harness;
  Client v2 = Client("127.0.0.1", harness.port(), Protocol::kText);
  Client v3 = connect_v3(harness);
  for (const char* line : corpus) {
    const ResponseLine a = v2.request(line);
    const ResponseLine b = v3.request(line);
    EXPECT_EQ(a.ok, b.ok) << line;
    EXPECT_EQ(a.id, b.id) << line;
    if (a.ok && b.ok) {
      EXPECT_EQ(a.tree_hash, b.tree_hash) << line;
      EXPECT_EQ(a.n, b.n) << line;
      EXPECT_EQ(a.algo, b.algo) << line;
      EXPECT_EQ(a.p, b.p) << line;
      EXPECT_EQ(a.makespan, b.makespan) << line << " (must be bit-identical)";
      EXPECT_EQ(a.peak_memory, b.peak_memory) << line;
      EXPECT_EQ(a.priority, b.priority) << line;
    } else {
      EXPECT_EQ(a.code, b.code) << line;
    }
  }
}

TEST(ScheduleServerV3, TextClientsAreUntouchedByTheNegotiation) {
  ServerHarness harness;
  Client text("127.0.0.1", harness.port(), Protocol::kText);
  const ResponseLine resp = text.request("random:300:1 Liu 1 id=1");
  EXPECT_TRUE(resp.ok);
  // And the two coexist on one server.
  Client binary = connect_v3(harness);
  EXPECT_TRUE(binary.request("random:300:1 Liu 1 id=1").cache_hit);
}

TEST(ScheduleServerV3, ByteByByteDeliveryOverTheSocketStillParses) {
  ServerHarness harness;
  // A raw text-mode Client so WE control every byte: magic + one
  // request frame, delivered one byte at a time.
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  std::string wire(kFrameMagic);
  FrameWriter(wire).request("random:200:1 Liu 1 id=3");
  for (const char c : wire) {
    send_raw(client, std::string(1, c));
  }
  client.shutdown_write();
  // Read the binary answer through a FrameReader over raw recv.
  FrameReader reader;
  for (;;) {
    Frame frame;
    const auto status = reader.next(frame);
    if (status == FrameReader::Status::kFrame) {
      ResponseLine decoded;
      std::string error;
      ASSERT_TRUE(decode_response_frame(frame, decoded, error)) << error;
      EXPECT_TRUE(decoded.ok);
      EXPECT_EQ(decoded.id, 3u);
      break;
    }
    ASSERT_EQ(status, FrameReader::Status::kNeedMore);
    char buf[512];
    const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "EOF before the answer";
    reader.feed(buf, static_cast<std::size_t>(n));
  }
}

// --- hostile wire behavior -------------------------------------------------

/// Reads until EOF and returns every response frame the server sent.
std::vector<ResponseLine> drain_binary(const Client& client) {
  FrameReader reader;
  std::vector<ResponseLine> responses;
  for (;;) {
    Frame frame;
    while (reader.next(frame) == FrameReader::Status::kFrame) {
      ResponseLine decoded;
      std::string error;
      EXPECT_TRUE(decode_response_frame(frame, decoded, error)) << error;
      responses.push_back(std::move(decoded));
    }
    char buf[4096];
    const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    reader.feed(buf, static_cast<std::size_t>(n));
  }
  return responses;
}

TEST(ScheduleServerV3, GarbageMagicAnswersOneErrorFrameAndCloses) {
  ServerHarness harness;
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  send_raw(client, std::string("\xB3") + "XXX");  // 0xB3, wrong tail
  const auto responses = drain_binary(client);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].code, ErrorCode::kBadRequest);
}

TEST(ScheduleServerV3, TruncatedLengthPrefixAtEofAnswersBadRequest) {
  ServerHarness harness;
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  std::string wire(kFrameMagic);
  const std::string hdr =
      header_bytes(static_cast<std::uint8_t>(Opcode::kRequest), 0, 0, 64);
  wire += hdr.substr(0, 5);  // opcode + flags + reserved + 1 length byte
  send_raw(client, wire);
  client.shutdown_write();  // half-close inside the length prefix
  const auto responses = drain_binary(client);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].code, ErrorCode::kBadRequest);
}

TEST(ScheduleServerV3, OversizedFrameLengthIsRefusedUpFront) {
  ServerConfig config;
  config.max_frame = 4096;
  ServerHarness harness(config);
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  std::string wire(kFrameMagic);
  // Claims 256 MiB; not a single payload byte follows — the server must
  // answer from the header alone, never waiting for (or buffering) it.
  wire += header_bytes(static_cast<std::uint8_t>(Opcode::kRequest), 0, 0,
                       256u << 20);
  send_raw(client, wire);
  const auto responses = drain_binary(client);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].code, ErrorCode::kBadRequest);
  EXPECT_NE(responses[0].message.find("exceeds"), std::string::npos);
}

TEST(ScheduleServerV3, UnknownOpcodeIsRefused) {
  ServerHarness harness;
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  std::string wire(kFrameMagic);
  wire += header_bytes(0x7f, 0, 0, 0);
  send_raw(client, wire);
  const auto responses = drain_binary(client);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].code, ErrorCode::kBadRequest);
}

TEST(ScheduleServerV3, TracedRequestFrameIsServedLikeAnUntracedOne) {
  ServerHarness harness;
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  std::string wire(kFrameMagic);
  FrameWriter(wire).request("random:200:1 Liu 1 id=4",
                            net::TraceContext{77, 1});
  send_raw(client, wire);
  client.shutdown_write();
  const auto responses = drain_binary(client);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok) << responses[0].message;
  EXPECT_EQ(responses[0].id, 4u)
      << "the trace extension must be stripped before the line parses";
}

TEST(ScheduleServerV3, TruncatedTraceExtensionClosesWithBadRequest) {
  ServerHarness harness;
  Client client("127.0.0.1", harness.port(), Protocol::kText);
  std::string wire(kFrameMagic);
  FrameWriter(wire).raw_frame(static_cast<std::uint8_t>(Opcode::kRequest),
                              net::kFlagHasTrace, "tiny");
  send_raw(client, wire);
  const auto responses = drain_binary(client);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].code, ErrorCode::kBadRequest);
}

TEST(ScheduleServerV3, MidFrameDisconnectCancelsAndTheServerSurvives) {
  ServerHarness harness;
  {
    Client doomed = connect_v3(harness);
    std::vector<std::string> lines;
    const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
    for (std::size_t i = 0; i < backlog; ++i) {
      lines.push_back("synthetic:20000:1 ParDeepestFirst " +
                      std::to_string(2 + i) + " priority=interactive");
    }
    doomed.send_batch(lines);
    // A request frame whose payload never finishes…
    std::string partial;
    FrameWriter(partial).request("random:100:1 Liu 1 id=9");
    send_raw(doomed, partial.substr(0, partial.size() - 3));
    doomed.close();  // …and an abrupt disconnect mid-frame.
  }
  Client alive = connect_v3(harness);
  const ResponseLine ok = alive.request("random:100:2 Liu 1 id=1");
  EXPECT_TRUE(ok.ok);
  // Harness teardown verifies the drain: run() returns only once the
  // vanished client's tickets all settled (cancelled or computed).
}

// --- unix-domain sockets ---------------------------------------------------

TEST(ScheduleServerV3, UnixDomainSocketServesBothProtocols) {
  const std::string path =
      "/tmp/treesched_test_" + std::to_string(::getpid()) + ".sock";
  ServerConfig config;
  config.unix_path = path;
  {
    ServerHarness harness(config);
    Client text = Client::connect_unix(path, Protocol::kText);
    const ResponseLine a = text.request("random:300:1 Liu 1 id=1");
    EXPECT_TRUE(a.ok);
    Client binary = Client::connect_unix(path, Protocol::kV3);
    const ResponseLine b = binary.request("random:300:1 Liu 1 id=2");
    ASSERT_TRUE(b.ok);
    EXPECT_TRUE(b.cache_hit);
    EXPECT_EQ(a.makespan, b.makespan);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0)
      << "socket file must be unlinked on teardown";
}

}  // namespace
}  // namespace treesched

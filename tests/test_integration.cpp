// End-to-end integration: the full pipeline a downstream user runs —
// matrix -> ordering -> symbolic -> amalgamation -> task tree -> heuristics
// -> simulation -> traces -> serialization -- wired together in one place,
// across several configurations.

#include <gtest/gtest.h>

#include <sstream>

#include "core/lower_bounds.hpp"
#include "core/outtree.hpp"
#include "core/simulator.hpp"
#include "core/trace.hpp"
#include "parallel/capped_subtrees.hpp"
#include "parallel/memory_bounded.hpp"
#include "sched/registry.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "spmatrix/amalgamation.hpp"
#include "spmatrix/assembly.hpp"
#include "spmatrix/ordering.hpp"
#include "spmatrix/sparse.hpp"
#include "spmatrix/symbolic.hpp"
#include "trees/io.hpp"

namespace treesched {
namespace {

struct PipelineCase {
  const char* name;
  int nx, ny;
  std::int64_t z;
  int p;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, EndToEnd) {
  const auto [name, nx, ny, z, p] = GetParam();
  (void)name;
  // 1. Matrix and symbolic factorization.
  const SparsePattern a = grid2d_pattern(nx, ny);
  const Ordering perm = nested_dissection_2d(nx, ny);
  const SymbolicResult sym = symbolic_cholesky(a, perm);
  ASSERT_EQ((int)sym.col_counts.size(), nx * ny);

  // 2. Assembly tree with the paper's weights.
  const Tree tree = assembly_to_task_tree(amalgamate(sym, z));
  ASSERT_GT(tree.size(), 0);

  // 3. Tree round-trips through serialization unchanged.
  std::stringstream ss;
  write_tree(ss, tree);
  const Tree back = read_tree(ss);
  ASSERT_EQ(back.size(), tree.size());

  // 4. Sequential baselines are consistent.
  const auto po = postorder(tree);
  const auto liu = liu_optimal_traversal(tree);
  EXPECT_LE(liu.peak, po.peak);
  EXPECT_EQ(sequential_peak_memory(tree, liu.order), liu.peak);

  // 5. Every campaign algorithm produces a feasible schedule above both
  // bounds.
  const auto lb = lower_bounds(tree, p);
  for (const std::string& algo : default_campaign_algorithms()) {
    const Schedule s = SchedulerRegistry::instance().create(algo)->schedule(
        tree, Resources{p, 0});
    ASSERT_TRUE(validate_schedule(tree, s, p).ok) << algo;
    const auto sim = simulate(tree, s);
    EXPECT_GE(sim.makespan, lb.makespan - 1e-9);
    EXPECT_GE(sim.peak_memory, lb.memory_exact);
    // 6. Schedules survive CSV round trips and re-simulate identically.
    std::stringstream csv;
    write_schedule_csv(csv, tree, s);
    const Schedule s2 = read_schedule_csv(csv, tree);
    EXPECT_EQ(simulate(tree, s2).peak_memory, sim.peak_memory);
    // 7. The out-tree mirror preserves both objectives.
    const auto rev = simulate_out_tree(tree, reverse_schedule(tree, s));
    EXPECT_DOUBLE_EQ(rev.makespan, sim.makespan);
    EXPECT_EQ(rev.peak_memory, sim.peak_memory);
  }

  // 8. Both memory-capped schedulers honour a 2x floor cap.
  const MemSize cap = 2 * min_feasible_cap(tree);
  auto banker = memory_bounded_schedule(tree, p, cap);
  ASSERT_TRUE(banker.has_value());
  EXPECT_LE(simulate(tree, banker->schedule).peak_memory, cap);
  const MemSize scap =
      std::max(cap, capped_subtrees_min_cap(tree, p));
  auto stat = capped_subtrees_schedule(tree, p, scap);
  ASSERT_TRUE(stat.has_value());
  EXPECT_LE(simulate(tree, stat->schedule).peak_memory, scap);

  // 9. Statistics are conserved.
  const auto st = schedule_stats(tree, banker->schedule, p);
  double busy = 0;
  for (const auto& ps : st.per_proc) busy += ps.busy;
  EXPECT_NEAR(busy, tree.total_work(), 1e-6 * tree.total_work());
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PipelineTest,
    ::testing::Values(PipelineCase{"tiny", 8, 8, 1, 2},
                      PipelineCase{"small", 12, 10, 2, 4},
                      PipelineCase{"square", 16, 16, 4, 8},
                      PipelineCase{"wide", 24, 8, 16, 4},
                      PipelineCase{"mid", 20, 20, 4, 16}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace treesched

#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/report.hpp"
#include "trees/generators.hpp"

namespace treesched {
namespace {

std::vector<DatasetEntry> tiny_dataset() {
  std::vector<DatasetEntry> ds;
  Rng rng(5);
  ds.push_back({"pebble-60", random_pebble_tree(60, rng, 1.0)});
  ds.push_back({"pebble-100", random_pebble_tree(100, rng, 0.0)});
  ds.push_back({"grid", grid2d_assembly_tree(8, 8, 2)});
  return ds;
}

TEST(Campaign, RunsAndValidatesAllScenarios) {
  CampaignParams params;
  params.processor_counts = {2, 4};
  auto records = run_campaign(tiny_dataset(), params);
  ASSERT_EQ(records.size(), 6u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.makespan.size(), all_heuristics().size());
    EXPECT_EQ(rec.memory.size(), all_heuristics().size());
    for (std::size_t k = 0; k < rec.makespan.size(); ++k) {
      EXPECT_GE(rec.makespan[k], rec.lb_makespan - 1e-9);
      EXPECT_GE(rec.memory[k], 1u);
    }
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  CampaignParams one;
  one.processor_counts = {2, 8};
  one.threads = 1;
  CampaignParams many = one;
  many.threads = 8;
  auto a = run_campaign(tiny_dataset(), one);
  auto b = run_campaign(tiny_dataset(), many);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tree_name, b[i].tree_name);
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].makespan, b[i].makespan);
    EXPECT_EQ(a[i].memory, b[i].memory);
  }
}

TEST(Campaign, HeuristicNamesMatchPaper) {
  EXPECT_EQ(heuristic_name(Heuristic::kParSubtrees), "ParSubtrees");
  EXPECT_EQ(heuristic_name(Heuristic::kParSubtreesOptim), "ParSubtreesOptim");
  EXPECT_EQ(heuristic_name(Heuristic::kParInnerFirst), "ParInnerFirst");
  EXPECT_EQ(heuristic_name(Heuristic::kParDeepestFirst), "ParDeepestFirst");
  EXPECT_EQ(all_heuristics().size(), 4u);
}

TEST(Report, Table1SharesAreConsistent) {
  CampaignParams params;
  params.processor_counts = {2, 4, 8};
  auto records = run_campaign(tiny_dataset(), params);
  auto rows = table1(records);
  ASSERT_EQ(rows.size(), 4u);
  double best_mem_total = 0, best_ms_total = 0;
  for (const auto& r : rows) {
    EXPECT_GE(r.best_memory_share, 0.0);
    EXPECT_LE(r.best_memory_share, 1.0);
    EXPECT_LE(r.best_memory_share, r.within5_memory_share + 1e-12);
    EXPECT_LE(r.best_makespan_share, r.within5_makespan_share + 1e-12);
    EXPECT_GE(r.avg_memory_deviation, 0.0);
    EXPECT_GE(r.avg_makespan_deviation, 0.0);
    best_mem_total += r.best_memory_share;
    best_ms_total += r.best_makespan_share;
  }
  // At least one heuristic is best per scenario (ties can exceed 1).
  EXPECT_GE(best_mem_total, 1.0 - 1e-12);
  EXPECT_GE(best_ms_total, 1.0 - 1e-12);
}

TEST(Report, FigureSeriesNormalizations) {
  CampaignParams params;
  params.processor_counts = {4};
  auto records = run_campaign(tiny_dataset(), params);
  for (auto norm : {Normalization::kLowerBound, Normalization::kParSubtrees,
                    Normalization::kParInnerFirst}) {
    auto series = figure_series(records, norm);
    ASSERT_EQ(series.size(), 4u);
    for (const auto& s : series) {
      EXPECT_EQ(s.rel_makespan.size(), records.size());
      for (double v : s.rel_makespan) EXPECT_GT(v, 0.0);
    }
  }
  // Self-normalization: ParSubtrees against itself is exactly 1.
  auto series = figure_series(records, Normalization::kParSubtrees);
  for (double v : series[0].rel_makespan) EXPECT_DOUBLE_EQ(v, 1.0);
  for (double v : series[0].rel_memory) EXPECT_DOUBLE_EQ(v, 1.0);
  // Lower-bound normalization: every makespan ratio >= 1; memory ratios
  // compare against the postorder bound, which the true optimum may undercut
  // slightly, so only require them to be near or above 1.
  auto lbseries = figure_series(records, Normalization::kLowerBound);
  for (const auto& s : lbseries) {
    for (double v : s.rel_makespan) EXPECT_GE(v, 1.0 - 1e-9);
    for (double v : s.rel_memory) EXPECT_GE(v, 0.9);
  }
}

TEST(Report, PrintersProduceOutput) {
  CampaignParams params;
  params.processor_counts = {2};
  auto records = run_campaign(tiny_dataset(), params);
  std::ostringstream os;
  print_table1(os, table1(records));
  EXPECT_NE(os.str().find("ParSubtrees"), std::string::npos);
  std::ostringstream fig;
  print_figure(fig, figure_series(records, Normalization::kLowerBound),
               "Figure 6");
  EXPECT_NE(fig.str().find("Figure 6"), std::string::npos);
  std::ostringstream csv;
  write_scatter_csv(csv, records, Normalization::kLowerBound);
  EXPECT_NE(csv.str().find("tree,n,p,heuristic"), std::string::npos);
}

}  // namespace
}  // namespace treesched

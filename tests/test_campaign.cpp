#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "campaign/report.hpp"
#include "trees/generators.hpp"

namespace treesched {
namespace {

std::vector<DatasetEntry> tiny_dataset() {
  std::vector<DatasetEntry> ds;
  Rng rng(5);
  ds.push_back({"pebble-60", random_pebble_tree(60, rng, 1.0)});
  ds.push_back({"pebble-100", random_pebble_tree(100, rng, 0.0)});
  ds.push_back({"grid", grid2d_assembly_tree(8, 8, 2)});
  return ds;
}

const std::vector<std::string> kPaperHeuristics{
    "ParSubtrees", "ParSubtreesOptim", "ParInnerFirst", "ParDeepestFirst"};

TEST(Campaign, RunsAndValidatesAllScenarios) {
  CampaignParams params;
  params.processor_counts = {2, 4};
  auto records = run_campaign(tiny_dataset(), params);
  ASSERT_EQ(records.size(), 6u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec.algos, default_campaign_algorithms());
    EXPECT_EQ(rec.makespan.size(), rec.algos.size());
    EXPECT_EQ(rec.memory.size(), rec.algos.size());
    for (std::size_t k = 0; k < rec.makespan.size(); ++k) {
      EXPECT_GE(rec.makespan[k], rec.lb_makespan - 1e-9) << rec.algos[k];
      EXPECT_GE(rec.memory[k], 1u) << rec.algos[k];
    }
  }
}

TEST(Campaign, DefaultRosterCoversPaperAndExtensions) {
  // Acceptance bar: the default campaign runs at least 7 algorithms — the
  // four §5 heuristics plus memory-bounded plus the sequential baselines.
  const auto algos = default_campaign_algorithms();
  EXPECT_GE(algos.size(), 7u);
  auto has = [&](const std::string& n) {
    return std::find(algos.begin(), algos.end(), n) != algos.end();
  };
  for (const auto& name : kPaperHeuristics) EXPECT_TRUE(has(name)) << name;
  EXPECT_TRUE(has("MemoryBounded"));
  EXPECT_TRUE(has("Liu"));
  EXPECT_TRUE(has("BestPostorder"));
  EXPECT_FALSE(has("BruteForceSeq")) << "oracles are not campaign material";
}

TEST(Campaign, ExplicitAlgorithmSelection) {
  CampaignParams params;
  params.processor_counts = {4};
  params.algorithms = {"ParDeepestFirst", "Liu"};
  auto records = run_campaign(tiny_dataset(), params);
  ASSERT_EQ(records.size(), 3u);
  for (const auto& rec : records) {
    ASSERT_EQ(rec.algos, params.algorithms);
    EXPECT_EQ(rec.index_of("Liu"), 1u);
    EXPECT_TRUE(rec.has("ParDeepestFirst"));
    EXPECT_FALSE(rec.has("ParSubtrees"));
    EXPECT_THROW((void)rec.index_of("ParSubtrees"), std::invalid_argument);
    // Liu is the sequential memory optimum: no algorithm beats it.
    EXPECT_LE(rec.memory[1], rec.memory[0]);
  }
}

TEST(Campaign, UnknownAlgorithmFailsFast) {
  CampaignParams params;
  params.algorithms = {"ParSubtrees", "NoSuchAlgorithm"};
  EXPECT_THROW(run_campaign(tiny_dataset(), params), std::invalid_argument);
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  CampaignParams one;
  one.processor_counts = {2, 8};
  one.threads = 1;
  CampaignParams many = one;
  many.threads = 8;
  auto a = run_campaign(tiny_dataset(), one);
  auto b = run_campaign(tiny_dataset(), many);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tree_name, b[i].tree_name);
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].algos, b[i].algos);
    EXPECT_EQ(a[i].makespan, b[i].makespan);
    EXPECT_EQ(a[i].memory, b[i].memory);
  }
}

TEST(Report, Table1SharesAreConsistent) {
  CampaignParams params;
  params.processor_counts = {2, 4, 8};
  auto records = run_campaign(tiny_dataset(), params);
  auto rows = table1(records);
  ASSERT_EQ(rows.size(), default_campaign_algorithms().size());
  double best_mem_total = 0, best_ms_total = 0;
  for (const auto& r : rows) {
    EXPECT_GE(r.best_memory_share, 0.0);
    EXPECT_LE(r.best_memory_share, 1.0);
    EXPECT_LE(r.best_memory_share, r.within5_memory_share + 1e-12);
    EXPECT_LE(r.best_makespan_share, r.within5_makespan_share + 1e-12);
    // Memory deviation is vs the postorder bound: only Liu (the true
    // optimum) may dip below it, and never below -1.
    if (r.algorithm != "Liu") {
      EXPECT_GE(r.avg_memory_deviation, 0.0) << r.algorithm;
    }
    EXPECT_GT(r.avg_memory_deviation, -1.0) << r.algorithm;
    EXPECT_GE(r.avg_makespan_deviation, 0.0) << r.algorithm;
    best_mem_total += r.best_memory_share;
    best_ms_total += r.best_makespan_share;
  }
  // At least one algorithm is best per scenario (ties can exceed 1).
  EXPECT_GE(best_mem_total, 1.0 - 1e-12);
  EXPECT_GE(best_ms_total, 1.0 - 1e-12);
}

TEST(Report, FigureSeriesNormalizations) {
  CampaignParams params;
  params.processor_counts = {4};
  auto records = run_campaign(tiny_dataset(), params);
  const std::size_t roster = default_campaign_algorithms().size();
  for (auto norm : {Normalization::kLowerBound, Normalization::kParSubtrees,
                    Normalization::kParInnerFirst}) {
    auto series = figure_series(records, norm);
    ASSERT_EQ(series.size(), roster);
    for (const auto& s : series) {
      EXPECT_EQ(s.rel_makespan.size(), records.size());
      for (double v : s.rel_makespan) EXPECT_GT(v, 0.0);
    }
  }
  // Self-normalization: ParSubtrees against itself is exactly 1.
  auto series = figure_series(records, Normalization::kParSubtrees);
  const std::size_t ps = records.front().index_of("ParSubtrees");
  for (double v : series[ps].rel_makespan) EXPECT_DOUBLE_EQ(v, 1.0);
  for (double v : series[ps].rel_memory) EXPECT_DOUBLE_EQ(v, 1.0);
  // Lower-bound normalization: every makespan ratio >= 1; memory ratios
  // compare against the postorder bound, which the true optimum may
  // undercut slightly, so only require them to be near or above 1.
  auto lbseries = figure_series(records, Normalization::kLowerBound);
  for (const auto& s : lbseries) {
    for (double v : s.rel_makespan) EXPECT_GE(v, 1.0 - 1e-9);
    for (double v : s.rel_memory) EXPECT_GE(v, 0.9);
  }
}

TEST(Report, MixedRosterRecordSetsAreRejected) {
  CampaignParams a;
  a.processor_counts = {2};
  CampaignParams b = a;
  b.algorithms = {"ParDeepestFirst", "Liu"};
  auto records = run_campaign(tiny_dataset(), a);
  auto other = run_campaign(tiny_dataset(), b);
  records.insert(records.end(), other.begin(), other.end());
  EXPECT_THROW(table1(records), std::invalid_argument);
  EXPECT_THROW(figure_series(records, Normalization::kLowerBound),
               std::invalid_argument);
  std::ostringstream csv;
  EXPECT_THROW(write_scatter_csv(csv, records, Normalization::kLowerBound),
               std::invalid_argument);
}

TEST(Report, FigureNormalizationRequiresReferenceAlgorithm) {
  CampaignParams params;
  params.processor_counts = {2};
  params.algorithms = {"ParDeepestFirst", "Liu"};
  auto records = run_campaign(tiny_dataset(), params);
  EXPECT_THROW(figure_series(records, Normalization::kParSubtrees),
               std::invalid_argument);
  EXPECT_NO_THROW(figure_series(records, Normalization::kLowerBound));
}

TEST(Report, PrintersProduceOutput) {
  CampaignParams params;
  params.processor_counts = {2};
  auto records = run_campaign(tiny_dataset(), params);
  std::ostringstream os;
  print_table1(os, table1(records));
  EXPECT_NE(os.str().find("ParSubtrees"), std::string::npos);
  EXPECT_NE(os.str().find("MemoryBounded"), std::string::npos);
  EXPECT_NE(os.str().find("Liu"), std::string::npos);
  std::ostringstream fig;
  print_figure(fig, figure_series(records, Normalization::kLowerBound),
               "Figure 6");
  EXPECT_NE(fig.str().find("Figure 6"), std::string::npos);
  std::ostringstream csv;
  write_scatter_csv(csv, records, Normalization::kLowerBound);
  EXPECT_NE(csv.str().find("tree,n,p,algorithm"), std::string::npos);
}

}  // namespace
}  // namespace treesched

#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

TEST(Schedule, MakespanAndFinish) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s(3);
  s.start = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(s.finish(t, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.makespan(t), 3.0);
}

TEST(Schedule, ByStartTimeOrder) {
  Schedule s(3);
  s.start = {2.0, 0.0, 1.0};
  EXPECT_EQ(s.by_start_time(), (std::vector<NodeId>{1, 2, 0}));
}

TEST(Schedule, SequentialScheduleLaysOutInOrder) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s = sequential_schedule(t, {2, 1, 0});
  EXPECT_DOUBLE_EQ(s.start[2], 0.0);
  EXPECT_DOUBLE_EQ(s.start[1], 1.0);
  EXPECT_DOUBLE_EQ(s.start[0], 2.0);
  EXPECT_TRUE(validate_schedule(t, s, 1).ok);
}

TEST(Validate, AcceptsValidParallelSchedule) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s(3);
  s.start = {1.0, 0.0, 0.0};
  s.proc = {0, 0, 1};
  EXPECT_TRUE(validate_schedule(t, s, 2).ok);
}

TEST(Validate, RejectsPrecedenceViolation) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(2);
  s.start = {0.5, 0.0};
  s.proc = {1, 0};
  auto v = validate_schedule(t, s, 2);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("before child"), std::string::npos);
}

TEST(Validate, RejectsProcessorOverlap) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s(3);
  s.start = {2.0, 0.5, 0.0};
  s.proc = {0, 1, 1};  // tasks 1 and 2 overlap on proc 1
  auto v = validate_schedule(t, s, 2);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("overlap"), std::string::npos);
}

TEST(Validate, RejectsProcessorOutOfRange) {
  Tree t = pebble_tree({kNoNode});
  Schedule s(1);
  s.proc = {3};
  EXPECT_FALSE(validate_schedule(t, s, 2).ok);
}

TEST(Validate, RejectsNegativeStart) {
  Tree t = pebble_tree({kNoNode});
  Schedule s(1);
  s.start = {-1.0};
  EXPECT_FALSE(validate_schedule(t, s, 1).ok);
}

TEST(Validate, RejectsSizeMismatch) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(1);
  EXPECT_FALSE(validate_schedule(t, s, 1).ok);
}

TEST(Validate, BackToBackOnSameProcessorIsOk) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s(3);
  s.start = {2.0, 0.0, 1.0};
  s.proc = {0, 0, 0};
  EXPECT_TRUE(validate_schedule(t, s, 1).ok);
}

}  // namespace
}  // namespace treesched

// Failure injection: corrupt valid schedules in targeted ways and verify
// that the validator and the simulator catch every corruption. The
// simulator is the experiment scorer, so silent acceptance of a broken
// schedule would invalidate the whole evaluation.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

struct Fixture {
  Tree tree;
  Schedule schedule;
  int p;
};

Fixture make_fixture(std::uint64_t seed) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = 40 + (NodeId)rng.uniform(60);
  params.min_work = 1.0;
  params.max_work = 5.0;
  params.depth_bias = 1.0;
  Fixture f{random_tree(params, rng), {}, 4};
  f.schedule = SchedulerRegistry::instance().create("ParInnerFirst")
                   ->schedule(f.tree, Resources{f.p, 0});
  return f;
}

// Picks a non-root node (guaranteed to have a parent constraint).
NodeId any_non_root(const Tree& t, Rng& rng) {
  for (;;) {
    const auto i = (NodeId)rng.uniform((std::uint64_t)t.size());
    if (t.parent(i) != kNoNode) return i;
  }
}

TEST(FailureInjection, StartBeforeChildFinishIsCaught) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Fixture f = make_fixture(100 + trial);
    // Move some parent to start before one of its children finishes.
    const NodeId child = any_non_root(f.tree, rng);
    const NodeId parent = f.tree.parent(child);
    f.schedule.start[parent] =
        f.schedule.start[child] + f.tree.work(child) * 0.25;
    EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
  }
}

TEST(FailureInjection, SimulatorThrowsOnPrecedenceCorruption) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Fixture f = make_fixture(200 + trial);
    const NodeId child = any_non_root(f.tree, rng);
    const NodeId parent = f.tree.parent(child);
    // Start the parent strictly before the child even begins.
    f.schedule.start[parent] =
        std::max(0.0, f.schedule.start[child] - 1.0);
    // Either the validator rejects it or (if the child was instantaneous)
    // the simulation throws; both must never silently score it.
    const auto v = validate_schedule(f.tree, f.schedule, f.p);
    if (!v.ok) continue;
    EXPECT_THROW(simulate(f.tree, f.schedule), std::invalid_argument);
  }
}

TEST(FailureInjection, ProcessorOutOfRangeIsCaught) {
  Fixture f = make_fixture(300);
  f.schedule.proc[5] = f.p;  // one past the end
  EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
  f.schedule.proc[5] = -1;
  EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
}

TEST(FailureInjection, OverlapOnOneProcessorIsCaught) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Fixture f = make_fixture(400 + trial);
    // Clone one task's slot onto another task of a different processor.
    const auto a = (NodeId)rng.uniform((std::uint64_t)f.tree.size());
    NodeId b;
    do {
      b = (NodeId)rng.uniform((std::uint64_t)f.tree.size());
    } while (b == a);
    f.schedule.proc[b] = f.schedule.proc[a];
    f.schedule.start[b] = f.schedule.start[a];
    EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
  }
}

TEST(FailureInjection, NegativeAndNonFiniteStartsAreCaught) {
  Fixture f = make_fixture(500);
  f.schedule.start[3] = -0.5;
  EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
  f.schedule.start[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
  f.schedule.start[3] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
}

TEST(FailureInjection, TruncatedScheduleIsCaught) {
  Fixture f = make_fixture(600);
  f.schedule.start.pop_back();
  f.schedule.proc.pop_back();
  EXPECT_FALSE(validate_schedule(f.tree, f.schedule, f.p).ok);
  EXPECT_THROW(simulate(f.tree, f.schedule), std::invalid_argument);
}

TEST(FailureInjection, TooFewProcessorsDeclaredIsCaught) {
  // A valid 4-processor schedule validated against p = 2 must fail
  // whenever it actually uses processors 2 or 3.
  Fixture f = make_fixture(700);
  bool uses_high = false;
  for (NodeId i = 0; i < f.tree.size(); ++i) {
    uses_high |= f.schedule.proc[i] >= 2;
  }
  if (uses_high) {
    EXPECT_FALSE(validate_schedule(f.tree, f.schedule, 2).ok);
  }
}

TEST(FailureInjection, ValidSchedulesSurviveAllChecks) {
  // Control group: uncorrupted schedules pass everything.
  for (int trial = 0; trial < 10; ++trial) {
    Fixture f = make_fixture(800 + trial);
    EXPECT_TRUE(validate_schedule(f.tree, f.schedule, f.p).ok);
    EXPECT_NO_THROW(simulate(f.tree, f.schedule));
  }
}

}  // namespace
}  // namespace treesched

// The lock-free backends behind ResultCache and RequestQueue: the MPMC
// ring's exactly-once hand-off, the concurrent CLOCK map's contract
// parity with the sharded-mutex cache (no false hits, balanced stats,
// bit-identical service results across the full roster), and the
// admission queue's fast-lane ordering and counter balance. The stress
// tests here are the ones the CI TSan job runs against the lock-free
// paths.

#include "service/concurrent_map.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "service/request_queue.hpp"
#include "service/result_cache.hpp"
#include "service/service.hpp"
#include "trees/generators.hpp"
#include "util/mpmc_queue.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using namespace std::chrono_literals;

Tree weighted_tree(std::uint64_t seed, NodeId n = 60) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = n;
  params.max_output = 40;
  params.max_exec = 15;
  params.min_work = 1.0;
  params.max_work = 30.0;
  params.depth_bias = 1.5;
  return random_tree(params, rng);
}

// ---------------------------------------------------------------------------
// MpmcRing: the primitive under the queue's fast lanes.
// ---------------------------------------------------------------------------

TEST(MpmcRing, SingleThreadedFifoAndCapacity) {
  MpmcRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "capacity 4 ring is full";
  for (int i = 0; i < 4; ++i) {
    const std::optional<int> v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i) << "FIFO order";
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRing, ConcurrentHandOffIsExactlyOnce) {
  // 4 producers push disjoint value ranges, 4 consumers drain; every
  // value must come out exactly once — the property RequestQueue's
  // counter balance rests on.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  MpmcRing<int> ring(128);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> drained{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (drained.load() < kProducers * kPerProducer) {
        if (const std::optional<int> v = ring.try_pop()) {
          seen[static_cast<std::size_t>(*v)].fetch_add(1);
          drained.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ---------------------------------------------------------------------------
// ConcurrentResultMap behind the ResultCache interface: the contract
// tests the mutex backend already passes.
// ---------------------------------------------------------------------------

CachedResultPtr dummy_result(NodeId n) {
  auto r = std::make_shared<CachedResult>();
  r->makespan = static_cast<double>(n);
  r->schedule = Schedule(n);
  return r;
}

ResultCache lockfree_cache(std::size_t bytes = 1 << 20) {
  return ResultCache(ResultCacheConfig{bytes, 16, CacheBackend::kLockFree});
}

TEST(ConcurrentMapCache, ParseAndLabelRoundTrip) {
  EXPECT_EQ(parse_cache_backend("mutex"), CacheBackend::kMutex);
  EXPECT_EQ(parse_cache_backend("lockfree"), CacheBackend::kLockFree);
  EXPECT_THROW((void)parse_cache_backend("spinlock"), std::invalid_argument);
  EXPECT_STREQ(to_string(CacheBackend::kLockFree), "lockfree");
  EXPECT_EQ(parse_queue_backend("lockfree"), QueueBackend::kLockFree);
  EXPECT_THROW((void)parse_queue_backend(""), std::invalid_argument);
  EXPECT_STREQ(to_string(QueueBackend::kMutex), "mutex");
}

TEST(ConcurrentMapCache, GetPutAndStatsMatchTheMutexContract) {
  ResultCache cache = lockfree_cache();
  EXPECT_EQ(cache.backend(), CacheBackend::kLockFree);
  const ResultKey key{123, "ParSubtrees", 4, 0};
  EXPECT_EQ(cache.get(key), nullptr);
  cache.put(key, dummy_result(10));
  const CachedResultPtr hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->makespan, 10.0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ConcurrentMapCache, DistinctKeysAreDistinctEntries) {
  ResultCache cache = lockfree_cache();
  cache.put({1, "A", 2, 0}, dummy_result(1));
  cache.put({1, "A", 4, 0}, dummy_result(2));  // different p
  cache.put({1, "A", 2, 9}, dummy_result(3));  // different cap
  cache.put({2, "A", 2, 0}, dummy_result(4));  // different tree
  cache.put({1, "B", 2, 0}, dummy_result(5));  // different algo
  EXPECT_EQ(cache.stats().entries, 5u);
  EXPECT_EQ(cache.get({1, "A", 2, 0})->makespan, 1.0);
  EXPECT_EQ(cache.get({1, "B", 2, 0})->makespan, 5.0);
}

TEST(ConcurrentMapCache, OverwriteReplacesInPlace) {
  ResultCache cache = lockfree_cache();
  const ResultKey key{7, "Liu", 1, 0};
  cache.put(key, dummy_result(10));
  cache.put(key, dummy_result(20));
  EXPECT_EQ(cache.get(key)->makespan, 20.0);
  EXPECT_EQ(cache.stats().entries, 1u) << "overwrite is not a new entry";
}

TEST(ConcurrentMapCache, PeekCountsHitsButNeverMisses) {
  ResultCache cache = lockfree_cache();
  const ResultKey key{9, "Liu", 1, 0};
  EXPECT_EQ(cache.peek(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 0u) << "peek misses are silent";
  cache.put(key, dummy_result(3));
  EXPECT_NE(cache.peek(key), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ConcurrentMapCache, ZeroBudgetDisablesCaching) {
  ResultCache cache = lockfree_cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put({1, "A", 1, 0}, dummy_result(10));
  EXPECT_EQ(cache.get({1, "A", 1, 0}), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ConcurrentMapCache, ClearDropsEntriesAndKeepsCounters) {
  ResultCache cache = lockfree_cache();
  cache.put({1, "A", 1, 0}, dummy_result(10));
  (void)cache.get({1, "A", 1, 0});
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().hits, 1u) << "counters survive clear()";
  EXPECT_EQ(cache.get({1, "A", 1, 0}), nullptr);
}

TEST(ConcurrentMapCache, ByteBudgetTriggersEvictionNotGrowth) {
  // Budget fits ~2 of these entries; insert 64 distinct keys. CLOCK is
  // approximate, so we assert bounds rather than exact LRU order.
  const std::size_t entry_cost = dummy_result(100)->bytes();
  ResultCache cache = lockfree_cache(2 * entry_cost + 64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.put({i, "A", 1, 0}, dummy_result(100));
  }
  const CacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 32u) << "most inserts forced an eviction";
  EXPECT_GE(stats.entries, 1u) << "at least the latest entry is retained";
  EXPECT_LE(stats.bytes, 4 * entry_cost)
      << "byte accounting stays near the budget, not the insert volume";
}

TEST(ConcurrentMapCache, StressNoFalseHitsAndBalancedStats) {
  // The makespan encodes the key, so any false hit (a lookup returning
  // another key's value) is detected immediately. Threads mix puts, gets
  // and the occasional clear over a small hot key set.
  ResultCache cache = lockfree_cache(4 << 20);
  constexpr int kThreads = 8;
  constexpr int kIters = 3000;
  constexpr std::uint64_t kKeys = 32;
  const std::vector<std::string> algos{"ParSubtrees", "Liu", "ParInnerFirst"};
  auto expected_makespan = [&](std::uint64_t uid, std::size_t algo, int p) {
    return static_cast<double>(uid * 1000 + algo * 100 +
                               static_cast<std::uint64_t>(p));
  };
  std::atomic<int> false_hits{0};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::uint64_t uid = static_cast<std::uint64_t>(t + i) % kKeys;
        const std::size_t a = static_cast<std::size_t>(i) % algos.size();
        const int p = 1 + i % 4;
        const ResultKey key{uid, algos[a], p, 0};
        if (i % 3 == 0) {
          auto r = std::make_shared<CachedResult>();
          r->makespan = expected_makespan(uid, a, p);
          r->schedule = Schedule(4);
          cache.put(key, std::move(r));
        } else if (t == 0 && i % 1000 == 999) {
          cache.clear();
        } else {
          const CachedResultPtr hit = cache.get(key);
          lookups.fetch_add(1);
          if (hit && hit->makespan != expected_makespan(uid, a, p)) {
            false_hits.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(false_hits.load(), 0) << "a stale or foreign value was served";

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load())
      << "every get() counts exactly one hit or one miss";
  EXPECT_LE(stats.entries, static_cast<std::size_t>(kKeys * 12))
      << "entries stay bounded by the live key set (plus benign dups)";
}

// ---------------------------------------------------------------------------
// Service determinism: the lock-free backends answer bit-identically to
// the mutex backends for every registered algorithm.
// ---------------------------------------------------------------------------

TEST(ConcurrentMapCache, ServiceResultsBitIdenticalAcrossBackends) {
  ServiceConfig lockfree_config;
  lockfree_config.cache_backend = CacheBackend::kLockFree;
  lockfree_config.queue.backend = QueueBackend::kLockFree;
  SchedulingService mutex_service;
  SchedulingService lockfree_service(lockfree_config);

  const Tree tree = weighted_tree(3, 16);
  const TreeHandle h_mutex = mutex_service.intern(tree);
  const TreeHandle h_lockfree = lockfree_service.intern(tree);
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    for (int p : {1, 4}) {
      ScheduleRequest req;
      req.algo = name;
      req.p = p;
      req.want_schedule = true;

      req.tree = h_mutex;
      const ScheduleResponse expect = mutex_service.schedule(req);
      req.tree = h_lockfree;
      // Twice: a cold miss (computed through the lock-free queue) and a
      // warm hit (served from the concurrent map) must both match.
      for (int round = 0; round < 2; ++round) {
        const ScheduleResponse got =
            lockfree_service.schedule_async(req).get();
        EXPECT_EQ(got.makespan, expect.makespan)
            << name << " p=" << p << " round=" << round;
        EXPECT_EQ(got.peak_memory, expect.peak_memory) << name;
        ASSERT_NE(got.schedule, nullptr);
        EXPECT_EQ(got.schedule->start, expect.schedule->start) << name;
        EXPECT_EQ(got.schedule->proc, expect.schedule->proc) << name;
      }
    }
  }
  // Warm rounds were all cache hits in the lock-free map.
  EXPECT_GT(lockfree_service.cache_stats().hits, 0u);
}

// ---------------------------------------------------------------------------
// The lock-free queue backend: same ordering semantics, exact balance.
// ---------------------------------------------------------------------------

std::pair<ScheduleRequest, std::shared_ptr<detail::TicketState>> tagged(
    const std::string& tag, Priority cls, double deadline_ms = 0.0) {
  ScheduleRequest req;
  req.algo = tag;
  req.priority = cls;
  req.deadline_ms = deadline_ms;
  return {std::move(req), std::make_shared<detail::TicketState>()};
}

std::string pop_tag(RequestQueue& q) {
  RequestQueue::PopResult r = q.pop();
  return r.entry ? r.entry->request.algo : std::string("<empty>");
}

RequestQueueConfig lockfree_queue_config() {
  RequestQueueConfig config;
  config.backend = QueueBackend::kLockFree;
  return config;
}

TEST(LockFreeQueue, HigherClassesPreemptLowerAtDequeue) {
  RequestQueue q(lockfree_queue_config());
  for (const auto& [tag, cls] :
       std::vector<std::pair<std::string, Priority>>{
           {"bulk", Priority::kBulk},
           {"batch", Priority::kBatch},
           {"interactive", Priority::kInteractive}}) {
    auto [req, state] = tagged(tag, cls);
    EXPECT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_EQ(pop_tag(q), "interactive");
  EXPECT_EQ(pop_tag(q), "batch");
  EXPECT_EQ(pop_tag(q), "bulk");
  EXPECT_EQ(pop_tag(q), "<empty>");
  EXPECT_EQ(q.pending(), 0u);
}

TEST(LockFreeQueue, DeadlineMixMatchesTheMutexOrdering) {
  // Deadline-tagged entries go straight to the EDF buckets; deadline-less
  // ones ride the fast lane. The merged pop order must equal the mutex
  // backend's: deadlines first (EDF), then FIFO.
  RequestQueue q(lockfree_queue_config());
  for (const auto& [tag, deadline] :
       std::vector<std::pair<std::string, double>>{{"late", 60000.0},
                                                   {"none-1", 0.0},
                                                   {"early", 10000.0},
                                                   {"none-2", 0.0}}) {
    auto [req, state] = tagged(tag, Priority::kBatch, deadline);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(pop_tag(q), "early");
  EXPECT_EQ(pop_tag(q), "late");
  EXPECT_EQ(pop_tag(q), "none-1");
  EXPECT_EQ(pop_tag(q), "none-2");
}

TEST(LockFreeQueue, AgingPromotesLaneEntriesWithinTwoIntervals) {
  RequestQueueConfig config = lockfree_queue_config();
  config.age_after = 10ms;
  RequestQueue q(config);
  {
    auto [req, state] = tagged("starved-bulk", Priority::kBulk);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  std::this_thread::sleep_for(15ms);
  {
    auto [req, state] = tagged("fresh-1", Priority::kInteractive);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(pop_tag(q), "fresh-1") << "one interval climbs one level only";
  std::this_thread::sleep_for(15ms);
  {
    auto [req, state] = tagged("fresh-2", Priority::kInteractive);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(pop_tag(q), "starved-bulk")
      << "the lane entry aged into the top class with seniority";
  EXPECT_EQ(pop_tag(q), "fresh-2");
  EXPECT_EQ(q.stats().of(Priority::kBulk).aged, 2u);
}

TEST(LockFreeQueue, CancelWinsExactlyOnceAgainstConcurrentPops) {
  RequestQueue q(lockfree_queue_config());
  auto [req_a, state_a] = tagged("a", Priority::kBatch);
  auto [req_b, state_b] = tagged("b", Priority::kBatch);
  const auto seq_a = q.push(std::move(req_a), state_a);
  const auto seq_b = q.push(std::move(req_b), state_b);
  ASSERT_TRUE(seq_a && seq_b);
  EXPECT_TRUE(q.cancel(*seq_a)) << "lane entries are cancellable";
  EXPECT_FALSE(q.cancel(*seq_a)) << "double-cancel is a no-op";
  EXPECT_EQ(pop_tag(q), "b");
  EXPECT_FALSE(q.cancel(*seq_b)) << "cancel after pop is a no-op";
  const QueueStats stats = q.stats();
  const ClassQueueStats& c = stats.of(Priority::kBatch);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.cancelled, 1u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.admitted, c.completed + c.expired + c.rejected + c.cancelled);
}

TEST(LockFreeQueue, RingOverflowFallsBackWithoutLosingFifoOrder) {
  // Push more deadline-less entries than one lane holds: the overflow
  // lands in the mutex buckets, and pops must still come out in exact
  // admission order (the nonzero bucket forces the merging locked path).
  RequestQueue q(lockfree_queue_config());
  constexpr int kTotal = 1500;  // > kLaneCapacity = 1024
  for (int i = 0; i < kTotal; ++i) {
    auto [req, state] = tagged(std::to_string(i), Priority::kBatch);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(q.pending(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(pop_tag(q), std::to_string(i)) << "FIFO across the overflow";
  }
  EXPECT_EQ(q.pending(), 0u);
}

TEST(LockFreeQueue, StressBalanceStaysExactUnderContention) {
  // Producers, consumers and cancellers hammer the queue; afterwards the
  // per-class balance must hold exactly:
  //     admitted == completed + expired + rejected + cancelled.
  RequestQueueConfig config = lockfree_queue_config();
  config.age_after = 1ms;     // force frequent locked pops too
  config.max_pending = 512;   // exercise the rejection path
  RequestQueue q(config);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> popped{0};
  std::array<std::vector<std::uint64_t>, kProducers> seqs;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (!done.load()) {
        RequestQueue::PopResult r = q.pop();
        const std::uint64_t got = r.expired.size() + (r.entry ? 1 : 0);
        if (got == 0) {
          std::this_thread::yield();
        } else {
          popped.fetch_add(got);
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      seqs[static_cast<std::size_t>(t)].reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        // Mostly deadline-less (fast lane); every 7th carries a deadline
        // (bucket path), every 13th a tight one that may expire.
        double deadline = 0.0;
        if (i % 13 == 0) {
          deadline = 0.01;
        } else if (i % 7 == 0) {
          deadline = 60000.0;
        }
        auto [req, state] =
            tagged("x", static_cast<Priority>(i % kPriorityClasses), deadline);
        if (const auto seq = q.push(std::move(req), std::move(state))) {
          seqs[static_cast<std::size_t>(t)].push_back(*seq);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Cancellers race the still-running consumers for the leftovers: the
  // lane drain + by_seq_ lookup must hand each entry to exactly one side.
  std::vector<std::thread> cancellers;
  for (int t = 0; t < kProducers; ++t) {
    cancellers.emplace_back([&, t] {
      const std::vector<std::uint64_t>& mine =
          seqs[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < mine.size(); i += 3) {
        (void)q.cancel(mine[i]);
      }
    });
  }
  for (std::thread& t : cancellers) t.join();

  while (q.pending() != 0) {
    RequestQueue::PopResult r = q.pop();
    popped.fetch_add(r.expired.size() + (r.entry ? 1 : 0));
    std::this_thread::yield();
  }
  done.store(true);
  for (std::thread& t : consumers) t.join();

  const QueueStats stats = q.stats();
  std::uint64_t admitted = 0;
  for (const ClassQueueStats& c : stats.by_class) {
    EXPECT_EQ(c.admitted, c.completed + c.expired + c.rejected + c.cancelled)
        << "exact per-class balance";
    EXPECT_EQ(c.pending, 0u);
    admitted += c.admitted;
  }
  EXPECT_EQ(admitted,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace treesched

#include "core/outtree.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

TEST(OutTree, ReverseScheduleIsInvolution) {
  Rng rng(3);
  RandomTreeParams params;
  params.n = 80;
  params.min_work = 1.0;
  params.max_work = 5.0;
  Tree t = random_tree(params, rng);
  Schedule s = SchedulerRegistry::instance().create("ParInnerFirst")
                   ->schedule(t, Resources{4, 0});
  Schedule rr = reverse_schedule(t, reverse_schedule(t, s));
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(rr.start[i], s.start[i], 1e-9);
    EXPECT_EQ(rr.proc[i], s.proc[i]);
  }
}

TEST(OutTree, ReversedScheduleIsFeasibleOutTree) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(100);
    params.max_output = 6;
    params.max_exec = 3;
    params.min_work = 1.0;
    params.max_work = 4.0;
    Tree t = random_tree(params, rng);
    for (const std::string& algo : default_campaign_algorithms()) {
      Schedule s = SchedulerRegistry::instance().create(algo)->schedule(
          t, Resources{4, 0});
      Schedule rev = reverse_schedule(t, s);
      EXPECT_TRUE(validate_out_tree_schedule(t, rev, 4).ok) << algo;
    }
  }
}

TEST(OutTree, TimeReversalPreservesMakespanAndPeak) {
  // The paper's §1 equivalence: same makespan, same peak memory.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(120);
    params.max_output = 9;
    params.max_exec = 5;
    params.min_work = 1.0;
    params.max_work = 6.0;
    params.depth_bias = rng.uniform01() * 2;
    Tree t = random_tree(params, rng);
    for (int p : {1, 3, 8}) {
      Schedule s = SchedulerRegistry::instance().create("ParDeepestFirst")
                       ->schedule(t, Resources{p, 0});
      const auto fwd = simulate(t, s);
      const auto bwd = simulate_out_tree(t, reverse_schedule(t, s));
      EXPECT_DOUBLE_EQ(bwd.makespan, fwd.makespan);
      EXPECT_EQ(bwd.peak_memory, fwd.peak_memory);
    }
  }
}

TEST(OutTree, RootInputResidentFromStart) {
  // Chain 1 <- 0 (out-tree: 0 runs first). Root input f_0 resident at t=0.
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(2);
  s.start = {0.0, 1.0};
  s.proc = {0, 0};
  SimulationOptions opts;
  opts.record_profile = true;
  const auto sim = simulate_out_tree(t, s, opts);
  ASSERT_FALSE(sim.profile.empty());
  // At t=0: f_root (1) + exec 0 + child file f_1 (1) = 2.
  EXPECT_EQ(sim.profile.front().mem, 2u);
  EXPECT_EQ(sim.final_memory, 0u);
  EXPECT_EQ(sim.peak_memory, 2u);
}

TEST(OutTree, ThrowsOnDependencyViolation) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(2);
  s.start = {0.0, 0.0};  // child together with root: illegal out-tree
  s.proc = {0, 1};
  EXPECT_THROW(simulate_out_tree(t, s), std::invalid_argument);
}

TEST(OutTree, ValidateRejectsParentAfterChild) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(2);
  s.start = {1.0, 0.0};  // in-tree order: invalid as out-tree
  s.proc = {0, 0};
  EXPECT_FALSE(validate_out_tree_schedule(t, s, 1).ok);
}

TEST(OutTree, SequentialOutTreeMemoryMatchesInTreeOptimum) {
  // Minimal out-tree memory equals minimal in-tree memory (reverse the
  // optimal traversal).
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(60);
    params.max_output = 7;
    params.max_exec = 4;
    Tree t = random_tree(params, rng);
    auto po = postorder(t);
    Schedule s = sequential_schedule(t, po.order);
    const auto rev = simulate_out_tree(t, reverse_schedule(t, s));
    EXPECT_EQ(rev.peak_memory, po.peak);
  }
}

}  // namespace
}  // namespace treesched

#include "spmatrix/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "spmatrix/symbolic.hpp"

namespace treesched {
namespace {

void expect_is_permutation(const Ordering& perm, int n) {
  ASSERT_EQ((int)perm.size(), n);
  Ordering sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Ordering, NaturalAndInverse) {
  auto perm = natural_ordering(5);
  expect_is_permutation(perm, 5);
  Ordering p{3, 1, 0, 2};
  auto inv = inverse_ordering(p);
  EXPECT_EQ(inv, (Ordering{2, 1, 3, 0}));
}

TEST(Ordering, MinimumDegreeIsPermutation) {
  Rng rng(3);
  SparsePattern a = random_pattern(100, 4.0, rng);
  expect_is_permutation(minimum_degree_ordering(a), 100);
}

TEST(Ordering, MinimumDegreeEliminatesLeavesFirstOnAPath) {
  // Path graph: MD should never pick an interior vertex while endpoints
  // (degree 1) remain -> produces no fill; factor nnz = 2n - 1.
  SparsePattern a(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto perm = minimum_degree_ordering(a);
  auto sym = symbolic_cholesky(a, perm);
  EXPECT_EQ(sym.factor_nnz, 2 * 6 - 1);
}

TEST(Ordering, MinimumDegreeBeatsNaturalOnGrid) {
  SparsePattern a = grid2d_pattern(8, 8);
  const auto nnz_md =
      symbolic_cholesky(a, minimum_degree_ordering(a)).factor_nnz;
  const auto nnz_nat =
      symbolic_cholesky(a, natural_ordering(a.size())).factor_nnz;
  EXPECT_LT(nnz_md, nnz_nat);
}

TEST(Ordering, RcmIsPermutation) {
  Rng rng(5);
  SparsePattern a = random_pattern(150, 3.0, rng);
  expect_is_permutation(rcm_ordering(a), 150);
}

TEST(Ordering, RcmReducesBandwidthOnGrid) {
  SparsePattern a = grid2d_pattern(10, 10);
  auto perm = rcm_ordering(a);
  auto inv = inverse_ordering(perm);
  std::int64_t band = 0;
  for (int v = 0; v < a.size(); ++v) {
    for (int u : a.neighbors(v)) {
      band = std::max<std::int64_t>(band, std::abs(inv[v] - inv[u]));
    }
  }
  EXPECT_LE(band, 15);  // natural ordering has bandwidth 10; RCM similar
}

TEST(Ordering, NestedDissection2dIsPermutation) {
  expect_is_permutation(nested_dissection_2d(9, 7), 63);
  expect_is_permutation(nested_dissection_2d(16, 16), 256);
}

TEST(Ordering, NestedDissection3dIsPermutation) {
  expect_is_permutation(nested_dissection_3d(5, 4, 3), 60);
}

TEST(Ordering, NestedDissectionBeatsNaturalOnGrid) {
  const int k = 16;
  SparsePattern a = grid2d_pattern(k, k);
  const auto nnz_nd =
      symbolic_cholesky(a, nested_dissection_2d(k, k)).factor_nnz;
  const auto nnz_nat =
      symbolic_cholesky(a, natural_ordering(a.size())).factor_nnz;
  EXPECT_LT(nnz_nd, nnz_nat);
}

TEST(Ordering, SeparatorLastProperty) {
  // The middle column of an odd grid is a separator and must be ordered
  // after everything else in the first dissection level.
  const int k = 9;
  auto perm = nested_dissection_2d(k, k, /*min_block=*/2);
  auto inv = inverse_ordering(perm);
  const int mid = k / 2;
  // Every separator vertex (x = mid) must come after all non-separator
  // vertices of its own half? Weaker, robust check: the LAST eliminated
  // vertex lies on the top-level separator.
  int last = perm.back();
  EXPECT_EQ(last % k, mid);
  (void)inv;
}

TEST(Ordering, RandomOrderingIsPermutation) {
  Rng rng(9);
  expect_is_permutation(random_ordering(77, rng), 77);
}

}  // namespace
}  // namespace treesched

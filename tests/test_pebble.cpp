#include "pebble/pebble.hpp"

#include <gtest/gtest.h>

#include "sequential/bruteforce.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::make_tree;
using testing::pebble_tree;

Tree random_binary_pebble(NodeId n, Rng& rng) {
  // Random binary tree: each new node attaches to a node with < 2 kids.
  std::vector<NodeId> parent{kNoNode};
  std::vector<int> kids{0};
  for (NodeId i = 1; i < n; ++i) {
    NodeId p;
    do {
      p = (NodeId)rng.uniform((std::uint64_t)i);
    } while (kids[p] >= 2);
    parent.push_back(p);
    kids.push_back(0);
    ++kids[p];
  }
  return pebble_tree(std::move(parent));
}

TEST(Pebble, DetectsPebbleTrees) {
  EXPECT_TRUE(is_pebble_tree(pebble_tree({kNoNode, 0})));
  EXPECT_FALSE(is_pebble_tree(make_tree({kNoNode}, {2}, {0}, {1.0})));
  EXPECT_FALSE(is_pebble_tree(make_tree({kNoNode}, {1}, {1}, {1.0})));
  EXPECT_FALSE(is_pebble_tree(make_tree({kNoNode}, {1}, {0}, {2.0})));
}

TEST(Pebble, KnownValues) {
  EXPECT_EQ(pebble_number(pebble_tree({kNoNode})), 1u);       // leaf
  EXPECT_EQ(pebble_number(pebble_tree({kNoNode, 0})), 2u);    // chain
  EXPECT_EQ(pebble_number(fork_tree(3)), 4u);                 // fork: k+1
  EXPECT_EQ(pebble_number(fork_tree(7)), 8u);
  // Complete binary tree of height 3 (7 nodes): pebble number 4.
  Tree bin = pebble_tree({kNoNode, 0, 0, 1, 1, 2, 2});
  EXPECT_EQ(pebble_number(bin), 4u);
  EXPECT_EQ(pebble_number_binary(bin), 4u);
}

TEST(Pebble, CompleteBinaryTreesGrowLogarithmically) {
  // Height-h complete binary tree needs h + 1 pebbles under this model.
  NodeId n = 1;
  for (int h = 2; h <= 7; ++h) {
    n = 2 * n + 1;
    std::vector<NodeId> parent((std::size_t)n);
    parent[0] = kNoNode;
    for (NodeId i = 1; i < n; ++i) parent[i] = (i - 1) / 2;
    Tree t = pebble_tree(std::move(parent));
    EXPECT_EQ(pebble_number(t), (MemSize)(h + 1));
  }
}

TEST(Pebble, MatchesLiuExactOnRandomTrees) {
  // Contiguous pebbling is optimal on trees, so the closed form equals the
  // general exact algorithm -- two completely different derivations.
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    Tree t = random_pebble_tree(1 + (NodeId)rng.uniform(200), rng,
                                rng.uniform01() * 3);
    EXPECT_EQ(pebble_number(t), min_sequential_memory(t));
    EXPECT_EQ(pebble_number(t), postorder(t).peak);
  }
}

TEST(Pebble, MatchesBruteForceOnAllShapes) {
  for (NodeId n = 1; n <= 7; ++n) {
    for (const Tree& t : all_tree_shapes(n)) {
      EXPECT_EQ(pebble_number(t), bruteforce_min_sequential_memory(t));
    }
  }
}

TEST(Pebble, BinaryFormulaMatchesGeneral) {
  Rng rng(19);
  for (int trial = 0; trial < 60; ++trial) {
    Tree t = random_binary_pebble(1 + (NodeId)rng.uniform(150), rng);
    EXPECT_EQ(pebble_number_binary(t), pebble_number(t));
    EXPECT_EQ(pebble_number_binary(t), min_sequential_memory(t));
  }
}

TEST(Pebble, BinaryFormulaRejectsWideTrees) {
  EXPECT_THROW(pebble_number_binary(fork_tree(3)), std::invalid_argument);
}

TEST(Pebble, RejectsNonPebbleTrees) {
  Tree t = make_tree({kNoNode, 0}, {1, 2}, {0, 0}, {1, 1});
  EXPECT_THROW(pebble_number(t), std::invalid_argument);
}

TEST(Pebble, PaperGadgetsHaveExpectedPebbleNumbers) {
  // Figure 4 adversary: p + 1; Figure 5 chains: 3.
  EXPECT_EQ(pebble_number(innerfirst_adversary_tree(6, 4)), 5u);
  EXPECT_EQ(pebble_number(chains_tree(8, 5)), 3u);
  // Figure 2 tree: n + delta.
  EXPECT_EQ(pebble_number(inapprox_tree(5, 4)), 9u);
}

}  // namespace
}  // namespace treesched

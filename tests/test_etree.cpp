#include "spmatrix/etree.hpp"

#include <gtest/gtest.h>

#include "spmatrix/ordering.hpp"

namespace treesched {
namespace {

TEST(Etree, PathGraphNaturalOrderIsAChain) {
  SparsePattern a(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto parent = elimination_tree(a, natural_ordering(5));
  EXPECT_EQ(parent, (std::vector<int>{1, 2, 3, 4, -1}));
}

TEST(Etree, StarGraphLeafFirst) {
  // Star centered at 4, leaves 0-3 eliminated first: all parents = center.
  SparsePattern a(5, {{4, 0}, {4, 1}, {4, 2}, {4, 3}});
  auto parent = elimination_tree(a, natural_ordering(5));
  EXPECT_EQ(parent, (std::vector<int>{4, 4, 4, 4, -1}));
}

TEST(Etree, StarGraphCenterFirstCreatesChain) {
  // Eliminating the center first connects all leaves into a clique ->
  // chain in the etree.
  SparsePattern a(4, {{0, 1}, {0, 2}, {0, 3}});
  auto parent = elimination_tree(a, natural_ordering(4));
  EXPECT_EQ(parent, (std::vector<int>{1, 2, 3, -1}));
}

TEST(Etree, MatchesDenseReferenceOnRandomInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + (int)rng.uniform(40);
    SparsePattern a = random_pattern(n, 3.0, rng);
    for (int o = 0; o < 2; ++o) {
      Ordering perm =
          o == 0 ? natural_ordering(n) : random_ordering(n, rng);
      EXPECT_EQ(elimination_tree(a, perm),
                elimination_tree_dense_reference(a, perm));
    }
  }
}

TEST(Etree, MatchesDenseReferenceOnGrids) {
  SparsePattern a = grid2d_pattern(6, 5);
  for (const Ordering& perm :
       {natural_ordering(30), nested_dissection_2d(6, 5, 2)}) {
    EXPECT_EQ(elimination_tree(a, perm),
              elimination_tree_dense_reference(a, perm));
  }
}

TEST(Etree, ConnectedPatternGivesSingleRoot) {
  Rng rng(13);
  SparsePattern a = random_pattern(60, 4.0, rng);
  auto parent = elimination_tree(a, random_ordering(60, rng));
  int roots = 0;
  for (int p : parent) roots += p == -1 ? 1 : 0;
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(parent[59], -1);  // last column is always a root
}

TEST(Etree, ParentAlwaysLarger) {
  Rng rng(17);
  SparsePattern a = random_pattern(80, 5.0, rng);
  auto parent = elimination_tree(a, random_ordering(80, rng));
  for (int j = 0; j < 80; ++j) {
    if (parent[j] != -1) EXPECT_GT(parent[j], j);
  }
}

TEST(Etree, RejectsBadPermutation) {
  SparsePattern a(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(elimination_tree(a, Ordering{0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

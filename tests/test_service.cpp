// The scheduling-service subsystem: thread pool, tree interning, sharded
// LRU result cache, and the batch engine — including the PR's contract
// tests: bit-identical results vs. direct SchedulerRegistry calls for
// every registered algorithm, cache-stats consistency under contention,
// and the uniform Resources validation message across the whole roster.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dataset.hpp"
#include "campaign/runner.hpp"
#include "core/simulator.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace treesched {
namespace {

Tree weighted_tree(std::uint64_t seed, NodeId n = 60) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = n;
  params.max_output = 40;
  params.max_exec = 15;
  params.min_work = 1.0;
  params.max_work = 30.0;
  params.depth_bias = 1.5;
  return random_tree(params, rng);
}

/// Small enough for the BruteForceSeq oracle (max 20 nodes).
Tree oracle_sized_tree(std::uint64_t seed) { return weighted_tree(seed, 16); }

// ---------------------------------------------------------------------------
// ThreadPool and the rerouted parallel_for.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  // Counter and notify both under the mutex: the waiter can only observe
  // 64 after the last job released the lock, which is after its
  // notify_one returned — so no job ever touches the cv once the waiter
  // may have destroyed it (the TSan job runs this test).
  int ran = 0;
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      const std::lock_guard<std::mutex> lk(m);
      if (++ran == 64) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return ran == 64; });
  EXPECT_EQ(ran, 64);
}

TEST(ThreadPool, SharedPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::shared().size(), 1u);
  EXPECT_FALSE(ThreadPool::shared().on_worker_thread());
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(counts.size(),
               [&](std::size_t i) { counts[i].fetch_add(1); }, 8);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Inner parallel_for calls issued from pool workers must complete even
  // when the pool is saturated by the outer loop (the caller chews
  // through the iterations itself).
  std::vector<std::atomic<int>> counts(64 * 16);
  parallel_for(
      64,
      [&](std::size_t outer) {
        parallel_for(
            16,
            [&](std::size_t inner) { counts[outer * 16 + inner].fetch_add(1); },
            4);
      },
      8);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

// ---------------------------------------------------------------------------
// Fingerprints and the instance store.
// ---------------------------------------------------------------------------

TEST(InstanceStore, FingerprintIsContentBased) {
  const Tree a = weighted_tree(1);
  const Tree b = weighted_tree(1);
  const Tree c = weighted_tree(2);
  EXPECT_EQ(tree_fingerprint(a), tree_fingerprint(b));
  EXPECT_TRUE(trees_identical(a, b));
  EXPECT_NE(tree_fingerprint(a), tree_fingerprint(c));
  EXPECT_FALSE(trees_identical(a, c));

  // A single weight flip changes the fingerprint.
  const Tree base = testing::pebble_tree({kNoNode, 0, 0});
  const Tree tweaked = testing::make_tree({kNoNode, 0, 0}, {1, 2, 1},
                                          {0, 0, 0}, {1.0, 1.0, 1.0});
  EXPECT_NE(tree_fingerprint(base), tree_fingerprint(tweaked));
}

TEST(InstanceStore, InternDeduplicatesIdenticalTrees) {
  InstanceStore store;
  const TreeHandle h1 = store.intern(weighted_tree(1));
  const TreeHandle h2 = store.intern(weighted_tree(1));
  const TreeHandle h3 = store.intern(weighted_tree(2));
  EXPECT_EQ(h1.tree.get(), h2.tree.get()) << "identical trees share storage";
  EXPECT_NE(h1.tree.get(), h3.tree.get());
  EXPECT_EQ(h1.hash, h2.hash);
  EXPECT_EQ(h1.uid, h2.uid) << "interned twins share one identity";
  EXPECT_NE(h1.uid, h3.uid);
  EXPECT_NE(h3.uid, 0u) << "0 is reserved for the null handle";
  EXPECT_EQ(store.size(), 2u);
  const InstanceStore::Stats stats = store.stats();
  EXPECT_EQ(stats.unique_trees, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);

  // Handles survive clear().
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(h1->size(), weighted_tree(1).size());
}

TEST(InstanceStore, ByteBudgetRejectsNewTreesWithStoreFull) {
  const Tree first = weighted_tree(1);
  InstanceStoreConfig config;
  config.max_bytes = tree_bytes(first) + tree_bytes(first) / 2;  // fits one
  InstanceStore store(config);

  const Result<TreeHandle, ServiceError> ok = store.try_intern(first);
  ASSERT_TRUE(ok.ok());
  EXPECT_GT(store.stats().bytes, 0u);
  EXPECT_LE(store.stats().bytes, config.max_bytes);

  // A second distinct tree would exceed the budget: typed value error.
  const Result<TreeHandle, ServiceError> full =
      store.try_intern(weighted_tree(2));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, ErrorCode::kStoreFull);
  EXPECT_EQ(store.stats().rejected, 1u);
  EXPECT_EQ(store.size(), 1u) << "the rejected tree was not stored";

  // Re-interning the stored tree is a hit and always succeeds.
  const Result<TreeHandle, ServiceError> again = store.try_intern(first);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().uid, ok.value().uid);

  // The legacy surface throws the typed exception instead.
  EXPECT_THROW((void)store.intern(weighted_tree(3)), StoreFull);

  // clear() releases the budget.
  store.clear();
  EXPECT_EQ(store.stats().bytes, 0u);
  EXPECT_TRUE(store.try_intern(weighted_tree(2)).ok());
}

// ---------------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------------

CachedResultPtr dummy_result(NodeId n) {
  auto r = std::make_shared<CachedResult>();
  r->makespan = static_cast<double>(n);
  r->schedule = Schedule(n);
  return r;
}

TEST(ResultCache, GetPutAndStats) {
  ResultCache cache(1 << 20, 4);
  const ResultKey key{123, "ParSubtrees", 4, 0};
  EXPECT_EQ(cache.get(key), nullptr);
  cache.put(key, dummy_result(10));
  const CachedResultPtr hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->makespan, 10.0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ResultCache, DistinctKeysAreDistinctEntries) {
  ResultCache cache(1 << 20, 4);
  cache.put({1, "A", 2, 0}, dummy_result(1));
  cache.put({1, "A", 4, 0}, dummy_result(2));   // different p
  cache.put({1, "A", 2, 9}, dummy_result(3));   // different cap
  cache.put({2, "A", 2, 0}, dummy_result(4));   // different tree
  cache.put({1, "B", 2, 0}, dummy_result(5));   // different algo
  EXPECT_EQ(cache.stats().entries, 5u);
  EXPECT_EQ(cache.get({1, "A", 2, 0})->makespan, 1.0);
  EXPECT_EQ(cache.get({1, "B", 2, 0})->makespan, 5.0);
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // One shard, tiny budget: inserting big entries must evict the LRU one.
  ResultCache cache(2 * dummy_result(100)->bytes() + 64, 1);
  cache.put({1, "A", 1, 0}, dummy_result(100));
  cache.put({2, "A", 1, 0}, dummy_result(100));
  (void)cache.get({1, "A", 1, 0});  // refresh key 1 -> key 2 becomes LRU
  cache.put({3, "A", 1, 0}, dummy_result(100));
  EXPECT_NE(cache.get({1, "A", 1, 0}), nullptr);
  EXPECT_EQ(cache.get({2, "A", 1, 0}), nullptr) << "LRU entry was evicted";
  EXPECT_NE(cache.get({3, "A", 1, 0}), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ResultCache, OversizedEntryStillCachesAlone) {
  ResultCache cache(64, 1);  // budget far below one entry's cost
  cache.put({1, "A", 1, 0}, dummy_result(1000));
  EXPECT_NE(cache.get({1, "A", 1, 0}), nullptr)
      << "each shard retains at least its most recent entry";
}

TEST(ResultCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  cache.put({1, "A", 1, 0}, dummy_result(10));
  EXPECT_EQ(cache.get({1, "A", 1, 0}), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Service determinism: bit-identical to direct registry calls, for every
// registered algorithm.
// ---------------------------------------------------------------------------

TEST(SchedulingService, MatchesDirectRegistryCallsForEveryAlgorithm) {
  SchedulingService service;
  const Tree tree = oracle_sized_tree(3);
  const TreeHandle handle = service.intern(tree);
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    const SchedulerPtr direct = SchedulerRegistry::instance().create(name);
    for (int p : {1, 4}) {
      const Schedule expect_sched = direct->schedule(tree, Resources{p, 0});
      const SimulationResult expect_sim = simulate(tree, expect_sched);

      ScheduleRequest req;
      req.tree = handle;
      req.algo = name;
      req.p = p;
      req.want_schedule = true;
      const ScheduleResponse resp = service.schedule(req);
      EXPECT_EQ(resp.makespan, expect_sim.makespan) << name << " p=" << p;
      EXPECT_EQ(resp.peak_memory, expect_sim.peak_memory)
          << name << " p=" << p;
      ASSERT_NE(resp.schedule, nullptr);
      EXPECT_EQ(resp.schedule->start, expect_sched.start) << name;
      EXPECT_EQ(resp.schedule->proc, expect_sched.proc) << name;
    }
  }
}

TEST(SchedulingService, SequentialAlgorithmsShareOneEntryAcrossP) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(5));
  ScheduleRequest req;
  req.tree = handle;
  req.algo = "Liu";
  for (int p : {1, 2, 8, 32}) {
    req.p = p;
    const ScheduleResponse resp = service.schedule(req);
    EXPECT_EQ(resp.cache_hit, p != 1) << "only the first p computes";
  }
  EXPECT_EQ(service.cache_stats().entries, 1u);

  // A parallel algorithm stays keyed per p.
  req.algo = "ParSubtrees";
  req.p = 2;
  EXPECT_FALSE(service.schedule(req).cache_hit);
  req.p = 4;
  EXPECT_FALSE(service.schedule(req).cache_hit);
  EXPECT_EQ(service.cache_stats().entries, 3u);
}

TEST(SchedulingService, RepeatedRequestsHitTheCache) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(7));
  ScheduleRequest req;
  req.tree = handle;
  req.algo = "ParDeepestFirst";
  req.p = 4;
  EXPECT_FALSE(service.schedule(req).cache_hit);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(service.schedule(req).cache_hit);
  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SchedulingService, UncachedServiceRecomputesEveryRequest) {
  SchedulingService service(ServiceConfig{.cache_bytes = 0});
  const TreeHandle handle = service.intern(weighted_tree(7));
  ScheduleRequest req;
  req.tree = handle;
  req.algo = "ParSubtrees";
  req.p = 4;
  EXPECT_FALSE(service.schedule(req).cache_hit);
  EXPECT_FALSE(service.schedule(req).cache_hit);
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Error paths.
// ---------------------------------------------------------------------------

TEST(SchedulingService, UniformResourceValidationAcrossTheRoster) {
  // Every registered algorithm rejects p < 1 with the shared message, and
  // every non-memory-capped one rejects a stray cap. This pins the
  // validate_resources() helper as the single validation path.
  SchedulingService service;
  const TreeHandle handle = service.intern(oracle_sized_tree(1));
  const auto names = SchedulerRegistry::instance().names();
  ASSERT_EQ(names.size(), 10u);
  for (const std::string& name : names) {
    const SchedulerPtr direct = SchedulerRegistry::instance().create(name);
    const SchedulerCapabilities caps = direct->capabilities();

    ScheduleRequest req;
    req.tree = handle;
    req.algo = name;
    req.p = 0;
    try {
      (void)service.schedule(req);
      FAIL() << name << " accepted p = 0";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()),
                name + ": invalid resources: p must be >= 1 (got 0)");
    }
    // The direct path produces the identical message.
    try {
      (void)direct->schedule(*handle, Resources{0, 0});
      FAIL() << name << " accepted p = 0";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()),
                name + ": invalid resources: p must be >= 1 (got 0)");
    }

    if (!caps.memory_capped) {
      req.p = 2;
      req.memory_cap = 1234;
      try {
        (void)service.schedule(req);
        FAIL() << name << " accepted a memory cap without the capability";
      } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()),
                  name + ": invalid resources: memory cap 1234 given to a "
                         "scheduler without the memory_capped capability");
      }
    }
  }
}

TEST(SchedulingService, SequentialSchedulersHonorExplicitCap) {
  // Sequential baselines advertise memory_capped: an explicit cap at or
  // above their traversal's peak is honored, one below it throws the
  // same "below the feasibility floor" error as the other capped
  // schedulers — never silently exceeded.
  SchedulingService service;
  const Tree tree = weighted_tree(3);
  const TreeHandle handle = service.intern(tree);
  for (const std::string& name : {"Liu", "BestPostorder"}) {
    const SchedulerPtr direct = SchedulerRegistry::instance().create(name);
    const MemSize peak =
        simulate(tree, direct->schedule(tree, Resources{1, 0})).peak_memory;

    ScheduleRequest req;
    req.tree = handle;
    req.algo = name;
    req.p = 1;
    req.memory_cap = peak;
    EXPECT_EQ(service.schedule(req).peak_memory, peak) << name;

    req.memory_cap = peak - 1;
    try {
      (void)service.schedule(req);
      FAIL() << name << " exceeded an explicit cap silently";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("below the feasibility floor"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(SchedulingService, UnknownAlgorithmAndNullTreeThrow) {
  SchedulingService service;
  ScheduleRequest req;
  req.algo = "ParSubtrees";
  req.p = 2;
  EXPECT_THROW((void)service.schedule(req), std::invalid_argument)
      << "request without an interned tree";
  req.tree = service.intern(weighted_tree(1));
  req.algo = "NoSuchAlgo";
  EXPECT_THROW((void)service.schedule(req), std::invalid_argument);
}

TEST(SchedulingService, FailedComputationsAreNotCached) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(2));  // 60 > 20
  ScheduleRequest req;
  req.tree = handle;
  req.algo = "BruteForceSeq";
  req.p = 1;
  EXPECT_THROW((void)service.schedule(req), std::invalid_argument);
  EXPECT_THROW((void)service.schedule(req), std::invalid_argument)
      << "the failure is recomputed, not served from cache";
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

TEST(SchedulingService, BatchIsolatesPerRequestFailures) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(4));
  std::vector<ScheduleRequest> reqs(3);
  reqs[0] = {handle, "ParSubtrees", 4, 0, false};
  reqs[1] = {handle, "NoSuchAlgo", 4, 0, false};
  reqs[2] = {handle, "Liu", 4, 0, false};
  const std::vector<ScheduleResponse> responses =
      service.schedule_batch(reqs);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[1].ok());
  EXPECT_EQ(responses[1].error->code, ErrorCode::kUnknownAlgorithm);
  EXPECT_TRUE(responses[2].ok());
  EXPECT_GT(responses[0].makespan, 0.0);
  EXPECT_GT(responses[2].makespan, 0.0);
}

TEST(SchedulingService, BatchPreservesRequestOrder) {
  SchedulingService service;
  const TreeHandle h1 = service.intern(weighted_tree(1));
  const TreeHandle h2 = service.intern(weighted_tree(2));
  std::vector<ScheduleRequest> reqs;
  for (int p : {1, 2, 4, 8}) {
    reqs.push_back({h1, "ParSubtrees", p, 0, false});
    reqs.push_back({h2, "ParInnerFirst", p, 0, false});
  }
  const auto responses = service.schedule_batch(reqs);
  ASSERT_EQ(responses.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(responses[i].ok());
    const ScheduleResponse direct = service.schedule(reqs[i]);
    EXPECT_EQ(responses[i].makespan, direct.makespan) << "request " << i;
    EXPECT_EQ(responses[i].peak_memory, direct.peak_memory);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: many threads, shared service, consistent stats.
// ---------------------------------------------------------------------------

TEST(SchedulingService, ConcurrentRequestsAgreeAndStatsBalance) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(9));
  const SchedulerPtr direct =
      SchedulerRegistry::instance().create("ParInnerFirst");
  const SimulationResult expect =
      simulate(*handle, direct->schedule(*handle, Resources{4, 0}));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        // Registry lookup + schedule() from many threads at once.
        ScheduleRequest req;
        req.tree = handle;
        req.algo = "ParInnerFirst";
        req.p = 4;
        const ScheduleResponse resp = service.schedule(req);
        if (resp.makespan != expect.makespan ||
            resp.peak_memory != expect.peak_memory) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kPerThread))
      << "every request counts exactly one hit or one miss";
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.hits, stats.misses) << "repeats dominate";
}

TEST(SchedulingService, ConcurrentDistinctKeysScaleWithoutCorruption) {
  SchedulingService service;
  std::vector<TreeHandle> handles;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    handles.push_back(service.intern(weighted_tree(seed)));
  }
  const std::vector<std::string> algos{"ParSubtrees", "ParDeepestFirst",
                                       "Liu"};
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        ScheduleRequest req;
        // i mod 12 sweeps all (algo, p) pairs; t decorrelates the tree.
        req.tree = handles[static_cast<std::size_t>(t + i) % handles.size()];
        req.algo = algos[static_cast<std::size_t>(i) % algos.size()];
        req.p = 1 + i % 4;
        try {
          const ScheduleResponse resp = service.schedule(req);
          if (resp.makespan <= 0.0) failures.fetch_add(1);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * 30));
  // Distinct keys: 4 trees x (ParSubtrees, ParDeepestFirst) x 4 p = 32,
  // plus 4 trees x Liu (p-normalized) = 4. In-flight dedup keeps
  // insertions at the distinct-key count (+ rare benign recomputes).
  EXPECT_GE(stats.insertions, 36u);
  EXPECT_EQ(stats.entries, 36u);
}

// ---------------------------------------------------------------------------
// Campaign through the service.
// ---------------------------------------------------------------------------

TEST(SchedulingService, CampaignThroughSharedServiceIsBitIdentical) {
  std::vector<DatasetEntry> ds;
  Rng rng(5);
  ds.push_back({"pebble-60", random_pebble_tree(60, rng, 1.0)});
  ds.push_back({"grid", grid2d_assembly_tree(8, 8, 2)});
  CampaignParams params;
  params.processor_counts = {2, 4, 8};

  const std::vector<ScenarioRecord> baseline = run_campaign(ds, params);

  SchedulingService service;
  const std::vector<ScenarioRecord> first = run_campaign(ds, params, service);
  const CacheStats after_first = service.cache_stats();
  const std::vector<ScenarioRecord> second =
      run_campaign(ds, params, service);
  const CacheStats after_second = service.cache_stats();

  ASSERT_EQ(baseline.size(), first.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].makespan, first[i].makespan) << "scenario " << i;
    EXPECT_EQ(baseline[i].memory, first[i].memory) << "scenario " << i;
    EXPECT_EQ(first[i].makespan, second[i].makespan) << "scenario " << i;
    EXPECT_EQ(first[i].memory, second[i].memory) << "scenario " << i;
  }
  // The second campaign is answered entirely from cache.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
  // Within the first: sequential-only algorithms hit across the p sweep.
  EXPECT_GT(after_first.hits, 0u);
}

}  // namespace
}  // namespace treesched

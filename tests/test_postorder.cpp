#include "sequential/postorder.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sequential/bruteforce.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::example_tree;
using testing::make_tree;
using testing::pebble_tree;

TEST(Postorder, SingleNode) {
  Tree t = make_tree({kNoNode}, {4}, {2}, {1.0});
  auto r = postorder(t);
  EXPECT_EQ(r.order, (std::vector<NodeId>{0}));
  EXPECT_EQ(r.peak, 6u);
}

TEST(Postorder, Chain) {
  Tree t = pebble_tree({kNoNode, 0, 1, 2});
  auto r = postorder(t);
  EXPECT_EQ(r.order, (std::vector<NodeId>{3, 2, 1, 0}));
  EXPECT_EQ(r.peak, 2u);
}

TEST(Postorder, OrderIsAValidTraversalWithReportedPeak) {
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    RandomTreeParams params;
    params.n = 1 + (NodeId)rng.uniform(120);
    params.max_output = 8;
    params.max_exec = 6;
    params.depth_bias = rng.uniform01() * 3;
    Tree t = random_tree(params, rng);
    auto r = postorder(t);
    ASSERT_EQ((NodeId)r.order.size(), t.size());
    EXPECT_EQ(sequential_peak_memory(t, r.order), r.peak);
  }
}

TEST(Postorder, ChildOrderingRuleBeatsAlternatives) {
  // A node where ordering by (P - f) differs from ordering by P or f:
  // child A: P=10, f=9; child B: P=8, f=1.
  // Optimal: B first (peak max(8, 1+10) = 11); A first: max(10, 9+8) = 17.
  TreeBuilder b;
  b.add_node(kNoNode, 1, 0, 1.0);  // root
  NodeId a = b.add_node(0, 9, 1, 1.0);   // leaf A: peak 10, resid 9
  NodeId bb = b.add_node(0, 1, 7, 1.0);  // leaf B: peak 8, resid 1
  (void)a;
  (void)bb;
  Tree t = std::move(b).build();
  auto opt = postorder(t, PostorderPolicy::kOptimal);
  EXPECT_EQ(opt.peak, 11u);
  auto bypeak = postorder(t, PostorderPolicy::kByPeak);
  EXPECT_EQ(bypeak.peak, 17u);
}

TEST(Postorder, OptimalMatchesBruteForceOnAllShapes) {
  // Exhaustive over all tree shapes on <= 7 nodes with adversarial weights.
  Rng rng(23);
  for (NodeId n = 1; n <= 7; ++n) {
    for (const Tree& shape : all_tree_shapes(n)) {
      // Randomize weights twice per shape.
      for (int rep = 0; rep < 2; ++rep) {
        std::vector<NodeId> parent(shape.size());
        std::vector<MemSize> out(shape.size()), exec(shape.size());
        std::vector<double> work(shape.size(), 1.0);
        for (NodeId i = 0; i < shape.size(); ++i) {
          parent[i] = shape.parent(i);
          out[i] = 1 + rng.uniform(6);
          exec[i] = rng.uniform(4);
        }
        Tree t(std::move(parent), std::move(out), std::move(exec),
               std::move(work));
        EXPECT_EQ(postorder(t).peak, bruteforce_min_postorder_memory(t))
            << "n=" << n;
      }
    }
  }
}

TEST(Postorder, PoliciesAreAllValidTraversals) {
  Rng rng(31);
  RandomTreeParams params;
  params.n = 60;
  params.max_output = 5;
  params.max_exec = 3;
  Tree t = random_tree(params, rng);
  for (auto pol :
       {PostorderPolicy::kOptimal, PostorderPolicy::kByPeak,
        PostorderPolicy::kByOutput, PostorderPolicy::kByWork,
        PostorderPolicy::kNatural}) {
    auto r = postorder(t, pol);
    EXPECT_EQ(sequential_peak_memory(t, r.order), r.peak);
  }
}

TEST(Postorder, OptimalNeverWorseThanOtherPolicies) {
  Rng rng(37);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(80);
    params.max_output = 9;
    params.max_exec = 4;
    Tree t = random_tree(params, rng);
    const MemSize opt = postorder(t, PostorderPolicy::kOptimal).peak;
    for (auto pol : {PostorderPolicy::kByPeak, PostorderPolicy::kByOutput,
                     PostorderPolicy::kByWork, PostorderPolicy::kNatural}) {
      EXPECT_LE(opt, postorder(t, pol).peak);
    }
  }
}

TEST(Postorder, SubtreesAreContiguous) {
  Rng rng(41);
  Tree t = random_pebble_tree(80, rng, 1.0);
  auto order = postorder(t).order;
  auto pos = order_positions(order);
  // For a postorder, the positions of every subtree form an interval ending
  // at the subtree root.
  std::vector<NodeId> lo(t.size()), count(t.size());
  for (NodeId i : t.natural_postorder()) {
    lo[i] = pos[i];
    count[i] = 1;
    for (NodeId c : t.children(i)) {
      lo[i] = std::min(lo[i], lo[c]);
      count[i] += count[c];
    }
    EXPECT_EQ(pos[i] - lo[i] + 1, count[i]) << "subtree not contiguous at " << i;
  }
}

TEST(Postorder, OrderPositionsIsInverse) {
  std::vector<NodeId> order{3, 1, 0, 2};
  auto pos = order_positions(order);
  EXPECT_EQ(pos[3], 0);
  EXPECT_EQ(pos[1], 1);
  EXPECT_EQ(pos[0], 2);
  EXPECT_EQ(pos[2], 3);
}

}  // namespace
}  // namespace treesched

// Parameterized sweeps over the two memory-capped schedulers: for every
// (scheduler, processor count, cap factor) combination, the cap is a hard
// invariant, schedules stay feasible, and completion is guaranteed.

#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "core/simulator.hpp"
#include "parallel/capped_subtrees.hpp"
#include "parallel/memory_bounded.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

enum class Scheme { kBanker, kStaticSubtrees };

struct RunOutcome {
  bool feasible = false;
  Schedule schedule;
  MemSize cap = 0;
};

RunOutcome run_scheme(Scheme scheme, const Tree& t, int p, double factor) {
  RunOutcome out;
  const MemSize floor_cap = scheme == Scheme::kBanker
                                ? min_feasible_cap(t)
                                : capped_subtrees_min_cap(t, p);
  out.cap = (MemSize)((double)floor_cap * factor);
  if (scheme == Scheme::kBanker) {
    auto r = memory_bounded_schedule(t, p, out.cap);
    if (r) {
      out.feasible = true;
      out.schedule = std::move(r->schedule);
    }
  } else {
    auto r = capped_subtrees_schedule(t, p, out.cap);
    if (r) {
      out.feasible = true;
      out.schedule = std::move(r->schedule);
    }
  }
  return out;
}

using BoundedCase = std::tuple<Scheme, int, double>;

class BoundedSchedulerProperty
    : public ::testing::TestWithParam<BoundedCase> {};

TEST_P(BoundedSchedulerProperty, FeasibleAtOwnFloorTimesFactor) {
  const auto [scheme, p, factor] = GetParam();
  Rng rng(0xb0eed);
  for (int trial = 0; trial < 8; ++trial) {
    RandomTreeParams params;
    params.n = 30 + (NodeId)rng.uniform(150);
    params.max_output = 9;
    params.max_exec = 4;
    params.min_work = 1.0;
    params.max_work = 5.0;
    params.depth_bias = rng.uniform01() * 2;
    const Tree t = random_tree(params, rng);
    const RunOutcome out = run_scheme(scheme, t, p, factor);
    ASSERT_TRUE(out.feasible)
        << "cap = factor * own floor must be feasible (factor " << factor
        << ")";
    const auto v = validate_schedule(t, out.schedule, p);
    ASSERT_TRUE(v.ok) << v.error;
    EXPECT_LE(simulate(t, out.schedule).peak_memory, out.cap);
  }
}

TEST_P(BoundedSchedulerProperty, CapBindsOnAdversaries) {
  const auto [scheme, p, factor] = GetParam();
  // Adversarial instances where unbounded schedules blow memory up.
  for (const Tree& t :
       {innerfirst_adversary_tree(8, 4), chains_tree(12, 6)}) {
    const RunOutcome out = run_scheme(scheme, t, p, factor);
    ASSERT_TRUE(out.feasible);
    EXPECT_LE(simulate(t, out.schedule).peak_memory, out.cap);
  }
}

std::string bounded_case_name(
    const ::testing::TestParamInfo<BoundedCase>& info) {
  const auto [scheme, p, factor] = info.param;
  std::string name =
      scheme == Scheme::kBanker ? "Banker" : "StaticSubtrees";
  name += "_p" + std::to_string(p) + "_x";
  name += std::to_string((int)(factor * 100));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    CapSweep, BoundedSchedulerProperty,
    ::testing::Combine(::testing::Values(Scheme::kBanker,
                                         Scheme::kStaticSubtrees),
                       ::testing::Values(2, 4, 16),
                       ::testing::Values(1.0, 1.5, 3.0, 10.0)),
    bounded_case_name);

}  // namespace
}  // namespace treesched

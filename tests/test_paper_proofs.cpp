// Integration tests replaying the constructive schedules from the paper's
// proofs; the simulator must reproduce the stated bounds exactly.

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "parallel/par_subtrees.hpp"
#include "sequential/bruteforce.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"

namespace treesched {
namespace {

TEST(Theorem1, YesInstanceScheduleMeetsBothBounds) {
  // a = {3,3,4, 3,4,3} with B = 10, m = 2: groups {0,1,2} and {3,4,5}.
  ThreePartitionInstance inst{{3, 3, 4, 3, 4, 3}, 10};
  ASSERT_EQ(inst.m(), 2);
  Tree t = threepartition_gadget(inst);
  const auto bounds = threepartition_bounds(inst);
  std::vector<std::array<int, 3>> groups{{0, 1, 2}, {3, 4, 5}};
  Schedule s = threepartition_schedule(t, inst, groups);
  ASSERT_TRUE(validate_schedule(t, s, bounds.processors).ok);
  const auto sim = simulate(t, s);
  EXPECT_DOUBLE_EQ(sim.makespan, bounds.makespan_bound);       // 2m + 1
  EXPECT_EQ(sim.peak_memory, bounds.memory_bound);             // 3mB + 3m
}

TEST(Theorem1, StepMemoryMatchesProofAnalysis) {
  // The proof states the memory at step 2n+1 is 3mB + 3n and at step 2n+2
  // is 3mB + 3(n+1). Verify through the recorded profile.
  ThreePartitionInstance inst{{3, 3, 4, 3, 4, 3}, 10};
  const auto m = inst.m();
  const auto B = inst.B;
  Tree t = threepartition_gadget(inst);
  std::vector<std::array<int, 3>> groups{{0, 1, 2}, {3, 4, 5}};
  Schedule s = threepartition_schedule(t, inst, groups);
  SimulationOptions opts;
  opts.record_profile = true;
  const auto sim = simulate(t, s, opts);
  auto mem_at = [&](double time) {
    MemSize mem = 0;
    for (const auto& ev : sim.profile) {
      if (ev.time <= time + 1e-9) mem = ev.mem;
    }
    return mem;
  };
  for (std::int64_t step = 0; step < m; ++step) {
    EXPECT_EQ(mem_at(2 * step + 0.0), (MemSize)(3 * m * B + 3 * step));
    EXPECT_EQ(mem_at(2 * step + 1.0), (MemSize)(3 * m * B + 3 * (step + 1)));
  }
}

TEST(Theorem1, GadgetIsHardForUnawareSchedules) {
  // Processing whole N_i subtrees one after another (a natural approach)
  // cannot meet the makespan bound; check the bound is tight enough to
  // require the 3-partition structure: a sequential schedule takes far
  // longer than 2m + 1.
  ThreePartitionInstance inst{{3, 3, 4}, 10};
  Tree t = threepartition_gadget(inst);
  Schedule seq = sequential_schedule(t, postorder(t).order);
  EXPECT_GT(simulate(t, seq).makespan,
            threepartition_bounds(inst).makespan_bound);
}

TEST(Theorem1, TinyNoInstanceHasNoScheduleWithinBounds) {
  // A scaled-down sanity check of the reduction direction using brute
  // force: B = 4, a = {2,1,1, 2,2,2} cannot be 3-partitioned into sums of
  // exactly B with the strict-bounds variant relaxed; verify via the wave
  // search that no schedule meets (B_mem, B_Cmax) while a feasible
  // partition instance does.
  // YES instance: a = {2,1,1, 2,1,1}? sums 4 with groups {2,1,1}: B = 4.
  ThreePartitionInstance yes{{2, 1, 1, 2, 1, 1}, 4};
  Tree ty = threepartition_gadget(yes);
  const auto by = threepartition_bounds(yes);
  // Brute force is exponential in ready-set size; the gadget is too wide
  // for the generic search, so verify with the constructive schedule.
  std::vector<std::array<int, 3>> groups{{0, 1, 2}, {3, 4, 5}};
  Schedule s = threepartition_schedule(ty, yes, groups);
  ASSERT_TRUE(validate_schedule(ty, s, by.processors).ok);
  const auto sim = simulate(ty, s);
  EXPECT_LE(sim.makespan, by.makespan_bound);
  EXPECT_LE(sim.peak_memory, by.memory_bound);
}

TEST(Theorem2, OptimalSequentialMemoryIsNPlusDelta) {
  for (int n : {2, 5}) {
    for (int delta : {3, 6}) {
      Tree t = inapprox_tree(n, delta);
      // The proof's lower-bound argument: min memory = n + delta; our exact
      // algorithm must agree.
      EXPECT_EQ(min_sequential_memory(t), (MemSize)(n + delta))
          << "n=" << n << " delta=" << delta;
    }
  }
}

TEST(Theorem2, CriticalPathEqualsDeltaPlusTwo) {
  Tree t = inapprox_tree(4, 5);
  EXPECT_DOUBLE_EQ(t.critical_path(), 7.0);
}

TEST(Theorem2, MakespanDrivenSchedulesBlowUpMemory) {
  // The heart of Theorem 2: any schedule within alpha * (delta + 2) of the
  // optimal makespan must use memory growing with n. ParDeepestFirst with
  // many processors finishes fast and must pay in memory.
  const int delta = 4;
  MemSize prev_mem = 0;
  for (int n : {4, 8, 16}) {
    Tree t = inapprox_tree(n, delta);
    const int p = t.size();  // unbounded processors
    Schedule s = par_deepest_first(t, p);
    ASSERT_TRUE(validate_schedule(t, s, p).ok);
    const auto sim = simulate(t, s);
    // Near-optimal makespan (critical path = delta + 2)...
    EXPECT_LE(sim.makespan, 2.0 * (delta + 2));
    // ...while the sequential optimum stays n + delta but the fast
    // schedule's memory grows superlinearly in n relative to it.
    EXPECT_GT(sim.peak_memory, prev_mem);
    prev_mem = sim.peak_memory;
  }
  Tree t = inapprox_tree(16, delta);
  const auto mem = simulate(t, par_deepest_first(t, t.size())).peak_memory;
  EXPECT_GT((double)mem / (double)(16 + delta), 3.0);
}

TEST(Graham, ParSubtreesForkRatio) {
  // Figure 3 discussion: Cmax(ParSubtrees) = p(k-1) + 2, optimal = k + 1.
  for (int p : {2, 4}) {
    const int k = 20;
    Tree t = fork_tree(p * k);
    const double cmax = simulate(t, par_subtrees(t, p)).makespan;
    EXPECT_DOUBLE_EQ(cmax, (double)(p * (k - 1) + 2));
    const double opt = bruteforce_min_makespan_unit(
        fork_tree(p * 2), p, 1u << 30);  // small sanity: opt formula
    EXPECT_DOUBLE_EQ(opt, 3.0);          // 2 waves of leaves + root
  }
}

}  // namespace
}  // namespace treesched

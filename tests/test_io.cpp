#include "trees/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::make_tree;

void expect_trees_equal(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.parent(i), b.parent(i));
    EXPECT_EQ(a.output_size(i), b.output_size(i));
    EXPECT_EQ(a.exec_size(i), b.exec_size(i));
    EXPECT_DOUBLE_EQ(a.work(i), b.work(i));
  }
}

TEST(TreeIo, RoundTripStream) {
  Tree t = make_tree({kNoNode, 0, 0, 1}, {4, 5, 6, 7}, {1, 0, 2, 3},
                     {1.25, 2.5, 0.125, 1e9});
  std::stringstream ss;
  write_tree(ss, t);
  expect_trees_equal(t, read_tree(ss));
}

TEST(TreeIo, RoundTripRandomTrees) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeParams params;
    params.n = 1 + (NodeId)rng.uniform(300);
    params.max_output = 1000;
    params.max_exec = 500;
    params.min_work = 0.001;
    params.max_work = 1e12;
    Tree t = random_tree(params, rng);
    std::stringstream ss;
    write_tree(ss, t);
    expect_trees_equal(t, read_tree(ss));
  }
}

TEST(TreeIo, SkipsComments) {
  std::stringstream ss;
  ss << "# a comment\n# another\ntreesched-tree v1\n1\n-1 2 3 4.5\n";
  Tree t = read_tree(ss);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.output_size(0), 2u);
}

TEST(TreeIo, RejectsBadHeader) {
  std::stringstream ss;
  ss << "not-a-tree\n";
  EXPECT_THROW(read_tree(ss), std::runtime_error);
}

TEST(TreeIo, RejectsTruncatedBody) {
  std::stringstream ss;
  ss << "treesched-tree v1\n3\n-1 1 0 1\n0 1 0 1\n";
  EXPECT_THROW(read_tree(ss), std::runtime_error);
}

TEST(TreeIo, FileRoundTrip) {
  Rng rng(73);
  Tree t = random_pebble_tree(50, rng);
  const std::string path = ::testing::TempDir() + "/treesched_io_test.tree";
  write_tree_file(path, t);
  expect_trees_equal(t, read_tree_file(path));
  std::remove(path.c_str());
}

TEST(TreeIo, MissingFileThrows) {
  EXPECT_THROW(read_tree_file("/nonexistent/path/x.tree"),
               std::runtime_error);
}

}  // namespace
}  // namespace treesched

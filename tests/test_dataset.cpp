#include "campaign/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sequential/postorder.hpp"

namespace treesched {
namespace {

TEST(Dataset, Grid2dAssemblyTreeIsValid) {
  Tree t = grid2d_assembly_tree(12, 12, 4);
  EXPECT_GT(t.size(), 10);
  EXPECT_LE(t.size(), 144);
  EXPECT_GT(postorder(t).peak, 0u);
  EXPECT_GT(t.total_work(), 0.0);
}

TEST(Dataset, Grid3dAssemblyTreeIsValid) {
  Tree t = grid3d_assembly_tree(5, 5, 5, 2);
  EXPECT_GT(t.size(), 5);
  EXPECT_LE(t.size(), 125);
}

TEST(Dataset, RandomMdAssemblyTreeIsValid) {
  Rng rng(3);
  Tree t = random_md_assembly_tree(150, 4.0, 4, rng);
  EXPECT_GT(t.size(), 5);
  EXPECT_LE(t.size(), 150);
}

TEST(Dataset, AmalgamationShrinksTrees) {
  const Tree t1 = grid2d_assembly_tree(10, 10, 1);
  const Tree t16 = grid2d_assembly_tree(10, 10, 16);
  EXPECT_GT(t1.size(), t16.size());
}

TEST(Dataset, SyntheticAssemblyTreeHasHeavyRoot) {
  Rng rng(5);
  Tree t = synthetic_assembly_tree(500, 1.0, rng);
  EXPECT_EQ(t.size(), 500);
  EXPECT_EQ(t.output_size(t.root()), 0u);
  // Inner nodes near the root should be heavier than typical leaves
  // (sqrt-of-subtree law): root work above the median work.
  std::vector<double> works;
  for (NodeId i = 0; i < t.size(); ++i) works.push_back(t.work(i));
  std::sort(works.begin(), works.end());
  EXPECT_GT(t.work(t.root()), works[works.size() / 2]);
}

TEST(Dataset, BuildDatasetSmallScale) {
  DatasetParams params;
  params.scale = 0.05;
  params.amalgamations = {1, 4};
  auto ds = build_dataset(params);
  ASSERT_GT(ds.size(), 10u);
  std::set<std::string> names;
  for (const auto& e : ds) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_GE(e.tree.size(), 1);
    names.insert(e.name);
  }
  EXPECT_EQ(names.size(), ds.size());  // unique names
}

TEST(Dataset, DeterministicForFixedSeed) {
  DatasetParams params;
  params.scale = 0.05;
  params.amalgamations = {2};
  auto a = build_dataset(params);
  auto b = build_dataset(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].name, b[k].name);
    ASSERT_EQ(a[k].tree.size(), b[k].tree.size());
    for (NodeId i = 0; i < a[k].tree.size(); ++i) {
      EXPECT_EQ(a[k].tree.output_size(i), b[k].tree.output_size(i));
      EXPECT_DOUBLE_EQ(a[k].tree.work(i), b[k].tree.work(i));
    }
  }
}

}  // namespace
}  // namespace treesched

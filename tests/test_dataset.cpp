#include "campaign/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sequential/postorder.hpp"

namespace treesched {
namespace {

TEST(Dataset, Grid2dAssemblyTreeIsValid) {
  Tree t = grid2d_assembly_tree(12, 12, 4);
  EXPECT_GT(t.size(), 10);
  EXPECT_LE(t.size(), 144);
  EXPECT_GT(postorder(t).peak, 0u);
  EXPECT_GT(t.total_work(), 0.0);
}

TEST(Dataset, Grid3dAssemblyTreeIsValid) {
  Tree t = grid3d_assembly_tree(5, 5, 5, 2);
  EXPECT_GT(t.size(), 5);
  EXPECT_LE(t.size(), 125);
}

TEST(Dataset, RandomMdAssemblyTreeIsValid) {
  Rng rng(3);
  Tree t = random_md_assembly_tree(150, 4.0, 4, rng);
  EXPECT_GT(t.size(), 5);
  EXPECT_LE(t.size(), 150);
}

TEST(Dataset, AmalgamationShrinksTrees) {
  const Tree t1 = grid2d_assembly_tree(10, 10, 1);
  const Tree t16 = grid2d_assembly_tree(10, 10, 16);
  EXPECT_GT(t1.size(), t16.size());
}

TEST(Dataset, SyntheticAssemblyTreeHasHeavyRoot) {
  Rng rng(5);
  Tree t = synthetic_assembly_tree(500, 1.0, rng);
  EXPECT_EQ(t.size(), 500);
  EXPECT_EQ(t.output_size(t.root()), 0u);
  // Inner nodes near the root should be heavier than typical leaves
  // (sqrt-of-subtree law): root work above the median work.
  std::vector<double> works;
  for (NodeId i = 0; i < t.size(); ++i) works.push_back(t.work(i));
  std::sort(works.begin(), works.end());
  EXPECT_GT(t.work(t.root()), works[works.size() / 2]);
}

TEST(Dataset, BuildDatasetSmallScale) {
  DatasetParams params;
  params.scale = 0.05;
  params.amalgamations = {1, 4};
  auto ds = build_dataset(params);
  ASSERT_GT(ds.size(), 10u);
  std::set<std::string> names;
  for (const auto& e : ds) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_GE(e.tree.size(), 1);
    names.insert(e.name);
  }
  EXPECT_EQ(names.size(), ds.size());  // unique names
}

TEST(TreeSpec, BoundedOverloadRejectsHostileSpecsBeforeAllocation) {
  TreeSpecOptions opts;
  opts.max_nodes = 2'000'000;
  opts.allow_file = false;
  // Huge, negative, non-numeric and overflowing counts: each is one
  // typed invalid_argument thrown before any node vector is allocated.
  for (const char* spec :
       {"random:2000000000:1", "random:-5:1", "random:abc:1",
        "synthetic:999999999999999999999:1", "grid:80000:80000:2"}) {
    EXPECT_THROW((void)tree_from_spec(spec, opts), std::invalid_argument)
        << spec;
  }
  EXPECT_THROW((void)tree_from_spec("file:/etc/passwd", opts),
               std::invalid_argument)
      << "file: specs are refused when the front-end disallows them";
  // In-bounds specs still generate, and the unbounded overload keeps the
  // CLI's unrestricted behavior.
  EXPECT_EQ(tree_from_spec("random:500:1", opts).size(), 500);
  EXPECT_EQ(tree_from_spec("random:500:1").size(), 500);
}

TEST(TreeSpec, NegativeCountsAreNamedInTheError) {
  try {
    (void)tree_from_spec("random:-5:1");
    FAIL() << "a negative node count parsed";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("-5"), std::string::npos)
        << e.what();
  }
}

TEST(Dataset, DeterministicForFixedSeed) {
  DatasetParams params;
  params.scale = 0.05;
  params.amalgamations = {2};
  auto a = build_dataset(params);
  auto b = build_dataset(params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].name, b[k].name);
    ASSERT_EQ(a[k].tree.size(), b[k].tree.size());
    for (NodeId i = 0; i < a[k].tree.size(); ++i) {
      EXPECT_EQ(a[k].tree.output_size(i), b[k].tree.output_size(i));
      EXPECT_DOUBLE_EQ(a[k].tree.work(i), b[k].tree.work(i));
    }
  }
}

}  // namespace
}  // namespace treesched

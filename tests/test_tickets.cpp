// The v2 submission surface: Result<T, E> contract tests, submit() +
// Ticket wait/wait_for/try_get semantics, the typed ServiceError
// taxonomy, cancellation (queued, running, completed, double, inline,
// racing a worker pickup), and the destructor-vs-abandoned/cancelled
// ticket interaction the API documents.

#include "service/ticket.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "service/service.hpp"
#include "trees/generators.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace treesched {
namespace {

using namespace std::chrono_literals;

Tree weighted_tree(std::uint64_t seed, NodeId n = 60) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = n;
  params.max_output = 40;
  params.max_exec = 15;
  params.min_work = 1.0;
  params.max_work = 30.0;
  params.depth_bias = 1.5;
  return random_tree(params, rng);
}

/// Saturates every pool worker with heavy interactive work, with queued
/// entries to spare, so a subsequently submitted Bulk request stays in
/// the queue until explicitly dealt with (the pattern the expiry tests
/// established: a fixed count would leave workers idle on many-core
/// machines).
std::vector<Ticket> saturate(SchedulingService& service,
                             const TreeHandle& heavy) {
  const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
  std::vector<Ticket> tickets;
  tickets.reserve(backlog);
  for (std::size_t i = 0; i < backlog; ++i) {
    ScheduleRequest req;
    req.tree = heavy;
    req.algo = "ParDeepestFirst";
    req.p = 2 + static_cast<int>(i);
    req.priority = Priority::kInteractive;
    tickets.push_back(service.submit(std::move(req)));
  }
  return tickets;
}

// ---------------------------------------------------------------------------
// Result<T, E> contract.
// ---------------------------------------------------------------------------

using IntResult = Result<int, std::string>;

TEST(ResultContract, HoldsExactlyOneSide) {
  const IntResult ok = 7;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 7);

  const IntResult err = std::string("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_FALSE(static_cast<bool>(err));
  EXPECT_EQ(err.error(), "boom");
}

TEST(ResultContract, WrongAccessorThrowsLogicError) {
  const IntResult ok = 1;
  const IntResult err = std::string("boom");
  EXPECT_THROW((void)ok.error(), std::logic_error);
  EXPECT_THROW((void)err.value(), std::logic_error);
}

TEST(ResultContract, ValueOrNeverThrows) {
  const IntResult ok = 3;
  const IntResult err = std::string("boom");
  EXPECT_EQ(ok.value_or(-1), 3);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultContract, MapTransformsValueAndForwardsError) {
  const IntResult ok = 10;
  const Result<double, std::string> doubled =
      ok.map([](int v) { return v * 1.5; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_DOUBLE_EQ(doubled.value(), 15.0);

  const IntResult err = std::string("boom");
  const Result<double, std::string> still_err =
      err.map([](int v) { return v * 1.5; });
  ASSERT_FALSE(still_err.ok());
  EXPECT_EQ(still_err.error(), "boom");
}

TEST(ResultContract, AndThenChainsAndShortCircuits) {
  const auto half = [](int v) -> IntResult {
    if (v % 2 != 0) return std::string("odd");
    return v / 2;
  };
  EXPECT_EQ(IntResult(8).and_then(half).value(), 4);
  EXPECT_EQ(IntResult(7).and_then(half).error(), "odd");
  EXPECT_EQ(IntResult(std::string("early")).and_then(half).error(), "early")
      << "an existing error short-circuits the continuation";
}

TEST(ResultContract, MoveOnlyValuesMoveOut) {
  Result<std::unique_ptr<int>, std::string> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  const std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 5);
}

// ---------------------------------------------------------------------------
// submit() + Ticket basics.
// ---------------------------------------------------------------------------

TEST(Ticket, SubmitWaitMatchesDirectRegistryCall) {
  SchedulingService service;
  const Tree tree = weighted_tree(11);
  const TreeHandle handle = service.intern(tree);
  const SchedulerPtr direct =
      SchedulerRegistry::instance().create("ParInnerFirst");
  const Schedule expect_sched = direct->schedule(tree, Resources{4, 0});
  const SimulationResult expect = simulate(tree, expect_sched);

  ScheduleRequest req;
  req.tree = handle;
  req.algo = "ParInnerFirst";
  req.p = 4;
  req.want_schedule = true;
  Ticket ticket = service.submit(req);
  const ServiceResult result = ticket.wait();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().makespan, expect.makespan);
  EXPECT_EQ(result.value().peak_memory, expect.peak_memory);
  ASSERT_NE(result.value().schedule, nullptr);
  EXPECT_EQ(result.value().schedule->start, expect_sched.start);

  // wait() is repeatable, and try_get()/wait_for() see the settled result.
  EXPECT_TRUE(ticket.wait().ok());
  const auto polled = ticket.try_get();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->value().makespan, expect.makespan);
  const auto bounded = ticket.wait_for(1000ms);
  ASSERT_TRUE(bounded.has_value());
  EXPECT_TRUE(bounded->ok());
}

TEST(Ticket, EmptyTicketResolvesToBadRequestAndCannotCancel) {
  Ticket empty;
  EXPECT_FALSE(empty.valid());
  const ServiceResult result = empty.wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kBadRequest);
  EXPECT_FALSE(empty.cancel());
}

TEST(Ticket, TryGetAndWaitForReportPendingWhileQueued) {
  SchedulingService service;
  const TreeHandle heavy = service.intern(weighted_tree(3, 2000));
  std::vector<Ticket> backlog = saturate(service, heavy);

  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(4, 30));
  req.algo = "Liu";
  req.p = 1;
  req.priority = Priority::kBulk;  // pinned behind the whole backlog
  Ticket ticket = service.submit(std::move(req));
  EXPECT_FALSE(ticket.try_get().has_value()) << "still queued";
  EXPECT_FALSE(ticket.wait_for(0ms).has_value());

  for (Ticket& t : backlog) EXPECT_TRUE(t.wait().ok());
  EXPECT_TRUE(ticket.wait().ok());
}

// ---------------------------------------------------------------------------
// The typed error taxonomy through submit().
// ---------------------------------------------------------------------------

TEST(TicketErrors, UnknownAlgorithmIsTyped) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(1));
  req.algo = "NoSuchAlgo";
  req.p = 2;
  const ServiceResult result = service.submit(req).wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnknownAlgorithm);
  EXPECT_NE(result.error().message.find("NoSuchAlgo"), std::string::npos);
}

TEST(TicketErrors, InvalidResourcesAndMissingTreeAreTyped) {
  SchedulingService service;
  ScheduleRequest req;
  req.algo = "ParSubtrees";
  req.p = 2;
  const ServiceResult no_tree = service.submit(req).wait();
  ASSERT_FALSE(no_tree.ok());
  EXPECT_EQ(no_tree.error().code, ErrorCode::kInvalidResources);

  req.tree = service.intern(weighted_tree(1));
  req.p = 0;
  const ServiceResult bad_p = service.submit(req).wait();
  ASSERT_FALSE(bad_p.ok());
  EXPECT_EQ(bad_p.error().code, ErrorCode::kInvalidResources);
  EXPECT_EQ(bad_p.error().message,
            "ParSubtrees: invalid resources: p must be >= 1 (got 0)")
      << "the uniform validate_resources message survives the conversion";
}

TEST(TicketErrors, SchedulerFailureCarriesTheOriginalCause) {
  SchedulingService service;
  // 60 nodes > the BruteForceSeq oracle's 20-node bound: the scheduler
  // itself throws std::invalid_argument mid-compute.
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(2));
  req.algo = "BruteForceSeq";
  req.p = 1;
  const ServiceResult result = service.submit(req).wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kSchedulerFailure);
  ASSERT_NE(result.error().cause, nullptr);
  // The legacy bridge rethrows the scheduler's own exception type.
  EXPECT_THROW(std::rethrow_exception(to_exception(result.error())),
               std::invalid_argument);
  EXPECT_THROW((void)service.schedule(req), std::invalid_argument);
}

TEST(TicketErrors, DeadlineExpiryIsTypedAndCostsNoCompute) {
  SchedulingService service;
  const TreeHandle heavy = service.intern(weighted_tree(3, 2000));
  std::vector<Ticket> backlog = saturate(service, heavy);

  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(4, 30));
  req.algo = "Liu";
  req.p = 1;
  req.priority = Priority::kBulk;
  req.deadline_ms = 0.01;
  Ticket doomed = service.submit(std::move(req));
  for (Ticket& t : backlog) EXPECT_TRUE(t.wait().ok());
  const ServiceResult result = doomed.wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kDeadlineExpired);
  EXPECT_EQ(service.queue_stats().of(Priority::kBulk).expired, 1u);
}

TEST(TicketErrors, StoreBudgetRejectionIsTypedThroughTryIntern) {
  ServiceConfig config;
  config.store.max_bytes = tree_bytes(weighted_tree(1)) + 1;
  SchedulingService service(config);
  ASSERT_TRUE(service.try_intern(weighted_tree(1)).ok());
  const Result<TreeHandle, ServiceError> full =
      service.try_intern(weighted_tree(2, 500));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, ErrorCode::kStoreFull);
  EXPECT_EQ(service.store_stats().rejected, 1u);
  EXPECT_THROW((void)service.intern(weighted_tree(3, 500)), StoreFull)
      << "the legacy surface maps kStoreFull to the typed exception";
  // The already-interned tree keeps resolving.
  EXPECT_TRUE(service.try_intern(weighted_tree(1)).ok());
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(TicketCancel, QueuedRequestCancelsWithTypedErrorAndCounts) {
  SchedulingService service;
  const TreeHandle heavy = service.intern(weighted_tree(3, 2000));
  std::vector<Ticket> backlog = saturate(service, heavy);

  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(4, 30));
  req.algo = "Liu";
  req.p = 1;
  req.priority = Priority::kBulk;  // class-preempted behind the backlog
  Ticket ticket = service.submit(std::move(req));

  EXPECT_TRUE(ticket.cancel()) << "still queued: cancel wins";
  const ServiceResult result = ticket.wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kCancelled);
  EXPECT_FALSE(ticket.cancel()) << "double-cancel reports false";

  for (Ticket& t : backlog) EXPECT_TRUE(t.wait().ok());
  const QueueStats qs = service.queue_stats();
  const ClassQueueStats& bulk = qs.of(Priority::kBulk);
  EXPECT_EQ(bulk.cancelled, 1u) << "observable in QueueStats";
  EXPECT_EQ(bulk.completed, 0u) << "never handed to a worker";
  EXPECT_EQ(bulk.admitted,
            bulk.completed + bulk.expired + bulk.rejected + bulk.cancelled);
  // The cancelled request never reached a scheduler: only the backlog
  // missed (distinct keys each).
  EXPECT_EQ(service.cache_stats().misses, backlog.size());
}

TEST(TicketCancel, CompletedAndInlineRequestsReportFalse) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(5));
  ScheduleRequest req;
  req.tree = handle;
  req.algo = "ParSubtrees";
  req.p = 4;

  Ticket done = service.submit(req);
  ASSERT_TRUE(done.wait().ok());
  EXPECT_FALSE(done.cancel()) << "cancel-after-complete is a no-op";
  EXPECT_TRUE(done.wait().ok()) << "the settled result stands";

  // Submissions from pool workers compute inline and cannot be cancelled
  // (parallel_for's caller participates in its own work, so some
  // iterations may legitimately run on the calling thread and queue —
  // those must be cancel-consistent instead).
  std::atomic<int> consistent{0};
  parallel_for(4, [&](std::size_t i) {
    ScheduleRequest r = req;
    r.p = 1 + static_cast<int>(i);
    const bool on_worker = ThreadPool::shared().on_worker_thread();
    Ticket t = service.submit(std::move(r));
    const bool cancelled = t.cancel();
    const ServiceResult res = t.wait();
    bool ok_case = false;
    if (on_worker) {
      ok_case = !cancelled && res.ok();  // inline: settled before cancel
    } else if (cancelled) {
      ok_case = !res.ok() && res.error().code == ErrorCode::kCancelled;
    } else {
      ok_case = res.ok();
    }
    if (ok_case) consistent.fetch_add(1);
  });
  EXPECT_EQ(consistent.load(), 4);
}

TEST(TicketCancel, CancelRacingWorkerPickupSettlesEveryTicketExactlyOnce) {
  // Producers hammer submit() while cancelling half their tickets right
  // away. Whatever the interleaving: a successful cancel() implies the
  // kCancelled result, a failed one implies a worker-computed result,
  // and the queue counters balance with the cancelled column.
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 40;
  SchedulingService service;
  std::vector<TreeHandle> handles;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    handles.push_back(service.intern(weighted_tree(seed, 80)));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> cancelled_true{0};
  std::atomic<int> computed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        ScheduleRequest req;
        req.tree = handles[static_cast<std::size_t>(t + i) % handles.size()];
        req.algo = "ParDeepestFirst";
        req.p = 2 + i % 6;
        req.priority = static_cast<Priority>(i % kPriorityClasses);
        Ticket ticket = service.submit(std::move(req));
        const bool want_cancel = i % 2 == 0;
        const bool cancelled = want_cancel && ticket.cancel();
        const ServiceResult result = ticket.wait();
        if (cancelled) {
          cancelled_true.fetch_add(1);
          if (result.ok() ||
              result.error().code != ErrorCode::kCancelled) {
            mismatches.fetch_add(1);
          }
        } else if (result.ok()) {
          computed.fetch_add(1);
        } else {
          mismatches.fetch_add(1);  // no deadlines, no bound: must compute
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(static_cast<std::uint64_t>(cancelled_true.load() +
                                       computed.load()),
            kTotal)
      << "every ticket settled exactly once";

  const QueueStats qs = service.queue_stats();
  std::uint64_t admitted = 0, completed = 0, cancelled = 0;
  for (const ClassQueueStats& c : qs.by_class) {
    EXPECT_EQ(c.admitted, c.completed + c.expired + c.rejected + c.cancelled)
        << "per-class balance with cancellation";
    EXPECT_EQ(c.pending, 0u);
    EXPECT_EQ(c.expired, 0u);
    EXPECT_EQ(c.rejected, 0u);
    admitted += c.admitted;
    completed += c.completed;
    cancelled += c.cancelled;
  }
  EXPECT_EQ(admitted, kTotal);
  EXPECT_EQ(cancelled, static_cast<std::uint64_t>(cancelled_true.load()));
  EXPECT_EQ(completed, static_cast<std::uint64_t>(computed.load()));
}

// ---------------------------------------------------------------------------
// Destructor vs. abandoned / cancelled / surviving tickets.
// ---------------------------------------------------------------------------

TEST(TicketLifetime, AbandonedAndCancelledTicketsNeverDeadlockTheDrain) {
  // Tickets dropped without wait() — some cancelled, some not, some
  // duplicates dedup'd in flight — must not strand the destructor's
  // async_outstanding_ drain or leak an in-flight entry (the ASan/TSan
  // CI jobs run this test for the leak half of the claim).
  const Tree tree = weighted_tree(7, 200);
  for (int round = 0; round < 3; ++round) {
    SchedulingService service;
    const TreeHandle handle = service.intern(tree);
    for (int i = 0; i < 24; ++i) {
      ScheduleRequest req;
      req.tree = handle;
      req.algo = "ParInnerFirst";
      req.p = 2 + i % 3;  // few distinct keys: plenty of in-flight twins
      req.priority = Priority::kBulk;
      Ticket ticket = service.submit(std::move(req));
      if (i % 3 == 0) (void)ticket.cancel();
      // ticket dropped here, unwaited
    }
    // ~SchedulingService must return on its own.
  }
  SUCCEED() << "all drains completed";
}

TEST(TicketLifetime, TicketOutlivesServiceSafely) {
  Ticket survivor;
  {
    SchedulingService service;
    ScheduleRequest req;
    req.tree = service.intern(weighted_tree(8));
    req.algo = "ParSubtrees";
    req.p = 2;
    survivor = service.submit(std::move(req));
    ASSERT_TRUE(survivor.wait().ok());
  }
  // The service is gone; the settled ticket still answers, and cancel()
  // (through the shared, drained queue) is a safe no-op.
  EXPECT_TRUE(survivor.wait().ok());
  EXPECT_FALSE(survivor.cancel());
}

// ---------------------------------------------------------------------------
// Legacy wrappers are thin shims over submit().
// ---------------------------------------------------------------------------

TEST(LegacyWrappers, ScheduleThrowsWhatTheTicketCarries) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(9));
  req.algo = "NoSuchAlgo";
  req.p = 2;
  EXPECT_THROW((void)service.schedule(req), std::invalid_argument);

  req.algo = "ParInnerFirst";
  const ScheduleResponse via_wrapper = service.schedule(req);
  const ServiceResult via_ticket = service.submit(req).wait();
  ASSERT_TRUE(via_ticket.ok());
  EXPECT_EQ(via_wrapper.makespan, via_ticket.value().makespan);
  EXPECT_EQ(via_wrapper.peak_memory, via_ticket.value().peak_memory);
}

TEST(LegacyWrappers, LegacyFutureIsSingleShot) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(12));
  req.algo = "ParSubtrees";
  req.p = 2;
  Ticket ticket = service.submit(std::move(req));
  std::future<ScheduleResponse> future = ticket.legacy_future();
  EXPECT_THROW((void)ticket.legacy_future(), std::logic_error)
      << "the underlying promise has exactly one future";
  EXPECT_TRUE(future.get().ok());
}

TEST(LegacyWrappers, ScheduleBatchIgnoresDeadlinesLikeV1) {
  // schedule_batch keeps the v1 contract: deadlines are ignored on both
  // its paths (width-bound: inline-vs-queued placement is a scheduling
  // accident that must not pick which items expire; queued: stripped
  // before delegating). schedule_prioritized is the deadline-honoring
  // batch.
  for (const unsigned threads : {0u, 2u}) {
    ServiceConfig config;
    config.threads = threads;
    SchedulingService service(config);
    const TreeHandle handle = service.intern(weighted_tree(13));
    std::vector<ScheduleRequest> reqs(8);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      reqs[i].tree = handle;
      reqs[i].algo = "ParInnerFirst";
      reqs[i].p = 2 + static_cast<int>(i % 4);
      reqs[i].deadline_ms = 0.0001;  // would expire if queued with it
    }
    const std::vector<ScheduleResponse> responses =
        service.schedule_batch(reqs);
    for (const ScheduleResponse& resp : responses) {
      EXPECT_TRUE(resp.ok())
          << "no schedule_batch item may expire (threads=" << threads << ")";
    }
  }
}

TEST(LegacyWrappers, BatchResponsesCarryTheTypedError) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(10));
  std::vector<ScheduleRequest> reqs(2);
  reqs[0].tree = handle;
  reqs[0].algo = "ParSubtrees";
  reqs[0].p = 4;
  reqs[1].tree = handle;
  reqs[1].algo = "ParSubtrees";
  reqs[1].p = 0;  // invalid
  const std::vector<ScheduleResponse> responses =
      service.schedule_batch(reqs);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].ok());
  ASSERT_FALSE(responses[1].ok());
  EXPECT_EQ(responses[1].error->code, ErrorCode::kInvalidResources);
}

// ---------------------------------------------------------------------------
// Ticket::on_complete — the completion hook the networked front-end
// rides (the I/O thread must be woken on settlement, never poll).
// ---------------------------------------------------------------------------

/// Spin-waits for `flag` with a generous bound: the hook fires on the
/// settling thread, which may run a beat after wait() returns.
bool eventually(const std::atomic<int>& counter, int expected) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (counter.load() != expected) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(TicketOnComplete, FiresExactlyOnceWithTheSettledResult) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(1));
  req.algo = "Liu";
  Ticket ticket = service.submit(req);
  std::atomic<int> fired{0};
  std::atomic<bool> was_ok{false};
  ticket.on_complete([&](const ServiceResult& result) {
    was_ok.store(result.ok());
    fired.fetch_add(1);
  });
  const ServiceResult direct = ticket.wait();
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(eventually(fired, 1));
  EXPECT_TRUE(was_ok.load());
}

TEST(TicketOnComplete, SettleBeforeSubscribeInvokesImmediately) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(2));
  req.algo = "Liu";
  Ticket ticket = service.submit(req);
  const ServiceResult settled = ticket.wait();  // settled before subscribing
  ASSERT_TRUE(settled.ok());
  int fired = 0;  // plain int: the callback must run synchronously, here
  double makespan = 0.0;
  ticket.on_complete([&](const ServiceResult& result) {
    ++fired;
    makespan = result.value().makespan;
  });
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(makespan, settled.value().makespan);
}

TEST(TicketOnComplete, SecondSubscriptionThrows) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(3));
  req.algo = "Liu";
  Ticket ticket = service.submit(req);
  ticket.on_complete([](const ServiceResult&) {});
  EXPECT_THROW(ticket.on_complete([](const ServiceResult&) {}),
               std::logic_error);
  (void)ticket.wait();
}

TEST(TicketOnComplete, EmptyTicketReportsBadRequestImmediately) {
  Ticket empty;
  int fired = 0;
  empty.on_complete([&](const ServiceResult& result) {
    ++fired;
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kBadRequest);
  });
  EXPECT_EQ(fired, 1);
}

TEST(TicketOnComplete, CancellationFiresTheHookWithKCancelled) {
  std::atomic<int> fired{0};
  std::atomic<bool> saw_cancelled{false};
  {
    SchedulingService service;
    const TreeHandle heavy =
        service.intern(weighted_tree(4, /*n=*/4000));
    std::vector<Ticket> busy = saturate(service, heavy);
    ScheduleRequest req;
    req.tree = heavy;
    req.algo = "Liu";
    req.priority = Priority::kBulk;  // behind the interactive backlog
    Ticket doomed = service.submit(req);
    doomed.on_complete([&](const ServiceResult& result) {
      saw_cancelled.store(!result.ok() &&
                          result.error().code == ErrorCode::kCancelled);
      fired.fetch_add(1);
    });
    ASSERT_TRUE(doomed.cancel());
    for (Ticket& t : busy) (void)t.wait();
  }
  EXPECT_TRUE(eventually(fired, 1));
  EXPECT_TRUE(saw_cancelled.load());
}

TEST(TicketOnComplete, SubscribeRacingSettlementNeverLosesACompletion) {
  // The race the satellite names: subscription from one thread while a
  // pool worker settles. Whatever interleaving happens, every hook must
  // fire exactly once.
  SchedulingService service;
  const TreeHandle tree = service.intern(weighted_tree(5));
  constexpr int kRounds = 200;
  std::atomic<int> fired{0};
  std::vector<Ticket> tickets;
  tickets.reserve(kRounds);
  for (int i = 0; i < kRounds; ++i) {
    ScheduleRequest req;
    req.tree = tree;
    req.algo = "Liu";
    tickets.push_back(service.submit(req));
    // Attach right away: cache-hot requests often settle first.
    tickets.back().on_complete(
        [&](const ServiceResult&) { fired.fetch_add(1); });
  }
  for (Ticket& t : tickets) (void)t.wait();
  EXPECT_TRUE(eventually(fired, kRounds));
}

}  // namespace
}  // namespace treesched

#include "parallel/par_deepest_first.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::make_tree;

TEST(ParDeepestFirst, PicksCriticalPathFirst) {
  // Node 2 heads a longer weighted path than node 3; it must start first.
  //    0(w=1)
  //    /    \
  //  1(w=1)  3(w=2, leaf)
  //    |
  //  2(w=9, leaf)
  Tree t = make_tree({kNoNode, 0, 1, 0}, {1, 1, 1, 1}, {0, 0, 0, 0},
                     {1, 1, 9, 2});
  Schedule s = par_deepest_first(t, 1);
  auto order = s.by_start_time();
  EXPECT_EQ(order.front(), 2);
}

TEST(ParDeepestFirst, ChainsTreeMemoryGrowsWithChainCount) {
  // Paper Figure 5: sequential memory stays 3, ParDeepestFirst grows with
  // the number of chains.
  const int p = 4;
  MemSize prev = 0;
  for (int chains : {4, 8, 16}) {
    Tree t = chains_tree(chains, 10);
    EXPECT_LE(postorder(t).peak, 3u);
    Schedule s = par_deepest_first(t, p);
    ASSERT_TRUE(validate_schedule(t, s, p).ok);
    const MemSize mem = simulate(t, s).peak_memory;
    EXPECT_GE(mem, prev);
    prev = mem;
  }
  Tree t = chains_tree(16, 10);
  EXPECT_GT((double)simulate(t, par_deepest_first(t, p)).peak_memory /
                (double)postorder(t).peak,
            3.0);
}

TEST(ParDeepestFirst, NearOptimalMakespanOnBalancedTrees) {
  // On a complete binary tree with unit works and p=2, deepest-first
  // keeps both processors busy almost always.
  TreeBuilder b;
  b.add_node(kNoNode, 1, 0, 1.0);
  for (NodeId i = 1; i < 63; ++i) b.add_node((i - 1) / 2, 1, 0, 1.0);
  Tree t = std::move(b).build();
  Schedule s = par_deepest_first(t, 2);
  ASSERT_TRUE(validate_schedule(t, s, 2).ok);
  const double cmax = simulate(t, s).makespan;
  // 63 nodes / 2 procs = 31.5 -> LB 32 (critical path 6); expect <= 36.
  EXPECT_GE(cmax, makespan_lower_bound(t, 2));
  EXPECT_LE(cmax, 36.0);
}

TEST(ParDeepestFirst, ValidAcrossProcessorCounts) {
  Rng rng(19);
  RandomTreeParams params;
  params.n = 300;
  params.min_work = 1.0;
  params.max_work = 20.0;
  params.max_output = 50;
  params.max_exec = 10;
  Tree t = random_tree(params, rng);
  for (int p : {1, 2, 4, 8, 16, 32}) {
    Schedule s = par_deepest_first(t, p);
    EXPECT_TRUE(validate_schedule(t, s, p).ok);
  }
}

TEST(ParDeepestFirst, BeatsOrMatchesInnerFirstOnMakespanUsually) {
  // Not a theorem, but the paper observes ParDeepestFirst is the makespan
  // champion; check it is never dramatically worse on random instances.
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(200);
    params.min_work = 1.0;
    params.max_work = 10.0;
    Tree t = random_tree(params, rng);
    const double df = simulate(t, par_deepest_first(t, 4)).makespan;
    const double lb = makespan_lower_bound(t, 4);
    EXPECT_LE(df, 2.0 * lb + 1e-9);  // far tighter than the Graham bound
  }
}

TEST(ParDeepestFirst, DeterministicAcrossRuns) {
  Rng rng(29);
  Tree t = random_pebble_tree(120, rng, 1.0);
  Schedule a = par_deepest_first(t, 4);
  Schedule b = par_deepest_first(t, 4);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.proc, b.proc);
}

}  // namespace
}  // namespace treesched

// The schedule_service wire grammar (service/request_line.hpp):
// positional fields as in PR 2, the new named priority=/deadline_ms=
// fields, and — the regression this file pins — unknown fields rejected
// with an error naming the field, never silently accepted.

#include "service/request_line.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace treesched {
namespace {

TEST(RequestLine, PositionalFieldsParse) {
  const RequestLine r = parse_request_line("random:500:1 ParSubtrees 8");
  EXPECT_EQ(r.tree_spec, "random:500:1");
  EXPECT_EQ(r.algo, "ParSubtrees");
  EXPECT_EQ(r.p, 8);
  EXPECT_EQ(r.memory_cap, 0u);
  EXPECT_EQ(r.priority, Priority::kBatch) << "wire default is batch";
  EXPECT_EQ(r.deadline_ms, 0.0);
}

TEST(RequestLine, OptionalMemoryCapParses) {
  const RequestLine r =
      parse_request_line("grid:8:2 MemoryBounded 4 123456");
  EXPECT_EQ(r.memory_cap, 123456u);
}

TEST(RequestLine, NamedFieldsParse) {
  const RequestLine r = parse_request_line(
      "file:a.tree Liu 1 77 priority=interactive deadline_ms=12.5");
  EXPECT_EQ(r.memory_cap, 77u);
  EXPECT_EQ(r.priority, Priority::kInteractive);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 12.5);
}

TEST(RequestLine, NamedFieldsAreOrderInsensitive) {
  const RequestLine r = parse_request_line(
      "random:10:1 ParInnerFirst 2 deadline_ms=5 priority=bulk");
  EXPECT_EQ(r.priority, Priority::kBulk);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 5.0);
}

TEST(RequestLine, UnknownFieldIsRejectedByName) {
  try {
    (void)parse_request_line("random:10:1 ParSubtrees 2 frobnicate=7");
    FAIL() << "unknown field accepted silently";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown request field \"frobnicate\""),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("priority"), std::string::npos)
        << "the error should list the known fields";
  }
}

TEST(RequestLine, MalformedLinesAreRejected) {
  // Too few positional fields.
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees"),
               std::invalid_argument);
  // Negative / non-numeric caps (istream would happily wrap "-5").
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees 2 -5"),
               std::invalid_argument);
  // A stray positional token after the cap.
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees 2 7 9"),
               std::invalid_argument);
  // A positional token after a named field.
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 priority=bulk 9"),
      std::invalid_argument);
  // A repeated named field (last-one-wins would hide a typo'd intent).
  EXPECT_THROW((void)parse_request_line(
                   "random:10:1 Liu 1 deadline_ms=5000 deadline_ms=50"),
               std::invalid_argument);
  // Bad values for the named fields.
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 priority=vip"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 deadline_ms=-3"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 deadline_ms=soon"),
      std::invalid_argument);
}

}  // namespace
}  // namespace treesched

// The schedule_service wire grammar (service/request_line.hpp), protocol
// v2: positional fields as in PR 2, the named priority=/deadline_ms=/id=
// fields, cancel lines, response formatting/parsing round-trips, and —
// the regressions this file pins — unknown request fields and unknown
// error codes rejected with an error naming them, never silently
// accepted.

#include "service/request_line.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace treesched {
namespace {

TEST(RequestLine, PositionalFieldsParse) {
  const RequestLine r = parse_request_line("random:500:1 ParSubtrees 8");
  EXPECT_EQ(r.tree_spec, "random:500:1");
  EXPECT_EQ(r.algo, "ParSubtrees");
  EXPECT_EQ(r.p, 8);
  EXPECT_EQ(r.memory_cap, 0u);
  EXPECT_EQ(r.priority, Priority::kBatch) << "wire default is batch";
  EXPECT_EQ(r.deadline_ms, 0.0);
  EXPECT_EQ(r.kind, RequestLine::Kind::kSchedule);
  EXPECT_FALSE(r.id.has_value()) << "untagged by default";
}

TEST(RequestLine, OptionalMemoryCapParses) {
  const RequestLine r =
      parse_request_line("grid:8:2 MemoryBounded 4 123456");
  EXPECT_EQ(r.memory_cap, 123456u);
}

TEST(RequestLine, NamedFieldsParse) {
  const RequestLine r = parse_request_line(
      "file:a.tree Liu 1 77 priority=interactive deadline_ms=12.5");
  EXPECT_EQ(r.memory_cap, 77u);
  EXPECT_EQ(r.priority, Priority::kInteractive);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 12.5);
}

TEST(RequestLine, NamedFieldsAreOrderInsensitive) {
  const RequestLine r = parse_request_line(
      "random:10:1 ParInnerFirst 2 deadline_ms=5 priority=bulk");
  EXPECT_EQ(r.priority, Priority::kBulk);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 5.0);
}

TEST(RequestLine, IdTagParses) {
  const RequestLine r =
      parse_request_line("random:10:1 ParSubtrees 2 id=42 priority=bulk");
  ASSERT_TRUE(r.id.has_value());
  EXPECT_EQ(*r.id, 42u);
  EXPECT_EQ(r.priority, Priority::kBulk);
  // Bad ids are rejected by name.
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees 2 id=-3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees 2 id=abc"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 id=1 id=2"),
      std::invalid_argument);
  // Overflow is a parse error too (std::invalid_argument, never a leaked
  // std::out_of_range — the documented contract).
  EXPECT_THROW((void)parse_request_line(
                   "random:10:1 ParSubtrees 2 id=18446744073709551616"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line(
                   "random:10:1 Liu 1 99999999999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line(
                   "ok peak_memory=18446744073709551616"),
               std::invalid_argument);
  // Int-typed response fields reject (never truncate) out-of-range
  // values: p=2^32+1 must not come back as p=1.
  EXPECT_THROW((void)parse_response_line("ok p=4294967297"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok n=4294967296"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok tree=nothex"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok tree=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok tree=0x12"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line(
                   "error id=1 id=2 code=queue_full boom"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok makespan=fast"),
               std::invalid_argument);
}

TEST(RequestLine, CancelLinesParse) {
  const RequestLine r = parse_request_line("cancel id=7");
  EXPECT_EQ(r.kind, RequestLine::Kind::kCancel);
  ASSERT_TRUE(r.id.has_value());
  EXPECT_EQ(*r.id, 7u);
  // A cancel must name exactly one id and nothing else.
  EXPECT_THROW((void)parse_request_line("cancel"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("cancel 7"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("cancel id=7 id=8"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("cancel id=7 priority=bulk"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("cancel id=nope"),
               std::invalid_argument);
}

TEST(RequestLine, UnknownFieldIsRejectedByName) {
  try {
    (void)parse_request_line("random:10:1 ParSubtrees 2 frobnicate=7");
    FAIL() << "unknown field accepted silently";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown request field \"frobnicate\""),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("priority"), std::string::npos)
        << "the error should list the known fields";
  }
}

TEST(RequestLine, MalformedLinesAreRejected) {
  // Too few positional fields.
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees"),
               std::invalid_argument);
  // Negative / non-numeric caps (istream would happily wrap "-5").
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees 2 -5"),
               std::invalid_argument);
  // A stray positional token after the cap.
  EXPECT_THROW((void)parse_request_line("random:10:1 ParSubtrees 2 7 9"),
               std::invalid_argument);
  // A positional token after a named field.
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 priority=bulk 9"),
      std::invalid_argument);
  // A repeated named field (last-one-wins would hide a typo'd intent).
  EXPECT_THROW((void)parse_request_line(
                   "random:10:1 Liu 1 deadline_ms=5000 deadline_ms=50"),
               std::invalid_argument);
  // Bad values for the named fields.
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 priority=vip"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 deadline_ms=-3"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_request_line("random:10:1 ParSubtrees 2 deadline_ms=soon"),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Protocol-v2 response lines.
// ---------------------------------------------------------------------------

TEST(ResponseLine, OkLineRoundTrips) {
  ResponseLine resp;
  resp.ok = true;
  resp.id = 42;
  resp.tree_hash = 0x8c621571e53e1323ULL;
  resp.n = 200;
  resp.algo = "ParSubtrees";
  resp.p = 8;
  resp.makespan = 1624.2518808123923;
  resp.peak_memory = 1636;
  resp.cache_hit = true;
  resp.priority = Priority::kInteractive;

  const std::string line = format_response_line(resp);
  const ResponseLine back = parse_response_line(line);
  EXPECT_TRUE(back.ok);
  ASSERT_TRUE(back.id.has_value());
  EXPECT_EQ(*back.id, 42u);
  EXPECT_EQ(back.tree_hash, resp.tree_hash);
  EXPECT_EQ(back.n, 200);
  EXPECT_EQ(back.algo, "ParSubtrees");
  EXPECT_EQ(back.p, 8);
  EXPECT_DOUBLE_EQ(back.makespan, resp.makespan)
      << "setprecision(17) round-trips the double exactly";
  EXPECT_EQ(back.peak_memory, 1636u);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.priority, Priority::kInteractive);
}

TEST(ResponseLine, ErrorLineRoundTripsEveryCode) {
  for (const ErrorCode code :
       {ErrorCode::kUnknownAlgorithm, ErrorCode::kInvalidResources,
        ErrorCode::kDeadlineExpired, ErrorCode::kQueueFull,
        ErrorCode::kCancelled, ErrorCode::kSchedulerFailure,
        ErrorCode::kStoreFull, ErrorCode::kBadRequest}) {
    ResponseLine resp;
    resp.ok = false;
    resp.id = 9;
    resp.code = code;
    resp.message = "something went wrong here";
    const ResponseLine back = parse_response_line(format_response_line(resp));
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.code, code) << to_string(code);
    ASSERT_TRUE(back.id.has_value());
    EXPECT_EQ(*back.id, 9u);
    EXPECT_EQ(back.message, "something went wrong here");
    // And the code spelling itself round-trips through the taxonomy.
    EXPECT_EQ(parse_error_code(to_string(code)), code);
  }
  // Untagged error lines stay untagged.
  const ResponseLine untagged =
      parse_response_line("error code=queue_full queue full: 8 pending");
  EXPECT_FALSE(untagged.id.has_value());
  EXPECT_EQ(untagged.code, ErrorCode::kQueueFull);
}

TEST(ResponseLine, UnknownCodeIsRejectedByName) {
  try {
    (void)parse_response_line("error id=3 code=frobnicated boom");
    FAIL() << "unknown error code accepted silently";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown error code \"frobnicated\""),
              std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(parse_error_code("frobnicated").has_value());
}

TEST(ResponseLine, MalformedResponsesAreRejected) {
  // No verb / unknown verb.
  EXPECT_THROW((void)parse_response_line(""), std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("maybe tree=1"),
               std::invalid_argument);
  // Error line without a code.
  EXPECT_THROW((void)parse_response_line("error something broke"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("error id=3 something broke"),
               std::invalid_argument);
  // Unknown / duplicate ok fields.
  EXPECT_THROW((void)parse_response_line("ok frob=1"), std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok p=2 p=3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok cache=warm"),
               std::invalid_argument);
  // Truncated ok lines must not parse into default-zero measurements.
  EXPECT_THROW((void)parse_response_line("ok"), std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("ok id=3 tree=ff n=2"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ping / stats control lines (the health-probe additions).
// ---------------------------------------------------------------------------

TEST(ControlLines, PingParsesWithAndWithoutTag) {
  const RequestLine bare = parse_request_line("ping");
  EXPECT_EQ(bare.kind, RequestLine::Kind::kPing);
  EXPECT_FALSE(bare.id.has_value());

  const RequestLine tagged = parse_request_line("ping id=42");
  EXPECT_EQ(tagged.kind, RequestLine::Kind::kPing);
  ASSERT_TRUE(tagged.id.has_value());
  EXPECT_EQ(*tagged.id, 42u);

  EXPECT_THROW((void)parse_request_line("ping hard"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("ping id=1 id=2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("ping id=-3"), std::invalid_argument);
}

TEST(ControlLines, StatsParsesWithAndWithoutTag) {
  const RequestLine bare = parse_request_line("stats");
  EXPECT_EQ(bare.kind, RequestLine::Kind::kStats);
  const RequestLine tagged = parse_request_line("stats id=9");
  ASSERT_TRUE(tagged.id.has_value());
  EXPECT_EQ(*tagged.id, 9u);
  EXPECT_THROW((void)parse_request_line("stats now"), std::invalid_argument);
}

TEST(ControlLines, PongRoundTrips) {
  ResponseLine pong;
  pong.kind = ResponseLine::Kind::kPong;
  pong.ok = true;
  EXPECT_EQ(format_response_line(pong), "pong");
  pong.id = 7;
  const std::string line = format_response_line(pong);
  EXPECT_EQ(line, "pong id=7");
  const ResponseLine back = parse_response_line(line);
  EXPECT_EQ(back.kind, ResponseLine::Kind::kPong);
  ASSERT_TRUE(back.id.has_value());
  EXPECT_EQ(*back.id, 7u);
  EXPECT_THROW((void)parse_response_line("pong id=1 id=2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("pong extra"),
               std::invalid_argument);
}

TEST(ControlLines, StatsRoundTripsFreeFormCounters) {
  ResponseLine stats;
  stats.kind = ResponseLine::Kind::kStats;
  stats.ok = true;
  stats.id = 3;
  stats.stats = {{"conns", 2}, {"cache_hits", 41}, {"brand_new_counter", 0}};
  const std::string line = format_response_line(stats);
  EXPECT_EQ(line, "stats id=3 conns=2 cache_hits=41 brand_new_counter=0");
  const ResponseLine back = parse_response_line(line);
  EXPECT_EQ(back.kind, ResponseLine::Kind::kStats);
  ASSERT_TRUE(back.id.has_value());
  EXPECT_EQ(*back.id, 3u);
  ASSERT_EQ(back.stats.size(), 3u)
      << "unknown keys must parse (servers grow counters)";
  EXPECT_EQ(back.stats[0].first, "conns");
  EXPECT_EQ(back.stats[0].second, 2u);
  EXPECT_EQ(back.stats[2].first, "brand_new_counter");
  // Values must still be integers; truncation fails loudly.
  EXPECT_THROW((void)parse_response_line("stats conns=many"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("stats conns=1 conns=2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_response_line("stats conns"),
               std::invalid_argument);
}

TEST(ControlLines, TraceParsesActionsAndDump) {
  const RequestLine start = parse_request_line("trace start");
  EXPECT_EQ(start.kind, RequestLine::Kind::kTrace);
  EXPECT_EQ(start.trace_action, "start");
  EXPECT_TRUE(start.trace_path.empty());
  EXPECT_FALSE(start.id.has_value());

  const RequestLine stop = parse_request_line("trace stop id=4");
  EXPECT_EQ(stop.kind, RequestLine::Kind::kTrace);
  EXPECT_EQ(stop.trace_action, "stop");
  ASSERT_TRUE(stop.id.has_value());
  EXPECT_EQ(*stop.id, 4u);

  const RequestLine status = parse_request_line("trace status");
  EXPECT_EQ(status.trace_action, "status");

  const RequestLine dump = parse_request_line("trace dump=/tmp/x.json id=2");
  EXPECT_EQ(dump.kind, RequestLine::Kind::kTrace);
  EXPECT_EQ(dump.trace_action, "dump");
  EXPECT_EQ(dump.trace_path, "/tmp/x.json");
  ASSERT_TRUE(dump.id.has_value());
  EXPECT_EQ(*dump.id, 2u);
}

TEST(ControlLines, TraceRejectsMalformedLines) {
  // A bare `trace` has no action; unknown actions are named errors, not
  // schedule lines in disguise.
  EXPECT_THROW((void)parse_request_line("trace"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace restart"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace start stop"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace dump="), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace dump=/a dump=/b"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace start dump=/a"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace start trailing"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("trace start id=1 id=2"),
               std::invalid_argument);
}

TEST(ControlLines, TraceRoundTripsStatsShapedReplies) {
  ResponseLine trace;
  trace.kind = ResponseLine::Kind::kTrace;
  trace.ok = true;
  trace.id = 5;
  trace.stats = {{"enabled", 1}, {"spans", 42}, {"dropped", 0}};
  const std::string line = format_response_line(trace);
  EXPECT_EQ(line, "trace id=5 enabled=1 spans=42 dropped=0");
  const ResponseLine back = parse_response_line(line);
  EXPECT_EQ(back.kind, ResponseLine::Kind::kTrace)
      << "a trace reply must not come back as stats";
  ASSERT_TRUE(back.id.has_value());
  EXPECT_EQ(*back.id, 5u);
  ASSERT_EQ(back.stats.size(), 3u);
  EXPECT_EQ(back.stats[1].first, "spans");
  EXPECT_EQ(back.stats[1].second, 42u);
  EXPECT_THROW((void)parse_response_line("trace spans=lots"),
               std::invalid_argument);
}

TEST(ControlLines, ScheduleResponsesKeepKindSchedule) {
  const ResponseLine err =
      parse_response_line("error code=queue_full window full");
  EXPECT_EQ(err.kind, ResponseLine::Kind::kSchedule);
  EXPECT_FALSE(err.ok);
}

}  // namespace
}  // namespace treesched

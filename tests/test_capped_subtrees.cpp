#include "parallel/capped_subtrees.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/simulator.hpp"
#include "parallel/memory_bounded.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

constexpr MemSize kHuge = std::numeric_limits<MemSize>::max() / 4;

TEST(CappedSubtrees, SingleNode) {
  Tree t = testing::pebble_tree({kNoNode});
  auto r = capped_subtrees_schedule(t, 4, kHuge);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_schedule(t, r->schedule, 4).ok);
}

TEST(CappedSubtrees, MinCapIsFeasibleAndTight) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(120);
    params.max_output = 8;
    params.max_exec = 4;
    params.min_work = 1.0;
    params.max_work = 5.0;
    params.depth_bias = rng.uniform01() * 2;
    Tree t = random_tree(params, rng);
    for (int p : {2, 4}) {
      const MemSize floor_cap = capped_subtrees_min_cap(t, p);
      auto r = capped_subtrees_schedule(t, p, floor_cap);
      ASSERT_TRUE(r.has_value()) << "floor must be feasible";
      ASSERT_TRUE(validate_schedule(t, r->schedule, p).ok);
      EXPECT_LE(simulate(t, r->schedule).peak_memory, floor_cap);
      // One unit below the floor must be infeasible or still within cap --
      // never exceed it silently.
      if (floor_cap > 1) {
        auto below = capped_subtrees_schedule(t, p, floor_cap - 1);
        if (below) {
          EXPECT_LE(simulate(t, below->schedule).peak_memory, floor_cap - 1);
        }
      }
    }
  }
}

TEST(CappedSubtrees, NeverExceedsCap) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(150);
    params.max_output = 9;
    params.max_exec = 3;
    params.min_work = 1.0;
    params.max_work = 4.0;
    Tree t = random_tree(params, rng);
    const MemSize floor_cap = capped_subtrees_min_cap(t, 4);
    for (double f : {1.0, 1.5, 4.0}) {
      const auto cap = (MemSize)((double)floor_cap * f);
      auto r = capped_subtrees_schedule(t, 4, cap);
      if (!r) continue;
      EXPECT_LE(simulate(t, r->schedule).peak_memory, cap);
      EXPECT_TRUE(validate_schedule(t, r->schedule, 4).ok);
    }
  }
}

TEST(CappedSubtrees, LooseCapRecoversParSubtreesParallelism) {
  // With an unbounded cap the schedule runs the same subtrees in parallel
  // as ParSubtrees (up to packing details): expect real parallelism.
  Rng rng(7);
  RandomTreeParams params;
  params.n = 300;
  params.min_work = 1.0;
  params.max_work = 5.0;
  Tree t = random_tree(params, rng);
  auto r = capped_subtrees_schedule(t, 4, kHuge);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->max_parallelism, 1);
  const double seq_time = t.total_work();
  EXPECT_LT(simulate(t, r->schedule).makespan, seq_time);
}

TEST(CappedSubtrees, TightCapSerializes) {
  Rng rng(9);
  RandomTreeParams params;
  params.n = 200;
  params.max_output = 6;
  params.min_work = 1.0;
  params.max_work = 3.0;
  Tree t = random_tree(params, rng);
  const MemSize floor_cap = capped_subtrees_min_cap(t, 4);
  auto r = capped_subtrees_schedule(t, 4, floor_cap);
  ASSERT_TRUE(r.has_value());
  // At the floor, parallelism collapses (not necessarily to 1, but far
  // below the loose-cap level).
  auto loose = capped_subtrees_schedule(t, 4, kHuge);
  ASSERT_TRUE(loose.has_value());
  EXPECT_LE(r->max_parallelism, loose->max_parallelism);
}

TEST(CappedSubtrees, MakespanWeaklyImprovesWithCap) {
  Rng rng(11);
  RandomTreeParams params;
  params.n = 250;
  params.max_output = 7;
  params.min_work = 1.0;
  params.max_work = 6.0;
  Tree t = random_tree(params, rng);
  const auto floor_cap = (double)capped_subtrees_min_cap(t, 8);
  double prev = 1e300;
  for (double f : {1.0, 1.5, 2.0, 4.0, 16.0}) {
    auto r = capped_subtrees_schedule(t, 8, (MemSize)(floor_cap * f));
    ASSERT_TRUE(r.has_value());
    const double ms = simulate(t, r->schedule).makespan;
    EXPECT_LE(ms, prev + 1e-9);
    prev = ms;
  }
}

TEST(CappedSubtrees, ComparableToBankerAndFloorsOrdered) {
  // Neither capped scheduler dominates the other in makespan (the static
  // scheme's whole-subtree placement can beat the banker's greedy
  // admissions and vice versa); what must hold: both respect the cap, and
  // the banker's feasibility floor (best-postorder peak) is never above
  // the static scheme's reservation floor. Also guard against either
  // scheme being pathologically slower than the other.
  Rng rng(13);
  double banker_total = 0, capped_total = 0;
  for (int trial = 0; trial < 15; ++trial) {
    RandomTreeParams params;
    params.n = 100 + (NodeId)rng.uniform(150);
    params.max_output = 8;
    params.max_exec = 2;
    params.min_work = 1.0;
    params.max_work = 5.0;
    Tree t = random_tree(params, rng);
    const MemSize cap =
        std::max(capped_subtrees_min_cap(t, 4), 2 * min_feasible_cap(t));
    auto stat = capped_subtrees_schedule(t, 4, cap);
    auto dyn = memory_bounded_schedule(t, 4, cap);
    ASSERT_TRUE(stat.has_value());
    ASSERT_TRUE(dyn.has_value());
    EXPECT_LE(simulate(t, stat->schedule).peak_memory, cap);
    EXPECT_LE(simulate(t, dyn->schedule).peak_memory, cap);
    banker_total += simulate(t, dyn->schedule).makespan;
    capped_total += simulate(t, stat->schedule).makespan;
  }
  EXPECT_LE(banker_total, capped_total * 2.0);
  EXPECT_LE(capped_total, banker_total * 2.0);
}

TEST(CappedSubtrees, RejectsBadP) {
  Tree t = testing::pebble_tree({kNoNode});
  EXPECT_THROW(capped_subtrees_schedule(t, 0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::example_tree;
using testing::make_tree;
using testing::pebble_tree;

TEST(Simulator, SingleTask) {
  Tree t = make_tree({kNoNode}, {5}, {3}, {2.0});
  Schedule s(1);
  auto r = simulate(t, s);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_EQ(r.peak_memory, 8u);  // n + f
  EXPECT_EQ(r.final_memory, 5u);
}

TEST(Simulator, SequentialChain) {
  // chain 2 -> 1 -> 0; pebble weights.
  Tree t = pebble_tree({kNoNode, 0, 1});
  Schedule s = sequential_schedule(t, {2, 1, 0});
  auto r = simulate(t, s);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  // Processing node 1: child file (1) + own output (1) = 2.
  EXPECT_EQ(r.peak_memory, 2u);
  EXPECT_EQ(r.final_memory, 1u);
}

TEST(Simulator, ForkSequentialVsParallelMemory) {
  Tree t = fork_tree(4);  // root + 4 leaves
  // Sequential: leaves one at a time -> peak at root: 4 inputs + 1 output.
  Schedule seq = sequential_schedule(t, {1, 2, 3, 4, 0});
  EXPECT_EQ(simulate(t, seq).peak_memory, 5u);
  // All leaves in parallel at t=0 on 4 procs: same peak here (leaves
  // allocate 4 once, root adds 1 after they finish).
  Schedule par(5);
  for (NodeId i = 1; i <= 4; ++i) {
    par.start[i] = 0.0;
    par.proc[i] = (int)i - 1;
  }
  par.start[0] = 1.0;
  par.proc[0] = 0;
  auto r = simulate(t, par);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_EQ(r.peak_memory, 5u);
}

TEST(Simulator, ParallelPeakCountsConcurrentExecFiles) {
  // Two independent leaves with big exec files under a root.
  Tree t = make_tree({kNoNode, 0, 0}, {1, 1, 1}, {0, 10, 10},
                     {1.0, 1.0, 1.0});
  // Sequential: first leaf peaks at 11; the second runs with the first's
  // output resident: 1 + 11 = 12.
  Schedule seq = sequential_schedule(t, {1, 2, 0});
  EXPECT_EQ(simulate(t, seq).peak_memory, 12u);
  // Parallel: both leaves together: 22.
  Schedule par(3);
  par.start = {1.0, 0.0, 0.0};
  par.proc = {0, 0, 1};
  EXPECT_EQ(simulate(t, par).peak_memory, 22u);
}

TEST(Simulator, ThrowsOnPrecedenceViolation) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(2);
  s.start = {0.0, 0.0};  // root together with its child
  s.proc = {0, 1};
  EXPECT_THROW(simulate(t, s), std::invalid_argument);
}

TEST(Simulator, ThrowsOnSizeMismatch) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(1);
  EXPECT_THROW(simulate(t, s), std::invalid_argument);
}

TEST(Simulator, ProfileIsRecorded) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s = sequential_schedule(t, {1, 0});
  SimulationOptions opts;
  opts.record_profile = true;
  auto r = simulate(t, s, opts);
  ASSERT_FALSE(r.profile.empty());
  MemSize maxmem = 0;
  for (const auto& ev : r.profile) maxmem = std::max(maxmem, ev.mem);
  EXPECT_EQ(maxmem, r.peak_memory);
  for (std::size_t k = 1; k < r.profile.size(); ++k) {
    EXPECT_GE(r.profile[k].time, r.profile[k - 1].time);
  }
}

TEST(Simulator, FastSequentialPathMatchesEventSimulator) {
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(60);
    params.max_output = 9;
    params.max_exec = 5;
    Tree t = random_tree(params, rng);
    auto order = postorder(t).order;
    Schedule s = sequential_schedule(t, order);
    EXPECT_EQ(simulate(t, s).peak_memory, sequential_peak_memory(t, order));
  }
}

TEST(Simulator, PostorderPeakMatchesReportedPeak) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(80);
    params.max_output = 7;
    params.max_exec = 4;
    Tree t = random_tree(params, rng);
    auto po = postorder(t);
    EXPECT_EQ(sequential_peak_memory(t, po.order), po.peak);
  }
}

TEST(Simulator, FinalMemoryIsRootOutput) {
  Rng rng(5);
  RandomTreeParams params;
  params.n = 30;
  params.max_output = 5;
  Tree t = random_tree(params, rng);
  Schedule s = sequential_schedule(t, postorder(t).order);
  EXPECT_EQ(simulate(t, s).final_memory, t.output_size(t.root()));
}

TEST(Simulator, TaskStartingExactlyAtChildFinishIsAccepted) {
  Tree t = pebble_tree({kNoNode, 0});
  Schedule s(2);
  s.start = {1.0, 0.0};
  s.proc = {0, 0};
  EXPECT_NO_THROW(simulate(t, s));
}

}  // namespace
}  // namespace treesched

#include "sequential/bruteforce.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "trees/generators.hpp"

namespace treesched {
namespace {

using testing::make_tree;
using testing::pebble_tree;

TEST(BruteForce, SequentialChain) {
  Tree t = pebble_tree({kNoNode, 0, 1});
  EXPECT_EQ(bruteforce_min_sequential_memory(t), 2u);
}

TEST(BruteForce, SequentialFork) {
  // Fork with k leaves: root processing needs k inputs + 1 output.
  for (int k : {1, 2, 5}) {
    Tree t = fork_tree(k);
    EXPECT_EQ(bruteforce_min_sequential_memory(t), (MemSize)k + 1);
    EXPECT_EQ(bruteforce_min_postorder_memory(t), (MemSize)k + 1);
  }
}

TEST(BruteForce, PostorderNeverBelowGeneral) {
  Rng rng(211);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(9);
    params.max_output = 6;
    params.max_exec = 4;
    Tree t = random_tree(params, rng);
    EXPECT_LE(bruteforce_min_sequential_memory(t),
              bruteforce_min_postorder_memory(t));
  }
}

TEST(BruteForce, RejectsLargeTrees) {
  Rng rng(1);
  Tree t = random_pebble_tree(30, rng);
  EXPECT_THROW(bruteforce_min_sequential_memory(t), std::invalid_argument);
}

TEST(BruteForceParallel, ChainNeedsLengthSteps) {
  Tree t = pebble_tree({kNoNode, 0, 1});
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 4, 1000), 3.0);
}

TEST(BruteForceParallel, ForkWithEnoughProcessors) {
  Tree t = fork_tree(4);
  // 4 procs: all leaves, then the root: 2 steps.
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 4, 1000), 2.0);
  // 2 procs: ceil(4/2) + 1 = 3 steps.
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 2, 1000), 3.0);
}

TEST(BruteForceParallel, MemoryBoundForcesSequential) {
  // Fork with 3 leaves: the root always needs 3 inputs + 1 output = 4, so
  // no schedule fits below cap 4; at cap 4 even the fully parallel
  // schedule fits (3 leaves at once use 3).
  Tree t = fork_tree(3);
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 3, 4), 2.0);
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 3, 3), -1.0);  // infeasible
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 1, 4), 4.0);   // one proc
  EXPECT_DOUBLE_EQ(bruteforce_min_makespan_unit(t, 3, 1000), 2.0);
}

TEST(BruteForceParallel, RequiresUnitWorks) {
  Tree t = make_tree({kNoNode, 0}, {1, 1}, {0, 0}, {1.0, 2.0});
  EXPECT_THROW(bruteforce_min_makespan_unit(t, 2, 10), std::invalid_argument);
}

TEST(BruteForceParallel, ParetoFrontIsMonotone) {
  Rng rng(307);
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = random_pebble_tree(2 + (NodeId)rng.uniform(8), rng);
    auto front = bruteforce_pareto_unit(t, 2);
    ASSERT_FALSE(front.empty());
    for (std::size_t k = 1; k < front.size(); ++k) {
      EXPECT_GT(front[k].makespan, front[k - 1].makespan);
      EXPECT_LT(front[k].memory, front[k - 1].memory);
    }
  }
}

TEST(BruteForceParallel, MoreProcessorsNeverHurt) {
  Rng rng(311);
  for (int trial = 0; trial < 15; ++trial) {
    Tree t = random_pebble_tree(2 + (NodeId)rng.uniform(8), rng);
    const double m2 = bruteforce_min_makespan_unit(t, 2, 1000000);
    const double m4 = bruteforce_min_makespan_unit(t, 4, 1000000);
    EXPECT_LE(m4, m2);
  }
}

}  // namespace
}  // namespace treesched

// The observability layer (src/obs/): histogram bucket math (inclusive
// upper bounds, overflow, shard merge), exact concurrent counters (the
// TSan job runs this file), registry get-or-create identity and
// snapshot ordering, the stats-verb projection, golden Prometheus text
// exposition, Chrome trace JSON, and — the acceptance criterion worth
// pinning — per-stage histogram means summing to the end-to-end mean
// through a live SchedulingService.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>

#include "obs/event_log.hpp"
#include "obs/prometheus.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::RegistrySnapshot;
using obs::Stage;
using obs::StageStamps;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Histogram bucket math.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BoundsAreInclusiveUpperBounds) {
  Histogram h({10, 20, 50});
  h.record(0);    // bucket 0 (<= 10)
  h.record(10);   // bucket 0: the bound itself lands below the fence
  h.record(11);   // bucket 1
  h.record(20);   // bucket 1
  h.record(50);   // bucket 2
  h.record(51);   // overflow
  h.record(1000); // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u) << "bounds.size() + 1 (overflow)";
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.count, 7u) << "count derives from the buckets";
  EXPECT_EQ(s.sum, 0u + 10 + 11 + 20 + 50 + 51 + 1000)
      << "sums are exact integers, not bucket midpoints";
}

TEST(ObsHistogram, QuantilesInterpolateAndOverflowClamps) {
  Histogram h({100, 200, 400});
  for (int i = 0; i < 100; ++i) h.record(150);  // all in (100, 200]
  const HistogramSnapshot s = h.snapshot();
  // The standard Prometheus estimate: linear inside the winning bucket.
  EXPECT_NEAR(s.quantile(0.5), 150.0, 1.0);
  EXPECT_NEAR(s.quantile(1.0), 200.0, 1e-9);

  Histogram over({100});
  over.record(5000);
  over.record(9000);
  EXPECT_EQ(over.snapshot().quantile(0.99), 100.0)
      << "overflow quantiles clamp to the largest finite bound";

  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
  EXPECT_EQ(HistogramSnapshot{}.mean(), 0.0);
}

TEST(ObsHistogram, ShardsMergeExactlyUnderConcurrentRecorders) {
  // More threads than shards, all hammering one histogram: the merged
  // snapshot must not lose a single record or nanosecond of sum.
  Histogram h(Histogram::latency_bounds_ns());
  constexpr int kThreads = 12;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((static_cast<std::uint64_t>(t) + 1) * 1000 + i % 7);
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += (static_cast<std::uint64_t>(t) + 1) * 1000 + i % 7;
    }
  }
  EXPECT_EQ(s.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count) << "count must equal the bucket total";
}

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Counter c;
  Gauge g;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1);
        g.add(-1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(g.value(), 0);
}

// ---------------------------------------------------------------------------
// Registry identity, ordering, and the stats-verb projection.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateIsKeyedByNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hits_total", "", "help");
  Counter& b = reg.counter("hits_total", "", "different help ignored");
  EXPECT_EQ(&a, &b) << "same (name, labels) must return the same node";
  Counter& c = reg.counter("hits_total", "class=\"bulk\"", "help");
  EXPECT_NE(&a, &c) << "labels are part of the identity";
  Histogram& h1 = reg.histogram("lat", "", "help", {1, 2}, 1.0);
  Histogram& h2 = reg.histogram("lat", "", "help", {1, 2}, 1.0);
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, SnapshotRunsCollectorsFirstThenOwnedInOrder) {
  MetricsRegistry reg;
  reg.counter("owned_a_total", "", "a").inc(1);
  reg.register_collector([](RegistrySnapshot& out) {
    out.samples.push_back(obs::MetricSample{"bridged_total", "", "b",
                                            obs::MetricKind::kCounter, 7.0,
                                            "bridged"});
  });
  reg.counter("owned_b_total", "", "b").inc(2);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "bridged_total")
      << "collectors run first so legacy keys lead the stats line";
  EXPECT_EQ(snap.samples[1].name, "owned_a_total");
  EXPECT_EQ(snap.samples[2].name, "owned_b_total");
  EXPECT_EQ(snap.samples[1].value, 1.0);
  EXPECT_EQ(snap.samples[2].value, 2.0);
}

TEST(ObsRegistry, StatsPairsProjectKeyedEntriesOnly) {
  MetricsRegistry reg;
  reg.counter("keyed_total", "", "h", "keyed").inc(3);
  reg.counter("prom_only_total", "", "h").inc(9);
  reg.gauge("depth", "", "h", "depth").set(-4);
  Histogram& h =
      reg.histogram("lat_seconds", "", "h",
                    Histogram::latency_bounds_ns(), 1e-9, "lat");
  h.record(1500);  // 1.5us
  h.record(2500);
  const auto pairs = reg.snapshot().stats_pairs();
  auto find = [&](const std::string& key) -> const std::uint64_t* {
    for (const auto& [k, v] : pairs) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("keyed"), nullptr);
  EXPECT_EQ(*find("keyed"), 3u);
  EXPECT_EQ(find("prom_only_total"), nullptr)
      << "empty stats_key means Prometheus-only";
  ASSERT_NE(find("depth"), nullptr);
  EXPECT_EQ(*find("depth"), 0u) << "gauges clamp at zero on the stats line";
  ASSERT_NE(find("lat_count"), nullptr);
  EXPECT_EQ(*find("lat_count"), 2u);
  ASSERT_NE(find("lat_p50_us"), nullptr)
      << "scale 1e-9 histograms project quantiles in microseconds";
  EXPECT_LE(*find("lat_p50_us"), 10u);
  ASSERT_NE(find("lat_p99_us"), nullptr);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (golden).
// ---------------------------------------------------------------------------

TEST(ObsPrometheus, GoldenExposition) {
  MetricsRegistry reg;
  reg.counter("treesched_requests_total", "", "Requests seen").inc(5);
  reg.gauge("treesched_conns", "", "Open connections").set(2);
  Counter& hit = reg.counter("treesched_cache_total", "kind=\"hit\"", "Cache");
  Counter& miss =
      reg.counter("treesched_cache_total", "kind=\"miss\"", "Cache");
  hit.inc(3);
  miss.inc(1);
  Histogram& h = reg.histogram("treesched_lat_seconds", "", "Latency",
                               {1000000000ull, 2000000000ull}, 1e-9);
  h.record(500000000);   // 0.5s -> bucket le=1
  h.record(1500000000);  // 1.5s -> bucket le=2
  h.record(9000000000);  // 9s -> overflow
  const std::string text = obs::render_prometheus(reg.snapshot());
  const std::string expected =
      "# HELP treesched_requests_total Requests seen\n"
      "# TYPE treesched_requests_total counter\n"
      "treesched_requests_total 5\n"
      "# HELP treesched_conns Open connections\n"
      "# TYPE treesched_conns gauge\n"
      "treesched_conns 2\n"
      "# HELP treesched_cache_total Cache\n"
      "# TYPE treesched_cache_total counter\n"
      "treesched_cache_total{kind=\"hit\"} 3\n"
      "treesched_cache_total{kind=\"miss\"} 1\n"
      "# HELP treesched_lat_seconds Latency\n"
      "# TYPE treesched_lat_seconds histogram\n"
      "treesched_lat_seconds_bucket{le=\"1\"} 1\n"
      "treesched_lat_seconds_bucket{le=\"2\"} 2\n"
      "treesched_lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "treesched_lat_seconds_sum 11\n"
      "treesched_lat_seconds_count 3\n"
      "# HELP treesched_lat_seconds_window Latency (sliding last-minute "
      "window)\n"
      "# TYPE treesched_lat_seconds_window gauge\n"
      "treesched_lat_seconds_window{quantile=\"0.5\"} 1.5\n"
      "treesched_lat_seconds_window{quantile=\"0.9\"} 2\n"
      "treesched_lat_seconds_window{quantile=\"0.99\"} 2\n"
      "treesched_lat_seconds_window_count 3\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsPrometheus, LabeledHistogramSeriesShareOneHeader) {
  MetricsRegistry reg;
  reg.histogram("s_seconds", "class=\"a\"", "h", {10}, 1.0).record(3);
  reg.histogram("s_seconds", "class=\"b\"", "h", {10}, 1.0).record(30);
  const std::string text = obs::render_prometheus(reg.snapshot());
  EXPECT_EQ(text.find("# TYPE s_seconds histogram"),
            text.rfind("# TYPE s_seconds histogram"))
      << "one TYPE line per metric name, not per series";
  EXPECT_NE(text.find("s_seconds_bucket{class=\"a\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("s_seconds_bucket{class=\"b\",le=\"10\"} 0"),
            std::string::npos)
      << "an overflow-only series still renders its finite buckets";
  EXPECT_NE(text.find("s_seconds_bucket{class=\"b\",le=\"+Inf\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Stage stamps.
// ---------------------------------------------------------------------------

TEST(ObsStages, BetweenHandlesMissingAndBackwardStamps) {
  StageStamps st;
  EXPECT_FALSE(st.has(Stage::kAccept));
  EXPECT_EQ(st.between(Stage::kAccept, Stage::kFlush), 0u);
  st.stamp(Stage::kAccept, 100);
  st.stamp(Stage::kFlush, 350);
  EXPECT_TRUE(st.has(Stage::kAccept));
  EXPECT_EQ(st.between(Stage::kAccept, Stage::kFlush), 250u);
  EXPECT_EQ(st.between(Stage::kFlush, Stage::kAccept), 0u)
      << "never negative, even on clock-order violations";
  EXPECT_EQ(st.between(Stage::kAccept, Stage::kDequeue), 0u)
      << "missing far stamp";
}

// ---------------------------------------------------------------------------
// Tracer: ring recording, drops, Chrome trace JSON.
// ---------------------------------------------------------------------------

TEST(ObsTrace, RecordsOnlyWhileEnabledAndCountsDrops) {
  Tracer tracer;
  tracer.record("ignored", 0, 10);
  EXPECT_EQ(tracer.recorded(), 0u) << "disabled tracer records nothing";
  tracer.enable();
  for (std::uint64_t i = 0; i < Tracer::kRingSpans + 5; ++i) {
    tracer.record("span", i * 10, 5, i);
  }
  tracer.disable();
  tracer.record("late", 0, 1);
  EXPECT_EQ(tracer.recorded(), Tracer::kRingSpans + 5);
  EXPECT_EQ(tracer.dropped(), 5u) << "overwritten oldest-first";
  const std::vector<obs::SpanView> spans = tracer.snapshot();
  EXPECT_EQ(spans.size(), Tracer::kRingSpans);
  for (const obs::SpanView& s : spans) {
    EXPECT_STREQ(s.name, "span");
    EXPECT_GE(s.arg, 5u) << "the five oldest spans were overwritten";
  }
}

TEST(ObsTrace, InternedNamesAreStableAndDeduplicated) {
  Tracer tracer;
  std::string dynamic = "ParSubtrees";
  const char* a = tracer.intern_name(dynamic);
  dynamic[0] = 'X';  // the intern must have copied
  const char* b = tracer.intern_name("ParSubtrees");
  EXPECT_STREQ(a, "ParSubtrees");
  EXPECT_EQ(a, b) << "same name interns to the same pointer";
}

TEST(ObsTrace, ChromeTraceJsonCarriesEverySpan) {
  Tracer tracer;
  tracer.enable();
  tracer.record("compute", 2000, 1500, 42);
  tracer.record("queue_wait", 1000, 900, 42);
  tracer.disable();
  std::ostringstream os;
  const std::size_t written = tracer.write_chrome_trace(os);
  EXPECT_EQ(written, 2u) << "returns the span count (the dump reply)";
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos)
      << "complete events, the Perfetto-friendly phase";
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy without a JSON
  // parser in the test suite.
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsTrace, ScopedSpanRecordsItsLifetime) {
  Tracer tracer;
  tracer.enable();
  { obs::ScopedSpan span(tracer, "scoped", 7); }
  tracer.disable();
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "scoped");
  EXPECT_EQ(spans[0].arg, 7u);
}

// ---------------------------------------------------------------------------
// Sliding windows: timestamp-injected records, so the minute-long decay
// runs in microseconds of test time.
// ---------------------------------------------------------------------------

TEST(ObsWindow, HistogramWindowDecaysButLifetimeIsMonotonic) {
  using obs::kWindowPeriodNs;
  using obs::kWindowSlots;
  Histogram h({10, 20, 50});
  const std::uint64_t base = 100 * kWindowPeriodNs;
  h.record_at(15, base);
  h.record_at(40, base + 6 * kWindowPeriodNs);

  HistogramSnapshot w = h.windowed_snapshot_at(base + 6 * kWindowPeriodNs);
  EXPECT_EQ(w.count, 2u) << "both records inside the first minute";
  EXPECT_EQ(w.sum, 55u);

  // kWindowSlots sub-windows cover the last minute: reading 12 epochs
  // after the FIRST record expires it while the second survives.
  w = h.windowed_snapshot_at(base + kWindowSlots * kWindowPeriodNs);
  EXPECT_EQ(w.count, 1u) << "the older record aged out of the window";
  EXPECT_EQ(w.sum, 40u);

  w = h.windowed_snapshot_at(base + 20 * kWindowSlots * kWindowPeriodNs);
  EXPECT_EQ(w.count, 0u) << "a long-idle window reads empty";
  EXPECT_EQ(w.sum, 0u);

  const HistogramSnapshot life = h.snapshot();
  EXPECT_EQ(life.count, 2u) << "lifetime view never decays";
  EXPECT_EQ(life.sum, 55u);
}

TEST(ObsWindow, SlidingCounterDecays) {
  using obs::kWindowPeriodNs;
  using obs::kWindowSlots;
  obs::SlidingCounter c;
  const std::uint64_t base = 40 * kWindowPeriodNs;
  c.add_at(3, base);
  c.add_at(4, base + 2 * kWindowPeriodNs);
  EXPECT_EQ(c.windowed_at(base + 2 * kWindowPeriodNs), 7u);
  EXPECT_EQ(c.windowed_at(base + kWindowSlots * kWindowPeriodNs), 4u)
      << "only the newer burst is still inside the minute";
  EXPECT_EQ(c.windowed_at(base + 3 * kWindowSlots * kWindowPeriodNs), 0u);
  // Re-use after full decay: slots are reclaimed, not poisoned.
  const std::uint64_t later = base + 5 * kWindowSlots * kWindowPeriodNs;
  c.add_at(9, later);
  EXPECT_EQ(c.windowed_at(later), 9u);
}

// ---------------------------------------------------------------------------
// Structured event log: JSON-lines shape, trace-id presence, escaping,
// truncation, and open-failure behavior — all against a local instance
// (EventLog::global() belongs to the binaries, not the tests).
// ---------------------------------------------------------------------------

namespace {
std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}
}  // namespace

TEST(ObsEventLog, WritesOneJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "obs_event_log_test.jsonl";
  std::remove(path.c_str());
  obs::EventLog log;
  std::string error;
  ASSERT_TRUE(log.open(path, error)) << error;
  ASSERT_TRUE(log.enabled());
  log.emit("node_down", 42,
           {obs::EventLog::Field::u64("node", 3),
            obs::EventLog::Field::str("reason", "backend \"A\" hung\nup")});
  log.emit("drain_begin", 0, {obs::EventLog::Field::u64("conns", 2)});

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].front(), '{');
  EXPECT_EQ(lines[0].back(), '}');
  EXPECT_NE(lines[0].find("\"event\":\"node_down\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trace_id\":42"), std::string::npos)
      << "a traced event carries its trace id";
  EXPECT_NE(lines[0].find("\"node\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\\\"A\\\""), std::string::npos)
      << "quotes inside string fields are escaped";
  EXPECT_EQ(lines[0].find('\n'), std::string::npos)
      << "control bytes never split a line";
  EXPECT_NE(lines[0].find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"unix_ms\":"), std::string::npos);
  EXPECT_EQ(lines[1].find("\"trace_id\""), std::string::npos)
      << "trace_id 0 means untraced: the field is omitted";
  EXPECT_NE(lines[1].find("\"event\":\"drain_begin\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsEventLog, TruncatesOverlongLinesAtAFieldBoundary) {
  const std::string path = ::testing::TempDir() + "obs_event_log_trunc.jsonl";
  std::remove(path.c_str());
  obs::EventLog log;
  std::string error;
  ASSERT_TRUE(log.open(path, error)) << error;
  const std::string huge(4000, 'x');
  log.emit("slow_request", 7,
           {obs::EventLog::Field::u64("ms", 123),
            obs::EventLog::Field::str("detail", huge)});
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_LE(lines[0].size(), 1024u) << "one stack buffer, one write(2)";
  EXPECT_NE(lines[0].find("\"truncated\":1"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '}') << "truncation keeps the line valid JSON";
  std::remove(path.c_str());
}

TEST(ObsEventLog, OpenFailureDisablesTheLog) {
  obs::EventLog log;
  std::string error;
  EXPECT_FALSE(log.open("/nonexistent_dir_treesched/x.jsonl", error));
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(error.empty());
  log.emit("ignored", 0, {});  // must be a harmless no-op while disabled
}

// ---------------------------------------------------------------------------
// Span-pair wire codec: the `trace pull` format the cluster router's
// merged dump rides on.
// ---------------------------------------------------------------------------

TEST(ObsSpanPairs, EncodeDecodeRoundTrip) {
  std::vector<obs::SpanView> spans;
  spans.push_back({"net/parse", 1000, 50, 42, 0});
  spans.push_back({"compute:ParSubtrees", 1100, 900, 42, 3});
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  obs::encode_span_pairs(spans, obs::kTracePullMaxSpans, pairs);
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(pairs[0].first, "spans");
  EXPECT_EQ(pairs[0].second, 2u);

  std::vector<obs::MergedSpan> out;
  ASSERT_TRUE(obs::decode_span_pairs(pairs, out));
  ASSERT_EQ(out.size(), 2u);
  // encode orders by start_ns; both orders below match that.
  EXPECT_EQ(out[0].name, "net/parse");
  EXPECT_EQ(out[0].start_ns, 1000u);
  EXPECT_EQ(out[0].dur_ns, 50u);
  EXPECT_EQ(out[0].arg, 42u);
  EXPECT_EQ(out[0].tid, 0u);
  EXPECT_EQ(out[1].name, "compute:ParSubtrees");
  EXPECT_EQ(out[1].tid, 3u);
}

TEST(ObsSpanPairs, TruncationKeepsTheLatestSpans) {
  std::vector<obs::SpanView> spans;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    spans.push_back({"s", i * 100, 10, i, 0});
  }
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  obs::encode_span_pairs(spans, 2, pairs);
  bool saw_truncated = false;
  for (const auto& [k, v] : pairs) {
    if (k == "truncated") {
      saw_truncated = true;
      EXPECT_EQ(v, 3u) << "reports how many spans were dropped";
    }
  }
  EXPECT_TRUE(saw_truncated);
  std::vector<obs::MergedSpan> out;
  ASSERT_TRUE(obs::decode_span_pairs(pairs, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_GE(out[0].start_ns, 400u) << "only the latest spans survive";
  EXPECT_GE(out[1].start_ns, 400u);
}

TEST(ObsSpanPairs, DecodeRejectsStructuralBreakageButIgnoresUnknownKeys) {
  std::vector<obs::MergedSpan> out;
  // t0 without its n0: a broken span group.
  EXPECT_FALSE(obs::decode_span_pairs({{"spans", 1}, {"t0", 5}}, out));
  // Index mismatch: span 0 announced, span 1 encoded.
  EXPECT_FALSE(obs::decode_span_pairs(
      {{"spans", 1}, {"n1:x", 0}, {"t1", 1}, {"d1", 2}, {"a1", 3}}, out));
  // Unknown trailing keys (a newer backend's counters) are fine.
  std::vector<obs::SpanView> spans;
  spans.push_back({"ok", 10, 5, 0, 0});
  std::vector<std::pair<std::string, std::uint64_t>> pairs;
  obs::encode_span_pairs(spans, 16, pairs);
  pairs.emplace_back("future_counter", 99);
  out.clear();
  EXPECT_TRUE(obs::decode_span_pairs(pairs, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, "ok");
}

// ---------------------------------------------------------------------------
// Merged Chrome trace: one pid and one process_name metadata event per
// process, timestamps rebased to the earliest span cluster-wide.
// ---------------------------------------------------------------------------

TEST(ObsMergedTrace, OnePidAndProcessNamePerProcess) {
  std::vector<obs::ProcessSpans> procs;
  procs.push_back(
      {"router", 1, {{"router/upstream", 5000, 900, 42, 0}}});
  procs.push_back(
      {"node 127.0.0.1:4001", 2, {{"compute:ParSubtrees", 5200, 400, 42, 3}}});
  std::ostringstream os;
  const std::size_t written = obs::write_merged_chrome_trace(os, procs);
  EXPECT_EQ(written, 2u) << "metadata events don't count as spans";
  const std::string json = os.str();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 127.0.0.1:4001\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"router/upstream\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\":42"), std::string::npos)
      << "the shared trace id correlates spans across pids";
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos)
      << "timestamps rebase to the earliest span across ALL processes";
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// Steady-state stage decomposition through a live service: the sum of
// per-stage histogram means must reconstruct the end-to-end mean. The
// stamps share one clock and the sums are exact integers, so the match
// is by construction — the 10% window only absorbs requests still in
// flight at snapshot time (there are none: every ticket is waited).
// ---------------------------------------------------------------------------

TEST(ObsService, StageMeansSumToEndToEndMean) {
  SchedulingService service;
  Rng rng(7);
  RandomTreeParams params;
  params.n = 80;
  params.max_output = 40;
  params.max_exec = 15;
  params.min_work = 1.0;
  params.max_work = 30.0;
  const TreeHandle handle = service.intern(random_tree(params, rng));

  const Priority classes[] = {Priority::kInteractive, Priority::kBatch,
                              Priority::kBulk};
  std::vector<Ticket> tickets;
  for (int i = 0; i < 24; ++i) {
    ScheduleRequest req;
    req.tree = handle;
    req.algo = i % 2 == 0 ? "ParSubtrees" : "ParDeepestFirst";
    req.p = 4;
    req.priority = classes[i % 3];
    req.stamps.stamp(Stage::kAccept);
    req.stamps.stamp(Stage::kParse);
    tickets.push_back(service.submit(std::move(req)));
  }
  for (Ticket& t : tickets) {
    ASSERT_TRUE(t.wait().ok());
  }

  const RegistrySnapshot snap = service.registry().snapshot();
  auto mean_of = [&](const std::string& stats_key) -> double {
    for (const obs::HistogramSample& h : snap.histograms) {
      if (h.stats_key == stats_key) return h.snap.mean();
    }
    ADD_FAILURE() << "no histogram with stats_key " << stats_key;
    return 0.0;
  };
  const double queue_wait = mean_of("stage_queue_wait");
  const double dispatch = mean_of("stage_dispatch");
  const double compute = mean_of("stage_compute");
  const double e2e = mean_of("e2e");
  ASSERT_GT(e2e, 0.0);
  const double stage_sum = queue_wait + dispatch + compute;
  EXPECT_NEAR(stage_sum, e2e, 0.10 * e2e)
      << "queue_wait=" << queue_wait << " dispatch=" << dispatch
      << " compute=" << compute << " vs e2e=" << e2e;
}

}  // namespace
}  // namespace treesched

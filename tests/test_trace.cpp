#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "campaign/runner.hpp"
#include "parallel/par_deepest_first.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

TEST(ScheduleStats, SequentialUtilization) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s = sequential_schedule(t, {1, 2, 0});
  auto st = schedule_stats(t, s, 2);
  EXPECT_DOUBLE_EQ(st.makespan, 3.0);
  EXPECT_EQ(st.processors_used, 1);
  EXPECT_DOUBLE_EQ(st.per_proc[0].utilization, 1.0);
  EXPECT_EQ(st.per_proc[1].tasks, 0);
  EXPECT_DOUBLE_EQ(st.total_work, 3.0);
}

TEST(ScheduleStats, ParallelWorkConservation) {
  Rng rng(3);
  RandomTreeParams params;
  params.n = 120;
  params.min_work = 1.0;
  params.max_work = 5.0;
  Tree t = random_tree(params, rng);
  const int p = 4;
  Schedule s = par_deepest_first(t, p);
  auto st = schedule_stats(t, s, p);
  double busy = 0;
  int tasks = 0;
  for (const auto& ps : st.per_proc) {
    busy += ps.busy;
    tasks += ps.tasks;
    EXPECT_LE(ps.utilization, 1.0 + 1e-9);
  }
  EXPECT_DOUBLE_EQ(busy, t.total_work());
  EXPECT_EQ(tasks, t.size());
  EXPECT_GT(st.avg_utilization, 0.0);
}

TEST(AsciiGantt, DrawsEveryProcessorRow) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  Schedule s(3);
  s.start = {1.0, 0.0, 0.0};
  s.proc = {0, 0, 1};
  std::ostringstream os;
  ascii_gantt(os, t, s, 2, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("P0 |"), std::string::npos);
  EXPECT_NE(out.find("P1 |"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(AsciiGantt, EmptyScheduleMessage) {
  Tree t;
  Schedule s(0);
  std::ostringstream os;
  ascii_gantt(os, t, s, 1);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(MemoryProfileCsv, MatchesSimulatorPeak) {
  Rng rng(5);
  Tree t = random_pebble_tree(50, rng);
  Schedule s = par_deepest_first(t, 4);
  std::ostringstream os;
  write_memory_profile_csv(os, t, s);
  // Parse back and find the max.
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "time,memory");
  MemSize maxmem = 0;
  while (std::getline(is, line)) {
    const auto comma = line.find(',');
    maxmem = std::max(maxmem, (MemSize)std::stoull(line.substr(comma + 1)));
  }
  EXPECT_EQ(maxmem, simulate(t, s).peak_memory);
}

TEST(ScheduleCsv, RoundTrip) {
  Rng rng(7);
  RandomTreeParams params;
  params.n = 60;
  params.min_work = 0.5;
  params.max_work = 3.0;
  Tree t = random_tree(params, rng);
  Schedule s = par_deepest_first(t, 3);
  std::ostringstream os;
  write_schedule_csv(os, t, s);
  std::istringstream is(os.str());
  Schedule back = read_schedule_csv(is, t);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.start[i], s.start[i]);
    EXPECT_EQ(back.proc[i], s.proc[i]);
  }
}

TEST(ScheduleCsv, RejectsMissingTask) {
  Tree t = pebble_tree({kNoNode, 0});
  std::istringstream is("task,proc,start,finish,work,out,exec\n0,0,0,1,1,1,0\n");
  EXPECT_THROW(read_schedule_csv(is, t), std::runtime_error);
}

TEST(ScheduleCsv, RejectsBadHeader) {
  Tree t = pebble_tree({kNoNode});
  std::istringstream is("nope\n");
  EXPECT_THROW(read_schedule_csv(is, t), std::runtime_error);
}

TEST(ScheduleCsv, RejectsOutOfRangeTask) {
  Tree t = pebble_tree({kNoNode});
  std::istringstream is("task,proc,start,finish,work,out,exec\n5,0,0,1,1,1,0\n");
  EXPECT_THROW(read_schedule_csv(is, t), std::runtime_error);
}

}  // namespace
}  // namespace treesched

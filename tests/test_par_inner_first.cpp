#include "parallel/par_inner_first.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

TEST(ParInnerFirst, OneProcessorReproducesReferencePostorder) {
  // With p = 1 the rules yield exactly the reference postorder, hence the
  // optimal sequential memory (paper §5.2: "when applied using a single
  // processor, they give rise to a postorder traversal").
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(100);
    params.max_output = 6;
    params.max_exec = 3;
    params.depth_bias = rng.uniform01() * 2;
    Tree t = random_tree(params, rng);
    auto po = postorder(t);
    Schedule s = par_inner_first(t, 1);
    ASSERT_TRUE(validate_schedule(t, s, 1).ok);
    EXPECT_EQ(simulate(t, s).peak_memory, po.peak);
    EXPECT_EQ(s.by_start_time(), po.order);
  }
}

TEST(ParInnerFirst, ValidSchedulesAcrossProcessorCounts) {
  Rng rng(7);
  Tree t = random_pebble_tree(200, rng, 1.0);
  for (int p : {1, 2, 4, 8, 32}) {
    Schedule s = par_inner_first(t, p);
    EXPECT_TRUE(validate_schedule(t, s, p).ok);
  }
}

TEST(ParInnerFirst, PrefersReadyInnerNodeOverLeaves) {
  // Spine with side leaves: after the deepest leaf completes, the ready
  // inner node must start before other leaves.
  //      0
  //     / \
  //    1   2(leaf)
  //    |
  //    3(leaf)
  Tree t = pebble_tree({kNoNode, 0, 0, 1});
  Schedule s = par_inner_first(t, 1);
  auto order = s.by_start_time();
  // leaf 3 first (reference postorder starts in subtree of 1), then inner 1
  // must preempt leaf 2 in priority.
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(ParInnerFirst, AdversaryTreeMemoryGrowsWithK) {
  // Paper Figure 4: memory ratio to sequential optimum is unbounded in k.
  const int p = 4;
  MemSize prev = 0;
  for (int k : {3, 6, 12}) {
    Tree t = innerfirst_adversary_tree(k, p);
    const MemSize seq = postorder(t).peak;
    EXPECT_LE(seq, (MemSize)(p + 1));
    Schedule s = par_inner_first(t, p);
    ASSERT_TRUE(validate_schedule(t, s, p).ok);
    const MemSize mem = simulate(t, s).peak_memory;
    EXPECT_GT(mem, prev);
    prev = mem;
  }
  // At k = 12 the ratio is already large.
  Tree t = innerfirst_adversary_tree(12, p);
  const double ratio =
      (double)simulate(t, par_inner_first(t, p)).peak_memory /
      (double)postorder(t).peak;
  EXPECT_GT(ratio, 4.0);
}

TEST(ParInnerFirst, CustomReferenceOrderIsHonored) {
  Rng rng(9);
  Tree t = random_pebble_tree(60, rng);
  auto natural = postorder(t, PostorderPolicy::kNatural).order;
  Schedule s = par_inner_first(t, 1, natural);
  EXPECT_EQ(s.by_start_time(), natural);
}

TEST(ParInnerFirst, DeterministicAcrossRuns) {
  Rng rng(13);
  Tree t = random_pebble_tree(150, rng, 2.0);
  Schedule a = par_inner_first(t, 8);
  Schedule b = par_inner_first(t, 8);
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.proc, b.proc);
}

}  // namespace
}  // namespace treesched

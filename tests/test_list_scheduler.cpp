#include "parallel/list_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "sequential/bruteforce.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

std::vector<PriorityKey> fifo_keys(const Tree& tree) {
  std::vector<PriorityKey> keys(static_cast<std::size_t>(tree.size()));
  for (NodeId i = 0; i < tree.size(); ++i) {
    keys[i].k1 = static_cast<double>(i);
  }
  return keys;
}

TEST(ListScheduler, SingleProcessorIsSequential) {
  Rng rng(1);
  Tree t = random_pebble_tree(40, rng);
  Schedule s = list_schedule(t, 1, fifo_keys(t));
  EXPECT_TRUE(validate_schedule(t, s, 1).ok);
  EXPECT_DOUBLE_EQ(simulate(t, s).makespan, t.total_work());
}

TEST(ListScheduler, NeverIdlesWhileReady) {
  // Graham property on a fork: with p procs and p*k leaves, the parallel
  // phase takes exactly k steps.
  Tree t = fork_tree(12);
  Schedule s = list_schedule(t, 4, fifo_keys(t));
  EXPECT_TRUE(validate_schedule(t, s, 4).ok);
  EXPECT_DOUBLE_EQ(simulate(t, s).makespan, 4.0);  // 12/4 + 1
}

TEST(ListScheduler, RespectsPriorities) {
  // Two leaves; priority picks node 2 first on one processor.
  Tree t = pebble_tree({kNoNode, 0, 0});
  std::vector<PriorityKey> keys(3);
  keys[1].k1 = 5.0;
  keys[2].k1 = 1.0;
  Schedule s = list_schedule(t, 1, keys);
  EXPECT_LT(s.start[2], s.start[1]);
}

TEST(ListScheduler, GrahamBoundHolds) {
  // Any list schedule satisfies Cmax <= W/p + (1 - 1/p) * CP.
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(150);
    params.min_work = 1.0;
    params.max_work = 9.0;
    params.depth_bias = rng.uniform01() * 3;
    Tree t = random_tree(params, rng);
    for (int p : {2, 4, 7}) {
      Schedule s = list_schedule(t, p, fifo_keys(t));
      ASSERT_TRUE(validate_schedule(t, s, p).ok);
      const double cmax = simulate(t, s).makespan;
      const double bound = t.total_work() / p +
                           (1.0 - 1.0 / p) * t.critical_path();
      EXPECT_LE(cmax, bound + 1e-6);
    }
  }
}

TEST(ListScheduler, TwoApproxAgainstBruteForceOptimum) {
  // On tiny pebble trees, compare against the true parallel optimum:
  // list schedules must be within (2 - 1/p) of it.
  Rng rng(79);
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = random_pebble_tree(2 + (NodeId)rng.uniform(9), rng);
    for (int p : {2, 3}) {
      const double opt = bruteforce_min_makespan_unit(t, p, 1u << 30);
      using Maker = Schedule (*)(const Tree&, int);
      for (Maker maker : {static_cast<Maker>(par_inner_first),
                          static_cast<Maker>(par_deepest_first)}) {
        Schedule s = maker(t, p);
        const double cmax = simulate(t, s).makespan;
        EXPECT_LE(cmax, (2.0 - 1.0 / p) * opt + 1e-9);
        EXPECT_GE(cmax, opt - 1e-9);
      }
    }
  }
}

TEST(ListScheduler, MoreProcessorsNeverIncreaseMakespan) {
  Rng rng(83);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(100);
    params.min_work = 1.0;
    params.max_work = 5.0;
    Tree t = random_tree(params, rng);
    auto keys = deepest_first_priorities(t, postorder(t).order);
    double prev = 1e300;
    for (int p : {1, 2, 4, 8, 16}) {
      const double cmax = simulate(t, list_schedule(t, p, keys)).makespan;
      EXPECT_LE(cmax, prev + 1e-9);
      prev = cmax;
    }
  }
}

TEST(ListScheduler, MakespanAtLeastLowerBound) {
  Rng rng(89);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(120);
    params.min_work = 1.0;
    params.max_work = 7.0;
    Tree t = random_tree(params, rng);
    for (int p : {2, 5}) {
      Schedule s = list_schedule(t, p, fifo_keys(t));
      EXPECT_GE(simulate(t, s).makespan,
                makespan_lower_bound(t, p) - 1e-9);
    }
  }
}

TEST(ListScheduler, RejectsBadArguments) {
  Tree t = pebble_tree({kNoNode});
  EXPECT_THROW(list_schedule(t, 0, fifo_keys(t)), std::invalid_argument);
  EXPECT_THROW(list_schedule(t, 1, {}), std::invalid_argument);
}

TEST(PriorityKey, LexicographicOrder) {
  PriorityKey a{1, 2, 3}, b{1, 2, 4}, c{0, 9, 9};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(c < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace treesched

#include "core/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::example_tree;
using testing::make_tree;
using testing::pebble_tree;

TEST(Tree, SingleNode) {
  Tree t = pebble_tree({kNoNode});
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.root(), 0);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.num_leaves(), 1);
  EXPECT_EQ(t.height(), 1);
}

TEST(Tree, ExampleStructure) {
  Tree t = example_tree();
  EXPECT_EQ(t.size(), 7);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.num_children(0), 3);
  EXPECT_EQ(t.num_children(1), 2);
  EXPECT_EQ(t.num_children(3), 1);
  EXPECT_TRUE(t.is_leaf(4));
  EXPECT_TRUE(t.is_leaf(2));
  EXPECT_EQ(t.num_leaves(), 4);
  EXPECT_EQ(t.max_degree(), 3);
  std::vector<NodeId> c0(t.children(0).begin(), t.children(0).end());
  EXPECT_EQ(c0, (std::vector<NodeId>{1, 2, 3}));
}

TEST(Tree, ProcessingMemory) {
  // Node 1 has children 4, 5 (f=1 each); f_1 = 1, n_1 = 0 -> 3.
  Tree t = example_tree();
  EXPECT_EQ(t.processing_memory(1), 3u);
  EXPECT_EQ(t.processing_memory(4), 1u);
  EXPECT_EQ(t.processing_memory(0), 4u);
}

TEST(Tree, ProcessingMemoryWithExecFiles) {
  Tree t = make_tree({kNoNode, 0}, {5, 3}, {7, 2}, {1.0, 1.0});
  EXPECT_EQ(t.processing_memory(1), 3u + 2u);       // leaf: f + n
  EXPECT_EQ(t.processing_memory(0), 3u + 7u + 5u);  // input + n + f
}

TEST(Tree, NaturalPostorderVisitsChildrenFirst) {
  Tree t = example_tree();
  auto order = t.natural_postorder();
  ASSERT_EQ(order.size(), 7u);
  std::vector<NodeId> pos(7);
  for (std::size_t k = 0; k < order.size(); ++k) pos[order[k]] = (NodeId)k;
  for (NodeId i = 0; i < t.size(); ++i) {
    for (NodeId c : t.children(i)) EXPECT_LT(pos[c], pos[i]);
  }
  EXPECT_EQ(order.back(), t.root());
}

TEST(Tree, Depths) {
  Tree t = example_tree();
  auto d = t.depths();
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[4], 2);
  EXPECT_EQ(d[6], 2);
  EXPECT_EQ(t.height(), 3);
}

TEST(Tree, WeightedDepthsIncludeOwnWork) {
  Tree t = make_tree({kNoNode, 0, 1}, {1, 1, 1}, {0, 0, 0}, {5.0, 3.0, 2.0});
  auto wd = t.weighted_depths();
  EXPECT_DOUBLE_EQ(wd[0], 5.0);
  EXPECT_DOUBLE_EQ(wd[1], 8.0);
  EXPECT_DOUBLE_EQ(wd[2], 10.0);
  EXPECT_DOUBLE_EQ(t.critical_path(), 10.0);
}

TEST(Tree, SubtreeWork) {
  Tree t = example_tree();
  auto W = t.subtree_work();
  EXPECT_DOUBLE_EQ(W[0], 7.0);
  EXPECT_DOUBLE_EQ(W[1], 3.0);
  EXPECT_DOUBLE_EQ(W[2], 1.0);
  EXPECT_DOUBLE_EQ(W[3], 2.0);
  EXPECT_DOUBLE_EQ(t.total_work(), 7.0);
}

TEST(Tree, SubtreeExtraction) {
  Tree t = example_tree();
  std::vector<NodeId> old_ids;
  Tree sub = t.subtree(1, &old_ids);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.root(), 0);
  EXPECT_EQ(old_ids[0], 1);
  std::set<NodeId> olds(old_ids.begin(), old_ids.end());
  EXPECT_EQ(olds, (std::set<NodeId>{1, 4, 5}));
  EXPECT_EQ(sub.num_children(0), 2);
}

TEST(Tree, SubtreePreservesWeights) {
  Tree t = make_tree({kNoNode, 0, 1}, {10, 20, 30}, {1, 2, 3},
                     {1.5, 2.5, 3.5});
  Tree sub = t.subtree(1);
  EXPECT_EQ(sub.output_size(0), 20u);
  EXPECT_EQ(sub.exec_size(1), 3u);
  EXPECT_DOUBLE_EQ(sub.work(1), 3.5);
}

TEST(Tree, RejectsTwoRoots) {
  EXPECT_THROW(pebble_tree({kNoNode, kNoNode}), std::invalid_argument);
}

TEST(Tree, RejectsNoRoot) {
  EXPECT_THROW(pebble_tree({1, 0}), std::invalid_argument);
}

TEST(Tree, RejectsSelfParent) {
  EXPECT_THROW(pebble_tree({kNoNode, 1}), std::invalid_argument);
}

TEST(Tree, RejectsOutOfRangeParent) {
  EXPECT_THROW(pebble_tree({kNoNode, 7}), std::invalid_argument);
}

TEST(Tree, RejectsMismatchedArrays) {
  EXPECT_THROW(Tree({kNoNode}, {1, 2}, {0}, {1.0}), std::invalid_argument);
}

TEST(Tree, RejectsNegativeWork) {
  EXPECT_THROW(Tree({kNoNode}, {1}, {0}, {-1.0}), std::invalid_argument);
}

TEST(TreeBuilder, BuildsIncrementally) {
  TreeBuilder b;
  NodeId r = b.add_node(kNoNode, 1, 0, 1.0);
  NodeId c1 = b.add_node(r, 2, 0, 2.0);
  b.add_node(c1, 3, 0, 3.0);
  EXPECT_EQ(b.size(), 3);
  Tree t = std::move(b).build();
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.parent(2), c1);
  EXPECT_EQ(t.output_size(2), 3u);
}

TEST(TreeBuilder, SetParentReparents) {
  TreeBuilder b;
  b.add_node(kNoNode, 1, 0, 1.0);
  b.add_node(0, 1, 0, 1.0);
  b.add_node(0, 1, 0, 1.0);
  b.set_parent(2, 1);
  Tree t = std::move(b).build();
  EXPECT_EQ(t.parent(2), 1);
}

TEST(Tree, RandomTreesAreValid) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Tree t = random_pebble_tree(1 + (NodeId)rng.uniform(200), rng,
                                rng.uniform01() * 4.0);
    auto order = t.natural_postorder();
    EXPECT_EQ((NodeId)order.size(), t.size());
    // Every non-root node's parent has a smaller natural-postorder position
    // is false in general, but children-before-parent must hold:
    std::vector<NodeId> pos(t.size());
    for (std::size_t k = 0; k < order.size(); ++k) pos[order[k]] = (NodeId)k;
    for (NodeId i = 0; i < t.size(); ++i) {
      if (t.parent(i) != kNoNode) EXPECT_LT(pos[i], pos[t.parent(i)]);
    }
  }
}

TEST(Tree, DescribeMentionsSize) {
  Tree t = example_tree();
  EXPECT_NE(t.describe().find("n=7"), std::string::npos);
}

}  // namespace
}  // namespace treesched

#include "parallel/memory_bounded.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

constexpr MemSize kHuge = ~MemSize{0} / 4;

TEST(MemoryBounded, InfeasibleCapIsRejected) {
  Tree t = fork_tree(3);  // postorder peak = 4
  EXPECT_EQ(min_feasible_cap(t), 4u);
  EXPECT_FALSE(memory_bounded_schedule(t, 2, 3).has_value());
  EXPECT_TRUE(memory_bounded_schedule(t, 2, 4).has_value());
}

TEST(MemoryBounded, NeverExceedsCap) {
  Rng rng(401);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(120);
    params.max_output = 7;
    params.max_exec = 4;
    params.min_work = 1.0;
    params.max_work = 5.0;
    params.depth_bias = rng.uniform01() * 2;
    Tree t = random_tree(params, rng);
    const MemSize floor_cap = min_feasible_cap(t);
    for (double factor : {1.0, 1.5, 3.0}) {
      const auto cap =
          static_cast<MemSize>((double)floor_cap * factor) + 1;
      auto r = memory_bounded_schedule(t, 4, cap);
      ASSERT_TRUE(r.has_value());
      ASSERT_TRUE(validate_schedule(t, r->schedule, 4).ok);
      EXPECT_LE(simulate(t, r->schedule).peak_memory, cap);
    }
  }
}

TEST(MemoryBounded, TightCapDegeneratesTowardSequential) {
  Rng rng(409);
  RandomTreeParams params;
  params.n = 60;
  params.max_output = 5;
  params.max_exec = 2;
  Tree t = random_tree(params, rng);
  const MemSize cap = min_feasible_cap(t);
  auto r = memory_bounded_schedule(t, 8, cap);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(simulate(t, r->schedule).peak_memory, cap);
}

TEST(MemoryBounded, LooseCapMatchesUnboundedListSchedule) {
  Rng rng(419);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(100);
    params.max_output = 5;
    params.max_exec = 2;
    params.min_work = 1.0;
    params.max_work = 4.0;
    Tree t = random_tree(params, rng);
    auto r = memory_bounded_schedule(t, 4, kHuge);
    ASSERT_TRUE(r.has_value());
    // Same priority (deepest-first over optimal postorder) unbounded:
    Schedule unbounded = par_deepest_first(t, 4);
    EXPECT_DOUBLE_EQ(simulate(t, r->schedule).makespan,
                     simulate(t, unbounded).makespan);
  }
}

TEST(MemoryBounded, MakespanImprovesWithCap) {
  // The trade-off curve must be monotone (weakly) in the cap.
  Rng rng(421);
  RandomTreeParams params;
  params.n = 150;
  params.max_output = 6;
  params.max_exec = 3;
  params.min_work = 1.0;
  params.max_work = 6.0;
  Tree t = random_tree(params, rng);
  const auto floor_cap = (double)min_feasible_cap(t);
  double prev = 1e300;
  int monotone_violations = 0;
  for (double f : {1.0, 1.3, 2.0, 4.0, 16.0}) {
    auto r = memory_bounded_schedule(t, 8, (MemSize)(floor_cap * f) + 1);
    ASSERT_TRUE(r.has_value());
    const double ms = simulate(t, r->schedule).makespan;
    if (ms > prev + 1e-9) ++monotone_violations;
    prev = ms;
  }
  // The admission heuristic is greedy, so allow one local wobble but not a
  // systematically inverted curve.
  EXPECT_LE(monotone_violations, 1);
}

TEST(MemoryBounded, AdversaryTreeIsTamed) {
  // On the Figure-4 adversary, ParInnerFirst blows memory up; the bounded
  // scheduler with cap = 2 * M_seq must stay within it and still finish.
  const int p = 4;
  Tree t = innerfirst_adversary_tree(10, p);
  const MemSize mseq = min_feasible_cap(t);
  auto r = memory_bounded_schedule(t, p, 2 * mseq);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(validate_schedule(t, r->schedule, p).ok);
  EXPECT_LE(simulate(t, r->schedule).peak_memory, 2 * mseq);
}

TEST(MemoryBounded, WorksWithCustomPriority) {
  Rng rng(431);
  Tree t = random_pebble_tree(80, rng, 1.0);
  MemoryBoundedOptions opts;
  opts.priority.assign((std::size_t)t.size(), PriorityKey{});
  for (NodeId i = 0; i < t.size(); ++i) {
    opts.priority[i].k1 = (double)i;  // FIFO by id
  }
  auto r = memory_bounded_schedule(t, 4, kHuge, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_schedule(t, r->schedule, 4).ok);
}

TEST(MemoryBounded, SmallAuditWindowStillCorrect) {
  Rng rng(433);
  Tree t = random_pebble_tree(100, rng, 2.0);
  MemoryBoundedOptions opts;
  opts.audit_window = 1;
  const MemSize cap = 2 * min_feasible_cap(t);
  auto r = memory_bounded_schedule(t, 4, cap, opts);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(validate_schedule(t, r->schedule, 4).ok);
  EXPECT_LE(simulate(t, r->schedule).peak_memory, cap);
}

TEST(MemoryBounded, PebbleGameRespectsExactCap) {
  // Unit-weight chain pairs: sequential needs 2... use fork: cap exactly
  // the root requirement.
  Tree t = fork_tree(5);
  const MemSize cap = 6;  // root: 5 inputs + 1 output
  auto r = memory_bounded_schedule(t, 5, cap);
  ASSERT_TRUE(r.has_value());
  const auto sim = simulate(t, r->schedule);
  EXPECT_LE(sim.peak_memory, cap);
  // All 5 leaves fit at once (5 <= 6), so the makespan is 2.
  EXPECT_DOUBLE_EQ(sim.makespan, 2.0);
}

}  // namespace
}  // namespace treesched

#include "parallel/par_subtrees.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/simulator.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

// Brute force over all splittings: a splitting is an antichain of subtree
// roots (no root an ancestor of another); its nodes outside the subtrees
// are sequential. Cost = W_max + seq work + surplus subtree work.
double bruteforce_best_split_cost(const Tree& t, int p) {
  const NodeId n = t.size();
  const auto W = t.subtree_work();
  // ancestors matrix
  std::vector<std::vector<char>> anc((std::size_t)n,
                                     std::vector<char>((std::size_t)n, 0));
  for (NodeId i = 0; i < n; ++i) {
    NodeId a = t.parent(i);
    while (a != kNoNode) {
      anc[i][a] = 1;  // a is an ancestor of i
      a = t.parent(a);
    }
  }
  double best = 1e300;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    // roots = set bits; must be an antichain.
    std::vector<NodeId> roots;
    bool ok = true;
    for (NodeId i = 0; i < n && ok; ++i) {
      if (!(mask >> i & 1u)) continue;
      for (NodeId j : roots) {
        if (anc[i][j] || anc[j][i]) {
          ok = false;
          break;
        }
      }
      if (ok) roots.push_back(i);
    }
    if (!ok || roots.empty()) continue;
    std::vector<double> ws;
    double covered = 0;
    for (NodeId r : roots) {
      ws.push_back(W[r]);
      covered += W[r];
    }
    std::sort(ws.rbegin(), ws.rend());
    double surplus = 0;
    for (std::size_t k = (std::size_t)p; k < ws.size(); ++k) surplus += ws[k];
    const double seq = t.total_work() - covered;
    best = std::min(best, ws.front() + seq + surplus);
  }
  return best;
}

TEST(SplitSubtrees, SingleNode) {
  Tree t = pebble_tree({kNoNode});
  auto r = split_subtrees(t, 4);
  EXPECT_EQ(r.subtree_roots, (std::vector<NodeId>{0}));
  EXPECT_TRUE(r.seq_nodes.empty());
  EXPECT_DOUBLE_EQ(r.predicted_makespan, 1.0);
}

TEST(SplitSubtrees, ForkSplitsAtRoot) {
  Tree t = fork_tree(6);
  auto r = split_subtrees(t, 3);
  // Splitting the root leaves 6 unit leaves; best cost = 1 (largest leaf)
  // + 1 (root seq) + 3 surplus = 5; not splitting costs 7. So it splits.
  EXPECT_EQ(r.seq_nodes, (std::vector<NodeId>{0}));
  EXPECT_EQ(r.subtree_roots.size(), 6u);
  EXPECT_DOUBLE_EQ(r.predicted_makespan, 5.0);
}

TEST(SplitSubtrees, MatchesBruteForceOnAllShapes) {
  // Lemma 1: the SplitSubtrees split is makespan-optimal among ALL
  // splittings for the ParSubtrees scheme.
  for (NodeId n = 1; n <= 7; ++n) {
    for (const Tree& t : all_tree_shapes(n)) {
      for (int p : {1, 2, 3}) {
        auto r = split_subtrees(t, p);
        EXPECT_NEAR(r.predicted_makespan, bruteforce_best_split_cost(t, p),
                    1e-9)
            << "n=" << n << " p=" << p;
      }
    }
  }
}

TEST(SplitSubtrees, MatchesBruteForceOnWeightedRandomTrees) {
  Rng rng(59);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(10);
    params.min_work = 1.0;
    params.max_work = 9.0;
    Tree t = random_tree(params, rng);
    for (int p : {2, 4}) {
      auto r = split_subtrees(t, p);
      EXPECT_NEAR(r.predicted_makespan, bruteforce_best_split_cost(t, p),
                  1e-9);
    }
  }
}

TEST(ParSubtrees, PredictedMakespanMatchesSimulation) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(200);
    params.min_work = 1.0;
    params.max_work = 9.0;
    params.depth_bias = rng.uniform01() * 2;
    Tree t = random_tree(params, rng);
    for (int p : {2, 4, 8}) {
      auto split = split_subtrees(t, p);
      Schedule s = par_subtrees(t, p);
      ASSERT_TRUE(validate_schedule(t, s, p).ok);
      EXPECT_NEAR(simulate(t, s).makespan, split.predicted_makespan, 1e-6);
    }
  }
}

TEST(ParSubtrees, MemoryWithinPPlusOneTimesSequential) {
  // Theorem (§5.1): peak <= (p + 1) * M_seq.
  Rng rng(67);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(150);
    params.max_output = 9;
    params.max_exec = 5;
    params.min_work = 1.0;
    params.max_work = 5.0;
    Tree t = random_tree(params, rng);
    const MemSize mseq = postorder(t).peak;
    for (int p : {2, 4, 8}) {
      const MemSize mem = simulate(t, par_subtrees(t, p)).peak_memory;
      EXPECT_LE(mem, (MemSize)(p + 1) * mseq);
    }
  }
}

TEST(ParSubtrees, ForkWorstCaseMakespanRatioApproachesP) {
  // Paper Figure 3: with p*k unit leaves, ParSubtrees' makespan is
  // p(k-1) + 2 while the optimum is k + 1.
  const int p = 4, k = 50;
  Tree t = fork_tree(p * k);
  Schedule s = par_subtrees(t, p);
  ASSERT_TRUE(validate_schedule(t, s, p).ok);
  const double cmax = simulate(t, s).makespan;
  EXPECT_DOUBLE_EQ(cmax, (double)(p * (k - 1) + 2));
  const double opt = k + 1;
  EXPECT_GT(cmax / opt, 0.9 * p);
}

TEST(ParSubtreesOptim, FixesForkWorstCase) {
  const int p = 4, k = 50;
  Tree t = fork_tree(p * k);
  Schedule s = par_subtrees_optim(t, p);
  ASSERT_TRUE(validate_schedule(t, s, p).ok);
  // LPT packs k leaves per processor: k + 1 total.
  EXPECT_DOUBLE_EQ(simulate(t, s).makespan, (double)(k + 1));
}

TEST(ParSubtreesOptim, NeverWorseMakespanThanParSubtrees) {
  Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(200);
    params.min_work = 1.0;
    params.max_work = 9.0;
    Tree t = random_tree(params, rng);
    for (int p : {2, 4}) {
      const double plain = simulate(t, par_subtrees(t, p)).makespan;
      const double optim = simulate(t, par_subtrees_optim(t, p)).makespan;
      EXPECT_LE(optim, plain + 1e-9);
    }
  }
}

TEST(ParSubtrees, SequentialAlgoVariantsAreValid) {
  Rng rng(73);
  RandomTreeParams params;
  params.n = 120;
  params.max_output = 7;
  params.max_exec = 3;
  Tree t = random_tree(params, rng);
  for (auto seq : {SequentialAlgo::kOptimalPostorder, SequentialAlgo::kLiuExact,
                   SequentialAlgo::kNaturalPostorder}) {
    ParSubtreesOptions opts;
    opts.sequential = seq;
    Schedule s = par_subtrees(t, 4, opts);
    EXPECT_TRUE(validate_schedule(t, s, 4).ok);
  }
}

TEST(ParSubtrees, SingleProcessorEqualsSequential) {
  Rng rng(79);
  Tree t = random_pebble_tree(80, rng);
  Schedule s = par_subtrees(t, 1);
  ASSERT_TRUE(validate_schedule(t, s, 1).ok);
  EXPECT_DOUBLE_EQ(simulate(t, s).makespan, t.total_work());
}

}  // namespace
}  // namespace treesched

// Parameterized property sweeps across (algorithm x processor count x
// instance family) combinations: every schedule any registered algorithm
// emits, on any instance, must be feasible, respect both lower bounds, and
// satisfy the structural guarantees proved in the paper.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/lower_bounds.hpp"
#include "parallel/capped_subtrees.hpp"
#include "parallel/memory_bounded.hpp"
#include "sched/registry.hpp"
#include "sched/validate.hpp"
#include "core/simulator.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

enum class Family { kPebbleShallow, kPebbleDeep, kWeighted, kAssemblyLike };

std::string family_name(Family f) {
  switch (f) {
    case Family::kPebbleShallow:
      return "PebbleShallow";
    case Family::kPebbleDeep:
      return "PebbleDeep";
    case Family::kWeighted:
      return "Weighted";
    case Family::kAssemblyLike:
      return "AssemblyLike";
  }
  return "?";
}

Tree make_family_tree(Family f, std::uint64_t seed) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = 60 + (NodeId)rng.uniform(120);
  switch (f) {
    case Family::kPebbleShallow:
      break;
    case Family::kPebbleDeep:
      params.depth_bias = 5.0;
      break;
    case Family::kWeighted:
      params.max_output = 50;
      params.max_exec = 20;
      params.min_work = 1.0;
      params.max_work = 40.0;
      params.depth_bias = 1.0;
      break;
    case Family::kAssemblyLike:
      params.max_output = 400;
      params.max_exec = 100;
      params.min_work = 1.0;
      params.max_work = 1000.0;
      params.depth_bias = 2.0;
      break;
  }
  return random_tree(params, rng);
}

using AlgorithmCase = std::tuple<std::string, int, Family>;

Schedule run_algo(const std::string& name, const Tree& t, int p) {
  return SchedulerRegistry::instance().create(name)->schedule(
      t, Resources{p, 0});
}

class AlgorithmProperty : public ::testing::TestWithParam<AlgorithmCase> {};

TEST_P(AlgorithmProperty, ScheduleIsFeasible) {
  const auto [algo, p, fam] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const Schedule s = run_algo(algo, t, p);
    const auto v = validate_schedule(t, s, p);
    EXPECT_TRUE(v.ok) << v.error;
  }
}

TEST_P(AlgorithmProperty, RespectsLowerBounds) {
  const auto [algo, p, fam] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const auto sim = simulate(t, run_algo(algo, t, p));
    EXPECT_GE(sim.makespan, makespan_lower_bound(t, p) - 1e-9);
    EXPECT_GE(sim.peak_memory, min_sequential_memory(t));
  }
}

TEST_P(AlgorithmProperty, EveryTaskRunsExactlyOnceAndInWindow) {
  const auto [algo, p, fam] = GetParam();
  const Tree t = make_family_tree(fam, 7);
  const Schedule s = run_algo(algo, t, p);
  const double makespan = s.makespan(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_GE(s.start[i], 0.0);
    EXPECT_LE(s.finish(t, i), makespan + 1e-9);
    EXPECT_GE(s.proc[i], 0);
    EXPECT_LT(s.proc[i], p);
  }
}

TEST_P(AlgorithmProperty, ListSchedulersMeetGrahamBound) {
  const auto [algo, p, fam] = GetParam();
  if (algo != "ParInnerFirst" && algo != "ParDeepestFirst") {
    GTEST_SKIP() << "Graham bound applies to plain list schedules only";
  }
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const auto sim = simulate(t, run_algo(algo, t, p));
    const double bound =
        t.total_work() / p + (1.0 - 1.0 / p) * t.critical_path();
    EXPECT_LE(sim.makespan, bound + 1e-6);
  }
}

TEST_P(AlgorithmProperty, ParSubtreesMemoryGuarantee) {
  const auto [algo, p, fam] = GetParam();
  if (algo != "ParSubtrees") {
    GTEST_SKIP() << "the (p+1)-approximation is ParSubtrees' theorem";
  }
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const auto sim = simulate(t, run_algo(algo, t, p));
    EXPECT_LE(sim.peak_memory, (MemSize)(p + 1) * postorder(t).peak);
  }
}

TEST_P(AlgorithmProperty, SequentialAlgorithmsUseOneProcessor) {
  const auto [algo, p, fam] = GetParam();
  const SchedulerPtr sched = SchedulerRegistry::instance().create(algo);
  if (!sched->capabilities().sequential_only) {
    GTEST_SKIP() << "parallel algorithm";
  }
  const Tree t = make_family_tree(fam, 3);
  const Schedule s = sched->schedule(t, Resources{p, 0});
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(s.proc[i], 0);
  EXPECT_DOUBLE_EQ(s.makespan(t), t.total_work());
}

std::string algorithm_case_name(
    const ::testing::TestParamInfo<AlgorithmCase>& info) {
  const auto [algo, p, fam] = info.param;
  return algo + "_p" + std::to_string(p) + "_" + family_name(fam);
}

// The sweep enumerates the registry (every default-campaign algorithm),
// so newly registered algorithms are property-checked with no edit here.
// The generator is evaluated at test-registration time, after all static
// initialization, so the registry is fully populated.
INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmProperty,
    ::testing::Combine(
        ::testing::ValuesIn(default_campaign_algorithms()),
        ::testing::Values(2, 4, 16),
        ::testing::Values(Family::kPebbleShallow, Family::kPebbleDeep,
                          Family::kWeighted, Family::kAssemblyLike)),
    algorithm_case_name);

// ---------------------------------------------------------------------------
// Postorder policies: every policy yields a valid traversal; the optimal
// policy dominates.
// ---------------------------------------------------------------------------

class PostorderPolicyProperty
    : public ::testing::TestWithParam<PostorderPolicy> {};

TEST_P(PostorderPolicyProperty, TraversalValidAndPeakExact) {
  const PostorderPolicy policy = GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(150);
    params.max_output = 20;
    params.max_exec = 10;
    const Tree t = random_tree(params, rng);
    const auto r = postorder(t, policy);
    ASSERT_EQ((NodeId)r.order.size(), t.size());
    EXPECT_EQ(sequential_peak_memory(t, r.order), r.peak);
    EXPECT_GE(r.peak, postorder(t, PostorderPolicy::kOptimal).peak);
    EXPECT_GE(r.peak, min_sequential_memory(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PostorderPolicyProperty,
    ::testing::Values(PostorderPolicy::kOptimal, PostorderPolicy::kByPeak,
                      PostorderPolicy::kByOutput, PostorderPolicy::kByWork,
                      PostorderPolicy::kNatural),
    [](const ::testing::TestParamInfo<PostorderPolicy>& info) {
      switch (info.param) {
        case PostorderPolicy::kOptimal:
          return std::string("Optimal");
        case PostorderPolicy::kByPeak:
          return std::string("ByPeak");
        case PostorderPolicy::kByOutput:
          return std::string("ByOutput");
        case PostorderPolicy::kByWork:
          return std::string("ByWork");
        case PostorderPolicy::kNatural:
          return std::string("Natural");
      }
      return std::string("?");
    });

// ---------------------------------------------------------------------------
// Exactness sweep: Liu's algorithm equals the subset-DP optimum on every
// tree shape of size n (pebble weights and randomized weights).
// ---------------------------------------------------------------------------

class LiuExactnessBySize : public ::testing::TestWithParam<NodeId> {};

TEST_P(LiuExactnessBySize, TraversalConsistentAndDominant) {
  // The brute-force equality is covered in test_liu.cpp; this sweep checks
  // structural invariants on EVERY shape of size n: the reported peak is
  // what the traversal replays to, and it never exceeds the best postorder.
  const NodeId n = GetParam();
  for (const Tree& shape : all_tree_shapes(n)) {
    const auto r = liu_optimal_traversal(shape);
    EXPECT_EQ(sequential_peak_memory(shape, r.order), r.peak);
    EXPECT_LE(r.peak, postorder(shape).peak);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, LiuExactnessBySize,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<NodeId>& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Cross-validation on randomized oracle-sized trees: every registered
// scheduler (the exponential oracle included) against the standalone
// validator (sched/validate.hpp) and the BruteForceSeq optimum.
// ---------------------------------------------------------------------------

/// Oracle-compatible random instance: n in [4, 14] (the BruteForceSeq DP
/// is O(2^n n)), alternating pebble-game and weighted trees.
Tree small_random_tree(Rng& rng, int trial) {
  RandomTreeParams params;
  params.n = 4 + static_cast<NodeId>(rng.uniform(11));
  params.depth_bias = static_cast<double>(trial % 3);
  if (trial % 2 == 1) {
    params.max_output = 30;
    params.max_exec = 10;
    params.min_work = 1.0;
    params.max_work = 20.0;
  }
  return random_tree(params, rng);
}

TEST(CrossValidation, EverySchedulerPassesTheValidatorOnRandomTrees) {
  // ~200 random instances x the full registry (10 schedulers) x a random
  // p: the validator independently re-derives feasibility, concurrency
  // and the memory accounting for every schedule the roster emits.
  Rng rng(0xC0FFEE);
  const std::vector<std::string> names =
      SchedulerRegistry::instance().names();
  ASSERT_EQ(names.size(), 10u);
  for (int trial = 0; trial < 200; ++trial) {
    const Tree t = small_random_tree(rng, trial);
    const int p = 1 + static_cast<int>(rng.uniform(4));
    for (const std::string& name : names) {
      const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
      const Schedule s = sched->schedule(t, Resources{p, 0});
      const ScheduleCheck check = check_schedule(t, s, p);
      ASSERT_TRUE(check.ok)
          << name << " on trial " << trial << " (n = " << t.size()
          << ", p = " << p << "): " << check.error;
      EXPECT_LE(check.max_concurrency, p) << name;
      EXPECT_GE(check.peak_memory, min_sequential_memory(t)) << name;
    }
  }
}

TEST(CrossValidation, NoSchedulerBeatsTheOracleOnSequentialInstances) {
  // On p = 1 every schedule is a traversal: BruteForceSeq realizes the
  // exact memory optimum, and its makespan (= total work) is the
  // sequential optimum — no registered scheduler may beat either.
  Rng rng(0x0bac1e);
  const std::vector<std::string> names =
      SchedulerRegistry::instance().names();
  for (int trial = 0; trial < 100; ++trial) {
    const Tree t = small_random_tree(rng, trial);
    const SchedulerPtr oracle =
        SchedulerRegistry::instance().create("BruteForceSeq");
    const SimulationResult best =
        simulate(t, oracle->schedule(t, Resources{1, 0}));
    for (const std::string& name : names) {
      if (name == "BruteForceSeq") continue;
      const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
      const SimulationResult sim =
          simulate(t, sched->schedule(t, Resources{1, 0}));
      EXPECT_GE(sim.peak_memory, best.peak_memory)
          << name << " beat the exact memory optimum on trial " << trial;
      EXPECT_GE(sim.makespan, best.makespan - 1e-9)
          << name << " beat the sequential makespan optimum on trial "
          << trial;
    }
  }
}

/// The smallest cap `name` accepts on (tree, p): the two parallel capped
/// schemes export their floor; a sequential capped scheduler's floor is
/// its own (cap-independent) traversal's peak.
MemSize feasibility_floor(const std::string& name, const Tree& t, int p) {
  if (name == "MemoryBounded") return min_feasible_cap(t);
  if (name == "CappedSubtrees") return capped_subtrees_min_cap(t, p);
  const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
  return simulate(t, sched->schedule(t, Resources{p, 0})).peak_memory;
}

TEST(CrossValidation, CappedSchedulersRespectShrinkingCaps) {
  // Sweep the cap from 2x the scheduler's feasibility floor down to the
  // floor itself: the schedule must stay within every accepted cap (the
  // validator re-checks the exact replay), and one byte below the floor
  // must be rejected, never silently exceeded.
  Rng rng(0xCA9);
  const std::vector<std::string> capped =
      SchedulerRegistry::instance().names_where([](const Scheduler& s) {
        return s.capabilities().memory_capped && !s.capabilities().is_oracle();
      });
  EXPECT_GE(capped.size(), 4u);  // MemoryBounded, CappedSubtrees, Liu, ...
  for (int trial = 0; trial < 30; ++trial) {
    const Tree t = small_random_tree(rng, trial);
    const int p = 1 + static_cast<int>(rng.uniform(4));
    for (const std::string& name : capped) {
      const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
      const int eff_p = sched->capabilities().sequential_only ? 1 : p;
      const MemSize floor = feasibility_floor(name, t, eff_p);
      ASSERT_GT(floor, 0u) << name;
      for (const double factor : {2.0, 1.5, 1.0}) {
        const MemSize cap = static_cast<MemSize>(
            std::ceil(static_cast<double>(floor) * factor));
        const Schedule s = sched->schedule(t, Resources{eff_p, cap});
        const ScheduleCheck check = check_schedule(t, s, eff_p, cap);
        ASSERT_TRUE(check.ok)
            << name << " with cap " << factor << "x floor on trial "
            << trial << ": " << check.error;
      }
      if (floor > 1) {  // floor - 1 == 0 would mean "no cap", not a cap
        EXPECT_THROW(
            (void)sched->schedule(t, Resources{eff_p, floor - 1}),
            std::invalid_argument)
            << name << " accepted a cap below its feasibility floor";
      }
    }
  }
}

}  // namespace
}  // namespace treesched

// Parameterized property sweeps across (algorithm x processor count x
// instance family) combinations: every schedule any registered algorithm
// emits, on any instance, must be feasible, respect both lower bounds, and
// satisfy the structural guarantees proved in the paper.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/lower_bounds.hpp"
#include "sched/registry.hpp"
#include "core/simulator.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

enum class Family { kPebbleShallow, kPebbleDeep, kWeighted, kAssemblyLike };

std::string family_name(Family f) {
  switch (f) {
    case Family::kPebbleShallow:
      return "PebbleShallow";
    case Family::kPebbleDeep:
      return "PebbleDeep";
    case Family::kWeighted:
      return "Weighted";
    case Family::kAssemblyLike:
      return "AssemblyLike";
  }
  return "?";
}

Tree make_family_tree(Family f, std::uint64_t seed) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = 60 + (NodeId)rng.uniform(120);
  switch (f) {
    case Family::kPebbleShallow:
      break;
    case Family::kPebbleDeep:
      params.depth_bias = 5.0;
      break;
    case Family::kWeighted:
      params.max_output = 50;
      params.max_exec = 20;
      params.min_work = 1.0;
      params.max_work = 40.0;
      params.depth_bias = 1.0;
      break;
    case Family::kAssemblyLike:
      params.max_output = 400;
      params.max_exec = 100;
      params.min_work = 1.0;
      params.max_work = 1000.0;
      params.depth_bias = 2.0;
      break;
  }
  return random_tree(params, rng);
}

using AlgorithmCase = std::tuple<std::string, int, Family>;

Schedule run_algo(const std::string& name, const Tree& t, int p) {
  return SchedulerRegistry::instance().create(name)->schedule(
      t, Resources{p, 0});
}

class AlgorithmProperty : public ::testing::TestWithParam<AlgorithmCase> {};

TEST_P(AlgorithmProperty, ScheduleIsFeasible) {
  const auto [algo, p, fam] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const Schedule s = run_algo(algo, t, p);
    const auto v = validate_schedule(t, s, p);
    EXPECT_TRUE(v.ok) << v.error;
  }
}

TEST_P(AlgorithmProperty, RespectsLowerBounds) {
  const auto [algo, p, fam] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const auto sim = simulate(t, run_algo(algo, t, p));
    EXPECT_GE(sim.makespan, makespan_lower_bound(t, p) - 1e-9);
    EXPECT_GE(sim.peak_memory, min_sequential_memory(t));
  }
}

TEST_P(AlgorithmProperty, EveryTaskRunsExactlyOnceAndInWindow) {
  const auto [algo, p, fam] = GetParam();
  const Tree t = make_family_tree(fam, 7);
  const Schedule s = run_algo(algo, t, p);
  const double makespan = s.makespan(t);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_GE(s.start[i], 0.0);
    EXPECT_LE(s.finish(t, i), makespan + 1e-9);
    EXPECT_GE(s.proc[i], 0);
    EXPECT_LT(s.proc[i], p);
  }
}

TEST_P(AlgorithmProperty, ListSchedulersMeetGrahamBound) {
  const auto [algo, p, fam] = GetParam();
  if (algo != "ParInnerFirst" && algo != "ParDeepestFirst") {
    GTEST_SKIP() << "Graham bound applies to plain list schedules only";
  }
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const auto sim = simulate(t, run_algo(algo, t, p));
    const double bound =
        t.total_work() / p + (1.0 - 1.0 / p) * t.critical_path();
    EXPECT_LE(sim.makespan, bound + 1e-6);
  }
}

TEST_P(AlgorithmProperty, ParSubtreesMemoryGuarantee) {
  const auto [algo, p, fam] = GetParam();
  if (algo != "ParSubtrees") {
    GTEST_SKIP() << "the (p+1)-approximation is ParSubtrees' theorem";
  }
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Tree t = make_family_tree(fam, seed);
    const auto sim = simulate(t, run_algo(algo, t, p));
    EXPECT_LE(sim.peak_memory, (MemSize)(p + 1) * postorder(t).peak);
  }
}

TEST_P(AlgorithmProperty, SequentialAlgorithmsUseOneProcessor) {
  const auto [algo, p, fam] = GetParam();
  const SchedulerPtr sched = SchedulerRegistry::instance().create(algo);
  if (!sched->capabilities().sequential_only) {
    GTEST_SKIP() << "parallel algorithm";
  }
  const Tree t = make_family_tree(fam, 3);
  const Schedule s = sched->schedule(t, Resources{p, 0});
  for (NodeId i = 0; i < t.size(); ++i) EXPECT_EQ(s.proc[i], 0);
  EXPECT_DOUBLE_EQ(s.makespan(t), t.total_work());
}

std::string algorithm_case_name(
    const ::testing::TestParamInfo<AlgorithmCase>& info) {
  const auto [algo, p, fam] = info.param;
  return algo + "_p" + std::to_string(p) + "_" + family_name(fam);
}

// The sweep enumerates the registry (every default-campaign algorithm),
// so newly registered algorithms are property-checked with no edit here.
// The generator is evaluated at test-registration time, after all static
// initialization, so the registry is fully populated.
INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmProperty,
    ::testing::Combine(
        ::testing::ValuesIn(default_campaign_algorithms()),
        ::testing::Values(2, 4, 16),
        ::testing::Values(Family::kPebbleShallow, Family::kPebbleDeep,
                          Family::kWeighted, Family::kAssemblyLike)),
    algorithm_case_name);

// ---------------------------------------------------------------------------
// Postorder policies: every policy yields a valid traversal; the optimal
// policy dominates.
// ---------------------------------------------------------------------------

class PostorderPolicyProperty
    : public ::testing::TestWithParam<PostorderPolicy> {};

TEST_P(PostorderPolicyProperty, TraversalValidAndPeakExact) {
  const PostorderPolicy policy = GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(150);
    params.max_output = 20;
    params.max_exec = 10;
    const Tree t = random_tree(params, rng);
    const auto r = postorder(t, policy);
    ASSERT_EQ((NodeId)r.order.size(), t.size());
    EXPECT_EQ(sequential_peak_memory(t, r.order), r.peak);
    EXPECT_GE(r.peak, postorder(t, PostorderPolicy::kOptimal).peak);
    EXPECT_GE(r.peak, min_sequential_memory(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PostorderPolicyProperty,
    ::testing::Values(PostorderPolicy::kOptimal, PostorderPolicy::kByPeak,
                      PostorderPolicy::kByOutput, PostorderPolicy::kByWork,
                      PostorderPolicy::kNatural),
    [](const ::testing::TestParamInfo<PostorderPolicy>& info) {
      switch (info.param) {
        case PostorderPolicy::kOptimal:
          return std::string("Optimal");
        case PostorderPolicy::kByPeak:
          return std::string("ByPeak");
        case PostorderPolicy::kByOutput:
          return std::string("ByOutput");
        case PostorderPolicy::kByWork:
          return std::string("ByWork");
        case PostorderPolicy::kNatural:
          return std::string("Natural");
      }
      return std::string("?");
    });

// ---------------------------------------------------------------------------
// Exactness sweep: Liu's algorithm equals the subset-DP optimum on every
// tree shape of size n (pebble weights and randomized weights).
// ---------------------------------------------------------------------------

class LiuExactnessBySize : public ::testing::TestWithParam<NodeId> {};

TEST_P(LiuExactnessBySize, TraversalConsistentAndDominant) {
  // The brute-force equality is covered in test_liu.cpp; this sweep checks
  // structural invariants on EVERY shape of size n: the reported peak is
  // what the traversal replays to, and it never exceeds the best postorder.
  const NodeId n = GetParam();
  for (const Tree& shape : all_tree_shapes(n)) {
    const auto r = liu_optimal_traversal(shape);
    EXPECT_EQ(sequential_peak_memory(shape, r.order), r.peak);
    EXPECT_LE(r.peak, postorder(shape).peak);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, LiuExactnessBySize,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<NodeId>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace treesched

#include "spmatrix/sparse.hpp"

#include <gtest/gtest.h>

#include <set>

namespace treesched {
namespace {

TEST(SparsePattern, NormalizesEdges) {
  // duplicates, both orientations and self loops collapse.
  SparsePattern a(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.num_edges(), 2);
  EXPECT_EQ(a.degree(1), 2);
  EXPECT_EQ(a.degree(2), 1);
}

TEST(SparsePattern, NeighborsAreSorted) {
  SparsePattern a(4, {{2, 0}, {2, 3}, {2, 1}});
  auto nb = a.neighbors(2);
  std::vector<int> v(nb.begin(), nb.end());
  EXPECT_EQ(v, (std::vector<int>{0, 1, 3}));
}

TEST(SparsePattern, RejectsOutOfRange) {
  EXPECT_THROW(SparsePattern(2, {{0, 5}}), std::invalid_argument);
}

TEST(Grid2d, StructureAndDegrees) {
  SparsePattern a = grid2d_pattern(3, 3);
  EXPECT_EQ(a.size(), 9);
  EXPECT_EQ(a.num_edges(), 12);  // 2 * 3 * 2 grids of edges
  EXPECT_EQ(a.degree(4), 4);     // center
  EXPECT_EQ(a.degree(0), 2);     // corner
}

TEST(Grid3d, StructureAndDegrees) {
  SparsePattern a = grid3d_pattern(3, 3, 3);
  EXPECT_EQ(a.size(), 27);
  EXPECT_EQ(a.degree(13), 6);  // center of the cube
  EXPECT_EQ(a.degree(0), 3);   // corner
}

TEST(Grid2d, DegenerateLine) {
  SparsePattern a = grid2d_pattern(5, 1);
  EXPECT_EQ(a.size(), 5);
  EXPECT_EQ(a.num_edges(), 4);
}

TEST(RandomPattern, ConnectedAndSized) {
  Rng rng(5);
  SparsePattern a = random_pattern(200, 4.0, rng);
  EXPECT_EQ(a.size(), 200);
  EXPECT_GE(a.num_edges(), 199);  // spanning tree at minimum
  // connectivity: BFS reaches everything.
  std::vector<char> seen(200, 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  int count = 0;
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    ++count;
    for (int u : a.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = 1;
        stack.push_back(u);
      }
    }
  }
  EXPECT_EQ(count, 200);
}

TEST(RandomPattern, AverageDegreeApproximatelyRespected) {
  Rng rng(7);
  SparsePattern a = random_pattern(2000, 6.0, rng);
  const double avg = 2.0 * (double)a.num_edges() / a.size();
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 7.0);
}

}  // namespace
}  // namespace treesched

// The SchedulerRegistry contract: lookup, unknown-name diagnostics,
// capability filtering, and — the refactor's golden test — bit-identical
// equivalence between the registry path and the algorithms' native entry
// points, including a full run_campaign comparison for the four paper
// heuristics.

#include "sched/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/dataset.hpp"
#include "campaign/runner.hpp"
#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "parallel/par_subtrees.hpp"
#include "sequential/bruteforce.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

Tree weighted_tree(std::uint64_t seed, NodeId n = 120) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = n;
  params.max_output = 40;
  params.max_exec = 15;
  params.min_work = 1.0;
  params.max_work = 30.0;
  params.depth_bias = 1.5;
  return random_tree(params, rng);
}

TEST(SchedulerRegistry, LookupByNameReturnsMatchingScheduler) {
  auto& reg = SchedulerRegistry::instance();
  for (const std::string& name : reg.names()) {
    const SchedulerPtr sched = reg.create(name);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), name);
  }
  EXPECT_TRUE(reg.contains("ParSubtrees"));
  EXPECT_FALSE(reg.contains("parsubtrees")) << "lookup is case-sensitive";
}

TEST(SchedulerRegistry, PaperOrderLeadsTheRoster) {
  const auto names = SchedulerRegistry::instance().names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "ParSubtrees");
  EXPECT_EQ(names[1], "ParSubtreesOptim");
  EXPECT_EQ(names[2], "ParInnerFirst");
  EXPECT_EQ(names[3], "ParDeepestFirst");
}

TEST(SchedulerRegistry, UnknownNameThrowsWithKnownNames) {
  try {
    (void)SchedulerRegistry::instance().create("NoSuchScheduler");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NoSuchScheduler"), std::string::npos);
    EXPECT_NE(msg.find("ParSubtrees"), std::string::npos)
        << "the error should list the known names";
  }
}

TEST(SchedulerRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(SchedulerRegistry::instance().add(
                   "ParSubtrees", [] { return SchedulerPtr(); }),
               std::invalid_argument);
}

TEST(SchedulerRegistry, CapabilityFiltering) {
  auto& reg = SchedulerRegistry::instance();
  const auto sequential = reg.names_where(
      [](const Scheduler& s) { return s.capabilities().sequential_only; });
  EXPECT_NE(std::find(sequential.begin(), sequential.end(), "Liu"),
            sequential.end());
  EXPECT_NE(std::find(sequential.begin(), sequential.end(), "BestPostorder"),
            sequential.end());
  EXPECT_EQ(std::find(sequential.begin(), sequential.end(), "ParSubtrees"),
            sequential.end());

  const auto capped = reg.names_where(
      [](const Scheduler& s) { return s.capabilities().memory_capped; });
  EXPECT_NE(std::find(capped.begin(), capped.end(), "MemoryBounded"),
            capped.end());
  EXPECT_EQ(std::find(capped.begin(), capped.end(), "ParDeepestFirst"),
            capped.end());

  const auto oracles = reg.names_where(
      [](const Scheduler& s) { return s.capabilities().is_oracle(); });
  EXPECT_NE(std::find(oracles.begin(), oracles.end(), "BruteForceSeq"),
            oracles.end());
  for (const std::string& name : default_campaign_algorithms()) {
    EXPECT_EQ(std::find(oracles.begin(), oracles.end(), name), oracles.end())
        << name << " is an oracle but in the default campaign roster";
  }
}

// ---------------------------------------------------------------------------
// Golden equivalence: the registry path must reproduce the native entry
// points bit for bit.
// ---------------------------------------------------------------------------

TEST(SchedulerRegistry, RegistryPathMatchesNativeCallsExactly) {
  using Native = Schedule (*)(const Tree&, int);
  const std::vector<std::pair<std::string, Native>> cases{
      {"ParSubtrees",
       [](const Tree& t, int p) { return par_subtrees(t, p, {}); }},
      {"ParSubtreesOptim",
       [](const Tree& t, int p) {
         return par_subtrees_optim(t, p, SequentialAlgo::kOptimalPostorder);
       }},
      {"ParInnerFirst",
       [](const Tree& t, int p) { return par_inner_first(t, p); }},
      {"ParDeepestFirst",
       [](const Tree& t, int p) { return par_deepest_first(t, p); }},
  };
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Tree t = weighted_tree(seed);
    for (int p : {1, 2, 4, 16}) {
      for (const auto& [name, native] : cases) {
        const Schedule via_registry =
            SchedulerRegistry::instance().create(name)->schedule(
                t, Resources{p, 0});
        const Schedule direct = native(t, p);
        EXPECT_EQ(via_registry.start, direct.start) << name << " p=" << p;
        EXPECT_EQ(via_registry.proc, direct.proc) << name << " p=" << p;
      }
    }
  }
}

TEST(SchedulerRegistry, CampaignNumbersMatchNativeHeuristics) {
  // The golden campaign check: run_campaign through the registry produces
  // the same (makespan, memory) numbers, to the last bit, as simulating
  // the four native heuristic calls — the pre-refactor behavior.
  std::vector<DatasetEntry> ds;
  Rng rng(5);
  ds.push_back({"pebble-60", random_pebble_tree(60, rng, 1.0)});
  ds.push_back({"pebble-100", random_pebble_tree(100, rng, 0.0)});
  ds.push_back({"grid", grid2d_assembly_tree(8, 8, 2)});

  CampaignParams params;
  params.processor_counts = {2, 4, 8};
  auto records = run_campaign(ds, params);
  ASSERT_EQ(records.size(), ds.size() * params.processor_counts.size());

  for (std::size_t idx = 0; idx < records.size(); ++idx) {
    const ScenarioRecord& rec = records[idx];
    const Tree& tree = ds[idx / params.processor_counts.size()].tree;
    const int p = rec.p;
    const std::vector<std::pair<std::string, Schedule>> native{
        {"ParSubtrees", par_subtrees(tree, p, {})},
        {"ParSubtreesOptim", par_subtrees_optim(tree, p)},
        {"ParInnerFirst", par_inner_first(tree, p)},
        {"ParDeepestFirst", par_deepest_first(tree, p)},
    };
    for (const auto& [name, sched] : native) {
      const SimulationResult sim = simulate(tree, sched);
      const std::size_t k = rec.index_of(name);
      EXPECT_EQ(rec.makespan[k], sim.makespan)
          << name << " on " << rec.tree_name << " p=" << p;
      EXPECT_EQ(rec.memory[k], sim.peak_memory)
          << name << " on " << rec.tree_name << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-algorithm contracts of the non-enum schedulers.
// ---------------------------------------------------------------------------

TEST(SchedulerRegistry, SequentialBaselinesHitTheirMemoryTargets) {
  for (std::uint64_t seed : {7u, 8u}) {
    const Tree t = weighted_tree(seed);
    const Resources res{4, 0};
    const auto liu_mem =
        simulate(t, SchedulerRegistry::instance().create("Liu")->schedule(
                        t, res))
            .peak_memory;
    EXPECT_EQ(liu_mem, min_sequential_memory(t));
    const auto po_mem =
        simulate(t, SchedulerRegistry::instance()
                        .create("BestPostorder")
                        ->schedule(t, res))
            .peak_memory;
    EXPECT_EQ(po_mem, best_postorder_memory(t));
    EXPECT_LE(liu_mem, po_mem);
  }
}

TEST(SchedulerRegistry, MemoryCappedSchedulersHonorExplicitCap) {
  const Tree t = weighted_tree(11);
  for (const std::string& name : {"MemoryBounded", "CappedSubtrees"}) {
    const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
    // Derived default cap: at most 2x the relevant floor (plus rounding).
    const auto derived =
        simulate(t, sched->schedule(t, Resources{4, 0})).peak_memory;
    EXPECT_GT(derived, 0u);
    // Generous explicit cap: must be respected exactly.
    const MemSize cap = 4 * best_postorder_memory(t);
    const auto capped =
        simulate(t, sched->schedule(t, Resources{4, cap})).peak_memory;
    EXPECT_LE(capped, cap) << name;
  }
  // An explicit cap below the floor is an error, not a silent fallback.
  EXPECT_THROW(SchedulerRegistry::instance().create("MemoryBounded")
                   ->schedule(t, Resources{4, 1}),
               std::invalid_argument);
}

TEST(SchedulerRegistry, BruteForceOracleMatchesLiuOnSmallTrees) {
  Rng rng(13);
  const SchedulerPtr oracle =
      SchedulerRegistry::instance().create("BruteForceSeq");
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(10);
    params.max_output = 6;
    params.max_exec = 3;
    const Tree t = random_tree(params, rng);
    const auto mem =
        simulate(t, oracle->schedule(t, Resources{1, 0})).peak_memory;
    EXPECT_EQ(mem, bruteforce_min_sequential_memory(t));
    EXPECT_EQ(mem, min_sequential_memory(t));
  }
  // Beyond max_nodes the oracle refuses instead of hanging.
  EXPECT_THROW(oracle->schedule(weighted_tree(1), Resources{1, 0}),
               std::invalid_argument);
}

TEST(SchedulerRegistry, BruteforceTraversalReplaysToItsPeak) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(10);
    params.max_output = 6;
    params.max_exec = 3;
    const Tree t = random_tree(params, rng);
    const auto r = bruteforce_optimal_traversal(t);
    ASSERT_EQ((NodeId)r.order.size(), t.size());
    EXPECT_EQ(sequential_peak_memory(t, r.order), r.peak);
    EXPECT_EQ(r.peak, bruteforce_min_sequential_memory(t));
  }
}

TEST(ParallelFor, WorkerExceptionIsRethrownOnCaller) {
  EXPECT_THROW(
      parallel_for(
          64,
          [](std::size_t i) {
            if (i == 13) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
  // Single-threaded path too.
  EXPECT_THROW(parallel_for(
                   4, [](std::size_t) { throw std::logic_error("x"); }, 1),
               std::logic_error);
}

TEST(ParallelFor, CampaignSurfacesSchedulerErrors) {
  // An oracle on an oversized tree must surface as an exception from
  // run_campaign (through parallel_for), not terminate the process.
  std::vector<DatasetEntry> ds;
  ds.push_back({"big", weighted_tree(3, 64)});
  CampaignParams params;
  params.processor_counts = {2, 4};
  params.algorithms = {"ParSubtrees", "BruteForceSeq"};
  EXPECT_THROW(run_campaign(ds, params), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

#include "spmatrix/symbolic.hpp"

#include <gtest/gtest.h>

namespace treesched {
namespace {

TEST(Symbolic, PathGraphHasNoFill) {
  SparsePattern a(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto sym = symbolic_cholesky(a, natural_ordering(5));
  EXPECT_EQ(sym.col_counts, (std::vector<std::int64_t>{2, 2, 2, 2, 1}));
  EXPECT_EQ(sym.factor_nnz, 9);
}

TEST(Symbolic, DenseCliqueCounts) {
  // Complete graph K4: L is full lower triangle.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) edges.emplace_back(i, j);
  }
  SparsePattern a(4, std::move(edges));
  auto sym = symbolic_cholesky(a, natural_ordering(4));
  EXPECT_EQ(sym.col_counts, (std::vector<std::int64_t>{4, 3, 2, 1}));
}

TEST(Symbolic, StarCenterFirstFillsCompletely) {
  // Center eliminated first -> remaining vertices form a clique.
  SparsePattern a(4, {{0, 1}, {0, 2}, {0, 3}});
  auto sym = symbolic_cholesky(a, natural_ordering(4));
  EXPECT_EQ(sym.col_counts, (std::vector<std::int64_t>{4, 3, 2, 1}));
  // Leaf-first ordering has no fill.
  auto sym2 = symbolic_cholesky(a, Ordering{1, 2, 3, 0});
  EXPECT_EQ(sym2.col_counts, (std::vector<std::int64_t>{2, 2, 2, 1}));
}

TEST(Symbolic, MatchesDenseReferenceOnRandomInstances) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + (int)rng.uniform(35);
    SparsePattern a = random_pattern(n, 3.5, rng);
    for (int o = 0; o < 2; ++o) {
      Ordering perm =
          o == 0 ? natural_ordering(n) : random_ordering(n, rng);
      auto sym = symbolic_cholesky(a, perm);
      EXPECT_EQ(sym.col_counts, column_counts_dense_reference(a, perm));
    }
  }
}

TEST(Symbolic, MatchesDenseReferenceOnGridWithNd) {
  SparsePattern a = grid2d_pattern(7, 7);
  auto perm = nested_dissection_2d(7, 7, 2);
  auto sym = symbolic_cholesky(a, perm);
  EXPECT_EQ(sym.col_counts, column_counts_dense_reference(a, perm));
}

TEST(Symbolic, CountsAreAtLeastOne) {
  Rng rng(37);
  SparsePattern a = random_pattern(120, 4.0, rng);
  auto sym = symbolic_cholesky(a, random_ordering(120, rng));
  for (auto c : sym.col_counts) EXPECT_GE(c, 1);
  EXPECT_EQ(sym.col_counts.back(), 1);  // last column: diagonal only
}

TEST(Symbolic, EtreeParentConsistentWithCounts) {
  // For a connected matrix, mu_j >= 2 for every non-root column.
  Rng rng(41);
  SparsePattern a = random_pattern(60, 3.0, rng);
  auto sym = symbolic_cholesky(a, natural_ordering(60));
  for (int j = 0; j < 60; ++j) {
    if (sym.etree_parent[j] != -1) EXPECT_GE(sym.col_counts[j], 2);
  }
}

}  // namespace
}  // namespace treesched

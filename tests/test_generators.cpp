#include "trees/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/simulator.hpp"
#include "sequential/postorder.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

TEST(Generators, ThreePartitionGadgetShape) {
  // m = 1, B = 10, a = {3, 3, 4} (B/4 < a_i < B/2 holds for 3 and 4).
  ThreePartitionInstance inst{{3, 3, 4}, 10};
  Tree t = threepartition_gadget(inst);
  // nodes: 1 root + 3 N_i + 3*1*(3+3+4) = 34.
  EXPECT_EQ(t.size(), 34);
  EXPECT_EQ(t.num_children(0), 3);
  EXPECT_EQ(t.num_children(1), 9);   // 3m * a_0 = 9
  EXPECT_EQ(t.num_children(3), 12);  // 3m * a_2 = 12
  auto bounds = threepartition_bounds(inst);
  EXPECT_EQ(bounds.processors, 30);
  EXPECT_DOUBLE_EQ(bounds.makespan_bound, 3.0);
  EXPECT_EQ(bounds.memory_bound, 33u);
}

TEST(Generators, InapproxTreeShapeAndCriticalPath) {
  const int n = 3, delta = 4;
  Tree t = inapprox_tree(n, delta);
  // per subtree: (delta^2 + 5*delta - 2)/2 = (16+20-2)/2 = 17; +1 root.
  EXPECT_EQ(t.size(), 3 * 17 + 1);
  // Critical path = delta + 2 nodes.
  EXPECT_EQ(t.height(), delta + 2);
  EXPECT_DOUBLE_EQ(t.critical_path(), (double)(delta + 2));
}

TEST(Generators, InapproxSequentialPeakIsNPlusDelta) {
  // Theorem 2's closed form: optimal sequential memory = n + delta.
  for (int n : {2, 4}) {
    for (int delta : {3, 5, 8}) {
      Tree t = inapprox_tree(n, delta);
      Schedule s = inapprox_sequential_schedule(t, n, delta);
      ASSERT_TRUE(validate_schedule(t, s, 1).ok) << "n=" << n;
      EXPECT_EQ(simulate(t, s).peak_memory, (MemSize)(n + delta));
    }
  }
}

TEST(Generators, InapproxProofScheduleIsMemoryOptimal) {
  // The optimal postorder should not beat the proof's bound n + delta
  // (the proof shows it is a lower bound too).
  const int n = 3, delta = 4;
  Tree t = inapprox_tree(n, delta);
  EXPECT_EQ(postorder(t).peak, (MemSize)(n + delta));
}

TEST(Generators, ForkTree) {
  Tree t = fork_tree(7);
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.num_children(0), 7);
  EXPECT_EQ(t.num_leaves(), 7);
}

TEST(Generators, InnerFirstAdversaryShape) {
  const int k = 5, p = 4;
  Tree t = innerfirst_adversary_tree(k, p);
  // spine 2k + (k-1)(p-1) side leaves.
  EXPECT_EQ(t.size(), 2 * k + (k - 1) * (p - 1));
  EXPECT_EQ(t.height(), 2 * k);
  // Sequential optimal postorder peak is p + 1.
  EXPECT_EQ(postorder(t).peak, (MemSize)(p + 1));
}

TEST(Generators, ChainsTreeShape) {
  const int chains = 4, len = 6;
  Tree t = chains_tree(chains, len);
  // spine `chains` + sum of chain lengths len..len+chains-1.
  int expected = chains;
  for (int j = 0; j < chains; ++j) expected += len + j;
  EXPECT_EQ(t.size(), expected);
  // All leaves at the same depth.
  auto depth = t.depths();
  std::set<NodeId> leaf_depths;
  for (NodeId i = 0; i < t.size(); ++i) {
    if (t.is_leaf(i)) leaf_depths.insert(depth[i]);
  }
  EXPECT_EQ(leaf_depths.size(), 1u);
  // Sequential memory is 3 (2 inputs + 1 output at spine joins).
  EXPECT_EQ(postorder(t).peak, 3u);
}

TEST(Generators, ChainsTreeSingleChainIsAChain) {
  Tree t = chains_tree(1, 5);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.max_degree(), 1);
  EXPECT_EQ(postorder(t).peak, 2u);
}

TEST(Generators, RandomTreeRespectsWeightRanges) {
  Rng rng(3);
  RandomTreeParams params;
  params.n = 500;
  params.min_output = 2;
  params.max_output = 9;
  params.min_exec = 1;
  params.max_exec = 4;
  params.min_work = 0.5;
  params.max_work = 1.5;
  Tree t = random_tree(params, rng);
  for (NodeId i = 0; i < t.size(); ++i) {
    EXPECT_GE(t.output_size(i), 2u);
    EXPECT_LE(t.output_size(i), 9u);
    EXPECT_GE(t.exec_size(i), 1u);
    EXPECT_LE(t.exec_size(i), 4u);
    EXPECT_GE(t.work(i), 0.5);
    EXPECT_LE(t.work(i), 1.5);
  }
}

TEST(Generators, DepthBiasDeepensTrees) {
  Rng rng(5);
  double shallow = 0, deep = 0;
  for (int rep = 0; rep < 10; ++rep) {
    shallow += random_pebble_tree(300, rng, 0.0).height();
    deep += random_pebble_tree(300, rng, 8.0).height();
  }
  EXPECT_GT(deep, shallow);
}

TEST(Generators, AllTreeShapesCounts) {
  // (n-1)! parent arrays with parent[i] < i.
  EXPECT_EQ(all_tree_shapes(1).size(), 1u);
  EXPECT_EQ(all_tree_shapes(2).size(), 1u);
  EXPECT_EQ(all_tree_shapes(3).size(), 2u);
  EXPECT_EQ(all_tree_shapes(4).size(), 6u);
  EXPECT_EQ(all_tree_shapes(5).size(), 24u);
}

TEST(Generators, RejectsBadParameters) {
  EXPECT_THROW(threepartition_gadget({{1, 2}, 3}), std::invalid_argument);
  EXPECT_THROW(inapprox_tree(0, 4), std::invalid_argument);
  EXPECT_THROW(inapprox_tree(2, 1), std::invalid_argument);
  EXPECT_THROW(innerfirst_adversary_tree(1, 4), std::invalid_argument);
  EXPECT_THROW(chains_tree(0, 5), std::invalid_argument);
  Rng rng(1);
  RandomTreeParams params;
  params.n = 0;
  EXPECT_THROW(random_tree(params, rng), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

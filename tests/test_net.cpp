// The networked front-end (src/net/): LineFramer robustness under
// adversarial chunkings (the framing satellite), and in-process
// end-to-end coverage of the epoll server over real loopback sockets —
// tagged out-of-order answers, ping/stats control lines, per-connection
// queue_full admission, oversized-line survival, cancel, half-close,
// abrupt disconnect, write backpressure, and graceful drain.

#include "net/line_framer.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dataset.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/service.hpp"
#include "trees/io.hpp"
#include "util/thread_pool.hpp"

namespace treesched {
namespace {

using net::Client;
using net::LineFramer;
using net::Server;
using net::ServerConfig;

// ---------------------------------------------------------------------------
// LineFramer: byte-by-byte and adversarial chunkings.
// ---------------------------------------------------------------------------

std::vector<LineFramer::Line> feed_str(LineFramer& framer,
                                       const std::string& chunk) {
  return framer.feed(chunk.data(), chunk.size());
}

TEST(LineFramer, ByteByByteProducesTheSameLines) {
  const std::string input = "random:60:1 Liu 1 id=7\ncancel id=7\nping\n";
  LineFramer framer;
  std::vector<std::string> lines;
  for (const char c : input) {
    for (LineFramer::Line& line : framer.feed(&c, 1)) {
      EXPECT_FALSE(line.overflow);
      lines.push_back(std::move(line.text));
    }
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "random:60:1 Liu 1 id=7");
  EXPECT_EQ(lines[1], "cancel id=7");
  EXPECT_EQ(lines[2], "ping");
  EXPECT_EQ(framer.partial_bytes(), 0u);
}

TEST(LineFramer, ManyLinesInOneChunkAndSplitsMidToken) {
  LineFramer framer;
  // Three lines, the last unterminated and split mid-token.
  auto lines = feed_str(framer, "a b\nc d\ne f");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "a b");
  EXPECT_EQ(lines[1].text, "c d");
  EXPECT_EQ(framer.partial_bytes(), 3u);
  // The token "f" continues in the next chunk — "e f" + "g" = "e fg".
  lines = feed_str(framer, "g h\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].text, "e fg h");
}

TEST(LineFramer, StripsCarriageReturns) {
  LineFramer framer;
  const auto lines = feed_str(framer, "ping\r\npong\r\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "ping");
  EXPECT_EQ(lines[1].text, "pong");
}

TEST(LineFramer, OversizedLineOverflowsAndTheStreamRecovers) {
  LineFramer framer(/*max_line=*/8);
  // 20 payload bytes, then a clean line — fed in awkward chunks.
  auto lines = feed_str(framer, "0123456789");
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(framer.partial_bytes(), 8u) << "buffering stops at the limit";
  lines = feed_str(framer, "abcdefghij\nok line\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].overflow);
  EXPECT_EQ(lines[0].text, "01234567") << "truncated to max_line";
  EXPECT_EQ(lines[0].wire_bytes, 20u) << "counts the discarded bytes too";
  EXPECT_FALSE(lines[1].overflow);
  EXPECT_EQ(lines[1].text, "ok line");
}

TEST(LineFramer, FinishFlushesTheUnterminatedTail) {
  LineFramer framer;
  EXPECT_FALSE(framer.finish().has_value()) << "nothing buffered";
  (void)feed_str(framer, "stats");
  const auto last = framer.finish();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->text, "stats");
  EXPECT_FALSE(framer.finish().has_value()) << "finish() consumes";
}

// ---------------------------------------------------------------------------
// End-to-end: a real Server on 127.0.0.1, in-process, driven by Client.
// ---------------------------------------------------------------------------

/// Service + server + I/O thread, torn down in the right order.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config = {},
                         ServiceConfig service_config = {})
      : service_(service_config), server_(service_, config) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~ServerHarness() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.stop();
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] SchedulingService& service() { return service_; }

 private:
  SchedulingService service_;
  Server server_;
  std::thread thread_;
};

Client connect(const ServerHarness& harness) {
  return Client("127.0.0.1", harness.port());
}

/// Heavy-enough request lines to keep pool workers busy; distinct p per
/// index keeps every cache key distinct.
std::string heavy_line(int index, const std::string& extra = "") {
  return "synthetic:20000:1 ParDeepestFirst " + std::to_string(2 + index) +
         " priority=interactive" + extra;
}

TEST(ScheduleServer, AnswersAndCachesOverTheWire) {
  ServerHarness harness;
  Client client = connect(harness);
  const ResponseLine first = client.request("random:300:1 Liu 1 id=1");
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(first.algo, "Liu");
  EXPECT_EQ(first.n, 300);
  EXPECT_GT(first.makespan, 0.0);
  const ResponseLine second = client.request("random:300:1 Liu 1 id=2");
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit) << "same key must hit the result cache";
  EXPECT_EQ(second.makespan, first.makespan) << "bit-identical answers";
}

TEST(ScheduleServer, TaggedAnswersMayArriveOutOfOrder) {
  ServerHarness harness;
  Client client = connect(harness);
  // One write, two tagged requests: answers may stream in either order;
  // the tags keep them attributable.
  client.send_line("random:400:2 ParSubtrees 4 id=10");
  client.send_line("random:200:3 Liu 1 id=11");
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 2; ++i) {
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    const ResponseLine resp = parse_response_line(*line);
    EXPECT_TRUE(resp.ok);
    ASSERT_TRUE(resp.id.has_value());
    ids.push_back(*resp.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{10, 11}));
}

TEST(ScheduleServer, PingAndStatsAnswerImmediately) {
  ServerHarness harness;
  Client client = connect(harness);
  const ResponseLine pong = client.request("ping id=5");
  EXPECT_EQ(pong.kind, ResponseLine::Kind::kPong);
  EXPECT_EQ(pong.id, 5u);

  (void)client.request("random:100:1 Liu 1 id=1");
  const ResponseLine stats = client.request("stats id=6");
  EXPECT_EQ(stats.kind, ResponseLine::Kind::kStats);
  EXPECT_EQ(stats.id, 6u);
  std::uint64_t conns = 0, admitted = 0;
  bool saw_conns = false, saw_admitted = false;
  for (const auto& [key, value] : stats.stats) {
    if (key == "conns") {
      conns = value;
      saw_conns = true;
    }
    if (key == "queue_admitted") {
      admitted = value;
      saw_admitted = true;
    }
  }
  ASSERT_TRUE(saw_conns);
  ASSERT_TRUE(saw_admitted);
  EXPECT_EQ(conns, 1u);
  EXPECT_GE(admitted, 1u);
}

TEST(ScheduleServer, TraceDumpIsRefusedWithoutATraceDir) {
  // A dump names a file the SERVER writes; with no --trace-dir
  // configured (the default) any network client asking for one must get
  // a typed refusal, never a file.
  ServerHarness harness;
  Client client = connect(harness);
  const ResponseLine err = client.request("trace dump=t.json id=1");
  ASSERT_FALSE(err.ok);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_EQ(err.id, 1u);
  // The connection survives, and the no-file trace verbs still answer.
  const ResponseLine status = client.request("trace status id=2");
  EXPECT_EQ(status.kind, ResponseLine::Kind::kTrace);
  EXPECT_TRUE(status.ok);
  EXPECT_EQ(status.id, 2u);
}

TEST(ScheduleServer, TraceDumpIsConfinedToTheConfiguredDir) {
  std::string dir = ::testing::TempDir();
  if (dir.empty() || dir.back() != '/') dir += '/';
  ServerConfig config;
  config.trace_dir = dir;
  ServerHarness harness(config);
  Client client = connect(harness);
  // Every way out of the directory is a typed error, never a write.
  for (const char* line : {"trace dump=/etc/evil id=1",
                           "trace dump=../evil.json id=2",
                           "trace dump=a/../evil.json id=3",
                           "trace dump=./evil.json id=4"}) {
    const ResponseLine err = client.request(line);
    ASSERT_FALSE(err.ok) << line;
    EXPECT_EQ(err.code, ErrorCode::kBadRequest) << line;
  }
  // A plain relative name lands inside the configured directory.
  const std::string path = dir + "net_trace_dump.json";
  std::remove(path.c_str());
  const ResponseLine ok = client.request("trace dump=net_trace_dump.json id=5");
  EXPECT_EQ(ok.kind, ResponseLine::Kind::kTrace);
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.id, 5u);
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "dump did not land in the trace dir: " << path;
  std::remove(path.c_str());
}

TEST(ScheduleServer, FileSpecsAreRefusedWithoutATreeDir) {
  // A file: spec names a file the SERVER reads; with no --tree-dir
  // configured (the default) any network client asking for one must get
  // a typed refusal — and the error text must never carry file contents.
  ServerHarness harness;
  Client client = connect(harness);
  const ResponseLine err = client.request("file:/etc/passwd Liu 1 id=1");
  ASSERT_FALSE(err.ok);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  EXPECT_EQ(err.id, 1u);
  EXPECT_EQ(err.message.find("root:"), std::string::npos)
      << "error text leaked file contents: " << err.message;
  EXPECT_NE(err.message.find("tree-dir"), std::string::npos)
      << "the refusal should point at the --tree-dir opt-in";
  // No tree was read or interned, and the connection survives.
  EXPECT_EQ(harness.service().store_stats().unique_trees, 0u);
  const ResponseLine ok = client.request("random:100:1 Liu 1 id=2");
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.id, 2u);
}

TEST(ScheduleServer, FileSpecsAreConfinedToTheConfiguredTreeDir) {
  std::string dir = ::testing::TempDir();
  if (dir.empty() || dir.back() != '/') dir += '/';
  const std::string path = dir + "net_spec_tree.txt";
  write_tree_file(path, tree_from_spec("random:40:7"));
  ServerConfig config;
  config.tree_dir = dir;
  ServerHarness harness(config);
  Client client = connect(harness);
  // Every way out of the directory is a typed error, never a read.
  for (const char* line : {"file:/etc/passwd Liu 1 id=1",
                           "file:../evil.txt Liu 1 id=2",
                           "file:a/../../evil.txt Liu 1 id=3",
                           "file:./net_spec_tree.txt Liu 1 id=4"}) {
    const ResponseLine err = client.request(line);
    ASSERT_FALSE(err.ok) << line;
    EXPECT_EQ(err.code, ErrorCode::kBadRequest) << line;
    EXPECT_EQ(err.message.find("root:"), std::string::npos) << line;
  }
  // A plain relative name inside the tree dir is served.
  const ResponseLine ok = client.request("file:net_spec_tree.txt Liu 1 id=5");
  ASSERT_TRUE(ok.ok) << ok.message;
  EXPECT_EQ(ok.id, 5u);
  EXPECT_EQ(ok.n, 40);
  EXPECT_GT(ok.makespan, 0.0);
  std::remove(path.c_str());
}

TEST(ScheduleServer, HostileGeneratorSpecsAreRejectedBeforeAllocation) {
  ServerHarness harness;  // default --max-spec-nodes = 2'000'000
  Client client = connect(harness);
  // Each hostile spec gets exactly one typed bad_request: a 2-billion-node
  // ask (would be ~tens of GiB), a negative count, and a non-numeric one.
  for (const char* line : {"random:2000000000:1 Liu 1 id=1",
                           "random:-5:1 Liu 1 id=2",
                           "synthetic:999999999999999999999:1 Liu 1 id=3",
                           "grid:80000:80000:2 Liu 1 id=4"}) {
    const ResponseLine err = client.request(line);
    ASSERT_FALSE(err.ok) << line;
    EXPECT_EQ(err.code, ErrorCode::kBadRequest) << line;
  }
  // Nothing was allocated or interned, and the same socket still works.
  EXPECT_EQ(harness.service().store_stats().unique_trees, 0u);
  const ResponseLine ok = client.request("random:100:1 Liu 1 id=9");
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.id, 9u);
}

TEST(ScheduleServer, OversizedLineAnswersBadRequestAndTheConnectionSurvives) {
  ServerConfig config;
  config.max_line = 128;
  ServerHarness harness(config);
  Client client = connect(harness);
  const ResponseLine err =
      client.request(std::string(4096, 'x'));  // one huge bogus line
  ASSERT_FALSE(err.ok);
  EXPECT_EQ(err.code, ErrorCode::kBadRequest);
  // Same socket keeps working, correctly framed.
  const ResponseLine ok = client.request("random:100:1 Liu 1 id=1");
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.id, 1u);
}

TEST(ScheduleServer, PerConnectionWindowRejectsWithTypedQueueFull) {
  ServerConfig config;
  config.max_pending = 1;
  ServerHarness harness(config);
  Client client = connect(harness);
  // Both lines in ONE write: they are framed and admitted within one
  // read batch, and completions only ever re-enter the loop as posted
  // events — so the second line deterministically sees a full window.
  client.send_line("synthetic:20000:1 ParDeepestFirst 2 id=1");
  client.send_line("random:100:9 Liu 1 id=2");
  bool saw_ok = false, saw_queue_full = false;
  for (int i = 0; i < 2; ++i) {
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    const ResponseLine resp = parse_response_line(*line);
    if (resp.ok) {
      EXPECT_EQ(resp.id, 1u);
      saw_ok = true;
    } else {
      EXPECT_EQ(resp.code, ErrorCode::kQueueFull);
      EXPECT_EQ(resp.id, 2u);
      saw_queue_full = true;
    }
  }
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_queue_full);
}

TEST(ScheduleServer, CancelStillQueuedAnswersCancelled) {
  ServerConfig config;
  config.max_pending = 1024;
  ServerHarness harness(config);
  Client client = connect(harness);
  // The saturate() pattern over the wire: every pool worker pinned by
  // interactive work with queued entries to spare, so the Bulk request
  // behind them is still queued when the cancel arrives.
  const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
  for (std::size_t i = 0; i < backlog; ++i) {
    client.send_line(heavy_line(static_cast<int>(i),
                                " id=" + std::to_string(100 + i)));
  }
  client.send_line("random:100:1 Liu 1 priority=bulk id=7");
  client.send_line("cancel id=7");
  client.shutdown_write();
  std::size_t answers = 0;
  bool id7_cancelled = false;
  while (const auto line = client.recv_line()) {
    const ResponseLine resp = parse_response_line(*line);
    ++answers;
    if (resp.id && *resp.id == 7) {
      EXPECT_FALSE(resp.ok);
      EXPECT_EQ(resp.code, ErrorCode::kCancelled);
      id7_cancelled = resp.code == ErrorCode::kCancelled;
    }
  }
  EXPECT_EQ(answers, backlog + 1) << "every request answered exactly once";
  EXPECT_TRUE(id7_cancelled);
}

TEST(ScheduleServer, CancelOfUnknownIdAnswersBadRequestAck) {
  ServerHarness harness;
  Client client = connect(harness);
  const ResponseLine ack = client.request("cancel id=404");
  ASSERT_FALSE(ack.ok);
  EXPECT_EQ(ack.code, ErrorCode::kBadRequest);
  EXPECT_FALSE(ack.id.has_value())
      << "late-cancel acks must never duplicate an id on the wire";
}

TEST(ScheduleServer, HalfCloseAnswersEverythingThenEof) {
  ServerHarness harness;
  Client client = connect(harness);
  client.send_line("random:500:1 ParSubtrees 4 id=1");
  client.send_line("random:500:1 ParSubtrees 8 id=2");
  client.send_line("ping");  // unterminated tail exercised separately
  client.shutdown_write();
  std::size_t lines = 0;
  while (client.recv_line()) ++lines;
  EXPECT_EQ(lines, 3u) << "all pending answers flushed before close";
}

TEST(ScheduleServer, UnterminatedFinalLineStillAnswersAtEof) {
  ServerHarness harness;
  Client client = connect(harness);
  // "ping" with no trailing newline, then half-close: the framer's
  // finish() grants it the same grace getline gives the stdin service.
  const std::string bare = "ping";
  ASSERT_EQ(::send(client.fd(), bare.data(), bare.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bare.size()));
  client.shutdown_write();
  const auto line = client.recv_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "pong");
  EXPECT_FALSE(client.recv_line().has_value());
}

TEST(ScheduleServer, AbruptDisconnectCancelsAndTheServerSurvives) {
  ServerHarness harness;
  {
    Client doomed = connect(harness);
    const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
    for (std::size_t i = 0; i < backlog; ++i) {
      doomed.send_line(heavy_line(static_cast<int>(i)));
    }
    for (int i = 0; i < 8; ++i) {
      doomed.send_line("random:100:1 Liu 1 priority=bulk id=" +
                       std::to_string(i));
    }
    doomed.close();  // mid-batch, nothing read: the abrupt path
  }
  // The server keeps serving other clients…
  Client alive = connect(harness);
  const ResponseLine pong = alive.request("ping");
  EXPECT_EQ(pong.kind, ResponseLine::Kind::kPong);
  const ResponseLine ok = alive.request("random:100:2 Liu 1 id=1");
  EXPECT_TRUE(ok.ok);
  // …and the harness destructor's stop() verifies the drain: run()
  // returns only once the vanished client's tickets are all settled
  // (cancelled or computed), so a leak would hang this test.
}

TEST(ScheduleServer, WriteBackpressureDeliversEverythingToASlowReader) {
  ServerConfig config;
  config.max_wbuf = 2048;  // tiny: force EPOLLOUT flushing + read pauses
  config.max_pending = 4096;
  ServerHarness harness(config);
  Client client = connect(harness);
  // A few hundred cache-hot requests written without reading a single
  // answer: the server must stop reading when its write buffer fills,
  // resume as we drain, and deliver every answer exactly once.
  constexpr int kRequests = 400;
  for (int i = 0; i < kRequests; ++i) {
    client.send_line("random:200:1 Liu 1 id=" + std::to_string(i));
  }
  client.shutdown_write();
  std::vector<bool> seen(kRequests, false);
  std::size_t answers = 0;
  while (const auto line = client.recv_line()) {
    const ResponseLine resp = parse_response_line(*line);
    ASSERT_TRUE(resp.id.has_value());
    ASSERT_LT(*resp.id, static_cast<std::uint64_t>(kRequests));
    EXPECT_FALSE(seen[static_cast<std::size_t>(*resp.id)]);
    seen[static_cast<std::size_t>(*resp.id)] = true;
    ++answers;
  }
  EXPECT_EQ(answers, static_cast<std::size_t>(kRequests));
}

TEST(ScheduleServer, StopDrainsPendingAnswersBeforeReturning) {
  auto harness = std::make_unique<ServerHarness>();
  Client client = connect(*harness);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    client.send_line(heavy_line(i, " id=" + std::to_string(i)));
  }
  // Give the server a beat to frame them, then drain while they
  // compute: every framed request must still be answered.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  harness->stop();
  std::size_t answers = 0;
  while (const auto line = client.recv_line()) {
    const ResponseLine resp = parse_response_line(*line);
    EXPECT_TRUE(resp.ok);
    ++answers;
  }
  EXPECT_EQ(answers, static_cast<std::size_t>(kRequests))
      << "graceful drain answers what was accepted before closing";
}

TEST(ScheduleServer, MaxConnsGreetsTheExcessWithQueueFull) {
  ServerConfig config;
  config.max_conns = 2;
  ServerHarness harness(config);
  Client first = connect(harness);
  Client second = connect(harness);
  // Poke both so the server has surely accepted them before the third
  // connection arrives (accept order is deterministic per listen
  // backlog, but the ping round-trips make it explicit).
  (void)first.request("ping");
  (void)second.request("ping");
  Client third = connect(harness);
  const auto line = third.recv_line();
  ASSERT_TRUE(line.has_value());
  const ResponseLine resp = parse_response_line(*line);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kQueueFull);
  EXPECT_FALSE(third.recv_line().has_value()) << "closed after the greeting";
}

}  // namespace
}  // namespace treesched
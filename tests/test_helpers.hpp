#pragma once
// Shared helpers for the test suite.

#include <vector>

#include "core/tree.hpp"

namespace treesched::testing {

/// Builds a tree from a parent array with pebble-game weights.
inline Tree pebble_tree(std::vector<NodeId> parent) {
  const std::size_t n = parent.size();
  return Tree(std::move(parent), std::vector<MemSize>(n, 1),
              std::vector<MemSize>(n, 0), std::vector<double>(n, 1.0));
}

/// Builds a tree from parallel arrays.
inline Tree make_tree(std::vector<NodeId> parent, std::vector<MemSize> out,
                      std::vector<MemSize> exec, std::vector<double> work) {
  return Tree(std::move(parent), std::move(out), std::move(exec),
              std::move(work));
}

/// The paper's running example shape: a small two-level tree.
///        0
///      / | \
///     1  2  3
///    /|     |
///   4 5     6
inline Tree example_tree() {
  return pebble_tree({kNoNode, 0, 0, 0, 1, 1, 3});
}

}  // namespace treesched::testing

#include "spmatrix/amalgamation.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace treesched {
namespace {

SymbolicResult path_symbolic(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  SparsePattern a(n, std::move(edges));
  return symbolic_cholesky(a, natural_ordering(n));
}

TEST(Amalgamation, CapOneWithoutFundamentalKeepsEliminationTree) {
  auto sym = path_symbolic(6);
  auto at = amalgamate(sym, 1, /*fundamental_supernodes=*/false);
  EXPECT_EQ(at.nodes.size(), 6u);
  for (std::size_t i = 0; i < at.nodes.size(); ++i) {
    EXPECT_EQ(at.nodes[i].eta, 1);
  }
}

TEST(Amalgamation, PathCollapsesUnderFundamentalRule) {
  // On a path, every non-root column has mu=2 and the parent mu=2 except
  // the root (mu=1): fundamental merges only where mu_c == mu_p + 1, i.e.
  // the column just below the root.
  auto sym = path_symbolic(5);
  auto at = amalgamate(sym, 1, /*fundamental_supernodes=*/true);
  // Column 3 (mu=2) merges into root 4 (mu=1): 4 nodes remain.
  EXPECT_EQ(at.nodes.size(), 4u);
  std::int64_t total_eta = 0;
  for (const auto& node : at.nodes) total_eta += node.eta;
  EXPECT_EQ(total_eta, 5);
}

TEST(Amalgamation, EtaNeverExceedsCapWithoutFundamental) {
  Rng rng(3);
  SparsePattern a = random_pattern(200, 4.0, rng);
  auto sym = symbolic_cholesky(a, minimum_degree_ordering(a));
  for (std::int64_t z : {1, 2, 4, 16}) {
    auto at = amalgamate(sym, z, /*fundamental_supernodes=*/false);
    std::int64_t total = 0;
    for (const auto& node : at.nodes) {
      EXPECT_LE(node.eta, z);
      total += node.eta;
    }
    EXPECT_EQ(total, 200);  // every column accounted for exactly once
  }
}

TEST(Amalgamation, LargerCapMeansFewerNodes) {
  Rng rng(5);
  SparsePattern a = random_pattern(300, 5.0, rng);
  auto sym = symbolic_cholesky(a, minimum_degree_ordering(a));
  std::size_t prev = (std::size_t)-1;
  for (std::int64_t z : {1, 2, 4, 16}) {
    auto at = amalgamate(sym, z);
    EXPECT_LE(at.nodes.size(), prev);
    prev = at.nodes.size();
  }
}

TEST(Amalgamation, ParentPointersFormAForestRespectingColumns) {
  Rng rng(7);
  SparsePattern a = random_pattern(150, 4.0, rng);
  auto sym = symbolic_cholesky(a, minimum_degree_ordering(a));
  auto at = amalgamate(sym, 4);
  const int m = (int)at.nodes.size();
  int roots = 0;
  for (int i = 0; i < m; ++i) {
    const int p = at.nodes[i].parent;
    if (p == -1) {
      ++roots;
    } else {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, m);
      EXPECT_NE(p, i);
    }
  }
  EXPECT_EQ(roots, 1);  // connected matrix -> one tree
  // node_of_column maps every column into range.
  for (int c = 0; c < 150; ++c) {
    ASSERT_GE(at.node_of_column[c], 0);
    ASSERT_LT(at.node_of_column[c], m);
  }
}

TEST(Amalgamation, ChildColumnMapsToSameNodeAfterMerge) {
  auto sym = path_symbolic(4);
  auto at = amalgamate(sym, 4, /*fundamental_supernodes=*/false);
  // Cap 4 on a 4-path merges everything into one node chain-wise.
  EXPECT_EQ(at.nodes.size(), 1u);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(at.node_of_column[c], 0);
  EXPECT_EQ(at.nodes[0].eta, 4);
  EXPECT_EQ(at.nodes[0].mu, 1);  // root column count
}

TEST(Amalgamation, MuIsTopColumnCount) {
  auto sym = path_symbolic(6);
  auto at = amalgamate(sym, 2, /*fundamental_supernodes=*/false);
  // Pairs merge: (0,1), (2,3), (4,5): three nodes with mu of columns 1,3,5.
  ASSERT_EQ(at.nodes.size(), 3u);
  EXPECT_EQ(at.nodes[0].mu, sym.col_counts[1]);
  EXPECT_EQ(at.nodes[2].mu, sym.col_counts[5]);
}

TEST(Amalgamation, RejectsBadCap) {
  auto sym = path_symbolic(3);
  EXPECT_THROW(amalgamate(sym, 0), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

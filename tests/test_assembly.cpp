#include "spmatrix/assembly.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sequential/postorder.hpp"
#include "spmatrix/ordering.hpp"
#include "spmatrix/symbolic.hpp"

namespace treesched {
namespace {

TEST(AssemblyWeights, PaperFormulas) {
  // eta = 2, mu = 4: n = 4 + 2*2*3 = 16; f = 9; w = 16/3 + 12 + 18.
  auto w = assembly_weights(2, 4);
  EXPECT_EQ(w.exec_size, 16u);
  EXPECT_EQ(w.output_size, 9u);
  EXPECT_DOUBLE_EQ(w.work, 2.0 / 3.0 * 8 + 4 * 3 + 2 * 9);
}

TEST(AssemblyWeights, RootWithMuOneHasEmptyOutput) {
  auto w = assembly_weights(3, 1);
  EXPECT_EQ(w.output_size, 0u);
  EXPECT_EQ(w.exec_size, 9u);
  EXPECT_DOUBLE_EQ(w.work, 18.0);  // 2/3*27
}

TEST(AssemblyWeights, RejectsBadInputs) {
  EXPECT_THROW(assembly_weights(0, 3), std::invalid_argument);
  EXPECT_THROW(assembly_weights(2, 0), std::invalid_argument);
}

TEST(AssemblyToTaskTree, GridPipelineEndToEnd) {
  SparsePattern a = grid2d_pattern(8, 8);
  auto sym = symbolic_cholesky(a, nested_dissection_2d(8, 8));
  auto at = amalgamate(sym, 4);
  std::vector<int> back;
  Tree t = assembly_to_task_tree(at, &back);
  EXPECT_EQ(t.size(), (NodeId)at.nodes.size());
  // Weights follow the formulas node by node.
  for (NodeId i = 0; i < t.size(); ++i) {
    const auto& node = at.nodes[back[i]];
    const auto w = assembly_weights(node.eta, node.mu);
    EXPECT_EQ(t.exec_size(i), w.exec_size);
    EXPECT_EQ(t.output_size(i), w.output_size);
    EXPECT_DOUBLE_EQ(t.work(i), w.work);
  }
  // The tree is schedulable sequentially.
  auto po = postorder(t);
  EXPECT_EQ(sequential_peak_memory(t, po.order), po.peak);
  EXPECT_GT(po.peak, 0u);
}

TEST(AssemblyToTaskTree, RootOutputIsEmptyForConnectedMatrix) {
  SparsePattern a = grid2d_pattern(6, 6);
  auto sym = symbolic_cholesky(a, natural_ordering(36));
  auto at = amalgamate(sym, 2);
  Tree t = assembly_to_task_tree(at);
  // Root assembly node holds the last column (mu = 1) -> f = 0.
  EXPECT_EQ(t.output_size(t.root()), 0u);
}

TEST(AssemblyToTaskTree, ForestGetsVirtualRoot) {
  AssemblyTree at;
  at.nodes.push_back({-1, 1, 1});
  at.nodes.push_back({-1, 2, 1});
  at.node_of_column = {0, 1, 1};
  std::vector<int> back;
  Tree t = assembly_to_task_tree(at, &back);
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(back.back(), -1);
  EXPECT_EQ(t.work(t.root()), 0.0);
  EXPECT_EQ(t.num_children(t.root()), 2);
}

TEST(AssemblyToTaskTree, RejectsEmpty) {
  AssemblyTree at;
  EXPECT_THROW(assembly_to_task_tree(at), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

// The cluster router (src/cluster/): the consistent-hash ring's wire
// contracts (pinned point hash, determinism across add order, balance,
// the ~1/N remap property, the failover walk), the engineered
// fingerprint-collision intern test, and in-process end-to-end coverage
// over real loopback sockets — routing consistency against an
// independently built ring, cluster-wide cache hits through the router,
// node death mid-request with retry-on-alternate, the typed
// node_unavailable error, upstream backpressure, router-side cancel,
// and the drain-timeout bound on both the router and the server.

#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/dataset.hpp"
#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "service/instance_store.hpp"
#include "service/service.hpp"
#include "util/hash.hpp"

namespace treesched {
namespace {

using cluster::HashRing;
using cluster::Router;
using cluster::RouterConfig;
using net::Client;
using net::Server;
using net::ServerConfig;

// ---------------------------------------------------------------------------
// HashRing: the placement function is a wire-level contract.
// ---------------------------------------------------------------------------

TEST(HashRing, PointHashIsThePinnedFnvSplitmixChain) {
  // The ring's point hash must be FNV-1a over the node name folded
  // through the repo's mix64 — never std::hash — because a second
  // router (or this test) has to agree with the first byte-for-byte.
  const auto reference = [](std::string_view node, int replica) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : node) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    return mix64(h ^ mix64(static_cast<std::uint64_t>(replica)));
  };
  for (const std::string_view name :
       {"127.0.0.1:3714", "127.0.0.1:3715", "node-a", ""}) {
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(HashRing::point_hash(name, r), reference(name, r))
          << name << " replica " << r;
    }
  }
  EXPECT_NE(HashRing::point_hash("a", 0), HashRing::point_hash("a", 1));
  EXPECT_NE(HashRing::point_hash("a", 0), HashRing::point_hash("b", 0));
}

TEST(HashRing, PlacementIsDeterministicAcrossInstancesAndAddOrder) {
  const std::vector<std::string> names{"n0", "n1", "n2", "n3"};
  HashRing forward(64);
  HashRing reversed(64);
  for (const auto& n : names) forward.add(n);
  for (auto it = names.rbegin(); it != names.rend(); ++it) reversed.add(*it);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::uint64_t key = mix64(i);
    const auto a = forward.pick(key);
    const auto b = reversed.pick(key);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    // Dense indices depend on add order; the placed NAME must not.
    ASSERT_EQ(forward.node_name(*a), reversed.node_name(*b)) << "key " << i;
  }
}

TEST(HashRing, VirtualNodesBalanceTheKeySpace) {
  constexpr std::size_t kNodes = 4;
  constexpr std::uint64_t kKeys = 100000;
  HashRing ring(64);
  for (std::size_t i = 0; i < kNodes; ++i) {
    ring.add("10.0.0." + std::to_string(i) + ":3714");
  }
  std::vector<std::uint64_t> counts(kNodes, 0);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    // Stand-ins for tree fingerprints: mixed 64-bit values.
    const auto node = ring.pick(mix64(0xf1f1f1f1ULL ^ i));
    ASSERT_TRUE(node.has_value());
    ++counts[*node];
  }
  // 64 vnodes keep the per-node share spread around 1/sqrt(64) = 12.5%
  // relative; the bounds here are deliberately loose (the spread is a
  // property of the fixed point placement, not sampling noise).
  double chi2 = 0.0;
  const double expected = static_cast<double>(kKeys) / kNodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    const double share = static_cast<double>(counts[i]) / kKeys;
    EXPECT_GT(share, 0.15) << "node " << i << " starved";
    EXPECT_LT(share, 0.35) << "node " << i << " overloaded";
    const double d = static_cast<double>(counts[i]) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 5000.0) << "placement skew beyond the vnode spread";
}

TEST(HashRing, RemovingANodeRemapsOnlyItsKeys) {
  constexpr std::size_t kNodes = 5;
  constexpr std::uint64_t kKeys = 20000;
  HashRing ring(64);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < kNodes; ++i) {
    names.push_back("node-" + std::to_string(i));
    ring.add(names.back());
  }
  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    before[i] = *ring.pick(mix64(i));
  }
  const std::size_t removed = 2;
  ring.remove(names[removed]);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::size_t now = *ring.pick(mix64(i));
    EXPECT_NE(now, removed);
    if (before[i] == removed) {
      ++moved;
    } else {
      // The classic consistent-hashing property: keys that were NOT on
      // the removed node must not move at all.
      ASSERT_EQ(now, before[i]) << "key " << i << " moved gratuitously";
    }
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.10) << "the removed node held far under 1/N";
  EXPECT_LT(fraction, 0.33) << "the removed node held far over 1/N";
}

TEST(HashRing, WalkIsTheFailoverOrderAndSkipsRemovedNodes) {
  HashRing ring(32);
  for (int i = 0; i < 4; ++i) ring.add("n" + std::to_string(i));
  for (std::uint64_t key : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    std::vector<std::size_t> order;
    ring.walk(key, [&](std::size_t node) {
      order.push_back(node);
      return false;
    });
    ASSERT_EQ(order.size(), 4u) << "walk must visit every distinct node";
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(order.front(), *ring.pick(key)) << "primary first";

    // Removing the primary must shift every alternate up one slot and
    // change nothing else — the failover order is shared by the primary
    // pick, retry-on-alternate, and the re-pick after a death.
    HashRing degraded(32);
    for (int i = 0; i < 4; ++i) degraded.add("n" + std::to_string(i));
    degraded.remove("n" + std::to_string(order.front()));
    std::vector<std::size_t> after;
    degraded.walk(key, [&](std::size_t node) {
      after.push_back(node);
      return false;
    });
    EXPECT_EQ(after, std::vector<std::size_t>(order.begin() + 1, order.end()));
  }
}

TEST(HashRing, AddIsIdempotentAndIndicesAreStable) {
  HashRing ring(16);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pick(7).has_value());
  const std::size_t a = ring.add("a");
  const std::size_t b = ring.add("b");
  EXPECT_EQ(ring.add("a"), a) << "re-adding a present node is a no-op";
  EXPECT_EQ(ring.node_count(), 2u);
  std::vector<std::size_t> before(256);
  for (std::uint64_t i = 0; i < before.size(); ++i) {
    before[i] = *ring.pick(i);
  }
  ring.remove("b");
  for (std::uint64_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(*ring.pick(i), a) << "only one node left";
  }
  // Re-adding restores the exact placement: the index was never freed.
  EXPECT_EQ(ring.add("b"), b);
  for (std::uint64_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(*ring.pick(i), before[i]) << "key " << i;
  }
}

// ---------------------------------------------------------------------------
// Fingerprint collisions: placement may collide, identity may not.
// ---------------------------------------------------------------------------

TEST(Fingerprint, EngineeredCollisionInternsDistinctTrees) {
  // tree_fingerprint chains state = mix64(state ^ v) over the fed
  // values (count, then per node: parent, output, exec, work). The
  // chain is invertible step-by-step, so two single-node trees that
  // differ in output_size can be forced to collide by solving for the
  // exec_size that re-converges the state — no brute force needed:
  //   mix64(S0 ^ o1) ^ e1 == mix64(S0 ^ o2) ^ e2
  const auto feed = [](std::uint64_t s, std::uint64_t v) {
    return mix64(s ^ v);
  };
  std::uint64_t s = 0x5eed5eed5eed5eedULL;
  s = feed(s, 1);  // node count
  s = feed(s, static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(kNoNode)));  // root's parent
  const std::uint64_t o1 = 1, e1 = 1, o2 = 2;
  const std::uint64_t e2 = feed(s, o1) ^ e1 ^ feed(s, o2);

  const Tree a({kNoNode}, {o1}, {e1}, {1.0});
  const Tree b({kNoNode}, {o2}, {e2}, {1.0});
  ASSERT_EQ(tree_fingerprint(a), tree_fingerprint(b))
      << "the engineered collision must actually collide";
  ASSERT_FALSE(trees_identical(a, b));

  // The store must disambiguate by full content comparison: both trees
  // intern (two misses, no false hit) under the same hash bucket but
  // with DISTINCT uids — downstream caches key by uid, so the collision
  // can never alias their results. The router may route both to the
  // same node (placement collides harmlessly); identity does not.
  InstanceStore store;
  const TreeHandle ha = store.intern(a);
  const TreeHandle hb = store.intern(b);
  EXPECT_EQ(ha.hash, hb.hash);
  EXPECT_NE(ha.uid, hb.uid);
  EXPECT_TRUE(trees_identical(*ha, a));
  EXPECT_TRUE(trees_identical(*hb, b));
  const InstanceStore::Stats stats = store.stats();
  EXPECT_EQ(stats.unique_trees, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: real backends, a real router, real loopback sockets.
// ---------------------------------------------------------------------------

/// One backend node: service + server + I/O thread (test_net's harness).
class BackendHarness {
 public:
  explicit BackendHarness(ServerConfig config = {})
      : service_(ServiceConfig{}), server_(service_, config) {
    thread_ = std::thread([this] { server_.run(); });
  }

  ~BackendHarness() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.stop();
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return server_.port(); }
  [[nodiscard]] std::string name() const {
    return "127.0.0.1:" + std::to_string(port());
  }

 private:
  SchedulingService service_;
  Server server_;
  std::thread thread_;
};

/// A hand-driven backend speaking just enough v3 to be marked up by the
/// router's health checks (it answers ping and stats control frames)
/// while misbehaving on schedule requests: swallowing them forever
/// (kSilent — fills the router's upstream window/queue) or closing the
/// socket the moment one arrives (kCloseAbruptly — a node death timed
/// exactly mid-request). Deterministic where killing a real server
/// would race its graceful drain.
class FakeNode {
 public:
  enum class OnRequest { kSilent, kCloseAbruptly };

  explicit FakeNode(OnRequest behavior) : behavior_(behavior) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw std::runtime_error("FakeNode: socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("FakeNode: bind/listen");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~FakeNode() { stop(); }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
      if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
      ::shutdown(listen_fd_, SHUT_RDWR);
    }
    thread_.join();
    ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::string name() const {
    return "127.0.0.1:" + std::to_string(port_);
  }
  [[nodiscard]] std::uint64_t requests_seen() const {
    return requests_seen_.load();
  }

 private:
  void serve() {
    while (true) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) return;  // stop() shut the listener down
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
          ::close(cfd);
          return;
        }
        conn_fd_ = cfd;
      }
      handle_conn(cfd);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ::close(cfd);
        conn_fd_ = -1;
        if (stopping_) return;
      }
    }
  }

  void handle_conn(int cfd) {
    net::FrameReader reader;
    std::size_t magic_left = net::kFrameMagic.size();
    char buf[4096];
    while (true) {
      const ssize_t r = ::read(cfd, buf, sizeof(buf));
      if (r <= 0) return;
      const char* data = buf;
      auto len = static_cast<std::size_t>(r);
      if (magic_left > 0) {
        const std::size_t skip = std::min(magic_left, len);
        magic_left -= skip;
        data += skip;
        len -= skip;
      }
      reader.feed(data, len);
      net::Frame frame;
      while (reader.next(frame) == net::FrameReader::Status::kFrame) {
        if (frame.opcode == net::Opcode::kPing ||
            frame.opcode == net::Opcode::kStats) {
          std::optional<std::uint64_t> id;
          if (!net::decode_control_id(frame, id)) return;
          ResponseLine resp;
          resp.kind = frame.opcode == net::Opcode::kPing
                          ? ResponseLine::Kind::kPong
                          : ResponseLine::Kind::kStats;
          resp.ok = true;
          resp.id = id;
          if (resp.kind == ResponseLine::Kind::kStats) {
            resp.stats = {{"fake_node", 1}};
          }
          std::string out;
          net::FrameWriter(out).response(resp);
          if (!write_all(cfd, out)) return;
        } else if (frame.opcode == net::Opcode::kRequest) {
          requests_seen_.fetch_add(1);
          if (behavior_ == OnRequest::kCloseAbruptly) return;
          // kSilent: swallow the request, never answer.
        }
      }
    }
  }

  static bool write_all(int fd, const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (w <= 0) return false;
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  const OnRequest behavior_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::mutex mutex_;
  int conn_fd_ = -1;
  bool stopping_ = false;
  std::atomic<std::uint64_t> requests_seen_{0};
};

/// Router + I/O thread. Health cadence is cranked way down so tests
/// converge in milliseconds instead of the production quarter-second.
class RouterHarness {
 public:
  explicit RouterHarness(std::vector<std::string> nodes,
                         RouterConfig config = {}) {
    config.nodes = std::move(nodes);
    if (config.health_interval_ms == 250.0) config.health_interval_ms = 10.0;
    if (config.ping_timeout_ms == 2000.0) config.ping_timeout_ms = 1000.0;
    if (config.reconnect_backoff_ms == 500.0) {
      config.reconnect_backoff_ms = 20.0;
    }
    router_ = std::make_unique<Router>(std::move(config));
    thread_ = std::thread([this] { router_->run(); });
  }

  ~RouterHarness() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      router_->stop();
      thread_.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const { return router_->port(); }
  [[nodiscard]] Router& router() { return *router_; }

  /// Polls the router's own `stats` verb until it reports `n` live
  /// backends — requests sent before the first health tick connects
  /// would be answered node_unavailable, which is correct but not what
  /// a routing test wants to measure.
  [[nodiscard]] bool wait_nodes_up(std::uint64_t n,
                                   std::chrono::milliseconds deadline =
                                       std::chrono::milliseconds(5000)) {
    Client probe("127.0.0.1", port());
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      const ResponseLine stats = probe.request("stats");
      for (const auto& [key, value] : stats.stats) {
        if (key == "nodes_up" && value >= n) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

 private:
  std::unique_ptr<Router> router_;
  std::thread thread_;
};

std::uint64_t stat_value(const ResponseLine& stats, const std::string& key) {
  for (const auto& [k, v] : stats.stats) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "stats line is missing key " << key;
  return 0;
}

/// The fingerprint the router routes `spec` by, computed the same way
/// it computes it: resolve the spec, fingerprint the tree, drop it.
std::uint64_t spec_fingerprint(const std::string& spec) {
  return tree_fingerprint(tree_from_spec(spec));
}

/// A generator spec whose fingerprint the given ring places on `want`.
std::string spec_routed_to(const HashRing& ring, std::size_t want) {
  for (int seed = 1; seed < 200; ++seed) {
    std::string spec = "random:80:" + std::to_string(seed);
    if (*ring.pick(spec_fingerprint(spec)) == want) return spec;
  }
  ADD_FAILURE() << "no spec found routing to node " << want;
  return "random:80:1";
}

TEST(ClusterRouter, RoutesOverBothProtocolsAndSharesTheCacheAcrossThem) {
  BackendHarness node_a;
  BackendHarness node_b;
  RouterHarness router({node_a.name(), node_b.name()});
  ASSERT_TRUE(router.wait_nodes_up(2));

  Client text("127.0.0.1", router.port());
  const ResponseLine first = text.request("random:300:1 Liu 1 id=1");
  ASSERT_TRUE(first.ok) << first.message;
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(first.algo, "Liu");
  EXPECT_EQ(first.n, 300);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.makespan, 0.0);

  // A DIFFERENT client over the BINARY protocol sends the same spec:
  // the ring lands it on the same node, whose result cache answers.
  Client binary("127.0.0.1", router.port(), net::Protocol::kV3);
  const ResponseLine second = binary.request("random:300:1 Liu 1 id=2");
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_EQ(second.id, 2u);
  EXPECT_TRUE(second.cache_hit)
      << "same tree via another client+protocol must hit the node's cache";
  EXPECT_EQ(second.makespan, first.makespan) << "bit-identical answers";

  const ResponseLine pong = text.request("ping id=9");
  EXPECT_EQ(pong.kind, ResponseLine::Kind::kPong);
  EXPECT_EQ(pong.id, 9u);
}

TEST(ClusterRouter, PlacementMatchesAnIndependentlyBuiltRing) {
  BackendHarness node_a;
  BackendHarness node_b;
  RouterHarness router({node_a.name(), node_b.name()});
  ASSERT_TRUE(router.wait_nodes_up(2));

  // A second ring over the same names must agree with the router's —
  // that determinism is what makes the fingerprint a cluster-wide key.
  HashRing ring(router.router().config().vnodes);
  ring.add(node_a.name());
  ring.add(node_b.name());

  Client client("127.0.0.1", router.port());
  std::vector<std::uint64_t> predicted(2, 0);
  for (int seed = 1; seed <= 8; ++seed) {
    const std::string spec = "random:120:" + std::to_string(seed);
    const std::uint64_t fp = spec_fingerprint(spec);
    ++predicted[*ring.pick(fp)];
    const ResponseLine resp = client.request(spec + " Liu 1");
    ASSERT_TRUE(resp.ok) << resp.message;
    // The router computes the routing key with the same fingerprint the
    // backend reports in tree= — pin that they agree on the wire.
    EXPECT_EQ(resp.tree_hash, fp) << spec;
  }
  const ResponseLine stats = client.request("stats");
  EXPECT_EQ(stat_value(stats, "node0_routed"), predicted[0]);
  EXPECT_EQ(stat_value(stats, "node1_routed"), predicted[1]);
  EXPECT_EQ(stat_value(stats, "forwarded"), 8u);
  EXPECT_EQ(stat_value(stats, "responses"), 8u);
}

TEST(ClusterRouter, ClusterWideCacheHitAfterWarmingTheNodeDirectly) {
  BackendHarness node_a;
  BackendHarness node_b;
  std::vector<std::string> names{node_a.name(), node_b.name()};
  RouterHarness router(names);
  ASSERT_TRUE(router.wait_nodes_up(2));

  HashRing ring(router.router().config().vnodes);
  for (const auto& n : names) ring.add(n);
  const std::string spec = "synthetic:500:7";
  const std::size_t home = *ring.pick(spec_fingerprint(spec));

  // Warm the HOME node by talking to it directly, router not involved.
  {
    Client direct("127.0.0.1", home == 0 ? node_a.port() : node_b.port());
    const ResponseLine warm = direct.request(spec + " Liu 1");
    ASSERT_TRUE(warm.ok) << warm.message;
    EXPECT_FALSE(warm.cache_hit);
  }

  // A fresh client through the router must land on that node and reuse
  // its warm cache: the cluster-wide cache hit the ring exists for.
  Client via_router("127.0.0.1", router.port());
  const ResponseLine hit = via_router.request(spec + " Liu 1");
  ASSERT_TRUE(hit.ok) << hit.message;
  EXPECT_TRUE(hit.cache_hit)
      << "the router must route the spec to the node warmed directly";
}

TEST(ClusterRouter, NodeDeathMidRequestRetriesOnTheAlternate) {
  // Node 0 is a fake that drops the connection the instant a schedule
  // request arrives — a death timed exactly mid-request. Node 1 is
  // real. The forward must be retried there and the client answered ok.
  FakeNode fake(FakeNode::OnRequest::kCloseAbruptly);
  BackendHarness real;
  std::vector<std::string> names{fake.name(), real.name()};
  RouterConfig config;
  config.retries = 1;
  RouterHarness router(names, config);
  ASSERT_TRUE(router.wait_nodes_up(2));

  HashRing ring(router.router().config().vnodes);
  for (const auto& n : names) ring.add(n);
  const std::string spec = spec_routed_to(ring, 0);

  Client client("127.0.0.1", router.port());
  const ResponseLine resp = client.request(spec + " Liu 1 id=1");
  ASSERT_TRUE(resp.ok) << "retry on the alternate must answer: "
                       << resp.message;
  EXPECT_EQ(resp.id, 1u);
  EXPECT_GE(fake.requests_seen(), 1u) << "the fake node saw the forward";

  const ResponseLine stats = client.request("stats");
  EXPECT_GE(stat_value(stats, "retried"), 1u);
  EXPECT_GE(stat_value(stats, "node_failures"), 1u);
}

TEST(ClusterRouter, ExhaustedClusterAnswersTypedNodeUnavailable) {
  // The only node dies mid-request: the retry walk finds no live
  // alternate and the client gets the TYPED error — never a hang.
  FakeNode fake(FakeNode::OnRequest::kCloseAbruptly);
  RouterConfig config;
  config.retries = 1;
  RouterHarness router({fake.name()}, config);
  ASSERT_TRUE(router.wait_nodes_up(1));

  Client client("127.0.0.1", router.port());
  const ResponseLine resp = client.request("random:90:1 Liu 1 id=1");
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.id, 1u);
  EXPECT_EQ(resp.code, ErrorCode::kNodeUnavailable) << resp.message;

  const ResponseLine stats = client.request("stats");
  EXPECT_GE(stat_value(stats, "node_unavailable"), 1u);
}

TEST(ClusterRouter, BackpressureAnswersQueueFullAndCancelReachesTheQueue) {
  // A backend that is alive (answers pings) but never answers work, a
  // window of 1 and a queue of 2: request 1 goes on the wire, 2 and 3
  // queue router-side, 4 and 5 are refused with the typed queue_full.
  // `cancel id=2` pulls a QUEUED forward back; cancelling the one on
  // the wire is refused with the same untagged ack the server uses.
  // Killing the node then settles 1 and 3 as node_unavailable — every
  // accepted request is answered, no matter how badly the node behaves.
  auto fake = std::make_unique<FakeNode>(FakeNode::OnRequest::kSilent);
  RouterConfig config;
  config.retries = 0;
  config.upstream_window = 1;
  config.upstream_queue = 2;
  RouterHarness router({fake->name()}, config);
  ASSERT_TRUE(router.wait_nodes_up(1));

  Client client("127.0.0.1", router.port());
  for (int i = 1; i <= 5; ++i) {
    client.send_line("random:20" + std::to_string(i) + ":1 Liu 1 id=" +
                     std::to_string(i));
  }
  std::map<std::uint64_t, ErrorCode> errors;
  for (int i = 0; i < 2; ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    ASSERT_FALSE(resp->ok);
    ASSERT_TRUE(resp->id.has_value());
    errors[*resp->id] = resp->code;
  }
  EXPECT_EQ(errors.count(4), 1u);
  EXPECT_EQ(errors.count(5), 1u);
  for (const auto& [id, code] : errors) {
    EXPECT_EQ(code, ErrorCode::kQueueFull) << "id " << id;
  }

  client.send_line("cancel id=2");
  const auto cancelled = client.recv_response();
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->id, 2u);
  EXPECT_EQ(cancelled->code, ErrorCode::kCancelled);

  // Cancelling the request already on the wire is refused with an
  // UNTAGGED ack — which keeps submission order, so it queues behind
  // the never-answered request 1 and arrives only once 1 settles.
  client.send_line("cancel id=1");

  // Kill the node: the in-flight forward (1) and the still-queued one
  // (3) settle as typed node_unavailable errors, which also releases
  // the ordered untagged ack. Three answers, nothing hangs.
  fake->stop();
  std::map<std::uint64_t, ErrorCode> settled;
  bool saw_refused_ack = false;
  for (int i = 0; i < 3; ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    ASSERT_FALSE(resp->ok);
    if (resp->id.has_value()) {
      settled[*resp->id] = resp->code;
    } else {
      saw_refused_ack = true;
      EXPECT_NE(resp->message.find("already forwarded"), std::string::npos)
          << resp->message;
    }
  }
  EXPECT_TRUE(saw_refused_ack)
      << "a cancel that cannot be honored acks untagged";
  EXPECT_EQ(settled.count(1), 1u);
  EXPECT_EQ(settled.count(3), 1u);
  for (const auto& [id, code] : settled) {
    EXPECT_EQ(code, ErrorCode::kNodeUnavailable) << "id " << id;
  }
}

TEST(ClusterRouter, DrainTimeoutBoundsAStuckShutdown) {
  // A request is parked on a node that will never answer; without the
  // timeout, stop() would wait for it forever.
  FakeNode fake(FakeNode::OnRequest::kSilent);
  RouterConfig config;
  config.drain_timeout_ms = 150.0;
  auto router = std::make_unique<RouterHarness>(
      std::vector<std::string>{fake.name()}, config);
  ASSERT_TRUE(router->wait_nodes_up(1));

  Client client("127.0.0.1", router->port());
  client.send_line("random:77:1 Liu 1 id=1");
  // Wait until the forward is actually on the fake node's wire.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fake.requests_seen() == 0 &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(fake.requests_seen(), 1u);

  const auto start = std::chrono::steady_clock::now();
  router->stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 3000)
      << "drain must be bounded by --drain-timeout-ms";
}

TEST(ClusterRouter, RejectsDuplicateNodesAndEmptyNodeLists) {
  RouterConfig dup;
  dup.nodes = {"127.0.0.1:3714", "127.0.0.1:3714"};
  EXPECT_THROW(Router{dup}, std::invalid_argument);
  RouterConfig empty;
  EXPECT_THROW(Router{empty}, std::invalid_argument);
  RouterConfig malformed;
  malformed.nodes = {"127.0.0.1"};
  EXPECT_THROW(Router{malformed}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cluster-wide tracing and event logging: the merged dump pulls every
// live backend's ring, per-node failure counters surface in stats, and
// node deaths land in the structured event log.
//
// In-process caveat: router and backends share Tracer::global(), so a
// backend's pull can return spans the router also snapshotted. These
// tests therefore assert the MERGE MECHANICS (per-process pids,
// process_name metadata, nodes_merged) — span exclusivity is a
// cross-process property the shell e2e script covers.
// ---------------------------------------------------------------------------

TEST(ClusterTrace, MergedDumpCoversRouterAndEveryNode) {
  BackendHarness node_a;
  BackendHarness node_b;
  char tmpl[] = "/tmp/treesched-trace-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  RouterConfig config;
  config.trace_dir = dir;
  RouterHarness router({node_a.name(), node_b.name()}, config);
  ASSERT_TRUE(router.wait_nodes_up(2));

  Client client("127.0.0.1", router.port());
  const ResponseLine start = client.request("trace start id=1");
  ASSERT_TRUE(start.ok) << start.message;
  for (int seed = 1; seed <= 6; ++seed) {
    const ResponseLine resp =
        client.request("random:100:" + std::to_string(seed) + " Liu 1 id=" +
                       std::to_string(10 + seed));
    ASSERT_TRUE(resp.ok) << resp.message;
  }

  const ResponseLine dump = client.request("trace dump=cluster.json id=9");
  ASSERT_TRUE(dump.ok) << dump.message;
  EXPECT_EQ(dump.id, 9u);
  EXPECT_EQ(stat_value(dump, "nodes_merged"), 2u)
      << "both live backends must contribute their rings";
  EXPECT_EQ(stat_value(dump, "pull_failures"), 0u);
  EXPECT_GT(stat_value(dump, "spans"), 0u);

  // `trace status` names the per-node pull-failure counters.
  const ResponseLine status = client.request("trace status");
  EXPECT_EQ(stat_value(status, "node0_pull_failures"), 0u);
  EXPECT_EQ(stat_value(status, "node1_pull_failures"), 0u);
  EXPECT_TRUE(client.request("trace stop").ok);

  std::ifstream in(std::string(dir) + "/cluster.json");
  ASSERT_TRUE(in.good()) << "the merged dump file must exist under trace_dir";
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node " + node_a.name() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node " + node_b.name() + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << "router = pid 1";
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("router/upstream"), std::string::npos)
      << "the router's own upstream round-trip spans are in the dump";
}

TEST(ClusterTrace, MergedDumpWithoutTraceDirIsRefused) {
  // No trace_dir at all: the dump must be refused up front, exactly
  // like the single-node server refuses server-side file writes.
  BackendHarness node;
  RouterHarness router({node.name()});
  ASSERT_TRUE(router.wait_nodes_up(1));
  Client client("127.0.0.1", router.port());
  const ResponseLine refused = client.request("trace dump=x.json id=1");
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, ErrorCode::kBadRequest);
}

TEST(ClusterRouter, PerNodeFailureCountersAndEventLogRecordADeath) {
  // Node 0 dies mid-request (FakeNode closes on the first schedule
  // forward); node 1 is real. The retry answers the client, and the
  // death must surface three ways: per-node stats counters, labeled
  // Prometheus series (same samples), and the structured event log.
  FakeNode fake(FakeNode::OnRequest::kCloseAbruptly);
  BackendHarness real;
  std::vector<std::string> names{fake.name(), real.name()};
  char tmpl[] = "/tmp/treesched-events-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string log_path = std::string(dir) + "/events.jsonl";
  RouterConfig config;
  config.retries = 1;
  config.log_json = log_path;
  RouterHarness router(names, config);
  ASSERT_TRUE(router.wait_nodes_up(2));

  HashRing ring(router.router().config().vnodes);
  for (const auto& n : names) ring.add(n);
  const std::string spec = spec_routed_to(ring, 0);

  Client client("127.0.0.1", router.port());
  const ResponseLine resp = client.request(spec + " Liu 1 id=1");
  ASSERT_TRUE(resp.ok) << resp.message;

  const ResponseLine stats = client.request("stats");
  EXPECT_GE(stat_value(stats, "node0_disconnects"), 1u);
  EXPECT_GE(stat_value(stats, "node0_retries"), 1u);
  EXPECT_NE(stat_value(stats, "node0_last_error_code"), 0u)
      << "the death must leave a typed failure code behind";
  EXPECT_EQ(stat_value(stats, "node1_disconnects"), 0u)
      << "the healthy node's counters stay clean";

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good()) << "--log-json must have created the sink";
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string events = ss.str();
  EXPECT_NE(events.find("\"event\":\"node_down\""), std::string::npos);
  EXPECT_NE(events.find("\"event\":\"retry\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Satellite coverage: spec byte budgets and the server's drain timeout.
// ---------------------------------------------------------------------------

/// Writes `bytes` junk bytes under a fresh temp dir; returns the dir.
std::string make_tree_dir_with(const std::string& file, std::size_t bytes) {
  char tmpl[] = "/tmp/treesched-cluster-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  std::ofstream out(std::string(dir) + "/" + file, std::ios::binary);
  out << std::string(bytes, 'x');
  return dir;
}

TEST(MaxSpecBytes, ServerRejectsOversizedTreeFilesBeforeReading) {
  // The byte budget is checked against the on-disk size BEFORE the
  // read, so even an unparseable file works as the oversized probe.
  const std::string dir = make_tree_dir_with("big.tree", 64);
  ServerConfig config;
  config.tree_dir = dir;
  config.max_spec_bytes = 16;
  BackendHarness server(config);
  Client client("127.0.0.1", server.port());
  const ResponseLine resp = client.request("file:big.tree Liu 1 id=1");
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);
  EXPECT_NE(resp.message.find("byte"), std::string::npos) << resp.message;
}

TEST(MaxSpecBytes, RouterRejectsOversizedTreeFilesAtFingerprintTime) {
  // The router resolves specs itself to compute routing keys, so it is
  // as exposed to hostile file: specs as a node — the budget must bite
  // at the router before anything is forwarded.
  const std::string dir = make_tree_dir_with("big.tree", 64);
  BackendHarness node;
  RouterConfig config;
  config.tree_dir = dir;
  config.max_spec_bytes = 16;
  RouterHarness router({node.name()}, config);
  ASSERT_TRUE(router.wait_nodes_up(1));
  Client client("127.0.0.1", router.port());
  const ResponseLine resp = client.request("file:big.tree Liu 1 id=1");
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, ErrorCode::kBadRequest);
  EXPECT_NE(resp.message.find("byte"), std::string::npos) << resp.message;
  const ResponseLine stats = client.request("stats");
  EXPECT_EQ(stat_value(stats, "forwarded"), 0u)
      << "a rejected spec must never reach a backend";
}

TEST(ScheduleServerDrain, DrainTimeoutBoundsClientsThatNeverRead) {
  ServerConfig config;
  config.drain_timeout_ms = 150.0;
  config.max_wbuf = 64 * 1024;
  auto server = std::make_unique<BackendHarness>(config);
  Client client("127.0.0.1", server->port());
  // Shrink the client's receive window, then pile up answers it never
  // reads: stats lines are kilobytes each, so the server's write buffer
  // cannot flush and an unbounded drain would wait forever.
  const int rcvbuf = 4096;
  ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  for (int i = 0; i < 400; ++i) {
    client.send_line("stats id=" + std::to_string(i + 1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto start = std::chrono::steady_clock::now();
  server->stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 3000)
      << "drain must be bounded by --drain-timeout-ms";
}

}  // namespace
}  // namespace treesched

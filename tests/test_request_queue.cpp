// The deadline-aware admission queue and the service's submission paths:
// class preemption, EDF within a class, aging against starvation, typed
// expiry/rejection/cancellation errors, counter balance under producer
// contention, and bit-identical results vs. direct registry calls. The
// legacy schedule_async/schedule_prioritized wrappers are exercised here;
// the Ticket surface itself is pinned by tests/test_tickets.cpp.

#include "service/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "service/service.hpp"
#include "trees/generators.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace treesched {
namespace {

using namespace std::chrono_literals;

Tree weighted_tree(std::uint64_t seed, NodeId n = 60) {
  Rng rng(seed);
  RandomTreeParams params;
  params.n = n;
  params.max_output = 40;
  params.max_exec = 15;
  params.min_work = 1.0;
  params.max_work = 30.0;
  params.depth_bias = 1.5;
  return random_tree(params, rng);
}

/// A queue entry tagged through the algo field (the queue never
/// interprets it).
std::pair<ScheduleRequest, std::shared_ptr<detail::TicketState>> tagged(
    const std::string& tag, Priority cls, double deadline_ms = 0.0) {
  ScheduleRequest req;
  req.algo = tag;
  req.priority = cls;
  req.deadline_ms = deadline_ms;
  return {std::move(req), std::make_shared<detail::TicketState>()};
}

/// The settled error code of a ticket state, if any.
std::optional<ErrorCode> settled_code(
    const std::shared_ptr<detail::TicketState>& state) {
  const std::lock_guard<std::mutex> lock(state->mutex);
  if (!state->result.has_value() || state->result->ok()) return std::nullopt;
  return state->result->error().code;
}

std::string pop_tag(RequestQueue& q) {
  RequestQueue::PopResult r = q.pop();
  return r.entry ? r.entry->request.algo : std::string("<empty>");
}

// ---------------------------------------------------------------------------
// RequestQueue ordering semantics.
// ---------------------------------------------------------------------------

TEST(RequestQueue, HigherClassesPreemptLowerAtDequeue) {
  RequestQueue q;
  for (const auto& [tag, cls] :
       std::vector<std::pair<std::string, Priority>>{
           {"bulk", Priority::kBulk},
           {"batch", Priority::kBatch},
           {"interactive", Priority::kInteractive}}) {
    auto [req, state] = tagged(tag, cls);
    EXPECT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_EQ(pop_tag(q), "interactive");
  EXPECT_EQ(pop_tag(q), "batch");
  EXPECT_EQ(pop_tag(q), "bulk");
  EXPECT_EQ(pop_tag(q), "<empty>");
  EXPECT_EQ(q.pending(), 0u);
}

TEST(RequestQueue, EarliestDeadlineFirstWithinAClass) {
  RequestQueue q;
  // Same class: deadline-tagged in deadline order, then the deadline-less
  // in admission order.
  for (const auto& [tag, deadline] :
       std::vector<std::pair<std::string, double>>{{"late", 60000.0},
                                                   {"none-1", 0.0},
                                                   {"early", 10000.0},
                                                   {"none-2", 0.0}}) {
    auto [req, state] = tagged(tag, Priority::kBatch, deadline);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(pop_tag(q), "early");
  EXPECT_EQ(pop_tag(q), "late");
  EXPECT_EQ(pop_tag(q), "none-1");
  EXPECT_EQ(pop_tag(q), "none-2");
}

TEST(RequestQueue, ExpiredEntriesAreReturnedSeparatelyNotAsWork) {
  RequestQueue q;
  {
    auto [req, state] = tagged("doomed", Priority::kInteractive, 0.01);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  {
    auto [req, state] = tagged("live", Priority::kInteractive);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  std::this_thread::sleep_for(5ms);  // let the 0.01 ms deadline lapse
  RequestQueue::PopResult r = q.pop();
  ASSERT_TRUE(r.entry.has_value());
  EXPECT_EQ(r.entry->request.algo, "live");
  ASSERT_EQ(r.expired.size(), 1u);
  EXPECT_EQ(r.expired[0].request.algo, "doomed");

  const QueueStats stats = q.stats();
  const ClassQueueStats& c = stats.of(Priority::kInteractive);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_EQ(stats.pending(), 0u);
}

TEST(RequestQueue, AgingPromotesStarvedBulkAheadOfFreshInteractive) {
  RequestQueueConfig config;
  config.age_after = 10ms;
  RequestQueue q(config);
  {
    auto [req, state] = tagged("starved-bulk", Priority::kBulk);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  // One interval per level: after the first pop-triggered sweep the bulk
  // entry sits in kBatch, after the second in kInteractive — where FIFO
  // puts it ahead of any younger interactive arrival.
  std::this_thread::sleep_for(15ms);
  {
    auto [req, state] = tagged("fresh-1", Priority::kInteractive);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(pop_tag(q), "fresh-1") << "one interval climbs one level only";
  std::this_thread::sleep_for(15ms);
  {
    auto [req, state] = tagged("fresh-2", Priority::kInteractive);
    ASSERT_TRUE(q.push(std::move(req), std::move(state)).has_value());
  }
  EXPECT_EQ(pop_tag(q), "starved-bulk")
      << "twice-aged bulk reached the top class with seniority";
  EXPECT_EQ(pop_tag(q), "fresh-2");
  EXPECT_EQ(q.stats().of(Priority::kBulk).aged, 2u)
      << "two promotions, both attributed to the submitted class";
}

TEST(RequestQueue, MaxPendingRejectsWithTypedErrorAndCountsRejected) {
  RequestQueueConfig config;
  config.max_pending = 2;
  RequestQueue q(config);
  std::shared_ptr<detail::TicketState> rejected_state;
  for (int i = 0; i < 3; ++i) {
    auto [req, state] = tagged("r" + std::to_string(i), Priority::kBatch);
    if (i == 2) rejected_state = state;
    const auto seq = q.push(std::move(req), std::move(state));
    EXPECT_EQ(seq.has_value(), i < 2);
  }
  // The queue settled the rejected ticket itself, with the typed code.
  ASSERT_TRUE(settled_code(rejected_state).has_value());
  EXPECT_EQ(*settled_code(rejected_state), ErrorCode::kQueueFull);
  const QueueStats stats = q.stats();
  const ClassQueueStats& c = stats.of(Priority::kBatch);
  EXPECT_EQ(c.admitted, 3u) << "admitted counts every push";
  EXPECT_EQ(c.rejected, 1u);
  EXPECT_EQ(c.pending, 2u);
}

TEST(RequestQueue, CancelRemovesQueuedEntryAndSettlesWithCancelled) {
  RequestQueue q;
  auto [req_a, state_a] = tagged("a", Priority::kBatch);
  auto [req_b, state_b] = tagged("b", Priority::kBatch);
  const auto seq_a = q.push(std::move(req_a), state_a);
  const auto seq_b = q.push(std::move(req_b), state_b);
  ASSERT_TRUE(seq_a && seq_b);

  EXPECT_TRUE(q.cancel(*seq_a));
  ASSERT_TRUE(settled_code(state_a).has_value());
  EXPECT_EQ(*settled_code(state_a), ErrorCode::kCancelled);
  EXPECT_FALSE(q.cancel(*seq_a)) << "double-cancel is a no-op";
  EXPECT_EQ(q.pending(), 1u);

  // The cancelled entry is never handed out as work.
  EXPECT_EQ(pop_tag(q), "b");
  EXPECT_FALSE(q.cancel(*seq_b)) << "cancel after pop is a no-op";
  EXPECT_FALSE(settled_code(state_b).has_value());

  const QueueStats stats = q.stats();
  const ClassQueueStats& c = stats.of(Priority::kBatch);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.cancelled, 1u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.admitted, c.completed + c.expired + c.rejected + c.cancelled)
      << "counter balance includes cancellations";
}

TEST(RequestQueue, CancelFindsEntriesAgedIntoAnotherClass) {
  RequestQueueConfig config;
  config.age_after = 5ms;
  RequestQueue q(config);
  auto [req, state] = tagged("bulk", Priority::kBulk);
  const auto seq = q.push(std::move(req), state);
  ASSERT_TRUE(seq.has_value());
  std::this_thread::sleep_for(8ms);
  // Age via a pop that takes a different (fresh interactive) entry; the
  // sweep promotes the bulk entry out of its admission bucket first.
  auto [other, other_state] = tagged("fresh", Priority::kInteractive);
  ASSERT_TRUE(q.push(std::move(other), std::move(other_state)).has_value());
  EXPECT_EQ(pop_tag(q), "fresh");  // ages bulk -> batch as a side effect
  EXPECT_EQ(q.stats().of(Priority::kBulk).aged, 1u);
  EXPECT_TRUE(q.cancel(*seq)) << "the cancel index followed the promotion";
  ASSERT_TRUE(settled_code(state).has_value());
  EXPECT_EQ(*settled_code(state), ErrorCode::kCancelled);
  EXPECT_EQ(q.stats().of(Priority::kBulk).cancelled, 1u)
      << "attributed to the submitted class";
}

// ---------------------------------------------------------------------------
// Service-level queued submission.
// ---------------------------------------------------------------------------

TEST(ScheduleAsync, MatchesDirectRegistryCallsBitIdentically) {
  SchedulingService service;
  const Tree tree = weighted_tree(11);
  const TreeHandle handle = service.intern(tree);
  const Priority classes[] = {Priority::kInteractive, Priority::kBatch,
                              Priority::kBulk};
  int i = 0;
  for (const std::string algo :
       {"ParSubtrees", "ParInnerFirst", "ParDeepestFirst", "Liu"}) {
    for (int p : {2, 8}) {
      const SchedulerPtr direct = SchedulerRegistry::instance().create(algo);
      const Schedule expect_sched = direct->schedule(tree, Resources{p, 0});
      const SimulationResult expect_sim = simulate(tree, expect_sched);

      ScheduleRequest req;
      req.tree = handle;
      req.algo = algo;
      req.p = p;
      req.want_schedule = true;
      req.priority = classes[i++ % 3];
      const ScheduleResponse resp = service.schedule_async(req).get();
      EXPECT_EQ(resp.makespan, expect_sim.makespan) << algo << " p=" << p;
      EXPECT_EQ(resp.peak_memory, expect_sim.peak_memory) << algo;
      ASSERT_NE(resp.schedule, nullptr);
      EXPECT_EQ(resp.schedule->start, expect_sched.start) << algo;
      EXPECT_EQ(resp.schedule->proc, expect_sched.proc) << algo;
    }
  }
}

TEST(ScheduleAsync, DeliversSchedulerErrorsThroughTheFuture) {
  SchedulingService service;
  ScheduleRequest req;
  req.tree = service.intern(weighted_tree(2));
  req.algo = "NoSuchAlgo";
  req.p = 2;
  EXPECT_THROW((void)service.schedule_async(req).get(),
               std::invalid_argument);
}

TEST(ScheduleAsync, ExpiredRequestsNeverReachTheSchedulers) {
  // Every request here has a distinct cache key, so cache misses ==
  // requests that actually reached schedule(): build an Interactive
  // backlog, then submit Bulk requests with sub-millisecond deadlines —
  // class preemption keeps them queued behind the backlog until their
  // deadlines lapse, and the miss counter proves no scheduler ever ran
  // for them (the queue's per-class completed counter agrees).
  SchedulingService service;
  const TreeHandle heavy = service.intern(weighted_tree(3, 2000));
  const TreeHandle light = service.intern(weighted_tree(4, 30));

  // Enough backlog to pin every pool worker with queued work to spare —
  // a fixed count would leave workers idle on many-core machines, and an
  // idle worker would answer a doomed request before its deadline lapsed.
  const std::size_t kBacklog = 2 * ThreadPool::shared().size() + 6;
  std::vector<std::future<ScheduleResponse>> backlog;
  for (std::size_t i = 0; i < kBacklog; ++i) {
    ScheduleRequest req;
    req.tree = heavy;
    req.algo = "ParDeepestFirst";
    req.p = 2 + static_cast<int>(i);
    req.priority = Priority::kInteractive;
    backlog.push_back(service.schedule_async(req));
  }
  std::vector<std::future<ScheduleResponse>> doomed;
  for (int i = 0; i < 6; ++i) {
    ScheduleRequest req;
    req.tree = light;
    req.algo = "Liu";
    req.p = 1;
    req.priority = Priority::kBulk;
    req.deadline_ms = 0.01;
    doomed.push_back(service.schedule_async(req));
  }
  for (auto& f : backlog) EXPECT_TRUE(f.get().ok());
  for (auto& f : doomed) {
    EXPECT_THROW((void)f.get(), DeadlineExpired)
        << "the legacy future delivers the typed expiry exception";
  }
  const CacheStats cs = service.cache_stats();
  EXPECT_EQ(cs.misses, kBacklog)
      << "only the backlog reached schedule(); expired work cost nothing";
  EXPECT_EQ(cs.hits, 0u);
  const QueueStats qs = service.queue_stats();
  EXPECT_EQ(qs.of(Priority::kBulk).expired, 6u);
  EXPECT_EQ(qs.of(Priority::kBulk).completed, 0u);
  EXPECT_EQ(qs.of(Priority::kInteractive).completed, kBacklog);
}

TEST(ScheduleAsync, PrioritizedBatchCapturesPerRequestFailuresInOrder) {
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(5));
  std::vector<ScheduleRequest> reqs(3);
  reqs[0].tree = handle;
  reqs[0].algo = "ParSubtrees";
  reqs[0].p = 4;
  reqs[0].priority = Priority::kBulk;
  reqs[1].tree = handle;
  reqs[1].algo = "NoSuchAlgo";
  reqs[1].p = 4;
  reqs[2].tree = handle;
  reqs[2].algo = "Liu";
  reqs[2].p = 1;
  reqs[2].priority = Priority::kInteractive;
  const std::vector<ScheduleResponse> responses =
      service.schedule_prioritized(reqs);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[1].ok());
  EXPECT_EQ(responses[1].error->code, ErrorCode::kUnknownAlgorithm);
  EXPECT_TRUE(responses[2].ok());
  EXPECT_EQ(responses[0].makespan, service.schedule(reqs[0]).makespan);
}

TEST(ScheduleAsync, SubmittingFromPoolWorkersDoesNotDeadlock) {
  // A batch item (pool worker) fanning out through the queued path must
  // not deadlock even though its drain jobs would land on the very pool
  // it occupies — the worker services the queue inline instead.
  SchedulingService service;
  const TreeHandle handle = service.intern(weighted_tree(6));
  std::atomic<int> answered{0};
  parallel_for(8, [&](std::size_t i) {
    ScheduleRequest req;
    req.tree = handle;
    req.algo = (i % 2 == 0) ? "ParSubtrees" : "ParInnerFirst";
    req.p = 1 + static_cast<int>(i);
    req.priority = Priority::kInteractive;
    if (service.schedule_async(req).get().ok()) answered.fetch_add(1);
  });
  EXPECT_EQ(answered.load(), 8);
}

// ---------------------------------------------------------------------------
// The stress test: producer threads, mixed classes, tight deadlines.
// ---------------------------------------------------------------------------

TEST(ScheduleAsync, StressCountersBalanceAndNothingStarves) {
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 40;

  ServiceConfig config;
  config.queue.age_after = 2ms;  // aggressive aging under the hammer
  SchedulingService service(config);
  const SchedulerPtr direct =
      SchedulerRegistry::instance().create("ParDeepestFirst");

  std::vector<TreeHandle> handles;
  std::vector<SimulationResult> expected;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Tree tree = weighted_tree(seed, 80);
    handles.push_back(service.intern(tree));
    expected.push_back(
        simulate(tree, direct->schedule(tree, Resources{4, 0})));
  }

  std::atomic<int> wrong{0};
  std::atomic<int> expired_seen{0};
  std::atomic<int> completed_seen{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      std::vector<std::future<ScheduleResponse>> futures;
      std::vector<std::size_t> tree_of;
      for (int i = 0; i < kPerProducer; ++i) {
        const std::size_t ti = static_cast<std::size_t>(t + i) % 3;
        ScheduleRequest req;
        req.tree = handles[ti];
        req.algo = "ParDeepestFirst";
        req.p = 4;
        req.priority = static_cast<Priority>(i % kPriorityClasses);
        // Every 5th request carries a deadline tight enough that some
        // expire under contention; everything else must complete.
        if (i % 5 == 0) req.deadline_ms = 0.05;
        futures.push_back(service.schedule_async(std::move(req)));
        tree_of.push_back(ti);
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
          const ScheduleResponse resp = futures[i].get();
          completed_seen.fetch_add(1);
          if (resp.makespan != expected[tree_of[i]].makespan ||
              resp.peak_memory != expected[tree_of[i]].peak_memory) {
            wrong.fetch_add(1);
          }
        } catch (const DeadlineExpired&) {
          expired_seen.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(wrong.load(), 0) << "queued answers must be bit-identical";
  EXPECT_EQ(completed_seen.load() + expired_seen.load(),
            static_cast<int>(kTotal))
      << "every future resolves: nothing starves, nothing is dropped";

  const QueueStats qs = service.queue_stats();
  std::uint64_t admitted = 0, completed = 0, expired = 0, rejected = 0;
  for (const ClassQueueStats& c : qs.by_class) {
    EXPECT_EQ(c.admitted, c.completed + c.expired + c.rejected)
        << "per-class counter balance after drain";
    EXPECT_EQ(c.pending, 0u);
    admitted += c.admitted;
    completed += c.completed;
    expired += c.expired;
    rejected += c.rejected;
  }
  EXPECT_EQ(admitted, kTotal);
  EXPECT_EQ(rejected, 0u) << "the queue is unbounded in this test";
  EXPECT_EQ(completed, static_cast<std::uint64_t>(completed_seen.load()));
  EXPECT_EQ(expired, static_cast<std::uint64_t>(expired_seen.load()));
  // Deadline-less requests can never expire: only the tight-deadline
  // fifth of the workload is eligible.
  EXPECT_LE(expired, kTotal / 5);
}

}  // namespace
}  // namespace treesched

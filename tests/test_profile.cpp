#include "sequential/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/simulator.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::pebble_tree;

TEST(TraversalProfile, ChainProfile) {
  Tree t = pebble_tree({kNoNode, 0, 1});
  auto profile = traversal_profile(t, {2, 1, 0});
  // node 2: during 1, after 1; node 1: during 2, after 1; node 0: 2, 1.
  EXPECT_EQ(profile,
            (std::vector<MemSize>{1, 1, 2, 1, 2, 1}));
}

TEST(TraversalProfile, PeakMatchesSimulator) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    RandomTreeParams params;
    params.n = 1 + (NodeId)rng.uniform(100);
    params.max_output = 8;
    params.max_exec = 5;
    Tree t = random_tree(params, rng);
    auto order = postorder(t).order;
    auto profile = traversal_profile(t, order);
    EXPECT_EQ(*std::max_element(profile.begin(), profile.end()),
              sequential_peak_memory(t, order));
  }
}

TEST(CanonicalDecomposition, EmptyAndTrivial) {
  EXPECT_TRUE(canonical_decomposition({}).empty());
  auto segs = canonical_decomposition({5, 2});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].hill, 5u);
  EXPECT_EQ(segs[0].valley, 2u);
}

TEST(CanonicalDecomposition, MergesDominatedHills) {
  // (3,1) then (5,2): the later, larger hill absorbs the earlier segment.
  auto segs = canonical_decomposition({3, 1, 5, 2});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].hill, 5u);
  EXPECT_EQ(segs[0].valley, 2u);
}

TEST(CanonicalDecomposition, KeepsSeparatedSegments) {
  // (9,1) then (7,6): canonical as-is.
  auto segs = canonical_decomposition({9, 1, 7, 6});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].hill, 9u);
  EXPECT_EQ(segs[1].valley, 6u);
}

TEST(CanonicalDecomposition, InvariantsOnRandomTraversals) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 1 + (NodeId)rng.uniform(200);
    params.max_output = 9;
    params.max_exec = 6;
    params.depth_bias = rng.uniform01() * 3;
    Tree t = random_tree(params, rng);
    auto order = (trial % 2 == 0) ? postorder(t).order
                                  : liu_optimal_traversal(t).order;
    auto profile = traversal_profile(t, order);
    auto segs = traversal_segments(t, order);
    ASSERT_FALSE(segs.empty());
    // First hill = global max; last valley = final level.
    EXPECT_EQ(segs.front().hill,
              *std::max_element(profile.begin(), profile.end()));
    EXPECT_EQ(segs.back().valley, profile.back());
    for (std::size_t k = 0; k < segs.size(); ++k) {
      EXPECT_GE(segs[k].hill, segs[k].valley);
      if (k > 0) {
        EXPECT_LT(segs[k].hill, segs[k - 1].hill);      // hills decrease
        EXPECT_GT(segs[k].valley, segs[k - 1].valley);  // valleys increase
      }
    }
  }
}

TEST(CanonicalDecomposition, LiuOrderNeverHasLargerFirstHill) {
  // The first hill of Liu's traversal equals the exact optimum, so it is
  // minimal among all traversals we can produce.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(80);
    params.max_output = 7;
    params.max_exec = 3;
    Tree t = random_tree(params, rng);
    auto liu = liu_optimal_traversal(t);
    auto segs = traversal_segments(t, liu.order);
    EXPECT_EQ(segs.front().hill, liu.peak);
    auto po_segs = traversal_segments(t, postorder(t).order);
    EXPECT_LE(segs.front().hill, po_segs.front().hill);
  }
}

TEST(TraversalProfile, RejectsShortOrder) {
  Tree t = pebble_tree({kNoNode, 0});
  EXPECT_THROW(traversal_profile(t, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace treesched

#include "sequential/liu.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sequential/bruteforce.hpp"
#include "sequential/postorder.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::make_tree;
using testing::pebble_tree;

TEST(Liu, SingleNode) {
  Tree t = make_tree({kNoNode}, {4}, {2}, {1.0});
  auto r = liu_optimal_traversal(t);
  EXPECT_EQ(r.order, (std::vector<NodeId>{0}));
  EXPECT_EQ(r.peak, 6u);
}

TEST(Liu, Chain) {
  Tree t = pebble_tree({kNoNode, 0, 1, 2});
  auto r = liu_optimal_traversal(t);
  EXPECT_EQ(r.peak, 2u);
  EXPECT_EQ(sequential_peak_memory(t, r.order), 2u);
}

TEST(Liu, KnownNonPostorderOptimality) {
  // Classic instance where the optimal traversal is NOT a postorder:
  // interleaving two subtrees beats processing either contiguously.
  // root with two children A and B; A has a huge-peak cheap-residual
  // subtree and a large output; B likewise. Interleaving the heavy parts
  // first, outputs later, can win.
  //
  //        r (f=1)
  //       /        \
  //      A(f=6)     B(f=6)
  //      |          |
  //      a(f=1,n=8) b(f=1,n=8)
  //
  // Postorder: peak >= 10 + 6... process A's subtree: a: 9 peak, resid 1;
  // A: 1+6=7 peak... then B's: 6 resident + 9 = 15.
  // Optimal: a (9), b (resid 1: 1+9=10), A (1+1+6=8... inputs a=1 -> 1+1+6)
  // -> interleaving leaves first: peak 10 < 15.
  Tree t = make_tree({kNoNode, 0, 0, 1, 2}, {1, 6, 6, 1, 1}, {0, 0, 0, 8, 8},
                     {1, 1, 1, 1, 1});
  const MemSize exact = bruteforce_min_sequential_memory(t);
  const MemSize po = postorder(t).peak;
  auto liu = liu_optimal_traversal(t);
  EXPECT_EQ(liu.peak, exact);
  EXPECT_LT(exact, po);  // the gap proves we exercise non-postorder orders
  EXPECT_EQ(sequential_peak_memory(t, liu.order), liu.peak);
}

TEST(Liu, MatchesBruteForceOnAllShapesPebble) {
  for (NodeId n = 1; n <= 7; ++n) {
    for (const Tree& t : all_tree_shapes(n)) {
      EXPECT_EQ(liu_optimal_traversal(t).peak,
                bruteforce_min_sequential_memory(t))
          << "n=" << n;
    }
  }
}

TEST(Liu, MatchesBruteForceOnAllShapesWeighted) {
  Rng rng(101);
  for (NodeId n = 2; n <= 6; ++n) {
    for (const Tree& shape : all_tree_shapes(n)) {
      for (int rep = 0; rep < 3; ++rep) {
        std::vector<NodeId> parent(shape.size());
        std::vector<MemSize> out(shape.size()), exec(shape.size());
        std::vector<double> work(shape.size(), 1.0);
        for (NodeId i = 0; i < shape.size(); ++i) {
          parent[i] = shape.parent(i);
          out[i] = 1 + rng.uniform(7);
          exec[i] = rng.uniform(5);
        }
        Tree t(std::move(parent), std::move(out), std::move(exec),
               std::move(work));
        const MemSize bf = bruteforce_min_sequential_memory(t);
        auto liu = liu_optimal_traversal(t);
        EXPECT_EQ(liu.peak, bf);
        EXPECT_EQ(sequential_peak_memory(t, liu.order), liu.peak);
      }
    }
  }
}

TEST(Liu, MatchesBruteForceOnRandomMediumTrees) {
  Rng rng(103);
  for (int trial = 0; trial < 60; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(13);  // up to 14 nodes
    params.max_output = 9;
    params.max_exec = 6;
    params.depth_bias = rng.uniform01() * 3;
    Tree t = random_tree(params, rng);
    EXPECT_EQ(liu_optimal_traversal(t).peak,
              bruteforce_min_sequential_memory(t));
  }
}

TEST(Liu, NeverWorseThanOptimalPostorder) {
  Rng rng(107);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(300);
    params.max_output = 9;
    params.max_exec = 5;
    Tree t = random_tree(params, rng);
    EXPECT_LE(liu_optimal_traversal(t).peak, postorder(t).peak);
  }
}

TEST(Liu, TraversalIsValidOnLargeTree) {
  Rng rng(109);
  Tree t = random_pebble_tree(3000, rng, 1.5);
  auto r = liu_optimal_traversal(t);
  ASSERT_EQ((NodeId)r.order.size(), t.size());
  EXPECT_EQ(sequential_peak_memory(t, r.order), r.peak);
}

TEST(Liu, MinSequentialMemoryConvenience) {
  Tree t = pebble_tree({kNoNode, 0, 0});
  EXPECT_EQ(min_sequential_memory(t), liu_optimal_traversal(t).peak);
}

}  // namespace
}  // namespace treesched

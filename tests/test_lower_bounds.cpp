#include "core/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "test_helpers.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace treesched {
namespace {

using testing::make_tree;

TEST(LowerBounds, MakespanBoundComponents) {
  // chain of 3 with works 1,2,3: W=6, CP=6 -> bound 6 even with p=8.
  Tree t = make_tree({kNoNode, 0, 1}, {1, 1, 1}, {0, 0, 0}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(makespan_lower_bound(t, 8), 6.0);
  // fork with 8 unit leaves: W=9, CP=2; p=2 -> 4.5.
  Tree f = fork_tree(8);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(f, 2), 4.5);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(f, 100), 2.0);
}

TEST(LowerBounds, MemoryBoundsOrdered) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(60);
    params.max_output = 8;
    params.max_exec = 4;
    Tree t = random_tree(params, rng);
    const auto lb = lower_bounds(t, 4);
    EXPECT_LE(lb.memory_exact, lb.memory_postorder);
    EXPECT_GT(lb.memory_exact, 0u);
  }
}

TEST(LowerBounds, SkippingExactMemoryCopiesPostorder) {
  Rng rng(13);
  Tree t = random_pebble_tree(50, rng);
  const auto lb = lower_bounds(t, 2, /*exact_memory=*/false);
  EXPECT_EQ(lb.memory_exact, lb.memory_postorder);
}

TEST(LowerBounds, AllCampaignAlgorithmsRespectBothBounds) {
  Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    RandomTreeParams params;
    params.n = 2 + (NodeId)rng.uniform(150);
    params.max_output = 9;
    params.max_exec = 3;
    params.min_work = 1.0;
    params.max_work = 7.0;
    params.depth_bias = rng.uniform01() * 2;
    Tree t = random_tree(params, rng);
    for (int p : {2, 8}) {
      const auto lb = lower_bounds(t, p);
      for (const std::string& algo : default_campaign_algorithms()) {
        const auto sim =
            simulate(t, SchedulerRegistry::instance().create(algo)->schedule(
                            t, Resources{p, 0}));
        EXPECT_GE(sim.makespan, lb.makespan - 1e-9) << algo;
        EXPECT_GE(sim.peak_memory, lb.memory_exact) << algo;
      }
    }
  }
}

TEST(LowerBounds, EmptyTree) {
  Tree t;
  EXPECT_DOUBLE_EQ(makespan_lower_bound(t, 4), 0.0);
}

}  // namespace
}  // namespace treesched

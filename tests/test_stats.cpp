#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace treesched {
namespace {

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
}

TEST(Stats, QuantileSorted) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.9), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
}

TEST(Stats, SummaryFields) {
  auto s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_GT(s.p90, s.p10);
}

TEST(Stats, SummaryEmpty) {
  auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, FractionWithinOfBest) {
  // best = 10; within 5%: 10, 10.4; outside: 11.
  EXPECT_DOUBLE_EQ(fraction_within_of_best({10, 10.4, 11}, 0.05), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(fraction_within_of_best({}, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(fraction_within_of_best({3}, 0.05), 1.0);
}

TEST(Stats, Format) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.8125, 1), "81.2 %");
}

}  // namespace
}  // namespace treesched

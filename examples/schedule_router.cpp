// Cluster front-end for the scheduling service: a router process
// (src/cluster/) that accepts the same text-v2 / binary-v3 protocols as
// schedule_server and shards every request across N backend nodes by
// tree fingerprint over a bounded-load consistent-hash ring — identical
// trees always reach the same node and its warm result cache,
// cluster-wide.
//
//   $ ./schedule_server --port 3714 &          # node A
//   $ ./schedule_server --port 3715 &          # node B
//   $ ./schedule_router --port 3713 --nodes 127.0.0.1:3714,127.0.0.1:3715 &
//   listening on 127.0.0.1:3713
//   $ printf 'random:500:1 ParSubtrees 8 id=1\n' | nc 127.0.0.1 3713
//   ok id=1 tree=... makespan=... priority=batch
//
// --nodes host:port,... names the backends (required). --port 0 picks
// an ephemeral client port (printed on stdout, for scripts); --bind
// sets the address. --vnodes and --load-factor shape the ring;
// --upstream-window / --upstream-queue / --upstream-wbuf-kb bound each
// backend pipe; --retries is the retry-on-alternate budget after a node
// death. --health-interval-ms / --ping-timeout-ms / --backoff-ms drive
// failure detection and reconnects. Client-side limits (--max-conns,
// --max-pending, --max-wbuf-kb, --max-frame-kb) and spec hygiene
// (--tree-dir, --max-spec-nodes, --max-spec-bytes) match
// schedule_server's flags — the router resolves specs itself to compute
// routing fingerprints, so it needs the same tree files the nodes see.
// --metrics-port serves GET /metrics (0 = ephemeral, printed);
// --trace-dir allows `trace dump=` — on the router this is the MERGED
// cluster dump (its own spans plus every live node's, one pid each);
// --log-json PATH appends structured JSON-lines events (node deaths,
// reconnects, retries, drains) to PATH; "-" = stdout.
// --drain-timeout-ms caps the SIGTERM drain exactly like the server's.
//
// Failure semantics: a dead node's unanswered requests are retried on
// the next ring alternate (they are deterministic — re-execution is
// safe) or answered with the typed node_unavailable error. Clients
// always get an answer; SIGTERM/SIGINT drain gracefully.

#include <signal.h>

#include <iostream>

#include "cluster/router.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    cluster::RouterConfig config;
    config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    config.bind = args.get("bind", "127.0.0.1");
    config.nodes = split_csv(args.get("nodes", ""));
    config.vnodes = static_cast<int>(args.get_int("vnodes", 64));
    config.load_factor = args.get_double("load-factor", 1.25);
    config.max_conns = static_cast<std::size_t>(args.get_int("max-conns", 256));
    config.max_pending =
        static_cast<std::size_t>(args.get_int("max-pending", 64));
    config.max_wbuf =
        static_cast<std::size_t>(args.get_int("max-wbuf-kb", 256)) << 10;
    config.max_frame =
        static_cast<std::size_t>(args.get_int("max-frame-kb", 1024)) << 10;
    config.handle_signals = true;
    config.metrics_port = static_cast<int>(args.get_int("metrics-port", -1));
    config.trace_dir = args.get("trace-dir", "");
    config.log_json = args.get("log-json", "");
    config.tree_dir = args.get("tree-dir", "");
    config.max_spec_nodes =
        static_cast<std::uint64_t>(args.get_int("max-spec-nodes", 2'000'000));
    config.max_spec_bytes = static_cast<std::uint64_t>(
        args.get_int("max-spec-bytes", 16 << 20));
    config.drain_timeout_ms = args.get_double("drain-timeout-ms", 0.0);
    config.upstream_window =
        static_cast<std::size_t>(args.get_int("upstream-window", 128));
    config.upstream_queue =
        static_cast<std::size_t>(args.get_int("upstream-queue", 1024));
    config.upstream_max_wbuf =
        static_cast<std::size_t>(args.get_int("upstream-wbuf-kb", 1024)) << 10;
    config.retries = static_cast<int>(args.get_int("retries", 1));
    config.health_interval_ms = args.get_double("health-interval-ms", 250.0);
    config.ping_timeout_ms = args.get_double("ping-timeout-ms", 2000.0);
    config.reconnect_backoff_ms = args.get_double("backoff-ms", 500.0);
    args.reject_unknown();
    if (config.nodes.empty()) {
      throw std::invalid_argument(
          "--nodes host:port[,host:port...] is required");
    }

    // Block SIGTERM/SIGINT before the loop starts so only the router's
    // signalfd ever sees them (same contract as schedule_server).
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGTERM);
    sigaddset(&mask, SIGINT);
    if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
      throw std::runtime_error("pthread_sigmask failed");
    }

    cluster::Router router(std::move(config));
    // Machine-read by scripts (the e2e test binds port 0): keep the
    // format stable and flushed before serving starts.
    std::cout << "listening on " << router.address() << std::endl;
    if (router.metrics_port() != 0) {
      std::cout << "metrics on 127.0.0.1:" << router.metrics_port()
                << std::endl;
    }
    router.run();
    std::cerr << "drained: all accepted requests answered\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

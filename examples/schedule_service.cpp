// Streaming front-end for the scheduling service: reads newline-delimited
// requests from a file or stdin, answers them through a SchedulingService
// (shared instance store + result cache + batch executor), and streams one
// response line per request, in request order.
//
// Request line:     <tree-spec> <algo> <p> [<memory-cap>]
//                       [priority=interactive|batch|bulk]
//                       [deadline_ms=<positive float>]
// (service/request_line.hpp is the grammar's single home; unknown
// key=value fields are rejected with an error naming the field.)
// Tree specs:       file:<path>             a treesched-tree v1 file
//                   random:<n>:<seed>       random weighted tree
//                   grid:<nx>:<z>           2D-grid assembly tree
//                   synthetic:<n>:<seed>    assembly-like synthetic tree
// '#' starts a comment; blank lines are skipped (both still produce no
// response line).
//
// Response line:    ok tree=<hash> n=<nodes> algo=<name> p=<p> \
//                       makespan=<ms> peak_memory=<bytes> cache=hit|miss \
//                       priority=<class>
// or:               error <message>
//
//   $ printf 'random:500:1 ParSubtrees 8\nrandom:500:1 ParSubtrees 8\n' \
//       | ./schedule_service --stats
//
// Requests are executed in batches of --batch lines through the
// service's deadline-aware admission queue: within a batch, interactive
// requests are answered before batch ones, batch before bulk, earliest
// deadline first within a class, and a request whose deadline lapses
// while queued is answered "error deadline expired ..." without costing
// any compute. Identical and concurrent work dedupes while responses
// still stream incrementally, in input order.
// --cache-mb 0 disables the result cache (every request recomputes).

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "service/request_line.hpp"
#include "service/service.hpp"
#include "campaign/dataset.hpp"
#include "trees/generators.hpp"
#include "trees/io.hpp"
#include "util/cli.hpp"

namespace {

using namespace treesched;

Tree tree_from_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("tree spec \"" + spec +
                                "\" (want kind:args, e.g. random:500:1)");
  }
  const std::string kind = spec.substr(0, colon);
  // Specs use ':' separators; reuse split_csv by swapping them in. File
  // paths with ':' are not supported (rename the file).
  std::string rest = spec.substr(colon + 1);
  for (char& c : rest) {
    if (c == ':') c = ',';
  }
  const std::vector<std::string> args = split_csv(rest);
  if (kind == "file") {
    if (args.size() != 1) {
      throw std::invalid_argument("tree spec file:<path>");
    }
    return read_tree_file(args[0]);
  }
  if (kind == "random") {
    if (args.size() != 2) {
      throw std::invalid_argument("tree spec random:<n>:<seed>");
    }
    Rng rng(std::stoull(args[1]));
    RandomTreeParams params;
    params.n = static_cast<NodeId>(std::stol(args[0]));
    params.max_output = 100;
    params.max_exec = 20;
    params.min_work = 1.0;
    params.max_work = 50.0;
    return random_tree(params, rng);
  }
  if (kind == "grid") {
    if (args.size() != 2) {
      throw std::invalid_argument("tree spec grid:<nx>:<z>");
    }
    const int nx = std::stoi(args[0]);
    return grid2d_assembly_tree(nx, nx, std::stol(args[1]));
  }
  if (kind == "synthetic") {
    if (args.size() != 2) {
      throw std::invalid_argument("tree spec synthetic:<n>:<seed>");
    }
    Rng rng(std::stoull(args[1]));
    return synthetic_assembly_tree(static_cast<NodeId>(std::stol(args[0])),
                                   2.0, rng);
  }
  throw std::invalid_argument("unknown tree spec kind \"" + kind +
                              "\" (file|random|grid|synthetic)");
}

/// One input line: either a parsed request or a pre-rendered parse error,
/// so batch output stays in input order.
struct PendingLine {
  bool is_request = false;
  std::size_t request_index = 0;  ///< into the batch's request vector
  std::string parse_error;
};

class RequestStream {
 public:
  explicit RequestStream(SchedulingService& service) : service_(service) {}

  /// Parses one nonempty line into `requests`, memoizing tree specs so a
  /// hot spec is generated/loaded once per process.
  PendingLine parse(const std::string& line,
                    std::vector<ScheduleRequest>& requests) {
    PendingLine out;
    try {
      const RequestLine parsed = parse_request_line(line);
      ScheduleRequest req;
      req.tree = handle_for(parsed.tree_spec);
      req.algo = parsed.algo;
      req.p = parsed.p;
      req.memory_cap = parsed.memory_cap;
      req.priority = parsed.priority;
      req.deadline_ms = parsed.deadline_ms;
      out.is_request = true;
      out.request_index = requests.size();
      requests.push_back(std::move(req));
    } catch (const std::exception& e) {
      out.parse_error = e.what();
    }
    return out;
  }

 private:
  TreeHandle handle_for(const std::string& spec) {
    const auto it = by_spec_.find(spec);
    if (it != by_spec_.end()) return it->second;
    const TreeHandle handle = service_.intern(tree_from_spec(spec));
    by_spec_.emplace(spec, handle);
    return handle;
  }

  SchedulingService& service_;
  std::unordered_map<std::string, TreeHandle> by_spec_;
};

void flush_batch(SchedulingService& service,
                 std::vector<PendingLine>& lines,
                 std::vector<ScheduleRequest>& requests) {
  const std::vector<ScheduleResponse> responses =
      service.schedule_prioritized(requests);
  for (const PendingLine& line : lines) {
    if (!line.is_request) {
      std::cout << "error " << line.parse_error << "\n";
      continue;
    }
    const ScheduleRequest& req = requests[line.request_index];
    const ScheduleResponse& resp = responses[line.request_index];
    if (!resp.ok()) {
      std::cout << "error " << resp.error << "\n";
      continue;
    }
    std::cout << "ok tree=" << std::hex << req.tree.hash << std::dec
              << " n=" << req.tree->size() << " algo=" << req.algo
              << " p=" << req.p << " makespan=" << resp.makespan
              << " peak_memory=" << resp.peak_memory
              << " cache=" << (resp.cache_hit ? "hit" : "miss")
              << " priority=" << to_string(req.priority) << "\n";
  }
  std::cout.flush();
  lines.clear();
  requests.clear();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const std::string input = args.get("input", "-");
    ServiceConfig config;
    config.cache_bytes =
        static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20;
    config.threads = static_cast<unsigned>(args.get_int("threads", 0));
    config.validate = args.get_bool("validate", false);
    config.queue.age_after =
        std::chrono::milliseconds(args.get_int("age-ms", 250));
    const auto batch =
        static_cast<std::size_t>(args.get_int("batch", 32));
    const bool stats = args.get_bool("stats", false);
    args.reject_unknown();
    if (batch == 0) throw std::invalid_argument("--batch must be >= 1");

    SchedulingService service(config);
    RequestStream stream(service);

    std::ifstream file;
    if (input != "-") {
      file.open(input);
      if (!file) throw std::runtime_error("cannot open " + input);
    }
    std::istream& in = input == "-" ? std::cin : file;

    std::vector<PendingLine> lines;
    std::vector<ScheduleRequest> requests;
    std::string line;
    while (std::getline(in, line)) {
      const auto hash_pos = line.find('#');
      if (hash_pos != std::string::npos) line.resize(hash_pos);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      lines.push_back(stream.parse(line, requests));
      if (lines.size() >= batch) flush_batch(service, lines, requests);
    }
    if (!lines.empty()) flush_batch(service, lines, requests);

    if (stats) {
      const CacheStats cs = service.cache_stats();
      const InstanceStore::Stats ss = service.store_stats();
      std::cerr << "cache: " << cs.hits << " hits, " << cs.misses
                << " misses (" << std::fixed << std::setprecision(1)
                << 100.0 * cs.hit_rate() << "% hit rate), " << cs.entries
                << " entries, " << cs.bytes << " bytes, " << cs.evictions
                << " evictions\n"
                << "store: " << ss.unique_trees << " unique trees, "
                << ss.hits << " intern hits\n";
      const QueueStats qs = service.queue_stats();
      for (int cls = 0; cls < kPriorityClasses; ++cls) {
        const ClassQueueStats& c =
            qs.by_class[static_cast<std::size_t>(cls)];
        if (c.admitted == 0) continue;
        std::cerr << "queue[" << to_string(static_cast<Priority>(cls))
                  << "]: " << c.admitted << " admitted, " << c.completed
                  << " completed, " << c.expired << " expired, "
                  << c.rejected << " rejected, " << c.aged
                  << " aged; wait ms p50/p90/p99 = " << std::setprecision(2)
                  << c.wait_ms_p50 << "/" << c.wait_ms_p90 << "/"
                  << c.wait_ms_p99 << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

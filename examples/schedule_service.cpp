// Streaming front-end for the scheduling service, speaking protocol v2:
// reads newline-delimited requests from a file or stdin, submits each one
// as a Ticket through SchedulingService::submit(), and streams response
// lines as results become available.
//
// Request line:     <tree-spec> <algo> <p> [<memory-cap>]
//                       [priority=interactive|batch|bulk]
//                       [deadline_ms=<positive float>] [id=<n>]
//                   cancel id=<n>
//                   ping [id=<n>]        answered `pong [id=<n>]` at once
//                   stats [id=<n>]       queue/cache/store counters at once
//                   trace start|stop|status|dump=<path> [id=<n>]
//                                        drives the process-wide tracer
// (service/request_line.hpp is the grammar's single home; unknown
// key=value fields are rejected with an error naming the field.)
// Tree specs:       file:<path>             a treesched-tree v1 file
//                   random:<n>:<seed>       random weighted tree
//                   grid:<nx>:<z>           2D-grid assembly tree
//                   synthetic:<n>:<seed>    assembly-like synthetic tree
// '#' starts a comment; blank lines are skipped (both still produce no
// response line).
//
// Response lines (format_response_line):
//   ok [id=<n>] tree=<hash> n=<nodes> algo=<name> p=<p> makespan=<f>
//      peak_memory=<bytes> cache=hit|miss priority=<class>
//   error [id=<n>] code=<error-code> <message>
//
// Ordering: untagged requests are answered in submission order. An
// id=-tagged request may be answered the moment it completes — out of
// order — because the tag makes the line attributable; the same tag is
// what `cancel id=<n>` uses to cancel it while still queued (a
// successful cancel answers the request with code=cancelled; a cancel
// naming an unknown/already-answered/running request answers
// code=bad_request). Protocol violations answer code=bad_request without
// aborting the stream.
//
//   $ printf 'random:500:1 ParSubtrees 8 id=1\nrandom:500:1 ParSubtrees 8\n' \
//       | ./schedule_service --stats
//
// --cache-mb 0 disables the result cache (every request recomputes).
// --max-pending bounds the in-flight window: past it the reader blocks
// on the oldest pending answer before accepting more lines, so a huge
// input file cannot flood the queue (backpressure, v1's --batch role).
// --metrics-port N serves `GET /metrics` (Prometheus text exposition of
// the service's registry) on 127.0.0.1:N from a dedicated thread; 0
// picks an ephemeral port (printed to stderr). --slow-ms T logs the
// stage breakdown of any request slower than T ms to stderr.
// --cache-backend / --queue-backend pick mutex (default) or lockfree
// implementations for the result cache and admission queue — results
// are bit-identical either way. This front-end reads trusted local
// stdin, so unlike schedule_server it keeps unrestricted file: specs
// and unbounded generator specs.

#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/event_loop.hpp"
#include "net/metrics_http.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "obs/trace.hpp"
#include "service/request_line.hpp"
#include "service/service.hpp"
#include "campaign/dataset.hpp"
#include "util/cli.hpp"

namespace {

using namespace treesched;

/// One in-flight request: its ticket plus the echo fields of the eventual
/// ok line — or a pre-settled error (parse/spec failure of an untagged
/// line) held in the stream so it still answers in submission order.
struct Pending {
  Ticket ticket;
  std::optional<std::uint64_t> id;
  TreeHash tree_hash = 0;
  NodeId n = 0;
  std::string algo;
  int p = 1;
  Priority priority = Priority::kBatch;
  /// Set for lines that failed before reaching submit(): the canned
  /// error answer, emitted at this line's position.
  std::optional<ServiceError> settled_error;
};

class Stream {
 public:
  Stream(SchedulingService& service, std::size_t max_pending,
         double slow_ms)
      : service_(service), max_pending_(max_pending), slow_ms_(slow_ms) {}

  /// Handles one nonempty, comment-stripped input line; prints any
  /// response lines that become available.
  void consume(const std::string& line) {
    ++lines_;
    RequestLine parsed;
    bool parse_ok = true;
    try {
      parsed = parse_request_line(line);
    } catch (const std::exception& e) {
      // Untagged: a positional client correlates responses by line, so
      // the error must keep its place in the stream, not jump the queue.
      ++parse_errors_;
      push_settled_error(std::nullopt, ErrorCode::kBadRequest, e.what());
      parse_ok = false;
    }
    if (parse_ok) {
      switch (parsed.kind) {
        case RequestLine::Kind::kCancel:
          handle_cancel(*parsed.id);
          break;
        case RequestLine::Kind::kPing:
          handle_ping(parsed);
          break;
        case RequestLine::Kind::kStats:
          handle_stats(parsed);
          break;
        case RequestLine::Kind::kTrace:
          handle_trace(parsed);
          break;
        case RequestLine::Kind::kSchedule:
          handle_schedule(parsed);
          break;
      }
    }
    drain(false);
    // Backpressure — on every path, settled-error lines included: never
    // hold more than max_pending_ unanswered lines; block on the oldest
    // until the window shrinks (its answer streams out in order).
    while (pending_.size() > max_pending_) emit_front(/*block=*/true);
  }

  /// EOF: answer everything still pending, in submission order.
  void finish() { drain(true); }

 private:
  void handle_schedule(const RequestLine& parsed) {
    if (parsed.id && by_id_.count(*parsed.id)) {
      // Untagged on purpose (tagging it id=N would collide with the
      // still-pending request N's eventual answer) and held in stream
      // order like every untagged answer. The message names the id.
      push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                         "duplicate id=" + std::to_string(*parsed.id) +
                             " (a request with this tag is still pending)");
      return;
    }
    Pending pending;
    pending.id = parsed.id;
    pending.algo = parsed.algo;
    pending.p = parsed.p;
    pending.priority = parsed.priority;
    ScheduleRequest req;
    try {
      req.tree = handle_for(parsed.tree_spec);
    } catch (const std::exception& e) {
      // Spec resolution (file IO, generator args) is a protocol-level
      // failure; store rejection surfaces its own kStoreFull code.
      // Answer in place for tagged lines, in order for untagged ones.
      const StoreFull* full = dynamic_cast<const StoreFull*>(&e);
      const ErrorCode code =
          full ? ErrorCode::kStoreFull : ErrorCode::kBadRequest;
      if (parsed.id) {
        emit_error(parsed.id, code, e.what());
      } else {
        push_settled_error(parsed.id, code, e.what());
      }
      return;
    }
    pending.tree_hash = req.tree.hash;
    pending.n = req.tree->size();
    // One clock read stamps both front-end stages: the stdin path has
    // no network accept, so "accept" is the moment the line was read.
    const std::uint64_t now = obs::now_ns();
    req.stamps.stamp(obs::Stage::kAccept, now);
    req.stamps.stamp(obs::Stage::kParse, now);
    req.algo = parsed.algo;
    req.p = parsed.p;
    req.memory_cap = parsed.memory_cap;
    req.priority = parsed.priority;
    req.deadline_ms = parsed.deadline_ms;
    pending.ticket = service_.submit(std::move(req));
    if (pending.id) by_id_.insert(*pending.id);
    pending_.push_back(std::move(pending));
  }

  void handle_cancel(std::uint64_t id) {
    Pending* target = nullptr;
    for (Pending& p : pending_) {
      if (p.id && *p.id == id) {
        target = &p;
        break;
      }
    }
    if (!target) {
      // Untagged (a late cancel racing the answer must not put a second
      // id=N line on the wire) and held in stream order like every
      // untagged answer.
      push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                         "cancel id=" + std::to_string(id) +
                             ": no pending request with this id");
      return;
    }
    if (!target->ticket.cancel()) {
      // Already running or already answered: the documented no-op. The
      // request's own answer line stands and keeps the id=N tag to
      // itself — this untagged, stream-ordered ack names the id in the
      // message.
      push_settled_error(std::nullopt, ErrorCode::kBadRequest,
                         "cancel id=" + std::to_string(id) +
                             ": request already running or answered");
    }
    // On success the ticket settled with code=cancelled; the next drain
    // emits that line as the request's answer.
  }

  /// Control lines answer immediately, out of band of the pending
  /// window — same contract as the TCP front-end: a stream drowning in
  /// queued work still gets its health check through.
  void handle_ping(const RequestLine& parsed) {
    ResponseLine line;
    line.kind = ResponseLine::Kind::kPong;
    line.ok = true;
    line.id = parsed.id;
    std::cout << format_response_line(line) << "\n";
  }

  void handle_stats(const RequestLine& parsed) {
    ResponseLine line;
    line.kind = ResponseLine::Kind::kStats;
    line.ok = true;
    line.id = parsed.id;
    // The stream's transport counters, then the shared service
    // vocabulary (service_stats_pairs keeps both front-ends aligned).
    line.stats = {{"pending", pending_.size()},
                  {"lines", lines_},
                  {"parse_errors", parse_errors_}};
    for (auto& pair : service_stats_pairs(service_)) {
      line.stats.push_back(std::move(pair));
    }
    std::cout << format_response_line(line) << "\n";
  }

  /// Same contract as the TCP front-end's trace verb: drives the
  /// process-wide tracer, answers a stats-shaped `trace` line at once.
  void handle_trace(const RequestLine& parsed) {
    obs::Tracer& tracer = obs::Tracer::global();
    std::uint64_t written = 0;
    bool dumped = false;
    if (parsed.trace_action == "start") {
      tracer.enable();
    } else if (parsed.trace_action == "stop") {
      tracer.disable();
    } else if (parsed.trace_action == "dump") {
      std::ofstream out{parsed.trace_path};
      if (!out) {
        emit_error(parsed.id, ErrorCode::kBadRequest,
                   "cannot open trace path \"" + parsed.trace_path +
                       "\" for writing");
        return;
      }
      written = tracer.write_chrome_trace(out);
      if (!out) {
        emit_error(parsed.id, ErrorCode::kBadRequest,
                   "short write dumping trace to \"" + parsed.trace_path +
                       "\"");
        return;
      }
      dumped = true;
    }  // "status" mutates nothing
    ResponseLine line;
    line.kind = ResponseLine::Kind::kTrace;
    line.ok = true;
    line.id = parsed.id;
    line.stats = {
        {"enabled", tracer.enabled() ? 1 : 0},
        {"spans", tracer.recorded()},
        {"dropped", tracer.dropped()},
    };
    if (dumped) line.stats.emplace_back("written", written);
    std::cout << format_response_line(line) << "\n";
  }

  /// Answers the oldest pending entry and removes it; with block=false
  /// returns false (and leaves the stream untouched) while that entry is
  /// still pending. The single home of the front-emission bookkeeping.
  bool emit_front(bool block) {
    Pending& front = pending_.front();
    const std::optional<ServiceResult> result =
        front.settled_error
            ? std::optional<ServiceResult>(*front.settled_error)
            : (block ? std::optional<ServiceResult>(front.ticket.wait())
                     : front.ticket.try_get());
    if (!result) return false;
    emit(front, *result);
    if (front.id) by_id_.erase(*front.id);
    pending_.pop_front();
    return true;
  }

  void push_settled_error(std::optional<std::uint64_t> id, ErrorCode code,
                          std::string message) {
    Pending pending;
    pending.id = id;
    pending.settled_error =
        ServiceError{code, std::move(message), nullptr};
    pending_.push_back(std::move(pending));
  }

  /// Prints every answerable response: the in-order prefix always, plus
  /// any completed id-tagged entry anywhere in the window (the tag makes
  /// an out-of-order line attributable). `block` waits everything out.
  void drain(bool block) {
    while (!pending_.empty()) {
      if (!emit_front(block)) break;
    }
    if (by_id_.empty()) {
      // No tagged entries pending: the out-of-order scan below could
      // only ever skip, so don't walk (and lock) the whole window.
      std::cout.flush();
      return;
    }
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (!it->id) {
        ++it;
        continue;  // untagged: must keep submission order
      }
      std::optional<ServiceResult> result = it->ticket.try_get();
      if (!result) {
        ++it;
        continue;
      }
      emit(*it, *result);
      by_id_.erase(*it->id);
      it = pending_.erase(it);
    }
    std::cout.flush();
  }

  void emit(const Pending& pending, const ServiceResult& result) {
    ResponseLine line;
    line.id = pending.id;
    if (result.ok()) {
      const ScheduleResponse& resp = result.value();
      line.ok = true;
      line.tree_hash = pending.tree_hash;
      line.n = pending.n;
      line.algo = pending.algo;
      line.p = pending.p;
      line.makespan = resp.makespan;
      line.peak_memory = resp.peak_memory;
      line.cache_hit = resp.cache_hit;
      line.priority = pending.priority;
    } else {
      line.ok = false;
      line.code = result.error().code;
      line.message = result.error().message;
    }
    std::cout << format_response_line(line) << "\n";
    if (slow_ms_ > 0.0 && result.ok()) slow_log(pending, result.value());
  }

  /// Stage breakdown to stderr for requests over --slow-ms. The stream
  /// has no flush stage — e2e here is accept to compute end.
  void slow_log(const Pending& pending, const ScheduleResponse& resp) {
    using obs::Stage;
    const obs::StageStamps& st = resp.stamps;
    if (!st.has(Stage::kAccept) || !st.has(Stage::kComputeEnd)) return;
    const std::uint64_t e2e = st.between(Stage::kAccept, Stage::kComputeEnd);
    if (static_cast<double>(e2e) < slow_ms_ * 1e6) return;
    std::string msg = "[treesched] slow request";
    if (pending.id) msg.append(" id=").append(std::to_string(*pending.id));
    msg.append(" algo=").append(pending.algo);
    msg.append(" class=").append(to_string(pending.priority));
    char buf[64];
    std::snprintf(buf, sizeof(buf), " e2e=%.3fms",
                  static_cast<double>(e2e) / 1e6);
    msg.append(buf);
    const auto stage_delta = [&](const char* name, Stage from, Stage to) {
      if (!st.has(from) || !st.has(to)) return;
      std::snprintf(buf, sizeof(buf), " %s=%.3fms", name,
                    static_cast<double>(st.between(from, to)) / 1e6);
      msg.append(buf);
    };
    stage_delta("admit", Stage::kParse, Stage::kAdmit);
    stage_delta("queue_wait", Stage::kAdmit, Stage::kDequeue);
    stage_delta("dispatch", Stage::kDequeue, Stage::kComputeStart);
    stage_delta("compute", Stage::kComputeStart, Stage::kComputeEnd);
    msg.push_back('\n');
    std::fputs(msg.c_str(), stderr);
  }

  void emit_error(std::optional<std::uint64_t> id, ErrorCode code,
                  const std::string& message) {
    ResponseLine line;
    line.ok = false;
    line.id = id;
    line.code = code;
    line.message = message;
    std::cout << format_response_line(line) << "\n";
  }

  TreeHandle handle_for(const std::string& spec) {
    const auto it = by_spec_.find(spec);
    if (it != by_spec_.end()) return it->second;
    const TreeHandle handle = service_.intern(tree_from_spec(spec));
    by_spec_.emplace(spec, handle);
    return handle;
  }

  SchedulingService& service_;
  const std::size_t max_pending_;
  std::unordered_map<std::string, TreeHandle> by_spec_;
  std::deque<Pending> pending_;
  /// Tags of pending requests, for duplicate-id detection (cancel scans
  /// the deque itself — the pending window is small).
  std::unordered_set<std::uint64_t> by_id_;
  std::uint64_t lines_ = 0;
  std::uint64_t parse_errors_ = 0;
  const double slow_ms_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const std::string input = args.get("input", "-");
    ServiceConfig config;
    config.cache_bytes =
        static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20;
    config.cache_backend =
        parse_cache_backend(args.get("cache-backend", "mutex"));
    config.queue.backend =
        parse_queue_backend(args.get("queue-backend", "mutex"));
    config.threads = static_cast<unsigned>(args.get_int("threads", 0));
    config.validate = args.get_bool("validate", false);
    config.queue.age_after =
        std::chrono::milliseconds(args.get_int("age-ms", 250));
    config.store.max_bytes =
        static_cast<std::size_t>(args.get_int("store-mb", 0)) << 20;
    const auto max_pending =
        static_cast<std::size_t>(args.get_int("max-pending", 256));
    const bool stats = args.get_bool("stats", false);
    const int metrics_port = static_cast<int>(args.get_int("metrics-port", -1));
    const double slow_ms = args.get_double("slow-ms", 0.0);
    args.reject_unknown();
    if (max_pending == 0) {
      throw std::invalid_argument("--max-pending must be >= 1");
    }

    SchedulingService service(config);
    Stream stream(service, max_pending, slow_ms);

    // Optional scrape endpoint on its own loop thread. It serves the
    // service's registry only — every collector behind it reads
    // mutex-guarded or atomic state, so a scrape never races the main
    // thread's stream bookkeeping (which stays stats-verb-only).
    std::unique_ptr<net::EventLoop> metrics_loop;
    std::unique_ptr<net::MetricsHttp> metrics_http;
    std::thread metrics_thread;
    if (metrics_port >= 0) {
      metrics_loop = std::make_unique<net::EventLoop>();
      metrics_http = std::make_unique<net::MetricsHttp>(
          *metrics_loop, service.registry(),
          net::ListenerConfig{
              .bind = "127.0.0.1",
              .port = static_cast<std::uint16_t>(metrics_port),
              .unix_path = {}});
      metrics_http->start();
      metrics_thread = std::thread([&] { metrics_loop->run(); });
      std::cerr << "metrics on " << metrics_http->address() << "\n";
    }

    std::ifstream file;
    if (input != "-") {
      file.open(input);
      if (!file) throw std::runtime_error("cannot open " + input);
    }
    std::istream& in = input == "-" ? std::cin : file;

    std::string line;
    while (std::getline(in, line)) {
      const auto hash_pos = line.find('#');
      if (hash_pos != std::string::npos) line.resize(hash_pos);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      stream.consume(line);
    }
    stream.finish();

    if (metrics_thread.joinable()) {
      metrics_loop->stop();
      metrics_thread.join();
      metrics_http->stop();  // loop idle: tears down scrape sockets
    }

    if (stats) {
      const CacheStats cs = service.cache_stats();
      const InstanceStore::Stats ss = service.store_stats();
      std::cerr << "cache: " << cs.hits << " hits, " << cs.misses
                << " misses (" << std::fixed << std::setprecision(1)
                << 100.0 * cs.hit_rate() << "% hit rate), " << cs.entries
                << " entries, " << cs.bytes << " bytes, " << cs.evictions
                << " evictions\n"
                << "store: " << ss.unique_trees << " unique trees, "
                << ss.hits << " intern hits, " << ss.bytes << " bytes held, "
                << ss.rejected << " rejected by budget\n";
      const QueueStats qs = service.queue_stats();
      for (int cls = 0; cls < kPriorityClasses; ++cls) {
        const ClassQueueStats& c =
            qs.by_class[static_cast<std::size_t>(cls)];
        if (c.admitted == 0) continue;
        std::cerr << "queue[" << to_string(static_cast<Priority>(cls))
                  << "]: " << c.admitted << " admitted, " << c.completed
                  << " completed, " << c.expired << " expired, "
                  << c.cancelled << " cancelled, " << c.rejected
                  << " rejected, " << c.aged
                  << " aged; wait ms p50/p90/p99 = " << std::setprecision(2)
                  << c.wait_ms_p50 << "/" << c.wait_ms_p90 << "/"
                  << c.wait_ms_p99 << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

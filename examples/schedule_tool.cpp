// Command-line scheduling driver: the "downstream user" entry point.
// Reads a tree (file or generated), runs any set of registered algorithms,
// prints the score card per algorithm and optionally dumps the schedule /
// memory profile as CSV and an ASCII Gantt chart.
//
//   $ ./examples/schedule_tool --gen grid --nx 30 --p 8 \
//         --algo ParDeepestFirst --gantt
//   $ ./examples/schedule_tool --tree my.tree --p 16 \
//         --algo ParSubtrees,ParInnerFirst,Liu --schedule-csv out.csv \
//         --profile-csv mem.csv
//   $ ./examples/schedule_tool --gen random --n 500 --cap-factor 2.0
//   $ ./examples/schedule_tool --list
//
// --algo takes one or more comma-separated SchedulerRegistry names
// (--list prints them). --cap-factor F sets a memory cap of F times the
// best-postorder peak for the memory-capped algorithms; with no --algo it
// implies --algo MemoryBounded. --validate runs the standalone checker
// (sched/validate.hpp) on every schedule — precedence, <= p concurrent
// tasks, and the memory cap when one is in force — and prints the
// verdict (non-zero exit on any violation).
//
// Scheduling runs through a SchedulingService ticket (submit + wait), so
// the tool shares the service's interning/caching engine and failures
// arrive as typed ServiceErrors — printed as "error [<code>]: <message>"
// with a non-zero exit.
//
// --trace-out <file> enables the process-wide tracer for the whole run
// and writes a Chrome trace_event JSON on exit — load it in Perfetto
// (ui.perfetto.dev) or chrome://tracing to see per-request queue-wait
// and per-algorithm compute spans on their worker threads.

#include <fstream>
#include <functional>
#include <iostream>
#include <vector>

#include "obs/trace.hpp"

#include "campaign/dataset.hpp"
#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "core/trace.hpp"
#include "parallel/memory_bounded.hpp"
#include "sched/registry.hpp"
#include "sched/validate.hpp"
#include "service/service.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "trees/io.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace treesched;

Tree load_tree(const CliArgs& args) {
  const std::string path = args.get("tree", "");
  if (!path.empty()) return read_tree_file(path);
  const std::string gen = args.get("gen", "random");
  Rng rng((std::uint64_t)args.get_int("seed", 1));
  if (gen == "grid") {
    const int nx = (int)args.get_int("nx", 30);
    return grid2d_assembly_tree(nx, nx, args.get_int("z", 4));
  }
  if (gen == "random") {
    RandomTreeParams params;
    params.n = (NodeId)args.get_int("n", 500);
    params.depth_bias = args.get_double("bias", 1.0);
    params.max_output = 100;
    params.max_exec = 20;
    params.min_work = 1.0;
    params.max_work = 50.0;
    return random_tree(params, rng);
  }
  if (gen == "synthetic") {
    return synthetic_assembly_tree((NodeId)args.get_int("n", 2000),
                                   args.get_double("bias", 2.0), rng);
  }
  throw std::invalid_argument("--gen must be grid|random|synthetic");
}

// With several --algo names, per-algorithm CSV dumps get the algorithm
// name spliced in before the extension so later runs don't clobber
// earlier ones ("out.csv" -> "out.ParSubtrees.csv"). Only dots in the
// filename component count as an extension separator.
std::string algo_csv_path(const std::string& base, const std::string& algo,
                          bool multi) {
  if (!multi) return base;
  const std::size_t slash = base.find_last_of('/');
  const std::size_t name_begin = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || dot <= name_begin) {
    return base + "." + algo;
  }
  return base.substr(0, dot) + "." + algo + base.substr(dot);
}

void dump_csv(const std::string& path, const std::string& what,
              const std::function<void(std::ostream&)>& write) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  write(os);
  std::cout << "wrote " << what << " to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const int p = (int)args.get_int("p", 8);
    const double cap_factor = args.get_double("cap-factor", 0.0);
    const std::string default_algo =
        cap_factor > 0.0 ? "MemoryBounded" : "ParDeepestFirst";
    const std::vector<std::string> algos =
        split_csv(args.get("algo", default_algo));
    if (algos.empty()) {
      throw std::invalid_argument(
          "--algo needs at least one registry name (see --list)");
    }
    const std::string schedule_csv = args.get("schedule-csv", "");
    const std::string profile_csv = args.get("profile-csv", "");
    const bool gantt = args.get_bool("gantt", false);
    const bool validate = args.get_bool("validate", false);
    const bool list = args.get_bool("list", false);
    const std::string save_tree = args.get("save-tree", "");
    if (list) {
      args.reject_unknown();
      std::cout << "registered algorithms:\n";
      for (const std::string& name : SchedulerRegistry::instance().names()) {
        const auto caps =
            SchedulerRegistry::instance().create(name)->capabilities();
        std::cout << "  " << name;
        if (caps.sequential_only) std::cout << "  [sequential]";
        if (caps.memory_capped) std::cout << "  [memory-capped]";
        if (caps.is_oracle()) {
          std::cout << "  [oracle, n <= " << caps.max_nodes << "]";
        }
        std::cout << "\n";
      }
      return 0;
    }
    const std::string trace_out = args.get("trace-out", "");
    const Tree tree = load_tree(args);
    args.reject_unknown();
    if (!trace_out.empty()) obs::Tracer::global().enable();

    std::cout << "tree: " << tree.describe() << "\n";
    if (!save_tree.empty()) {
      write_tree_file(save_tree, tree);
      std::cout << "saved tree to " << save_tree << "\n";
    }

    const auto lb = lower_bounds(tree, p, tree.size() <= 20000);
    std::cout << "bounds: makespan >= " << lb.makespan << ", memory >= "
              << lb.memory_exact << " (postorder estimate "
              << lb.memory_postorder << ")\n";

    Resources res{p, 0};
    if (cap_factor > 0.0) {
      res.memory_cap =
          (MemSize)((double)min_feasible_cap(tree) * cap_factor);
      std::cout << "memory cap: " << res.memory_cap << " (" << cap_factor
                << "x the best-postorder peak)\n";
    }

    SchedulingService service;
    const TreeHandle handle = service.intern(tree);
    for (const std::string& name : algos) {
      const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
      Resources eff = res;
      if (res.memory_cap != 0 && !sched->capabilities().memory_capped) {
        std::cout << "note: " << name
                  << " is not memory-capped; running it without the cap\n";
        eff.memory_cap = 0;
      }
      ScheduleRequest req;
      req.tree = handle;
      req.algo = name;
      req.p = eff.p;
      req.memory_cap = eff.memory_cap;
      req.want_schedule = true;
      req.priority = Priority::kInteractive;  // a human is waiting
      const ServiceResult result = service.submit(std::move(req)).wait();
      if (!result.ok()) {
        const ServiceError& err = result.error();
        std::cerr << "error [" << to_string(err.code) << "]: " << err.message
                  << "\n";
        return 1;
      }
      const Schedule& schedule = *result.value().schedule;
      const auto v = validate_schedule(tree, schedule, p);
      if (!v.ok) {
        std::cerr << "BUG: invalid schedule from " << name << ": " << v.error
                  << "\n";
        return 1;
      }
      const auto st = schedule_stats(tree, schedule, p);
      std::cout << "\n" << name << " on p = " << p << ":\n"
                << "  makespan:   " << st.makespan << "  ("
                << fmt(st.makespan / lb.makespan, 3) << "x lower bound)\n"
                << "  peak memory: " << st.peak_memory << "  ("
                << fmt((double)st.peak_memory / (double)lb.memory_postorder, 3)
                << "x sequential postorder)\n"
                << "  processors used: " << st.processors_used << "/" << p
                << ", avg utilization " << fmt_pct(st.avg_utilization) << "\n";
      if (validate) {
        // The standalone checker: feasibility again (independently), the
        // concurrency sweep, and the cap this run actually enforced.
        const ScheduleCheck check =
            check_schedule(tree, schedule, p, eff.memory_cap);
        if (!check.ok) {
          std::cerr << "BUG: " << name << " failed validation: "
                    << check.error << "\n";
          return 1;
        }
        std::cout << "  validator: OK (" << check.max_concurrency << "/" << p
                  << " processors busy at peak";
        if (eff.memory_cap != 0) {
          std::cout << ", peak memory " << check.peak_memory
                    << " <= cap " << eff.memory_cap;
        }
        std::cout << ")\n";
      }

      if (gantt) {
        std::cout << "\n";
        ascii_gantt(std::cout, tree, schedule, p);
      }
      const bool multi = algos.size() > 1;
      if (!schedule_csv.empty()) {
        dump_csv(algo_csv_path(schedule_csv, name, multi), "schedule",
                 [&](std::ostream& os) { write_schedule_csv(os, tree, schedule); });
      }
      if (!profile_csv.empty()) {
        dump_csv(algo_csv_path(profile_csv, name, multi), "memory profile",
                 [&](std::ostream& os) {
                   write_memory_profile_csv(os, tree, schedule);
                 });
      }
    }
    if (!trace_out.empty()) {
      obs::Tracer& tracer = obs::Tracer::global();
      tracer.disable();
      std::ofstream out(trace_out);
      if (!out) throw std::runtime_error("cannot open " + trace_out);
      const std::size_t written = tracer.write_chrome_trace(out);
      std::cout << "wrote " << written << " trace spans to " << trace_out
                << " (" << tracer.dropped()
                << " overwritten; open in Perfetto or chrome://tracing)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

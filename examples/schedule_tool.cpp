// Command-line scheduling driver: the "downstream user" entry point.
// Reads a tree (file or generated), runs a chosen heuristic, prints the
// score card and optionally dumps the schedule / memory profile as CSV
// and an ASCII Gantt chart.
//
//   $ ./examples/schedule_tool --gen grid --nx 30 --p 8 \
//         --heuristic ParDeepestFirst --gantt
//   $ ./examples/schedule_tool --tree my.tree --p 16 \
//         --heuristic ParSubtrees --schedule-csv out.csv \
//         --profile-csv mem.csv
//   $ ./examples/schedule_tool --gen random --n 500 --cap-factor 2.0

#include <fstream>
#include <iostream>

#include "campaign/dataset.hpp"
#include "campaign/runner.hpp"
#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "core/trace.hpp"
#include "parallel/memory_bounded.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "trees/io.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace treesched;

Tree load_tree(const CliArgs& args) {
  const std::string path = args.get("tree", "");
  if (!path.empty()) return read_tree_file(path);
  const std::string gen = args.get("gen", "random");
  Rng rng((std::uint64_t)args.get_int("seed", 1));
  if (gen == "grid") {
    const int nx = (int)args.get_int("nx", 30);
    return grid2d_assembly_tree(nx, nx, args.get_int("z", 4));
  }
  if (gen == "random") {
    RandomTreeParams params;
    params.n = (NodeId)args.get_int("n", 500);
    params.depth_bias = args.get_double("bias", 1.0);
    params.max_output = 100;
    params.max_exec = 20;
    params.min_work = 1.0;
    params.max_work = 50.0;
    return random_tree(params, rng);
  }
  if (gen == "synthetic") {
    return synthetic_assembly_tree((NodeId)args.get_int("n", 2000),
                                   args.get_double("bias", 2.0), rng);
  }
  throw std::invalid_argument("--gen must be grid|random|synthetic");
}

Heuristic parse_heuristic(const std::string& name) {
  for (Heuristic h : all_heuristics()) {
    if (heuristic_name(h) == name) return h;
  }
  throw std::invalid_argument("unknown --heuristic " + name +
                              " (ParSubtrees, ParSubtreesOptim, "
                              "ParInnerFirst, ParDeepestFirst)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const int p = (int)args.get_int("p", 8);
    const std::string hname = args.get("heuristic", "ParDeepestFirst");
    const double cap_factor = args.get_double("cap-factor", 0.0);
    const std::string schedule_csv = args.get("schedule-csv", "");
    const std::string profile_csv = args.get("profile-csv", "");
    const bool gantt = args.get_bool("gantt", false);
    const std::string save_tree = args.get("save-tree", "");
    const Tree tree = load_tree(args);
    args.reject_unknown();

    std::cout << "tree: " << tree.describe() << "\n";
    if (!save_tree.empty()) {
      write_tree_file(save_tree, tree);
      std::cout << "saved tree to " << save_tree << "\n";
    }

    const auto lb = lower_bounds(tree, p, tree.size() <= 20000);
    std::cout << "bounds: makespan >= " << lb.makespan << ", memory >= "
              << lb.memory_exact << " (postorder estimate "
              << lb.memory_postorder << ")\n";

    Schedule schedule;
    std::string used;
    if (cap_factor > 0.0) {
      const auto cap =
          (MemSize)((double)min_feasible_cap(tree) * cap_factor);
      auto r = memory_bounded_schedule(tree, p, cap);
      if (!r) {
        std::cerr << "cap " << cap << " below the feasibility floor "
                  << min_feasible_cap(tree) << "\n";
        return 1;
      }
      schedule = std::move(r->schedule);
      used = "MemoryBounded(cap=" + std::to_string(cap) + ")";
    } else {
      schedule = run_heuristic(tree, p, parse_heuristic(hname));
      used = hname;
    }

    const auto v = validate_schedule(tree, schedule, p);
    if (!v.ok) {
      std::cerr << "BUG: invalid schedule: " << v.error << "\n";
      return 1;
    }
    const auto st = schedule_stats(tree, schedule, p);
    std::cout << "\n" << used << " on p = " << p << ":\n"
              << "  makespan:   " << st.makespan << "  ("
              << fmt(st.makespan / lb.makespan, 3) << "x lower bound)\n"
              << "  peak memory: " << st.peak_memory << "  ("
              << fmt((double)st.peak_memory / (double)lb.memory_postorder, 3)
              << "x sequential postorder)\n"
              << "  processors used: " << st.processors_used << "/" << p
              << ", avg utilization " << fmt_pct(st.avg_utilization) << "\n";

    if (gantt) {
      std::cout << "\n";
      ascii_gantt(std::cout, tree, schedule, p);
    }
    if (!schedule_csv.empty()) {
      std::ofstream os(schedule_csv);
      write_schedule_csv(os, tree, schedule);
      std::cout << "wrote schedule to " << schedule_csv << "\n";
    }
    if (!profile_csv.empty()) {
      std::ofstream os(profile_csv);
      write_memory_profile_csv(os, tree, schedule);
      std::cout << "wrote memory profile to " << profile_csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

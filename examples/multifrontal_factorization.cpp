// End-to-end multifrontal pipeline on a model PDE problem — the workload
// that motivates the paper. Builds a 2D grid Laplacian, orders it with
// nested dissection, runs symbolic Cholesky, amalgamates the elimination
// tree into an assembly tree with the paper's (eta, mu) weight formulas,
// and schedules the factorization with every heuristic.
//
//   $ ./examples/multifrontal_factorization [--nx 60] [--ny 60] [--z 4]
//                                           [--p 8]

#include <iostream>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "sequential/postorder.hpp"
#include "spmatrix/amalgamation.hpp"
#include "spmatrix/assembly.hpp"
#include "spmatrix/ordering.hpp"
#include "spmatrix/sparse.hpp"
#include "spmatrix/symbolic.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const int nx = (int)args.get_int("nx", 60);
  const int ny = (int)args.get_int("ny", 60);
  const auto z = args.get_int("z", 4);
  const int p = (int)args.get_int("p", 8);
  args.reject_unknown();

  std::cout << "== multifrontal factorization of a " << nx << "x" << ny
            << " grid Laplacian ==\n\n";

  // 1. Matrix pattern and fill-reducing ordering.
  const SparsePattern a = grid2d_pattern(nx, ny);
  const Ordering perm = nested_dissection_2d(nx, ny);
  std::cout << "matrix: n = " << a.size() << ", nnz(offdiag) = "
            << 2 * a.num_edges() << "\n";

  // 2. Symbolic factorization.
  const SymbolicResult sym = symbolic_cholesky(a, perm);
  std::cout << "factor: nnz(L) = " << sym.factor_nnz << "\n";

  // 3. Relaxed amalgamation -> assembly tree.
  const AssemblyTree at = amalgamate(sym, z);
  const Tree tree = assembly_to_task_tree(at);
  std::cout << "assembly tree (z = " << z << "): " << tree.describe()
            << "\n\n";

  // 4. Sequential memory baseline and parallel scheduling.
  const MemSize mseq = best_postorder_memory(tree);
  const auto lb = lower_bounds(tree, p, /*exact_memory=*/false);
  std::cout << "sequential postorder memory: " << mseq << " (matrix entries)"
            << "\nmakespan lower bound on p = " << p << ": " << lb.makespan
            << " (flops)\n\n"
            << "algorithm          makespan(xLB)  memory(xMseq)\n";
  for (const std::string& name : default_campaign_algorithms()) {
    const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
    const auto sim = simulate(tree, sched->schedule(tree, Resources{p, 0}));
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 17; ++pad) {
      std::cout << ' ';
    }
    std::cout << fmt(sim.makespan / lb.makespan, 3) << "\t   "
              << fmt((double)sim.peak_memory / (double)mseq, 3) << "\n";
  }

  // 5. What amalgamation buys: tree size vs z.
  std::cout << "\namalgamation sweep (tree size / seq memory):\n";
  for (std::int64_t zz : {1, 2, 4, 16}) {
    const Tree tz = assembly_to_task_tree(amalgamate(sym, zz));
    std::cout << "  z = " << zz << ": " << tz.size() << " nodes, Mseq = "
              << best_postorder_memory(tz) << "\n";
  }
  return 0;
}

// Networked front-end for the scheduling service: an epoll-driven
// server (src/net/) speaking text protocol v2 — the same
// request/response line grammar as the stdin front-end (examples/
// schedule_service) — and binary protocol v3 (net/frame.hpp),
// negotiated per connection by its first bytes.
//
//   $ ./schedule_server --port 3713 &
//   listening on 127.0.0.1:3713
//   $ printf 'random:500:1 ParSubtrees 8 id=1\nping\n' | nc 127.0.0.1 3713
//   ok id=1 tree=... makespan=... priority=batch
//   pong
//
// --port 0 picks an ephemeral port (printed on stdout, for scripts);
// --bind sets the TCP address (default 127.0.0.1); --unix /path.sock
// serves on a unix-domain socket instead of TCP (same protocols, no TCP
// stack — what the bench's UDS experiment measures).
// --max-conns bounds accepted sockets; --max-pending bounds unsettled
// requests per connection (excess answers the typed queue_full error);
// --max-frame-kb bounds one v3 frame; --store-mb / --cache-mb budget
// the instance store and result cache.
// --metrics-port N serves `GET /metrics` (Prometheus text exposition)
// on 127.0.0.1:N, riding the server's own I/O thread; 0 picks an
// ephemeral port (printed as "metrics on ..."). --slow-ms T logs the
// full stage breakdown of any request slower than T ms to stderr.
// --trace-dir DIR allows the `trace dump=<file>` verb to write Chrome
// trace JSON into DIR (relative names only); without it dumps are
// refused — a network client must not name server-side files.
// --log-json PATH appends structured JSON-lines events (drains, slow
// requests, queue rejections) to PATH; "-" = stdout.
// --tree-dir DIR allows `file:` tree specs to read trees from DIR
// (relative names only); without it file: specs are refused — a network
// client must not choose what the server opens. --max-spec-nodes N
// bounds generator specs (random:/synthetic:/grid:) before allocation
// (default 2000000; 0 = unlimited, trusted networks only);
// --max-spec-bytes N bounds the on-disk size of a file: spec before it
// is read (default 16 MiB; 0 = unlimited). --drain-timeout-ms T caps
// the graceful drain: past T, clients that never read their last
// answers are closed instead of holding the process up (0 = wait
// forever).
// --cache-backend mutex|lockfree selects the result-cache index
// (sharded-mutex LRU vs concurrent CLOCK map); --queue-backend
// mutex|lockfree selects the admission queue's fast path.
// SIGTERM/SIGINT drain gracefully: the listener closes, every accepted
// request is answered or cancelled, buffers flush, then the process
// exits 0 — kill -TERM is the production stop.

#include <signal.h>

#include <iostream>

#include "net/server.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    net::ServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
    server_config.bind = args.get("bind", "127.0.0.1");
    server_config.unix_path = args.get("unix", "");
    server_config.max_frame =
        static_cast<std::size_t>(args.get_int("max-frame-kb", 1024)) << 10;
    server_config.max_conns =
        static_cast<std::size_t>(args.get_int("max-conns", 256));
    server_config.max_pending =
        static_cast<std::size_t>(args.get_int("max-pending", 64));
    server_config.max_wbuf =
        static_cast<std::size_t>(args.get_int("max-wbuf-kb", 256)) << 10;
    server_config.handle_signals = true;
    server_config.metrics_port = static_cast<int>(args.get_int("metrics-port", -1));
    server_config.slow_ms = args.get_double("slow-ms", 0.0);
    server_config.trace_dir = args.get("trace-dir", "");
    server_config.log_json = args.get("log-json", "");
    server_config.tree_dir = args.get("tree-dir", "");
    server_config.max_spec_nodes =
        static_cast<std::uint64_t>(args.get_int("max-spec-nodes", 2'000'000));
    server_config.max_spec_bytes = static_cast<std::uint64_t>(
        args.get_int("max-spec-bytes", 16 << 20));
    server_config.drain_timeout_ms = args.get_double("drain-timeout-ms", 0.0);
    ServiceConfig service_config;
    service_config.cache_bytes =
        static_cast<std::size_t>(args.get_int("cache-mb", 256)) << 20;
    service_config.cache_backend =
        parse_cache_backend(args.get("cache-backend", "mutex"));
    service_config.queue.backend =
        parse_queue_backend(args.get("queue-backend", "mutex"));
    service_config.validate = args.get_bool("validate", false);
    service_config.store.max_bytes =
        static_cast<std::size_t>(args.get_int("store-mb", 0)) << 20;
    args.reject_unknown();
    if (server_config.max_pending == 0) {
      throw std::invalid_argument("--max-pending must be >= 1");
    }

    // Block SIGTERM/SIGINT before ANY thread exists (the service's
    // first submit spawns the shared pool, which inherits the mask), so
    // only the server's signalfd ever sees them.
    sigset_t mask;
    sigemptyset(&mask);
    sigaddset(&mask, SIGTERM);
    sigaddset(&mask, SIGINT);
    if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
      throw std::runtime_error("pthread_sigmask failed");
    }

    SchedulingService service(service_config);
    net::Server server(service, server_config);
    // Machine-read by scripts (the e2e test binds port 0): keep the
    // format stable and flushed before serving starts.
    std::cout << "listening on " << server.address() << std::endl;
    if (server.metrics_port() != 0) {
      std::cout << "metrics on 127.0.0.1:" << server.metrics_port()
                << std::endl;
    }
    server.run();
    std::cerr << "drained: all accepted requests answered or cancelled\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

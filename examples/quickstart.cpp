// Quickstart: build a small task tree, compute the sequential memory
// baselines, run every registered scheduling algorithm, and print the
// memory/makespan trade-off each one picks.
//
//   $ ./examples/quickstart

#include <iostream>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "util/stats.hpp"

int main() {
  using namespace treesched;

  // A toy multifrontal-style tree. Every node: (parent, f, n, w) where the
  // output file f goes to the parent, n is the in-core working set and w
  // the processing time.
  TreeBuilder b;
  const NodeId root = b.add_node(kNoNode, /*f=*/0, /*n=*/16, /*w=*/40.0);
  const NodeId left = b.add_node(root, 9, 12, 25.0);
  const NodeId right = b.add_node(root, 9, 12, 25.0);
  for (NodeId join : {left, right}) {
    for (int i = 0; i < 3; ++i) {
      const NodeId mid = b.add_node(join, 4, 6, 8.0);
      b.add_node(mid, 2, 3, 3.0);
      b.add_node(mid, 2, 3, 3.0);
    }
  }
  const Tree tree = std::move(b).build();
  std::cout << "tree: " << tree.describe() << "\n\n";

  // Sequential baselines.
  const auto po = postorder(tree);
  const auto liu = liu_optimal_traversal(tree);
  std::cout << "sequential memory: best postorder = " << po.peak
            << ", exact optimum (Liu) = " << liu.peak << "\n";

  // Every registered algorithm (oracle included: this tree is tiny) on
  // p = 4 processors.
  const int p = 4;
  const auto lb = lower_bounds(tree, p);
  std::cout << "lower bounds for p = " << p << ": makespan >= " << lb.makespan
            << ", memory >= " << lb.memory_exact << "\n\n"
            << "algorithm          makespan  (xLB)   peak-mem  (xMseq)\n";
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
    if (sched->capabilities().is_oracle() &&
        tree.size() > sched->capabilities().max_nodes) {
      continue;
    }
    const Schedule s = sched->schedule(tree, Resources{p, 0});
    const auto v = validate_schedule(tree, s, p);
    if (!v.ok) {
      std::cerr << "invalid schedule: " << v.error << "\n";
      return 1;
    }
    const auto sim = simulate(tree, s);
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 17; ++pad) {
      std::cout << ' ';
    }
    std::cout << sim.makespan << "   (" << fmt(sim.makespan / lb.makespan, 2)
              << ")   " << sim.peak_memory << "   ("
              << fmt((double)sim.peak_memory / (double)po.peak, 2) << ")\n";
  }
  std::cout << "\nReading: ParSubtrees* and the memory-capped schedulers "
               "keep memory near the sequential optimum; the list "
               "heuristics trade memory for speed; the sequential rows are "
               "the memory floor and the makespan ceiling.\n";
  return 0;
}

// Pebble-game explorer: the paper's theoretical model (f=1, n=0, w=1).
// Compares the heuristics against the TRUE bi-objective Pareto front
// (computed by brute force) on small random trees -- a view the paper's
// complexity results say cannot scale, which is exactly why heuristics
// exist.
//
//   $ ./examples/pebble_game_explorer [--n 10] [--p 2] [--trees 5]
//                                     [--seed 1]

#include <iostream>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "sequential/bruteforce.hpp"
#include "sequential/liu.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const auto n = (NodeId)args.get_int("n", 10);
  const int p = (int)args.get_int("p", 2);
  const int trees = (int)args.get_int("trees", 5);
  Rng rng((std::uint64_t)args.get_int("seed", 1));
  args.reject_unknown();
  if (n > 14) {
    std::cerr << "brute force needs --n <= 14\n";
    return 1;
  }

  std::cout << "== pebble-game Pareto explorer (n = " << n << ", p = " << p
            << ") ==\n";
  for (int trial = 0; trial < trees; ++trial) {
    Tree t = random_pebble_tree(n, rng, rng.uniform01() * 2);
    std::cout << "\ntree " << trial << ": " << t.describe() << "\n";
    std::cout << "  exact Pareto front (makespan, memory):";
    for (const auto& pt : bruteforce_pareto_unit(t, p)) {
      std::cout << " (" << pt.makespan << "," << pt.memory << ")";
    }
    std::cout << "\n  sequential optimum (Liu): " << min_sequential_memory(t)
              << "\n";
    // Trees this small fit every registered algorithm, oracle included.
    for (const std::string& name : SchedulerRegistry::instance().names()) {
      const SchedulerPtr sched = SchedulerRegistry::instance().create(name);
      const auto sim = simulate(t, sched->schedule(t, Resources{p, 0}));
      std::cout << "  " << name << ": (" << sim.makespan << ","
                << sim.peak_memory << ")\n";
    }
  }
  std::cout << "\nReading: every heuristic lands on or above the front; "
               "none dominates it everywhere (Theorem 2 forbids that).\n";
  return 0;
}

// Memory-cap planner: given a machine memory budget, find the fastest
// schedule that fits. Demonstrates the memory-bounded extension on a
// multifrontal workload: sweeps the cap, prints the trade-off curve, and
// recommends the smallest cap within 10% of the unbounded makespan.
//
//   $ ./examples/memory_cap_planner [--nx 40] [--p 8]

#include <iostream>
#include <vector>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "parallel/memory_bounded.hpp"
#include "parallel/par_deepest_first.hpp"
#include "spmatrix/amalgamation.hpp"
#include "spmatrix/assembly.hpp"
#include "spmatrix/ordering.hpp"
#include "spmatrix/sparse.hpp"
#include "spmatrix/symbolic.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const int nx = (int)args.get_int("nx", 40);
  const int p = (int)args.get_int("p", 8);
  args.reject_unknown();

  const SparsePattern a = grid2d_pattern(nx, nx);
  const Tree tree = assembly_to_task_tree(
      amalgamate(symbolic_cholesky(a, nested_dissection_2d(nx, nx)), 4));
  std::cout << "== memory-cap planning for a " << nx << "x" << nx
            << " grid factorization on p = " << p << " ==\n"
            << "tree: " << tree.describe() << "\n\n";

  const MemSize floor_cap = min_feasible_cap(tree);
  const auto unbounded = simulate(tree, par_deepest_first(tree, p));
  const double lb = makespan_lower_bound(tree, p);
  std::cout << "cap floor (sequential postorder):  " << floor_cap << "\n"
            << "unbounded schedule: makespan x" << fmt(unbounded.makespan / lb, 3)
            << " LB, memory x"
            << fmt((double)unbounded.peak_memory / (double)floor_cap, 2)
            << " floor\n\n"
            << "   budget(xfloor)   makespan(xLB)   used-mem(xfloor)\n";

  struct Point {
    double factor;
    double makespan;
    MemSize mem;
  };
  std::vector<Point> curve;
  for (double f : {1.0, 1.2, 1.5, 2.0, 3.0, 4.0, 6.0, 10.0}) {
    const auto cap = (MemSize)((double)floor_cap * f);
    auto r = memory_bounded_schedule(tree, p, cap);
    if (!r) continue;
    const auto sim = simulate(tree, r->schedule);
    curve.push_back({f, sim.makespan, sim.peak_memory});
    std::cout << "   x" << fmt(f, 2) << "\t     " << fmt(sim.makespan / lb, 3)
              << "\t     x"
              << fmt((double)sim.peak_memory / (double)floor_cap, 2) << "\n";
  }

  // Recommendation: the smallest budget within 10% of the unbounded run.
  for (const Point& pt : curve) {
    if (pt.makespan <= 1.10 * unbounded.makespan) {
      std::cout << "\nrecommendation: a budget of x" << fmt(pt.factor, 2)
                << " the sequential optimum already achieves "
                << fmt(100.0 * unbounded.makespan / pt.makespan, 1)
                << "% of the unbounded speed.\n";
      break;
    }
  }
  return 0;
}

// Exports the campaign data set as plain-text .tree files plus a manifest
// CSV (name, n, height, degree, leaves, total work, critical path,
// sequential postorder memory), so the instances can be consumed by other
// tools or inspected by hand.
//
//   $ ./examples/dataset_export --dir /tmp/treesched-data [--scale 0.5]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "campaign/dataset.hpp"
#include "sequential/postorder.hpp"
#include "trees/io.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const std::string dir = args.get("dir", "treesched-dataset");
    DatasetParams params;
    params.scale = args.get_double("scale", 0.25);
    params.seed = (std::uint64_t)args.get_int("seed", 42);
    args.reject_unknown();

    std::filesystem::create_directories(dir);
    const auto dataset = build_dataset(params);
    std::ofstream manifest(dir + "/manifest.csv");
    manifest << "name,file,n,height,max_degree,leaves,total_work,"
                "critical_path,postorder_memory\n";
    for (const auto& entry : dataset) {
      const std::string file = entry.name + ".tree";
      write_tree_file(dir + "/" + file, entry.tree);
      manifest << entry.name << ',' << file << ',' << entry.tree.size()
               << ',' << entry.tree.height() << ','
               << entry.tree.max_degree() << ',' << entry.tree.num_leaves()
               << ',' << entry.tree.total_work() << ','
               << entry.tree.critical_path() << ','
               << best_postorder_memory(entry.tree) << '\n';
    }
    std::cout << "wrote " << dataset.size() << " trees + manifest.csv to "
              << dir << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

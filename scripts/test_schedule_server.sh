#!/bin/sh
# End-to-end check of the networked scheduling server: starts
# schedule_server on an ephemeral port, drives concurrent clients in
# BOTH protocols — text v2 (tagged out-of-order answers, one cancel
# id=N, one abrupt disconnect mid-batch) and binary v3 (magic
# negotiation, one pipelined batch frame, hostile frames: garbage
# magic, oversized length, truncated length prefix) — probes liveness
# with ping/stats (including the v3 protocol counters), checks a
# unix-domain-socket instance, then SIGTERMs and asserts a clean
# graceful drain (exit 0). Run by CTest as schedule_server_e2e with the
# binary path as $1 — and by the ASan/TSan CI jobs, where the
# abrupt-disconnect ticket cleanup and the v3 in-place parse path are
# leak- and race-checked for real.
#
# The observability surface rides along: the server runs with
# --metrics-port 0 --slow-ms 5, the Prometheus endpoint is scraped
# mid-load and again after, both scrapes go through
# scripts/check_prometheus.py (format + counters monotonic), the trace
# verb is driven start -> dump -> stop and its JSON checked, and the
# slow-request log is asserted in stderr.
set -eu

bin="$1"
checker="$(dirname "$0")/check_prometheus.py"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Enough heavy interactive work to pin every pool worker with queue to
# spare (the pool sizes itself to the core count), so the bulk request
# behind it is still queued when its cancel arrives. The server's
# per-connection window must clear it, whatever the core count.
backlog=$((2 * $(nproc) + 6))

"$bin" --port 0 --max-pending $((backlog + 16)) --store-mb 64 \
    --metrics-port 0 --slow-ms 5 --trace-dir "$workdir" \
    > "$workdir/stdout" 2> "$workdir/stderr" &
server_pid=$!

fail() {
    echo "FAIL: $1" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
}

# Wait for the (machine-readable) listening line.
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127.0.0.1://p' "$workdir/stdout")
    [ -n "$port" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server died on startup: \
$(cat "$workdir/stderr")"
    sleep 0.1
done
[ -n "$port" ] || fail "server never printed its port"
# The metrics line follows the listening line; poll for it separately
# so a flush race can't hand us an empty port.
mport=""
for _ in $(seq 1 100); do
    mport=$(sed -n 's/^metrics on 127.0.0.1://p' "$workdir/stdout")
    [ -n "$mport" ] && break
    sleep 0.1
done
[ -n "$mport" ] || fail "server never printed its metrics port"

python3 - "$port" "$backlog" "$mport" "$workdir" \
    <<'EOF' || fail "client driver reported a failure"
import socket, struct, sys, threading, urllib.request

port = int(sys.argv[1])
backlog = int(sys.argv[2])
mport = int(sys.argv[3])
workdir = sys.argv[4]
errors = []

def scrape(path):
    url = f"http://127.0.0.1:{mport}/metrics"
    with urllib.request.urlopen(url, timeout=30) as resp:
        ctype = resp.headers.get("Content-Type", "")
        body = resp.read()
    if not ctype.startswith("text/plain"):
        raise AssertionError(f"/metrics content-type {ctype!r}")
    with open(path, "wb") as f:
        f.write(body)

# --- protocol v3 plumbing (mirrors src/net/frame.hpp) -------------------
MAGIC = b"\xb3TS3"
OP_BATCH, OP_RESPONSE = 0x02, 0x81
FLAG_OK, FLAG_HAS_ID = 0x01, 0x02
CODE_BAD_REQUEST = 7

def frame(op, flags=0, payload=b""):
    return struct.pack("<BBHI", op, flags, 0, len(payload)) + payload

def batch_frame(lines):
    payload = struct.pack("<I", len(lines))
    for line in lines:
        raw = line.encode()
        payload += struct.pack("<I", len(raw)) + raw
    return frame(OP_BATCH, 0, payload)

def recv_frames(sock):
    """Reads to EOF and splits into (opcode, flags, payload) frames."""
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    frames, off = [], 0
    while off + 8 <= len(data):
        op, flags, reserved, length = struct.unpack_from("<BBHI", data, off)
        off += 8
        frames.append((op, flags, data[off:off + length]))
        off += length
    if off != len(data):
        raise AssertionError(f"server sent a partial frame ({len(data)-off} "
                             "trailing bytes)")
    return frames

def connect():
    return socket.create_connection(("127.0.0.1", port), timeout=30)

def recv_lines(sock):
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    return [l for l in data.decode().split("\n") if l]

def orderly_client():
    """Tagged requests answered out of order + a cancel on a queued one."""
    try:
        s = connect()
        lines = []
        for i in range(backlog):
            lines.append(f"synthetic:20000:1 ParDeepestFirst {2+i} "
                         f"priority=interactive id={100+i}")
        # A tree spec no other client touches: if a concurrent client
        # cached the same (tree, algo, p) first, the I/O-thread cache
        # fast path would answer id=7 before the cancel line landed.
        lines.append("random:211:1 Liu 1 priority=bulk id=7")
        lines.append("cancel id=7")
        s.sendall(("\n".join(lines) + "\n").encode())
        s.shutdown(socket.SHUT_WR)
        replies = recv_lines(s)
        s.close()
        if len(replies) != backlog + 1:
            raise AssertionError(
                f"expected {backlog + 1} answers ({backlog} ok + 1 "
                f"cancelled), got {len(replies)}: {replies[:3]}...")
        def fields(reply):
            return dict(kv.split("=", 1) for kv in reply.split()
                        if "=" in kv)
        tags = {int(fields(r)["id"]) for r in replies if "id" in fields(r)}
        if tags != set(range(100, 100 + backlog)) | {7}:
            raise AssertionError(f"missing/duplicate tags: {sorted(tags)}")
        id7 = [r for r in replies if fields(r).get("id") == "7"]
        if len(id7) != 1 or fields(id7[0]).get("code") != "cancelled":
            raise AssertionError(f"id=7 was not answered cancelled: {id7}")
        oks = [r for r in replies if r.startswith("ok ")]
        if len(oks) != backlog:
            raise AssertionError(
                f"expected {backlog} ok answers, got {len(oks)}")
    except Exception as e:  # noqa: BLE001
        errors.append(f"orderly client: {e}")

def abrupt_client():
    """Submits a batch and vanishes mid-flight; the server must cancel
    its queued work and survive."""
    try:
        s = connect()
        lines = [f"synthetic:20000:1 ParDeepestFirst {30+i} "
                 f"priority=interactive id={i}" for i in range(16)]
        s.sendall(("\n".join(lines) + "\n").encode())
        s.close()  # nothing read: abrupt disconnect
    except Exception as e:  # noqa: BLE001
        errors.append(f"abrupt client: {e}")

def v3_client():
    """Binary mode: magic + ONE batch frame of tagged requests, answers
    decoded from response frames (out-of-order legal, ids make it
    attributable)."""
    try:
        s = connect()
        s.sendall(MAGIC + batch_frame(
            [f"random:200:1 Liu {2 + i} id={i}" for i in range(8)]))
        s.shutdown(socket.SHUT_WR)
        frames = recv_frames(s)
        s.close()
        ids = set()
        for op, flags, payload in frames:
            if op != OP_RESPONSE or not (flags & FLAG_OK) \
                    or not (flags & FLAG_HAS_ID):
                raise AssertionError(
                    f"unexpected frame op={op:#x} flags={flags:#x}")
            ids.add(struct.unpack_from("<Q", payload, 0)[0])
        if ids != set(range(8)):
            raise AssertionError(f"missing/duplicate v3 ids: {sorted(ids)}")
    except Exception as e:  # noqa: BLE001
        errors.append(f"v3 client: {e}")

def expect_one_bad_request(label, sock):
    """The hostile-frame contract: exactly one typed bad_request
    response frame, then a clean close — never an over-read or a hang."""
    frames = recv_frames(sock)
    sock.close()
    if len(frames) != 1:
        raise AssertionError(f"{label}: expected 1 error frame, "
                             f"got {len(frames)}")
    op, flags, payload = frames[0]
    if op != OP_RESPONSE or (flags & FLAG_OK):
        raise AssertionError(f"{label}: not an error response "
                             f"(op={op:#x} flags={flags:#x})")
    code = struct.unpack_from("<H", payload, 8)[0]
    if code != CODE_BAD_REQUEST:
        raise AssertionError(f"{label}: error code {code}, "
                             f"wanted bad_request")

def hostile_client():
    try:
        s = connect()          # 0xB3 greeting with a garbage magic tail
        s.sendall(b"\xb3XYZ")
        expect_one_bad_request("garbage magic", s)

        s = connect()          # length field claiming a 1 GiB frame
        s.sendall(MAGIC + struct.pack("<BBHI", 0x01, 0, 0, 1 << 30))
        expect_one_bad_request("oversized length", s)

        s = connect()          # half-close inside the length prefix
        s.sendall(MAGIC + b"\x01\x00\x00")
        s.shutdown(socket.SHUT_WR)
        expect_one_bad_request("truncated length prefix", s)
    except Exception as e:  # noqa: BLE001
        errors.append(f"hostile client: {e}")

t1 = threading.Thread(target=orderly_client)
t2 = threading.Thread(target=abrupt_client)
t3 = threading.Thread(target=v3_client)
t1.start(); t2.start(); t3.start()
# First Prometheus scrape mid-load: the endpoint shares the server's
# I/O thread, so answering while the pool is pinned IS the test.
try:
    scrape(f"{workdir}/scrape1.txt")
except Exception as e:  # noqa: BLE001
    errors.append(f"mid-load scrape: {e}")
t1.join(); t2.join(); t3.join()
hostile_client()

# Non-GET and unknown paths must answer typed HTTP errors, not hang.
try:
    with urllib.request.urlopen(f"http://127.0.0.1:{mport}/nope",
                                timeout=30) as resp:
        errors.append(f"GET /nope answered {resp.status}, wanted 404")
except urllib.error.HTTPError as e:
    if e.code != 404:
        errors.append(f"GET /nope answered {e.code}, wanted 404")
except Exception as e:  # noqa: BLE001
    errors.append(f"GET /nope: {e}")

# Liveness probe after the chaos: ping + stats must answer immediately,
# and the stats vocabulary must carry the v3 protocol counters.
s = connect()
s.sendall(b"ping id=1\nstats id=2\n")
s.shutdown(socket.SHUT_WR)
replies = recv_lines(s)
s.close()
if len(replies) != 2 or replies[0] != "pong id=1":
    errors.append(f"ping/stats probe failed: {replies}")
elif not replies[1].startswith("stats id=2 "):
    errors.append(f"stats line malformed: {replies[1]}")
else:
    stats = dict(kv.split("=", 1) for kv in replies[1].split()[2:])
    if int(stats.get("queue_cancelled", 0)) < 1:
        errors.append(f"expected cancelled tickets in stats: {replies[1]}")
    if int(stats.get("v3_conns", 0)) < 1:
        errors.append(f"expected a v3 connection in stats: {replies[1]}")
    if int(stats.get("batch_requests", 0)) < 8:
        errors.append(f"expected batched requests in stats: {replies[1]}")
    if int(stats.get("frames_bad", 0)) < 3:
        errors.append(f"expected the hostile frames counted: {replies[1]}")
    if "net_e2e_count" not in stats or "stage_compute_count" not in stats:
        errors.append(f"stats line lacks histogram summaries: {replies[1]}")

# Trace verb: start -> schedule under tracing -> dump -> stop, pinning
# the stats-shaped reply grammar at each step. The dump names a file
# RELATIVE to the server's --trace-dir; absolute and ".." paths must be
# refused (the arbitrary-file-write guard).
def trace_fields(reply, tag):
    if not reply.startswith(f"trace id={tag} "):
        raise AssertionError(f"bad trace reply: {reply!r}")
    return dict(kv.split("=", 1) for kv in reply.split()[2:])

try:
    s = connect()
    s.sendall(b"trace start id=20\n"
              b"random:250:9 ParSubtrees 4 id=21\n"
              b"trace dump=trace.json id=22\n"
              b"trace stop id=23\n"
              b"trace dump=/tmp/evil.json id=24\n"
              b"trace dump=../evil.json id=25\n")
    s.shutdown(socket.SHUT_WR)
    replies = recv_lines(s)
    s.close()
    # Control verbs answer out of band; key replies by their tag.
    by_tag = {}
    for r in replies:
        for kv in r.split():
            if kv.startswith("id="):
                by_tag[int(kv[3:])] = r
    start = trace_fields(by_tag[20], 20)
    if start.get("enabled") != "1":
        raise AssertionError(f"trace start: {by_tag[20]!r}")
    if not by_tag[21].startswith("ok "):
        raise AssertionError(f"traced schedule failed: {by_tag[21]!r}")
    dump = trace_fields(by_tag[22], 22)
    if "written" not in dump or "spans" not in dump or "dropped" not in dump:
        raise AssertionError(f"trace dump: {by_tag[22]!r}")
    stop = trace_fields(by_tag[23], 23)
    if stop.get("enabled") != "0":
        raise AssertionError(f"trace stop: {by_tag[23]!r}")
    for tag in (24, 25):
        if "code=bad_request" not in by_tag[tag]:
            raise AssertionError(
                f"escaping dump path was not refused: {by_tag[tag]!r}")
except Exception as e:  # noqa: BLE001
    errors.append(f"trace probe: {e}")

# Hostile tree specs over a live socket: this instance runs WITHOUT
# --tree-dir, so file: specs are refused outright; generator counts
# beyond --max-spec-nodes (default 2M) and negative counts each get one
# typed bad_request, no tree is allocated, no filesystem contents leak
# into the error text, and the connection keeps answering.
try:
    s = connect()
    s.sendall(b"file:/etc/passwd Liu 1 id=30\n"
              b"random:2000000000:1 Liu 1 id=31\n"
              b"random:-5:1 Liu 1 id=32\n"
              b"random:100:3 Liu 1 id=33\n")
    s.shutdown(socket.SHUT_WR)
    replies = recv_lines(s)
    s.close()
    by_tag = {}
    for r in replies:
        for kv in r.split():
            if kv.startswith("id="):
                by_tag[int(kv[3:])] = r
    for tag in (30, 31, 32):
        if "code=bad_request" not in by_tag.get(tag, ""):
            raise AssertionError(
                f"hostile spec id={tag} was not refused: "
                f"{by_tag.get(tag)!r}")
    if "root:" in by_tag[30]:
        raise AssertionError(f"error text leaked file contents: {by_tag[30]!r}")
    if not by_tag.get(33, "").startswith("ok "):
        raise AssertionError(
            f"connection died after hostile specs: {by_tag.get(33)!r}")
except Exception as e:  # noqa: BLE001
    errors.append(f"hostile spec probe: {e}")

# Second scrape after the load: check_prometheus.py asserts counters
# only ever moved forward between the two.
try:
    scrape(f"{workdir}/scrape2.txt")
except Exception as e:  # noqa: BLE001
    errors.append(f"post-load scrape: {e}")

if errors:
    print("\n".join(errors), file=sys.stderr)
    sys.exit(1)
EOF

python3 "$checker" "$workdir/scrape1.txt" "$workdir/scrape2.txt" \
    || fail "Prometheus exposition checker rejected the scrapes"
[ -s "$workdir/trace.json" ] || fail "trace dump wrote no file"
grep -q '"traceEvents"' "$workdir/trace.json" \
    || fail "trace dump is not Chrome trace JSON: $(head -c 200 \
"$workdir/trace.json")"
grep -q "slow request" "$workdir/stderr" \
    || fail "no slow-request log despite --slow-ms 5 under pinned load"

# Graceful drain: SIGTERM must answer/cancel everything and exit 0.
kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
[ "$server_status" -eq 0 ] || fail "server exited $server_status on SIGTERM"
grep -q "drained: all accepted requests answered or cancelled" \
    "$workdir/stderr" || fail "missing drain confirmation: \
$(cat "$workdir/stderr")"

# --- unix-domain socket instance (--unix), both protocols ---------------
sock="$workdir/sched.sock"
"$bin" --unix "$sock" > "$workdir/uds_stdout" 2> "$workdir/uds_stderr" &
server_pid=$!
for _ in $(seq 1 100); do
    grep -q "listening on unix:" "$workdir/uds_stdout" && break
    kill -0 "$server_pid" 2>/dev/null || fail "unix server died on startup: \
$(cat "$workdir/uds_stderr")"
    sleep 0.1
done
[ -S "$sock" ] || fail "unix server never created $sock"

python3 - "$sock" <<'EOF' || fail "unix-socket client reported a failure"
import socket, struct, sys

path = sys.argv[1]

def recv_all(sock):
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    return data

# Text v2 over the unix socket. This instance runs WITHOUT --trace-dir,
# so a trace dump must be refused with a typed error.
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
s.sendall(b"random:200:1 Liu 2 id=5\ntrace dump=x.json id=9\nping\n")
s.shutdown(socket.SHUT_WR)
lines = [l for l in recv_all(s).decode().split("\n") if l]
s.close()
# The pong may legally overtake the schedule answer: health checks
# bypass the pending window while the cache miss computes.
assert len(lines) == 3 and "pong" in lines, lines
assert any(l.startswith("ok id=5 ") for l in lines), lines
assert any("id=9" in l and "code=bad_request" in l for l in lines), \
    f"trace dump without --trace-dir must answer bad_request: {lines}"

# Binary v3 over the unix socket: same request must hit the cache.
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(path)
raw = b"random:200:1 Liu 2 id=6"
s.sendall(b"\xb3TS3" + struct.pack("<BBHI", 0x01, 0, 0, len(raw)) + raw)
s.shutdown(socket.SHUT_WR)
data = recv_all(s)
s.close()
op, flags, reserved, length = struct.unpack_from("<BBHI", data, 0)
assert op == 0x81 and (flags & 0x01) and (flags & 0x04), \
    f"v3-over-unix answer not an ok cache hit: op={op:#x} flags={flags:#x}"
assert struct.unpack_from("<Q", data, 8)[0] == 6
EOF

kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
[ "$server_status" -eq 0 ] || fail "unix server exited $server_status"
[ ! -e "$sock" ] || fail "socket file not unlinked on drain"

echo "schedule_server e2e OK"

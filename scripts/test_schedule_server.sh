#!/bin/sh
# End-to-end check of the networked scheduling server: starts
# schedule_server on an ephemeral port, drives two concurrent clients
# (tagged out-of-order answers, one cancel id=N, one abrupt disconnect
# mid-batch), probes liveness with ping/stats, then SIGTERMs and asserts
# a clean graceful drain (exit 0). Run by CTest as schedule_server_e2e
# with the binary path as $1 — and by the ASan/TSan CI jobs, where the
# abrupt-disconnect ticket cleanup is leak- and race-checked for real.
set -eu

bin="$1"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Enough heavy interactive work to pin every pool worker with queue to
# spare (the pool sizes itself to the core count), so the bulk request
# behind it is still queued when its cancel arrives. The server's
# per-connection window must clear it, whatever the core count.
backlog=$((2 * $(nproc) + 6))

"$bin" --port 0 --max-pending $((backlog + 16)) --store-mb 64 \
    > "$workdir/stdout" 2> "$workdir/stderr" &
server_pid=$!

fail() {
    echo "FAIL: $1" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
}

# Wait for the (machine-readable) listening line.
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127.0.0.1://p' "$workdir/stdout")
    [ -n "$port" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server died on startup: \
$(cat "$workdir/stderr")"
    sleep 0.1
done
[ -n "$port" ] || fail "server never printed its port"

python3 - "$port" "$backlog" <<'EOF' || fail "client driver reported a failure"
import socket, sys, threading

port = int(sys.argv[1])
backlog = int(sys.argv[2])
errors = []

def connect():
    return socket.create_connection(("127.0.0.1", port), timeout=30)

def recv_lines(sock):
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    return [l for l in data.decode().split("\n") if l]

def orderly_client():
    """Tagged requests answered out of order + a cancel on a queued one."""
    try:
        s = connect()
        lines = []
        for i in range(backlog):
            lines.append(f"synthetic:20000:1 ParDeepestFirst {2+i} "
                         f"priority=interactive id={100+i}")
        lines.append("random:200:1 Liu 1 priority=bulk id=7")
        lines.append("cancel id=7")
        s.sendall(("\n".join(lines) + "\n").encode())
        s.shutdown(socket.SHUT_WR)
        replies = recv_lines(s)
        s.close()
        if len(replies) != backlog + 1:
            raise AssertionError(
                f"expected {backlog + 1} answers ({backlog} ok + 1 "
                f"cancelled), got {len(replies)}: {replies[:3]}...")
        def fields(reply):
            return dict(kv.split("=", 1) for kv in reply.split()
                        if "=" in kv)
        tags = {int(fields(r)["id"]) for r in replies if "id" in fields(r)}
        if tags != set(range(100, 100 + backlog)) | {7}:
            raise AssertionError(f"missing/duplicate tags: {sorted(tags)}")
        id7 = [r for r in replies if fields(r).get("id") == "7"]
        if len(id7) != 1 or fields(id7[0]).get("code") != "cancelled":
            raise AssertionError(f"id=7 was not answered cancelled: {id7}")
        oks = [r for r in replies if r.startswith("ok ")]
        if len(oks) != backlog:
            raise AssertionError(
                f"expected {backlog} ok answers, got {len(oks)}")
    except Exception as e:  # noqa: BLE001
        errors.append(f"orderly client: {e}")

def abrupt_client():
    """Submits a batch and vanishes mid-flight; the server must cancel
    its queued work and survive."""
    try:
        s = connect()
        lines = [f"synthetic:20000:1 ParDeepestFirst {30+i} "
                 f"priority=interactive id={i}" for i in range(16)]
        s.sendall(("\n".join(lines) + "\n").encode())
        s.close()  # nothing read: abrupt disconnect
    except Exception as e:  # noqa: BLE001
        errors.append(f"abrupt client: {e}")

t1 = threading.Thread(target=orderly_client)
t2 = threading.Thread(target=abrupt_client)
t1.start(); t2.start()
t1.join(); t2.join()

# Liveness probe after the chaos: ping + stats must answer immediately.
s = connect()
s.sendall(b"ping id=1\nstats id=2\n")
s.shutdown(socket.SHUT_WR)
replies = recv_lines(s)
s.close()
if len(replies) != 2 or replies[0] != "pong id=1":
    errors.append(f"ping/stats probe failed: {replies}")
elif not replies[1].startswith("stats id=2 "):
    errors.append(f"stats line malformed: {replies[1]}")
else:
    stats = dict(kv.split("=", 1) for kv in replies[1].split()[2:])
    if int(stats.get("queue_cancelled", 0)) < 1:
        errors.append(f"expected cancelled tickets in stats: {replies[1]}")

if errors:
    print("\n".join(errors), file=sys.stderr)
    sys.exit(1)
EOF

# Graceful drain: SIGTERM must answer/cancel everything and exit 0.
kill -TERM "$server_pid"
server_status=0
wait "$server_pid" || server_status=$?
[ "$server_status" -eq 0 ] || fail "server exited $server_status on SIGTERM"
grep -q "drained: all accepted requests answered or cancelled" \
    "$workdir/stderr" || fail "missing drain confirmation: \
$(cat "$workdir/stderr")"

echo "schedule_server e2e OK"

#!/usr/bin/env python3
"""Perf-trajectory gate: compare this run's bench output against the
previous CI run's uploaded artifact and fail on regressions.

Usage:
    check_bench_trend.py <current.json> <previous.json>
        [--threshold 0.15]
        [--service-current bench_service.json]
        [--service-previous bench_service.json]
        [--service-threshold 0.30]

The positional files use the treesched-bench-pr2 schema written by
bench_perf ({"benchmarks": [{"name", "ns_per_op", "items_per_second"},
...]}). Two families gate the build:

  * "BM_Sched/<algorithm>": single-thread end-to-end runs of each
    registered algorithm on a fixed tree — the most noise-resistant
    numbers in the file. Regression = ns_per_op up by more than
    --threshold (default +15%).
  * "BM_Service/...": service-layer throughput benchmarks. Regression =
    items_per_second down by more than --threshold.

With --service-current/--service-previous, the loopback-server numbers
from bench_service's JSON (server_cached_rps / server_uncached_rps —
whole-stack requests/sec through the epoll TCP front-end) gate too, at
the separate, looser --service-threshold (default 30%): they cross the
kernel's loopback stack and a real scheduler pool, so run-to-run noise
is inherently higher than the in-process numbers.

Benchmarks/keys present on only one side are reported but never fail
the build (new benchmarks appear, old ones are retired).

Exit status: 0 = no regression (or nothing comparable), 1 = regression,
2 = usage/parse error.
"""

import argparse
import json
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_entries(path):
    """(ns_per_op by BM_Sched name, items_per_second by BM_Service name)."""
    doc = load_json(path)
    sched, service = {}, {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        ns = bench.get("ns_per_op")
        ips = bench.get("items_per_second")
        if name.startswith("BM_Sched/") and isinstance(ns, (int, float)) \
                and ns > 0:
            sched[name] = float(ns)
        if name.startswith("BM_Service") and isinstance(ips, (int, float)) \
                and ips > 0:
            service[name] = float(ips)
    return sched, service


LOOPBACK_KEYS = ("server_cached_rps", "server_uncached_rps")


def load_loopback(path):
    doc = load_json(path)
    entries = {}
    for key in LOOPBACK_KEYS:
        value = doc.get(key)
        if isinstance(value, (int, float)) and value > 0:
            entries[key] = float(value)
    return entries


def compare(label, current, previous, threshold, lower_is_better):
    """Prints the table for one metric family; returns its regressions."""
    if not previous:
        print(f"check_bench_trend: previous run has no {label} entries; "
              "nothing to gate")
        return []
    unit = "ns/op" if lower_is_better else "items/s"
    regressions = []
    print(f"{label:<40} {f'prev {unit}':>14} {f'cur {unit}':>14} "
          f"{'delta':>8}")
    for name in sorted(set(current) | set(previous)):
        if name not in current:
            print(f"{name:<40} {previous[name]:>14.0f} {'(gone)':>14} "
                  f"{'':>8}")
            continue
        if name not in previous:
            print(f"{name:<40} {'(new)':>14} {current[name]:>14.0f} "
                  f"{'':>8}")
            continue
        ratio = current[name] / previous[name] - 1.0
        # For throughput, a *decrease* is the regression.
        regressed = ratio > threshold if lower_is_better \
            else ratio < -threshold
        marker = "  << REGRESSION" if regressed else ""
        print(f"{name:<40} {previous[name]:>14.0f} {current[name]:>14.0f} "
              f"{ratio:>+7.1%}{marker}")
        if regressed:
            regressions.append((name, ratio))
    print()
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("previous")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional change for BM_Sched ns/op "
                             "and BM_Service items/sec (default 0.15)")
    parser.add_argument("--service-current", default=None,
                        help="this run's bench_service.json (loopback rps)")
    parser.add_argument("--service-previous", default=None,
                        help="previous run's bench_service.json")
    parser.add_argument("--service-threshold", type=float, default=0.30,
                        help="allowed fractional rps decrease for the "
                             "loopback-server numbers, looser because they "
                             "include kernel noise (default 0.30)")
    args = parser.parse_args()

    cur_sched, cur_service = load_entries(args.current)
    prev_sched, prev_service = load_entries(args.previous)

    regressions = []
    regressions += compare("BM_Sched (ns/op)", cur_sched, prev_sched,
                           args.threshold, lower_is_better=True)
    regressions += compare("BM_Service (items/s)", cur_service,
                           prev_service, args.threshold,
                           lower_is_better=False)
    if args.service_current and args.service_previous:
        regressions += compare(
            "loopback server (rps)", load_loopback(args.service_current),
            load_loopback(args.service_previous), args.service_threshold,
            lower_is_better=False)

    if regressions:
        print(f"check_bench_trend: {len(regressions)} benchmark(s) "
              "regressed beyond their threshold:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:+.1%}", file=sys.stderr)
        return 1
    compared = len(cur_sched) + len(cur_service)
    print(f"check_bench_trend: OK ({compared} benchmarks within their "
          "thresholds of the previous run)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

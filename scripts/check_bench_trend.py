#!/usr/bin/env python3
"""Perf gate: compare bench output against the committed baselines
(bench/baseline.json, bench/baseline_perf.json) and fail on
regressions.

Usage:
    check_bench_trend.py
        [--perf-current BENCH_PR2.json]
        [--perf-baseline bench/baseline_perf.json]
        [--threshold 0.50]
        [--service-current bench_service.json]
        [--baseline bench/baseline.json]
        [--service-threshold 0.30]
        [--min-v3-ratio 3.0]
        [--min-cache-scale-ratio 1.0]
        [--min-router-ratio 0.7]
        [--max-trace-overhead 0.05]

Two independent comparisons, each optional, both against COMMITTED
baselines — no artifact chaining anywhere, so sub-threshold drift
cannot accumulate across runs: every run answers to the same pinned
numbers.

  * --perf-current names this run's bench_perf JSON (schema
    treesched-bench-pr2: {"benchmarks": [{"name", "ns_per_op",
    "items_per_second"}, ...]}) and gates it against the committed
    --perf-baseline — "BM_Sched/<algorithm>" on ns_per_op (up >
    --threshold fails), "BM_Service/..." on items_per_second (down >
    --threshold fails). The threshold is loose by default: absolute
    microbenchmark numbers are hardware-dependent and CI runners
    differ from the reference box.

  * --service-current names this run's bench_service JSON (schema
    treesched-bench-service-v6). Its loopback-server requests/sec are
    gated against the committed --baseline. Absolute rps keys gate at
    --service-threshold (loose: they cross the kernel loopback stack
    and a real scheduler pool). Hardware-relative ratios gate
    regardless of the machine: the v3-batch-16-over-text-v2 ratio
    must stay >= --min-v3-ratio (the protocol-v3 acceptance bar), the
    lock-free-over-mutex cache-hit throughput at 16 threads must stay
    >= --min-cache-scale-ratio (both backends measured in the SAME
    run, so the ratio is hardware-independent), the routed-over-direct
    cache-hit throughput through the cluster router must stay >=
    --min-router-ratio (both paths hit the SAME backend in the same
    bench run, so this too holds on any machine), the fractional rps
    lost with the span recorder enabled (trace_overhead_ratio, tracer
    off vs on in the same run) must stay <= --max-trace-overhead, and
    the cached/uncached speedup gates like an rps key.

Updating the baselines
----------------------
Each baseline is a bench run committed to the repo. Regenerate ONLY
alongside the change that legitimately moved the numbers (an
intentional perf change, a bench-shape change, or new reference
hardware), and commit the refreshed file in the same PR so reviewers
see old and new numbers in one diff:

    ./build/bench_service --json bench/baseline.json
    ./build/bench_perf --benchmark_filter='BM_Sched|BM_Service' \\
        --benchmark_min_time=0.1 --bench_json=bench/baseline_perf.json
    git add bench/baseline.json bench/baseline_perf.json

Absolute values are machine-dependent; if CI moves to different
hardware, regenerate there (or widen the thresholds in the workflow)
— the ratio gates keep protecting the protocol contract either way.

Benchmarks/keys present on only one side are reported but never fail
the build (new benchmarks appear, old ones are retired).

Exit status: 0 = no regression (or nothing comparable), 1 = regression,
2 = usage/parse error.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_entries(path):
    """(ns_per_op by BM_Sched name, items_per_second by BM_Service name)."""
    doc = load_json(path)
    sched, service = {}, {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        ns = bench.get("ns_per_op")
        ips = bench.get("items_per_second")
        if name.startswith("BM_Sched/") and isinstance(ns, (int, float)) \
                and ns > 0:
            sched[name] = float(ns)
        if name.startswith("BM_Service") and isinstance(ips, (int, float)) \
                and ips > 0:
            service[name] = float(ips)
    return sched, service


# Loopback/throughput keys gated against the committed baseline:
# "current may not drop more than --service-threshold below baseline".
LOOPBACK_KEYS = (
    "server_cached_rps",
    "server_uncached_rps",
    "server_v2_batch1_rps",
    "server_v3_batch1_rps",
    "server_v3_batch16_rps",
    "server_v3_batch256_rps",
    "server_v3_uncached_rps",
    "server_uds_v2_batch1_rps",
    "server_uds_v3_batch16_rps",
    "router_direct_rps",
    "router_routed_rps",
    "speedup",
)


def load_loopback(path):
    doc = load_json(path)
    entries = {}
    for key in LOOPBACK_KEYS:
        value = doc.get(key)
        if isinstance(value, (int, float)) and value > 0:
            entries[key] = float(value)
    return entries


def compare(label, current, previous, threshold, lower_is_better):
    """Prints the table for one metric family; returns its regressions."""
    if not previous:
        print(f"check_bench_trend: reference has no {label} entries; "
              "nothing to gate")
        return []
    unit = "ns/op" if lower_is_better else "items/s"
    regressions = []
    print(f"{label:<40} {f'base {unit}':>14} {f'cur {unit}':>14} "
          f"{'delta':>8}")
    for name in sorted(set(current) | set(previous)):
        if name not in current:
            print(f"{name:<40} {previous[name]:>14.0f} {'(gone)':>14} "
                  f"{'':>8}")
            continue
        if name not in previous:
            print(f"{name:<40} {'(new)':>14} {current[name]:>14.0f} "
                  f"{'':>8}")
            continue
        ratio = current[name] / previous[name] - 1.0
        # For throughput, a *decrease* is the regression.
        regressed = ratio > threshold if lower_is_better \
            else ratio < -threshold
        marker = "  << REGRESSION" if regressed else ""
        print(f"{name:<40} {previous[name]:>14.0f} {current[name]:>14.0f} "
              f"{ratio:>+7.1%}{marker}")
        if regressed:
            regressions.append((name, ratio))
    print()
    return regressions


def default_baseline(name):
    """bench/<name> relative to the repo root (this script's parent
    directory's parent), so the gate works from any CWD."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(here), "bench", name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--perf-current", default=None,
                        help="this run's BENCH_PR2.json (bench_perf)")
    parser.add_argument("--perf-baseline",
                        default=default_baseline("baseline_perf.json"),
                        help="committed baseline bench_perf JSON (default: "
                             "bench/baseline_perf.json in this repo)")
    parser.add_argument("--threshold", type=float, default=0.50,
                        help="allowed fractional change for BM_Sched ns/op "
                             "and BM_Service items/sec vs. the committed "
                             "baseline, loose because absolute "
                             "microbenchmark numbers are hardware-dependent "
                             "(default 0.50)")
    parser.add_argument("--service-current", default=None,
                        help="this run's bench_service.json (loopback rps)")
    parser.add_argument("--baseline",
                        default=default_baseline("baseline.json"),
                        help="committed baseline bench_service.json "
                             "(default: bench/baseline.json in this repo)")
    parser.add_argument("--service-threshold", type=float, default=0.30,
                        help="allowed fractional rps decrease vs. the "
                             "committed baseline, looser because the numbers "
                             "include kernel noise (default 0.30)")
    parser.add_argument("--min-v3-ratio", type=float, default=3.0,
                        help="required server_v3_over_v2_batch16 in the "
                             "current run — hardware-relative, so it gates "
                             "on any machine (default 3.0; 0 disables)")
    parser.add_argument("--min-cache-scale-ratio", type=float, default=1.0,
                        help="required cache_scale_ratio_t16 (lock-free over "
                             "mutex cache hit throughput at 16 threads) in "
                             "the current run — within-run, so it gates on "
                             "any machine (default 1.0; 0 disables)")
    parser.add_argument("--min-router-ratio", type=float, default=0.7,
                        help="required router_over_direct_ratio (cache-hot "
                             "rps through the cluster router over the same "
                             "backend hit directly) in the current run — "
                             "both paths measured in the SAME run, so it "
                             "gates on any machine (default 0.7; 0 disables)")
    parser.add_argument("--max-trace-overhead", type=float, default=0.05,
                        help="allowed trace_overhead_ratio (fractional "
                             "cache-hot rps lost with the span recorder "
                             "enabled) in the current run — tracer off and "
                             "on are measured in the SAME run, so it gates "
                             "on any machine (default 0.05; negative "
                             "disables)")
    args = parser.parse_args()

    regressions = []
    if args.perf_current is not None:
        if os.path.exists(args.perf_baseline):
            cur_sched, cur_service = load_entries(args.perf_current)
            base_sched, base_service = load_entries(args.perf_baseline)
            regressions += compare("BM_Sched vs baseline (ns/op)", cur_sched,
                                   base_sched, args.threshold,
                                   lower_is_better=True)
            regressions += compare("BM_Service vs baseline (items/s)",
                                   cur_service, base_service, args.threshold,
                                   lower_is_better=False)
        else:
            print(f"check_bench_trend: no baseline at {args.perf_baseline}; "
                  "skipping the bench_perf comparison")

    compared = 0
    if args.service_current:
        doc = load_json(args.service_current)
        if os.path.exists(args.baseline):
            regressions += compare(
                "loopback server vs baseline (rps)",
                load_loopback(args.service_current),
                load_loopback(args.baseline), args.service_threshold,
                lower_is_better=False)
            compared += 1
        else:
            print(f"check_bench_trend: no baseline at {args.baseline}; "
                  "skipping the loopback comparison")
        ratio = doc.get("server_v3_over_v2_batch16")
        if args.min_v3_ratio > 0 and isinstance(ratio, (int, float)) \
                and ratio > 0:
            ok = ratio >= args.min_v3_ratio
            print(f"v3 batch=16 over text v2: {ratio:.1f}x "
                  f"(required >= {args.min_v3_ratio:.1f}x)"
                  f"{'' if ok else '  << REGRESSION'}")
            if not ok:
                regressions.append(
                    ("server_v3_over_v2_batch16",
                     ratio / args.min_v3_ratio - 1.0))
            compared += 1
        scale = doc.get("cache_scale_ratio_t16")
        if args.min_cache_scale_ratio > 0 \
                and isinstance(scale, (int, float)) and scale > 0:
            ok = scale >= args.min_cache_scale_ratio
            print(f"lock-free over mutex cache hits at 16 threads: "
                  f"{scale:.2f}x "
                  f"(required >= {args.min_cache_scale_ratio:.2f}x)"
                  f"{'' if ok else '  << REGRESSION'}")
            if not ok:
                regressions.append(
                    ("cache_scale_ratio_t16",
                     scale / args.min_cache_scale_ratio - 1.0))
            compared += 1
        routed = doc.get("router_over_direct_ratio")
        if args.min_router_ratio > 0 and isinstance(routed, (int, float)) \
                and routed > 0:
            ok = routed >= args.min_router_ratio
            print(f"routed over direct cache-hit rps: {routed:.2f}x "
                  f"(required >= {args.min_router_ratio:.2f}x)"
                  f"{'' if ok else '  << REGRESSION'}")
            if not ok:
                regressions.append(
                    ("router_over_direct_ratio",
                     routed / args.min_router_ratio - 1.0))
            compared += 1
        # Unlike the ratios above, trace_overhead_ratio is legitimately
        # <= 0 when tracing lands within noise, so no `> 0` filter here.
        overhead = doc.get("trace_overhead_ratio")
        if args.max_trace_overhead >= 0 \
                and isinstance(overhead, (int, float)):
            ok = overhead <= args.max_trace_overhead
            print(f"span-recorder overhead on cache-hot rps: "
                  f"{overhead:+.1%} "
                  f"(required <= {args.max_trace_overhead:.1%})"
                  f"{'' if ok else '  << REGRESSION'}")
            if not ok:
                regressions.append(
                    ("trace_overhead_ratio",
                     overhead - args.max_trace_overhead))
            compared += 1

    if regressions:
        print(f"check_bench_trend: {len(regressions)} benchmark(s) "
              "regressed beyond their threshold:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:+.1%}", file=sys.stderr)
        return 1
    print("check_bench_trend: OK (no gated benchmark regressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

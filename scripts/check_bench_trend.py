#!/usr/bin/env python3
"""Perf-trajectory gate: compare this run's BENCH_PR2.json against the
previous CI run's uploaded artifact and fail on regressions.

Usage:
    check_bench_trend.py <current.json> <previous.json> [--threshold 0.15]

Both files use the treesched-bench-pr2 schema written by bench_perf
({"benchmarks": [{"name", "ns_per_op", "items_per_second"}, ...]}).
Only "BM_Sched/<algorithm>" entries gate the build: they are single-thread
end-to-end runs of each registered algorithm on a fixed tree, the most
noise-resistant numbers in the file. A benchmark regresses when its
ns_per_op exceeds the previous run's by more than the threshold (default
+15%). Benchmarks present on only one side are reported but never fail
the build (new algorithms appear, old ones are retired).

Exit status: 0 = no regression (or nothing comparable), 1 = regression,
2 = usage/parse error.
"""

import argparse
import json
import sys


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        ns = bench.get("ns_per_op")
        if name.startswith("BM_Sched/") and isinstance(ns, (int, float)) and ns > 0:
            entries[name] = float(ns)
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("previous")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional ns/op increase (default 0.15)")
    args = parser.parse_args()

    current = load_entries(args.current)
    previous = load_entries(args.previous)
    if not previous:
        print("check_bench_trend: previous run has no BM_Sched entries; "
              "nothing to gate")
        return 0

    regressions = []
    print(f"{'benchmark':<40} {'prev ns/op':>14} {'cur ns/op':>14} {'delta':>8}")
    for name in sorted(set(current) | set(previous)):
        if name not in current:
            print(f"{name:<40} {previous[name]:>14.0f} {'(gone)':>14} {'':>8}")
            continue
        if name not in previous:
            print(f"{name:<40} {'(new)':>14} {current[name]:>14.0f} {'':>8}")
            continue
        ratio = current[name] / previous[name] - 1.0
        marker = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<40} {previous[name]:>14.0f} {current[name]:>14.0f} "
              f"{ratio:>+7.1%}{marker}")
        if ratio > args.threshold:
            regressions.append((name, ratio))

    if regressions:
        print(f"\ncheck_bench_trend: {len(regressions)} benchmark(s) "
              f"regressed more than {args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:+.1%}", file=sys.stderr)
        return 1
    print(f"\ncheck_bench_trend: OK ({len(current)} benchmarks within "
          f"{args.threshold:.0%} of the previous run)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

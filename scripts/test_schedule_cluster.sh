#!/bin/sh
# End-to-end check of the cluster router: starts two schedule_server
# backend nodes and a schedule_router in front of them (all ephemeral
# ports), then drives the cluster through real sockets — the
# cluster-wide cache probe (warm a tree through one client, hit it from
# a fresh client routed to the same node), protocol transparency (text
# v2 and a binary-v3 batch frame through the router), the aggregated
# stats vocabulary (per-node routing counters + backend_ sums), the
# Prometheus endpoint (scraped twice, counters must be monotonic, the
# per-node routed series must carry node="..." labels), and the
# cluster-wide trace path (`trace start` broadcast to every node, a
# merged `trace dump=` whose single Chrome JSON carries one pid and
# process_name per process — router plus both backends). Then one node
# is SIGKILLed — abrupt death, no drain — and the cluster must detect
# it, report nodes_up=1, keep answering every request on the survivor,
# and record the death as a structured node_down event in the
# --log-json event log. Finally the router SIGTERMs to a clean
# graceful drain, which must land drain events in the same log.
# Run by CTest as schedule_cluster_e2e with the router binary as $1 and
# the server binary as $2 — and by the ASan/TSan CI jobs, where the
# node-death forward handoff and the upstream reconnect machinery are
# leak- and race-checked for real.
set -eu

router_bin="$1"
server_bin="$2"
checker="$(dirname "$0")/check_prometheus.py"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$server_bin" --port 0 > "$workdir/node_a_out" 2> "$workdir/node_a_err" &
node_a_pid=$!
"$server_bin" --port 0 > "$workdir/node_b_out" 2> "$workdir/node_b_err" &
node_b_pid=$!

fail() {
    echo "FAIL: $1" >&2
    kill "$router_pid" 2>/dev/null || true
    kill "$node_a_pid" "$node_b_pid" 2>/dev/null || true
    exit 1
}
router_pid=""

wait_port() { # $1 = stdout file, $2 = pid, $3 = label
    _port=""
    for _ in $(seq 1 100); do
        _port=$(sed -n 's/^listening on 127.0.0.1://p' "$1")
        [ -n "$_port" ] && break
        kill -0 "$2" 2>/dev/null || fail "$3 died on startup"
        sleep 0.1
    done
    [ -n "$_port" ] || fail "$3 never printed its port"
    echo "$_port"
}

port_a=$(wait_port "$workdir/node_a_out" "$node_a_pid" "node A")
port_b=$(wait_port "$workdir/node_b_out" "$node_b_pid" "node B")

mkdir "$workdir/traces"
"$router_bin" --port 0 --nodes "127.0.0.1:$port_a,127.0.0.1:$port_b" \
    --metrics-port 0 --health-interval-ms 25 --backoff-ms 50 \
    --trace-dir "$workdir/traces" --log-json "$workdir/events.jsonl" \
    > "$workdir/router_out" 2> "$workdir/router_err" &
router_pid=$!
rport=$(wait_port "$workdir/router_out" "$router_pid" "router")
mport=""
for _ in $(seq 1 100); do
    mport=$(sed -n 's/^metrics on 127.0.0.1://p' "$workdir/router_out")
    [ -n "$mport" ] && break
    sleep 0.1
done
[ -n "$mport" ] || fail "router never printed its metrics port"

python3 - "$rport" "$mport" "$workdir" phase1 \
    <<'EOF' || fail "phase-1 client driver reported a failure"
import json, socket, struct, sys, time, urllib.request

rport, mport, workdir = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
errors = []

def connect():
    return socket.create_connection(("127.0.0.1", rport), timeout=30)

def recv_lines(sock):
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    return [l for l in data.decode().split("\n") if l]

def ask(*lines):
    s = connect()
    s.sendall(("\n".join(lines) + "\n").encode())
    s.shutdown(socket.SHUT_WR)
    replies = recv_lines(s)
    s.close()
    return replies

def stats():
    (line,) = ask("stats")
    assert line.startswith("stats "), line
    return dict(kv.split("=", 1) for kv in line.split()[1:])

def scrape(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{mport}/metrics",
                                timeout=30) as resp:
        body = resp.read()
    with open(path, "wb") as f:
        f.write(body)
    return body.decode()

# Routing needs live backends: the first health tick connects them.
for _ in range(200):
    if int(stats().get("nodes_up", 0)) == 2:
        break
    time.sleep(0.05)
else:
    errors.append(f"backends never came up: {stats()}")

scrape(f"{workdir}/scrape1.txt")

# Cluster-wide cache: warm a tree through one client, then a FRESH
# client sends the same spec — the ring lands it on the same node,
# whose warm result cache must answer.
warm = ask("synthetic:800:3 ParSubtrees 4 id=1")
if len(warm) != 1 or "cache=miss" not in warm[0] or \
        not warm[0].startswith("ok id=1 "):
    errors.append(f"warm request failed: {warm}")
hit = ask("synthetic:800:3 ParSubtrees 4 id=2")
if len(hit) != 1 or "cache=hit" not in hit[0]:
    errors.append(f"cluster-wide cache hit missed: {hit}")

# Protocol transparency: a binary-v3 batch frame through the router.
MAGIC = b"\xb3TS3"
raw_lines = [f"random:150:{i} Liu 1 id={10+i}".encode() for i in range(6)]
payload = struct.pack("<I", len(raw_lines))
for raw in raw_lines:
    payload += struct.pack("<I", len(raw)) + raw
s = connect()
s.sendall(MAGIC + struct.pack("<BBHI", 0x02, 0, 0, len(payload)) + payload)
s.shutdown(socket.SHUT_WR)
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk
s.close()
ids, off = set(), 0
while off + 8 <= len(data):
    op, flags, _res, length = struct.unpack_from("<BBHI", data, off)
    off += 8
    if op != 0x81 or not (flags & 0x01):
        errors.append(f"v3 answer not ok: op={op:#x} flags={flags:#x}")
        break
    ids.add(struct.unpack_from("<Q", data, off)[0])
    off += length
if ids != set(range(10, 16)):
    errors.append(f"v3 batch through the router lost answers: {sorted(ids)}")

# Cluster-wide tracing: `trace start` broadcasts to every node, traced
# traffic flows, and one `trace dump=` merges the router's spans with a
# live `trace pull` from each backend into a single Chrome JSON — one
# pid and one process_name metadata event per process.
(reply,) = ask("trace start id=90")
if not reply.startswith("trace id=90 ") or "enabled=1" not in reply:
    errors.append(f"trace start refused: {reply}")
for i in range(4):
    ask(f"random:160:{i} Liu 1 id={20+i}")
(reply,) = ask("trace dump=cluster.json id=91")
if not reply.startswith("trace id=91 ") or "nodes_merged=2" not in reply \
        or "pull_failures=0" not in reply:
    errors.append(f"merged trace dump failed: {reply}")
(reply,) = ask("trace status id=92")
if not reply.startswith("trace id=92 ") or \
        "node1_pull_failures=0" not in reply:
    errors.append(f"trace status refused: {reply}")
ask("trace stop id=93")
try:
    with open(f"{workdir}/traces/cluster.json") as f:
        events = json.load(f)["traceEvents"]
    pids = {e["pid"] for e in events}
    procs = {e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
    if pids != {1, 2, 3}:
        errors.append(f"merged dump pids are {sorted(pids)}, want 1..3")
    if "router" not in procs or \
            sum(1 for p in procs if p.startswith("node ")) != 2:
        errors.append(f"merged dump process names are {sorted(procs)}")
    if not any(e.get("ph") == "X" for e in events):
        errors.append("merged dump has no duration spans")
except (OSError, ValueError, KeyError) as e:
    errors.append(f"merged trace dump is not readable Chrome JSON: {e}")

# The aggregated stats vocabulary: per-node routing counters must sum
# to forwarded, and the polled backend_ aggregate must be present.
st = stats()
for key in ("nodes", "nodes_up", "forwarded", "responses",
            "node0_routed", "node1_routed", "node0_up", "node1_up"):
    if key not in st:
        errors.append(f"stats line lacks {key}: {st}")
if errors == []:
    if int(st["node0_routed"]) + int(st["node1_routed"]) != \
            int(st["forwarded"]):
        errors.append(f"per-node routed counters do not sum: {st}")
    if int(st["forwarded"]) < 8 or int(st["responses"]) < 8:
        errors.append(f"expected 8+ forwarded/answered requests: {st}")
    if not any(k.startswith("backend_") for k in st):
        errors.append(f"stats line lacks the backend_ aggregate: {st}")

# The router's own metrics endpoint, with per-node labeled series.
body = scrape(f"{workdir}/scrape2.txt")
if "treesched_router_forwarded_total" not in body:
    errors.append("scrape lacks treesched_router_forwarded_total")
if 'treesched_router_node_routed_total{node="127.0.0.1:' not in body:
    errors.append("scrape lacks node-labeled routing counters")

if errors:
    print("\n".join(errors), file=sys.stderr)
    sys.exit(1)
EOF

# Abrupt node death: SIGKILL node B — no drain, sockets just vanish.
# The router must mark it down, keep the survivor serving, and answer
# every request (never hang a client on a dead backend).
kill -KILL "$node_b_pid"
wait "$node_b_pid" 2>/dev/null || true

python3 - "$rport" "$mport" "$workdir" phase2 \
    <<'EOF' || fail "phase-2 (node-death) client driver reported a failure"
import socket, sys, time

rport = int(sys.argv[1])
errors = []

def ask(*lines):
    s = socket.create_connection(("127.0.0.1", rport), timeout=30)
    s.sendall(("\n".join(lines) + "\n").encode())
    s.shutdown(socket.SHUT_WR)
    data = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    return [l for l in data.decode().split("\n") if l]

def stats():
    (line,) = ask("stats")
    return dict(kv.split("=", 1) for kv in line.split()[1:])

for _ in range(200):
    if int(stats().get("nodes_up", 2)) == 1:
        break
    time.sleep(0.05)
else:
    errors.append(f"router never noticed the dead node: {stats()}")

# Every spec must still be answered ok on the survivor — including ones
# whose ring primary is the dead node (the walk skips it).
for i in range(8):
    replies = ask(f"random:170:{i} Liu 1 id={30+i}")
    if len(replies) != 1 or not replies[0].startswith(f"ok id={30+i} "):
        errors.append(f"request after node death not served: {replies}")
        break

st = stats()
if int(st.get("node_failures", 0)) < 1:
    errors.append(f"node death not counted: {st}")

if errors:
    print("\n".join(errors), file=sys.stderr)
    sys.exit(1)
EOF

# The SIGKILLed node must be on the structured event log as a
# node_down record — and every line of that log must be one valid
# JSON object.
grep -q '"event":"node_down"' "$workdir/events.jsonl" \
    || fail "event log lacks a node_down record: $(cat "$workdir/events.jsonl")"
python3 - "$workdir/events.jsonl" <<'EOF' \
    || fail "event log is not valid JSON lines"
import json, sys
with open(sys.argv[1]) as f:
    for lineno, line in enumerate(f, 1):
        obj = json.loads(line)
        assert isinstance(obj, dict) and "event" in obj and "ts_ns" in obj, \
            f"line {lineno} lacks event/ts_ns: {line!r}"
EOF

python3 "$checker" "$workdir/scrape1.txt" "$workdir/scrape2.txt" \
    || fail "Prometheus exposition checker rejected the router scrapes"

# Graceful drain: SIGTERM must answer everything outstanding and exit 0.
kill -TERM "$router_pid"
router_status=0
wait "$router_pid" || router_status=$?
[ "$router_status" -eq 0 ] || fail "router exited $router_status on SIGTERM"
grep -q "drained: all accepted requests answered" "$workdir/router_err" \
    || fail "missing router drain confirmation: $(cat "$workdir/router_err")"
grep -q '"event":"drain_begin"' "$workdir/events.jsonl" \
    && grep -q '"event":"drain_complete"' "$workdir/events.jsonl" \
    || fail "event log lacks the drain records: $(cat "$workdir/events.jsonl")"

kill -TERM "$node_a_pid"
node_status=0
wait "$node_a_pid" || node_status=$?
[ "$node_status" -eq 0 ] || fail "surviving node exited $node_status"

echo "schedule_cluster e2e OK"

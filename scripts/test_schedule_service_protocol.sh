#!/bin/sh
# Protocol-v2 end-to-end check against the real schedule_service binary:
# id= tags round-trip onto response lines, cancel lines are accepted (an
# unknown id answers code=bad_request), failures carry machine-readable
# codes, and parse errors do not abort the stream. Run by CTest as
# schedule_service_protocol_v2 with the binary path as $1.
set -eu

bin="$1"

out=$(printf '%s\n' \
    'random:60:1 Liu 1 id=7' \
    'random:60:1 NoSuchAlgo 2 id=8' \
    'cancel id=99' \
    'this is not a request' \
    'random:60:1 Liu 4' \
    | "$bin")

echo "$out"

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

echo "$out" | grep -q '^ok id=7 .*algo=Liu .*p=1' \
    || fail "id=7 did not round-trip onto its ok line"
echo "$out" | grep -q '^error id=8 code=unknown_algorithm' \
    || fail "unknown algorithm did not answer code=unknown_algorithm"
echo "$out" | grep -q '^error code=bad_request cancel id=99' \
    || fail "cancel of an unknown id did not answer code=bad_request"
echo "$out" | grep -q '^error code=bad_request request line must be' \
    || fail "the malformed line did not answer code=bad_request"
# No cache= assertion here: with concurrent drain jobs either Liu
# request can win in-flight leadership and report the miss (unit tests
# pin p-normalized hits deterministically); the protocol claim is only
# that the line answers.
echo "$out" | grep -q '^ok tree=.*algo=Liu p=4 ' \
    || fail "the second Liu request was not answered"
[ "$(echo "$out" | wc -l)" -eq 5 ] \
    || fail "expected exactly one response line per input line"

echo "protocol v2 OK"

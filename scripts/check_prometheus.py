#!/usr/bin/env python3
"""Validates Prometheus text exposition (version 0.0.4) scrapes.

    check_prometheus.py scrape1.txt [scrape2.txt]

Checks, per file:
  * every line is a comment (# HELP / # TYPE) or a sample
    `name{labels} value` with a legal metric name, well-formed label
    pairs, and a parseable value;
  * HELP and TYPE precede the first sample of their metric, TYPE appears
    at most once per name, and all samples of one name are contiguous
    (the format forbids interleaved blocks);
  * counter samples are non-negative;
  * every TYPE histogram series has increasing `le` bounds, cumulative
    (non-decreasing) bucket counts, an `le="+Inf"` bucket, and that
    +Inf count equals the series' `_count` sample;
  * every TYPE histogram has a sliding-window companion gauge
    `<name>_window` carrying exactly the quantile="0.5"/"0.9"/"0.99"
    labels per series, with non-negative values that do not decrease as
    the quantile rises, plus a `<name>_window_count` sample. The window
    series are gauges (they decay), so they are exempt from the
    two-scrape monotonicity check below.

With two files, additionally checks that every counter — including
histogram `_bucket`/`_count`/`_sum` series — is monotonic: the second
scrape's value must be >= the first's for every series present in both.

Exit status 0 on success; 1 with one message per violation on stderr.
Used by scripts/test_schedule_server.sh against a live --metrics-port
endpoint, and usable by hand against `curl .../metrics` output.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# One label pair: key="value" with \" \\ \n escapes allowed in the value.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+(\d+))?$")


def parse_labels(raw, errors, where):
    """Returns the label string normalized to a sorted tuple of pairs."""
    if raw is None or raw == "":
        return ()
    pairs = []
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            errors.append(f"{where}: malformed labels: {{{raw}}}")
            return ()
        pairs.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(f"{where}: malformed labels: {{{raw}}}")
                return ()
            pos += 1
    return tuple(sorted(pairs))


def parse_value(raw, errors, where):
    try:
        if raw in ("+Inf", "Inf"):
            return float("inf")
        if raw == "-Inf":
            return float("-inf")
        if raw == "NaN":
            return float("nan")
        return float(raw)
    except ValueError:
        errors.append(f"{where}: unparseable value {raw!r}")
        return 0.0


def base_name(name, types):
    """Histogram samples use name_bucket/_sum/_count; map to the base."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def parse_exposition(path):
    """Returns (samples, types, errors): samples maps
    (name, labels-tuple) -> value, types maps name -> TYPE string."""
    errors = []
    samples = {}
    types = {}
    helps = set()
    seen_names = []  # order of first appearance, for contiguity
    closed = set()   # names whose block has ended

    with open(path, encoding="utf-8") as f:
        lines = f.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()

    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if line == "":
            errors.append(f"{where}: blank line inside exposition")
            continue
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) (\S+)(?: (.*))?$", line)
            if not m:
                errors.append(f"{where}: malformed comment: {line!r}")
                continue
            kind, name, rest = m.group(1), m.group(2), m.group(3) or ""
            if not NAME_RE.match(name):
                errors.append(f"{where}: illegal metric name {name!r}")
                continue
            if kind == "HELP":
                if name in helps:
                    errors.append(f"{where}: duplicate HELP for {name}")
                helps.add(name)
            else:
                if rest not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    errors.append(f"{where}: unknown TYPE {rest!r} for {name}")
                if name in types:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                types[name] = rest
                if name in samples_names(samples, types):
                    errors.append(f"{where}: TYPE {name} after its samples")
            continue

        m = SAMPLE_RE.match(line)
        if not m or m.group(4) is not None:
            # group(4) would be a timestamp; the server never emits one.
            errors.append(f"{where}: malformed sample line: {line!r}")
            continue
        name, raw_labels, raw_value = m.group(1), m.group(2), m.group(3)
        base = base_name(name, types)
        if base not in types:
            errors.append(f"{where}: sample {name} has no preceding TYPE")
        if base not in helps:
            errors.append(f"{where}: sample {name} has no preceding HELP")
        if base in closed:
            errors.append(
                f"{where}: samples for {base} are not contiguous")
        if seen_names and seen_names[-1] != base:
            closed.add(seen_names[-1])
        if not seen_names or seen_names[-1] != base:
            seen_names.append(base)
        labels = parse_labels(raw_labels, errors, where)
        value = parse_value(raw_value, errors, where)
        key = (name, labels)
        if key in samples:
            errors.append(f"{where}: duplicate series {name}{{{raw_labels}}}")
        samples[key] = value
        if types.get(base) == "counter" and value < 0:
            errors.append(f"{where}: counter {name} is negative ({value})")

    check_histograms(path, samples, types, errors)
    check_windowed_gauges(path, samples, types, errors)
    return samples, types, errors


def samples_names(samples, types):
    return {base_name(name, types) for name, _ in samples}


def check_histograms(path, samples, types, errors):
    for name, t in types.items():
        if t != "histogram":
            continue
        # Group bucket samples by their labels-minus-le series identity.
        series = {}
        for (sname, labels), value in samples.items():
            if sname != name + "_bucket":
                continue
            le = [v for k, v in labels if k == "le"]
            rest = tuple(p for p in labels if p[0] != "le")
            if len(le) != 1:
                errors.append(f"{path}: {sname} series without one le label")
                continue
            series.setdefault(rest, []).append((le[0], value))
        if not series:
            errors.append(f"{path}: histogram {name} has no _bucket samples")
        for rest, buckets in series.items():
            def le_key(le):
                return float("inf") if le == "+Inf" else float(le)
            try:
                ordered = sorted(buckets, key=lambda b: le_key(b[0]))
            except ValueError:
                errors.append(f"{path}: {name} has unparseable le bound")
                continue
            bounds = [le_key(le) for le, _ in ordered]
            if bounds != sorted(set(bounds)):
                errors.append(f"{path}: {name}{dict(rest)} repeats le bounds")
            counts = [v for _, v in ordered]
            if any(b > a for b, a in zip(counts, counts[1:])):
                errors.append(
                    f"{path}: {name}{dict(rest)} buckets are not cumulative: "
                    f"{counts}")
            if ordered[-1][0] != "+Inf":
                errors.append(f"{path}: {name}{dict(rest)} lacks le=\"+Inf\"")
                continue
            count = samples.get((name + "_count", rest))
            if count is None:
                errors.append(f"{path}: {name}{dict(rest)} lacks _count")
            elif count != ordered[-1][1]:
                errors.append(
                    f"{path}: {name}{dict(rest)} +Inf bucket "
                    f"({ordered[-1][1]}) != _count ({count})")
            if (name + "_sum", rest) not in samples:
                errors.append(f"{path}: {name}{dict(rest)} lacks _sum")


def check_windowed_gauges(path, samples, types, errors):
    """Every histogram must export a <name>_window quantile gauge."""
    for name, t in types.items():
        if t != "histogram":
            continue
        wname = name + "_window"
        if types.get(wname) != "gauge":
            errors.append(
                f"{path}: histogram {name} lacks its {wname} gauge")
            continue
        # Group window samples by labels-minus-quantile series identity.
        series = {}
        for (sname, labels), value in samples.items():
            if sname != wname:
                continue
            q = [v for k, v in labels if k == "quantile"]
            rest = tuple(p for p in labels if p[0] != "quantile")
            if len(q) != 1:
                errors.append(
                    f"{path}: {wname} series without one quantile label")
                continue
            series.setdefault(rest, {})[q[0]] = value
        if not series:
            errors.append(f"{path}: {wname} has no quantile samples")
        for rest, quantiles in series.items():
            if sorted(quantiles) != ["0.5", "0.9", "0.99"]:
                errors.append(
                    f"{path}: {wname}{dict(rest)} quantiles are "
                    f"{sorted(quantiles)}, want ['0.5', '0.9', '0.99']")
                continue
            ordered = [quantiles["0.5"], quantiles["0.9"], quantiles["0.99"]]
            if any(v < 0 for v in ordered):
                errors.append(
                    f"{path}: {wname}{dict(rest)} has a negative quantile")
            if any(b < a for a, b in zip(ordered, ordered[1:])):
                errors.append(
                    f"{path}: {wname}{dict(rest)} quantiles decrease as the "
                    f"quantile rises: {ordered}")
            count = samples.get((wname + "_count", rest))
            if count is None:
                errors.append(f"{path}: {wname}{dict(rest)} lacks _count")
            elif count < 0:
                errors.append(
                    f"{path}: {wname}{dict(rest)} _count is negative")


def monotonic_series(samples, types):
    """Series that must never decrease between scrapes."""
    out = {}
    for (name, labels), value in samples.items():
        base = base_name(name, types)
        t = types.get(base)
        if t == "counter" or (t == "histogram" and name != base):
            out[(name, labels)] = value
    return out


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    all_errors = []
    parsed = []
    for path in argv[1:]:
        samples, types, errors = parse_exposition(path)
        all_errors.extend(errors)
        parsed.append((samples, types))
    if len(parsed) == 2 and not all_errors:
        first = monotonic_series(*parsed[0])
        second = monotonic_series(*parsed[1])
        for key, v1 in sorted(first.items()):
            v2 = second.get(key)
            if v2 is None:
                all_errors.append(
                    f"{argv[2]}: series {key[0]}{dict(key[1])} vanished "
                    "between scrapes")
            elif v2 < v1:
                all_errors.append(
                    f"{argv[2]}: counter {key[0]}{dict(key[1])} went "
                    f"backwards: {v1} -> {v2}")
    if all_errors:
        print("\n".join(all_errors), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Figure 3: ParSubtrees is at best a p-approximation for makespan.
// On a fork with p*k unit leaves, ParSubtrees' makespan is p(k-1)+2 while
// the optimum is k+1; ParSubtreesOptim and the list heuristics fix it.
//
// Flags: --p (default 4), --maxk (default 256).

#include <iostream>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const int p = (int)args.get_int("p", 4);
  const int maxk = (int)args.get_int("maxk", 256);
  args.reject_unknown();

  const auto algos = parallel_campaign_algorithms();

  std::cout << "== Figure 3: fork worst case for ParSubtrees (p = " << p
            << ") ==\n\n"
            << "      k   leaves   optimal";
  for (const std::string& name : algos) std::cout << "  " << name;
  std::cout << "   ratio(ParSubtrees/opt)\n";

  for (int k = 4; k <= maxk; k *= 4) {
    Tree t = fork_tree(p * k);
    const double opt = k + 1;  // k waves of p leaves + root
    std::cout << "  " << k << "\t" << p * k << "\t" << opt;
    double first = 0;
    for (const std::string& name : algos) {
      const double ms =
          simulate(t, SchedulerRegistry::instance().create(name)->schedule(
                          t, Resources{p, 0}))
              .makespan;
      if (name == "ParSubtrees") first = ms;
      std::cout << "\t" << ms;
    }
    std::cout << "\t x" << fmt(first / opt, 2) << "\n";
  }
  std::cout << "\nExpected: ParSubtrees' ratio tends to p = " << p
            << " as k grows; all other heuristics stay at the optimum.\n";
  return 0;
}

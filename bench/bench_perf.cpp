// P1: microbenchmarks of the complexity claims in §5:
//  * optimal postorder           O(n log n)
//  * Liu exact traversal         O(n^2) worst, near-linear in practice
//  * SplitSubtrees               O(n (log n + p))
//  * ParSubtrees end-to-end      O(n log n) with the postorder
//  * list scheduling             O(n log n)
//  * simulator replay            O(n log n)
// plus one end-to-end benchmark per registered (non-oracle) scheduling
// algorithm ("BM_Sched/<Name>"), registered dynamically from the registry
// in main() so new algorithms are benchmarked without touching this file,
// plus the scheduling-service batch path ("BM_Service/{cached,uncached}",
// requests/sec via items_per_second).
//
// Every run also writes a machine-readable summary (default
// BENCH_PR2.json, override with --bench_json=<path>): one entry per
// benchmark with ns/op and items/sec — the perf-trajectory data points
// the CI perf-smoke step uploads as an artifact.
//
// Smoke run for the perf pipeline:
//   bench_perf --benchmark_filter='BM_Sched|BM_Service' \
//       --benchmark_min_time=0.01 --bench_json=BENCH_PR2.json

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "parallel/par_subtrees.hpp"
#include "sched/registry.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "service/service.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace treesched;

Tree make_bench_tree(std::int64_t n) {
  Rng rng(0xbe7c4 + (std::uint64_t)n);
  RandomTreeParams params;
  params.n = (NodeId)n;
  params.depth_bias = 1.0;
  params.max_output = 1000;
  params.max_exec = 200;
  params.min_work = 1.0;
  params.max_work = 100.0;
  return random_tree(params, rng);
}

void BM_OptimalPostorder(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(postorder(t).peak);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimalPostorder)->Range(1 << 10, 1 << 17)->Complexity();

void BM_LiuExact(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(liu_optimal_traversal(t).peak);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LiuExact)->Range(1 << 10, 1 << 15)->Complexity();

void BM_SplitSubtrees(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(split_subtrees(t, 32).predicted_makespan);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SplitSubtrees)->Range(1 << 10, 1 << 17)->Complexity();

void BM_ParSubtrees(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_subtrees(t, 16).start.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParSubtrees)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ParInnerFirst(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_inner_first(t, 16).start.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParInnerFirst)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ParDeepestFirst(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_deepest_first(t, 16).start.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParDeepestFirst)->Range(1 << 10, 1 << 16)->Complexity();

void BM_Simulate(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  const Schedule s = par_deepest_first(t, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(t, s).peak_memory);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Simulate)->Range(1 << 10, 1 << 16)->Complexity();

void BM_SequentialPeak(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  const auto order = postorder(t).order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sequential_peak_memory(t, order));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SequentialPeak)->Range(1 << 10, 1 << 17)->Complexity();

// One end-to-end benchmark per registered algorithm on a fixed mid-size
// tree: the perf-trajectory signal for the whole roster.
void register_scheduler_benchmarks() {
  constexpr std::int64_t kSchedBenchNodes = 1 << 13;
  for (const std::string& name : default_campaign_algorithms()) {
    benchmark::RegisterBenchmark(
        ("BM_Sched/" + name).c_str(),
        [name](benchmark::State& state) {
          const Tree t = make_bench_tree(kSchedBenchNodes);
          const SchedulerPtr sched =
              SchedulerRegistry::instance().create(name);
          const Resources res{16, 0};
          for (auto _ : state) {
            benchmark::DoNotOptimize(sched->schedule(t, res).start.size());
          }
        });
  }
}

// The service batch path: K distinct requests (trees x algos x procs)
// answered as one batch per iteration. Cached answers from the result
// cache after the first iteration; uncached recomputes every request —
// the requests/sec ratio is the cache's leverage.
void BM_Service(benchmark::State& state, std::size_t cache_bytes) {
  SchedulingService service(ServiceConfig{.cache_bytes = cache_bytes});
  std::vector<ScheduleRequest> reqs;
  for (std::int64_t seed = 0; seed < 4; ++seed) {
    const TreeHandle handle =
        service.intern(make_bench_tree((1 << 10) + seed));
    for (const std::string& algo :
         {"ParSubtrees", "ParInnerFirst", "ParDeepestFirst", "Liu"}) {
      for (int p : {4, 16}) {
        ScheduleRequest req;
        req.tree = handle;
        req.algo = algo;
        req.p = p;
        reqs.push_back(req);
      }
    }
  }
  // Warm-up batch outside the timing loop: the cached variant measures
  // steady-state (hot cache) throughput, not the first-batch miss cost.
  benchmark::DoNotOptimize(service.schedule_batch(reqs).size());
  for (auto _ : state) {
    const auto responses = service.schedule_batch(reqs);
    benchmark::DoNotOptimize(responses.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reqs.size()));
}

void register_service_benchmarks() {
  benchmark::RegisterBenchmark("BM_Service/cached", [](benchmark::State& s) {
    BM_Service(s, ResultCache::kDefaultByteBudget);
  });
  benchmark::RegisterBenchmark("BM_Service/uncached",
                               [](benchmark::State& s) { BM_Service(s, 0); });
}

// ---------------------------------------------------------------------------
// BENCH_PR2.json: a ConsoleReporter that additionally collects every
// per-iteration run and writes {name, ns_per_op, items_per_second} when
// the run finishes.
// ---------------------------------------------------------------------------

class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.report_big_o ||
          run.report_rms || run.error_occurred || run.iterations == 0 ||
          run.repetition_index > 0) {  // one entry per name, not per rep
        continue;
      }
      Entry e;
      e.name = run.benchmark_name();
      e.ns_per_op = run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9;
      const auto it = run.counters.find("items_per_second");
      e.items_per_second =
          it == run.counters.end() ? 0.0 : static_cast<double>(it->second);
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// True on success; complains on stderr otherwise.
  bool write_json(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench_perf: cannot open " << path << " for writing\n";
      return false;
    }
    os.precision(17);
    os << "{\n  \"schema\": \"treesched-bench-pr2-v1\",\n"
       << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      os << "    {\"name\": \"" << e.name << "\", \"ns_per_op\": "
         << e.ns_per_op << ", \"items_per_second\": " << e.items_per_second
         << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
  };
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  // Our own flag, stripped before Google Benchmark parses the rest.
  std::string json_path = "BENCH_PR2.json";
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::string prefix = "--bench_json=";
      if (arg.rfind(prefix, 0) == 0) {
        json_path = arg.substr(prefix.size());
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  register_scheduler_benchmarks();
  register_service_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const bool wrote = reporter.write_json(json_path);
  benchmark::Shutdown();
  return wrote ? 0 : 1;
}

// P1: microbenchmarks of the complexity claims in §5:
//  * optimal postorder           O(n log n)
//  * Liu exact traversal         O(n^2) worst, near-linear in practice
//  * SplitSubtrees               O(n (log n + p))
//  * ParSubtrees end-to-end      O(n log n) with the postorder
//  * list scheduling             O(n log n)
//  * simulator replay            O(n log n)
// plus one end-to-end benchmark per registered (non-oracle) scheduling
// algorithm ("BM_Sched/<Name>"), registered dynamically from the registry
// in main() so new algorithms are benchmarked without touching this file.
//
// Smoke run for the perf pipeline:
//   bench_perf --benchmark_filter=BM_Sched --benchmark_format=json

#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "parallel/par_subtrees.hpp"
#include "sched/registry.hpp"
#include "sequential/liu.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace treesched;

Tree make_bench_tree(std::int64_t n) {
  Rng rng(0xbe7c4 + (std::uint64_t)n);
  RandomTreeParams params;
  params.n = (NodeId)n;
  params.depth_bias = 1.0;
  params.max_output = 1000;
  params.max_exec = 200;
  params.min_work = 1.0;
  params.max_work = 100.0;
  return random_tree(params, rng);
}

void BM_OptimalPostorder(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(postorder(t).peak);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimalPostorder)->Range(1 << 10, 1 << 17)->Complexity();

void BM_LiuExact(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(liu_optimal_traversal(t).peak);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LiuExact)->Range(1 << 10, 1 << 15)->Complexity();

void BM_SplitSubtrees(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(split_subtrees(t, 32).predicted_makespan);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SplitSubtrees)->Range(1 << 10, 1 << 17)->Complexity();

void BM_ParSubtrees(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_subtrees(t, 16).start.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParSubtrees)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ParInnerFirst(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_inner_first(t, 16).start.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParInnerFirst)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ParDeepestFirst(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(par_deepest_first(t, 16).start.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParDeepestFirst)->Range(1 << 10, 1 << 16)->Complexity();

void BM_Simulate(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  const Schedule s = par_deepest_first(t, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(t, s).peak_memory);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Simulate)->Range(1 << 10, 1 << 16)->Complexity();

void BM_SequentialPeak(benchmark::State& state) {
  const Tree t = make_bench_tree(state.range(0));
  const auto order = postorder(t).order;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sequential_peak_memory(t, order));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SequentialPeak)->Range(1 << 10, 1 << 17)->Complexity();

// One end-to-end benchmark per registered algorithm on a fixed mid-size
// tree: the perf-trajectory signal for the whole roster.
void register_scheduler_benchmarks() {
  constexpr std::int64_t kSchedBenchNodes = 1 << 13;
  for (const std::string& name : default_campaign_algorithms()) {
    benchmark::RegisterBenchmark(
        ("BM_Sched/" + name).c_str(),
        [name](benchmark::State& state) {
          const Tree t = make_bench_tree(kSchedBenchNodes);
          const SchedulerPtr sched =
              SchedulerRegistry::instance().create(name);
          const Resources res{16, 0};
          for (auto _ : state) {
            benchmark::DoNotOptimize(sched->schedule(t, res).start.size());
          }
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_scheduler_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

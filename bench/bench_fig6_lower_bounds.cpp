// Reproduces Figure 6: relative makespan and relative memory of every
// heuristic against the scenario lower bounds (best sequential postorder
// memory; max(W/p, critical path) makespan), summarized by the
// mean / 10th / 90th percentile "crosses" of the paper's plot.
//
// Flags as in bench_table1; --csv dumps the full scatter for plotting.

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/report.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  const std::string csv = args.get("csv", "");
  args.reject_unknown();

  bench::print_header("Figure 6: comparison to lower bounds", setup);
  const auto records = run_campaign(setup.dataset, setup.params);
  const auto series = figure_series(records, Normalization::kLowerBound);
  print_figure(std::cout, series,
               "relative (makespan, memory) vs lower bounds");

  std::cout << "\nmax observed memory blow-up per heuristic:\n";
  for (const auto& s : series) {
    std::cout << "  " << s.algorithm << ": x" << fmt(s.memory_summary.max, 1)
              << " (makespan up to x" << fmt(s.makespan_summary.max, 2)
              << ")\n";
  }
  std::cout << "\nPaper shape: makespan ratios stay below ~4 while memory "
               "ratios exceed 100 in extreme cases.\n";

  if (!csv.empty()) {
    std::ofstream os(csv);
    write_scatter_csv(os, records, Normalization::kLowerBound);
    std::cout << "wrote scatter to " << csv << "\n";
  }
  return 0;
}

// Extension A3 (the paper's stated future work): memory-capped scheduling.
// Sweeps the cap from the sequential optimum to infinity and reports the
// makespan achieved at each point -- the memory/makespan trade-off curve
// that none of the paper's heuristics can expose.
//
// Flags: --scale, --seed, --p (default 8), --tree (index into the dataset,
//        default: a representative mid-sized tree).

#include <iostream>

#include "bench_common.hpp"
#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "parallel/capped_subtrees.hpp"
#include "parallel/memory_bounded.hpp"
#include "parallel/par_deepest_first.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  const int p = (int)args.get_int("p", 8);
  const auto tree_idx = args.get_int("tree", -1);
  args.reject_unknown();

  // Pick a mid-sized instance by default (the banker audit is O(n) per
  // admission, so huge trees make the sweep slow without adding insight).
  std::size_t idx;
  if (tree_idx >= 0) {
    idx = (std::size_t)tree_idx % setup.dataset.size();
  } else {
    idx = 0;
    auto score = [](NodeId n) {
      const double d = (double)n - 3000.0;
      return d * d;
    };
    for (std::size_t i = 0; i < setup.dataset.size(); ++i) {
      if (score(setup.dataset[i].tree.size()) <
          score(setup.dataset[idx].tree.size())) {
        idx = i;
      }
    }
  }
  const Tree& tree = setup.dataset[idx].tree;
  std::cout << "== Memory-bounded scheduling trade-off ==\n"
            << "tree: " << setup.dataset[idx].name << " ("
            << tree.describe() << ")\np = " << p << "\n\n";

  const MemSize floor_cap = min_feasible_cap(tree);
  const double lb_ms = makespan_lower_bound(tree, p);
  const auto unbounded = simulate(tree, par_deepest_first(tree, p));
  std::cout << "sequential-optimal postorder memory (cap floor): "
            << floor_cap << "\n"
            << "unbounded ParDeepestFirst: makespan "
            << fmt(unbounded.makespan / lb_ms, 3) << "x LB, memory x"
            << fmt((double)unbounded.peak_memory / (double)floor_cap, 2)
            << "\n\n"
            << "   cap/Mseq   banker ms/LB  (peak ok)   static-subtrees "
               "ms/LB  (peak ok)\n";

  const MemSize static_floor = capped_subtrees_min_cap(tree, p);
  for (double factor : {1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0, 16.0}) {
    const auto cap = (MemSize)((double)floor_cap * factor);
    std::cout << "  x" << fmt(factor, 2) << "\t";
    auto banker = memory_bounded_schedule(tree, p, cap);
    if (!banker) {
      std::cout << "  infeasible";
    } else {
      const auto sim = simulate(tree, banker->schedule);
      std::cout << "  " << fmt(sim.makespan / lb_ms, 3) << "  ("
                << (sim.peak_memory <= cap ? "yes" : "NO: BUG") << ")";
    }
    auto stat = capped_subtrees_schedule(tree, p, cap);
    if (!stat) {
      std::cout << "\t\tinfeasible (static floor x"
                << fmt((double)static_floor / (double)floor_cap, 2) << ")";
    } else {
      const auto sim = simulate(tree, stat->schedule);
      std::cout << "\t\t" << fmt(sim.makespan / lb_ms, 3) << "  ("
                << (sim.peak_memory <= cap ? "yes" : "NO: BUG")
                << ", par " << stat->max_parallelism << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected: both schedulers respect the cap everywhere; "
               "makespan decreases as the cap loosens. The dynamic banker "
               "dominates the static subtree-reservation scheme, which "
               "needs a larger floor (x"
            << fmt((double)static_floor / (double)floor_cap, 2)
            << " here) and loses parallelism at tight caps -- the price "
               "of an O(1) admission test.\n";
  return 0;
}

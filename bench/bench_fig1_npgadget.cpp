// Figure 1 / Theorem 1: the NP-completeness reduction from 3-Partition.
// For YES instances, replays the proof's constructive schedule and checks
// it meets B_Cmax = 2m+1 and B_mem = 3mB + 3m exactly; then shows how the
// paper's heuristics behave on the same gadget (none is guaranteed to meet
// both bounds -- that is the point of the hardness proof).
//
// Flags: --m (number of groups, default 3), --B (target sum, default 12).

#include <array>
#include <iostream>

#include "core/simulator.hpp"
#include "sched/registry.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const auto m = args.get_int("m", 3);
  const auto B = args.get_int("B", 12);
  args.reject_unknown();
  if (m < 1 || B < 12 || B % 4 != 0) {
    std::cerr << "need --m >= 1 and --B >= 12 divisible by 4\n";
    return 1;
  }

  // Build a YES instance: m groups, each {B/4+1, B/4+1, B/2-2}
  // (these obey the 3-Partition constraint B/4 < a_i < B/2 for B >= 12).
  ThreePartitionInstance inst;
  inst.B = B;
  std::vector<std::array<int, 3>> groups;
  for (std::int64_t g = 0; g < m; ++g) {
    const int base = (int)(3 * g);
    inst.a.push_back(B / 4 + 1);
    inst.a.push_back(B / 4 + 1);
    inst.a.push_back(B - 2 * (B / 4 + 1));
    groups.push_back({base, base + 1, base + 2});
  }
  Tree tree = threepartition_gadget(inst);
  const auto bounds = threepartition_bounds(inst);

  std::cout << "== Figure 1 / Theorem 1: 3-Partition gadget ==\n"
            << tree.describe() << "\n"
            << "m=" << m << " B=" << B << " p=" << bounds.processors
            << "  B_Cmax=" << bounds.makespan_bound
            << "  B_mem=" << bounds.memory_bound << "\n\n";

  Schedule proof = threepartition_schedule(tree, inst, groups);
  auto v = validate_schedule(tree, proof, bounds.processors);
  auto sim = simulate(tree, proof);
  std::cout << "proof schedule: valid=" << (v.ok ? "yes" : "no")
            << " makespan=" << sim.makespan << " (bound "
            << bounds.makespan_bound << ")"
            << " peak=" << sim.peak_memory << " (bound "
            << bounds.memory_bound << ")\n\n";

  std::cout << "parallel algorithms on the gadget (p = " << bounds.processors
            << "):\n";
  for (const std::string& name : parallel_campaign_algorithms()) {
    Schedule s = SchedulerRegistry::instance().create(name)->schedule(
        tree, Resources{bounds.processors, 0});
    auto hs = simulate(tree, s);
    std::cout << "  " << name << ": makespan=" << hs.makespan
              << " (" << fmt(hs.makespan / bounds.makespan_bound, 2)
              << "x bound), peak=" << hs.peak_memory << " ("
              << fmt((double)hs.peak_memory / (double)bounds.memory_bound, 2)
              << "x bound)\n";
  }
  std::cout << "\nExpected: the constructive schedule meets both bounds "
               "exactly; generic heuristics miss at least one of them on "
               "nontrivial instances.\n";
  return 0;
}

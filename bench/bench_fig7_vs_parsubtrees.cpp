// Reproduces Figure 7: every heuristic normalized to ParSubtrees
// (per scenario), as mean / p10 / p90 crosses plus optional raw CSV.

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/report.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  const std::string csv = args.get("csv", "");
  args.reject_unknown();

  bench::print_header("Figure 7: comparison to ParSubtrees", setup);
  const auto records = run_campaign(setup.dataset, setup.params);
  const auto series = figure_series(records, Normalization::kParSubtrees);
  print_figure(std::cout, series,
               "relative (makespan, memory) vs ParSubtrees");
  std::cout << "\nPaper shape: ParSubtreesOptim slightly faster with "
               "slightly more memory; ParInnerFirst/ParDeepestFirst faster "
               "but with a large memory multiple.\n";
  if (!csv.empty()) {
    std::ofstream os(csv);
    write_scatter_csv(os, records, Normalization::kParSubtrees);
    std::cout << "wrote scatter to " << csv << "\n";
  }
  return 0;
}

#pragma once
// Shared plumbing for the bench binaries: campaign construction from CLI
// flags and a uniform header format.

#include <iostream>
#include <string>

#include "campaign/dataset.hpp"
#include "campaign/runner.hpp"
#include "util/cli.hpp"

namespace treesched::bench {

struct CampaignSetup {
  std::vector<DatasetEntry> dataset;
  CampaignParams params;
};

/// Flags: --scale (default 1.0), --seed, --procs "2,4,8,16,32",
/// --threads, --algos "ParSubtrees,Liu,..." (default: the full registry
/// roster minus oracles), --csv <path>.
inline CampaignSetup make_campaign(const CliArgs& args) {
  CampaignSetup setup;
  DatasetParams dp;
  dp.scale = args.get_double("scale", 1.0);
  dp.seed = (std::uint64_t)args.get_int("seed", 42);
  setup.dataset = build_dataset(dp);
  setup.params.threads = (unsigned)args.get_int("threads", 0);
  setup.params.algorithms = split_csv(args.get("algos", ""));
  setup.params.processor_counts.clear();
  for (const std::string& tok : split_csv(args.get("procs", "2,4,8,16,32"))) {
    setup.params.processor_counts.push_back(std::stoi(tok));
  }
  return setup;
}

inline void print_header(const std::string& what,
                         const CampaignSetup& setup) {
  std::cout << "== " << what << " ==\n"
            << "dataset: " << setup.dataset.size() << " trees; processors:";
  for (int p : setup.params.processor_counts) std::cout << ' ' << p;
  std::cout << "\n\n";
}

}  // namespace treesched::bench

// Figure 4: ParInnerFirst's memory is unbounded relative to the optimal
// sequential memory. On the spine-with-side-leaves adversary, M_seq = p+1
// while ParInnerFirst accumulates ~(k-1)(p-1) leaf outputs.
//
// Flags: --p (default 4), --maxk (default 512).

#include <iostream>

#include "core/simulator.hpp"
#include "parallel/par_inner_first.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const int p = (int)args.get_int("p", 4);
  const int maxk = (int)args.get_int("maxk", 512);
  args.reject_unknown();

  std::cout << "== Figure 4: ParInnerFirst memory adversary (p = " << p
            << ") ==\n\n"
            << "      k    nodes   M_seq   ParInnerFirst-peak   ratio\n";
  for (int k = 4; k <= maxk; k *= 2) {
    Tree t = innerfirst_adversary_tree(k, p);
    const MemSize mseq = postorder(t).peak;
    const auto sim = simulate(t, par_inner_first(t, p));
    std::cout << "  " << k << "\t" << t.size() << "\t" << mseq << "\t"
              << sim.peak_memory << "\t\t x"
              << fmt((double)sim.peak_memory / (double)mseq, 1) << "\n";
  }
  std::cout << "\nExpected: M_seq stays at p + 1 = " << p + 1
            << " while the parallel peak grows ~ (k-1)(p-1): the ratio is "
               "unbounded in k.\n";
  return 0;
}

// Throughput and latency of the scheduling service.
//
// Experiment 1 (throughput): the same K = trees x algos x procs distinct
// requests cycled --repeat times, answered once with the result cache
// disabled (every request recomputes — the pre-service cost model) and
// once with it enabled. Reports requests/sec for both paths and the
// speedup; the PR 2 acceptance bar is >= 10x on the cached path.
//
// Experiment 2 (mixed-priority latency): a stream of interactive probes
// submitted against a service saturated with heavy Bulk work, twice —
// once with the probes at priority=interactive (the admission queue lets
// them overtake the backlog) and once at priority=bulk (plain FIFO
// within the class: each probe waits out the whole backlog ahead of it).
// Reports probe p50/p99 latency for both; the PR 3 acceptance bar is a
// measurably lower interactive p99. A third wave of deadline-tagged
// requests is submitted behind the backlog with sub-millisecond budgets:
// all of them must expire with the typed error and none may ever reach a
// scheduler (cache-miss accounting proves it).
//
// Experiment 3 (ticket overhead): the same cache-hot request answered
// --ticket-ops times through submit()+Ticket::wait() and through the
// legacy schedule_async().get() future bridge, so the cost of the v2
// wrapper layer (queue admission + ticket settle vs. + promise/future)
// is on the perf record.
//
// Experiment 4 (loopback server, v2 vs v3): a real schedule_server
// (src/net/, an epoll front-end on 127.0.0.1 port 0 — plus unix-domain
// runs) driven by N concurrent client threads through net::Client, in
// both protocols and several batch depths. batch=1 is the classic
// closed loop of synchronous requests; batch=k pipelines k requests per
// submission (one newline-joined write in text mode, ONE kBatch frame
// in v3) and then drains the k tagged answers. Cached runs warm the
// 32-key spec pool first, so the numbers price the transport — framing,
// epoll, ticket hand-off, kernel loopback — not the schedulers; the
// uncached batch=1 runs price the whole compute path. The headline
// ratio, v3 batch=16 over text v2 batch=1 (both cache-hot, same run),
// carries the PR 6 acceptance bar: >= 3x.
//
// Experiment 6 (router overhead): the experiment-4 cache-hot closed
// loop driven once directly at a backend schedule server and once
// through a cluster::Router (src/cluster/) fronting that same node, in
// the same process and run. The routed/direct rps ratio prices the
// router hop alone — spec fingerprinting, the ring walk, the upstream
// pipe, one extra loopback round trip — and carries the PR 9 acceptance
// bar: >= 0.7x, gated in CI by check_bench_trend.py --min-router-ratio.
//
// Experiment 7 (tracing overhead): the experiment-4 cache-hot v3
// batch=1 closed loop run once with the process tracer disabled and
// once with it enabled — the enabled run records every net and compute
// span into the lock-free rings, exactly what `trace start` turns on in
// production. The fractional rps loss prices the span recorder's hot
// path and carries this PR's acceptance bar: <= 5%, gated in CI by
// check_bench_trend.py --max-trace-overhead.
//
//   $ ./bench_service
//   $ ./bench_service --trees 8 --n 4000 --repeat 50 --json service.json
//   $ ./bench_service --probes 50 --bulk-per-probe 4 --bulk-n 4000
//   $ ./bench_service --server-clients 8 --server-requests 512
//
// --probes 0 skips experiment 2; --ticket-ops 0 skips experiment 3;
// --server-clients 0 skips experiments 4, 6, and 7.
// --json writes the numbers machine-readably (merged into BENCH_PR2.json
// by the perf pipeline alongside bench_perf's per-algorithm ns/op).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "sched/registry.hpp"
#include "service/service.hpp"
#include "campaign/dataset.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace treesched;

double run_requests(SchedulingService& service,
                    const std::vector<ScheduleRequest>& reqs,
                    std::size_t passes) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const auto responses = service.schedule_batch(reqs);
    for (const ScheduleResponse& resp : responses) {
      if (!resp.ok()) {
        throw std::runtime_error("bench_service request failed: " +
                                 resp.error->message);
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(reqs.size() * passes) / elapsed.count();
}

struct MixedResult {
  double probe_p50_ms = 0.0;
  double probe_p99_ms = 0.0;
};

/// One mixed run: before each probe, top up the Bulk backlog with
/// `bulk_per_probe` heavy requests, then submit the probe at
/// `probe_priority` and block on its future — the interactive client's
/// view. The cache is disabled so every Bulk request costs real compute
/// and the backlog never collapses into hits.
MixedResult run_mixed(Priority probe_priority, std::size_t probes,
                      std::size_t bulk_per_probe, NodeId bulk_n,
                      NodeId probe_n) {
  ServiceConfig config;
  config.cache_bytes = 0;
  SchedulingService service(config);
  Rng rng(0x3713ed);
  const TreeHandle bulk_tree =
      service.intern(synthetic_assembly_tree(bulk_n, 2.0, rng));
  const TreeHandle probe_tree =
      service.intern(synthetic_assembly_tree(probe_n, 2.0, rng));

  std::vector<Ticket> bulk_tickets;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(probes);
  int bulk_p = 2;
  for (std::size_t i = 0; i < probes; ++i) {
    for (std::size_t b = 0; b < bulk_per_probe; ++b) {
      ScheduleRequest req;
      req.tree = bulk_tree;
      req.algo = "ParDeepestFirst";
      req.p = 2 + (bulk_p++ % 31);
      req.priority = Priority::kBulk;
      bulk_tickets.push_back(service.submit(std::move(req)));
    }
    ScheduleRequest probe;
    probe.tree = probe_tree;
    probe.algo = "ParInnerFirst";
    probe.p = 4;
    probe.priority = probe_priority;
    const auto t0 = std::chrono::steady_clock::now();
    const ServiceResult result = service.submit(std::move(probe)).wait();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t0;
    if (!result.ok()) {
      throw std::runtime_error("mixed probe failed: " +
                               result.error().message);
    }
    latencies_ms.push_back(elapsed.count());
  }
  for (Ticket& t : bulk_tickets) (void)t.wait();

  MixedResult result;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.probe_p50_ms = quantile_sorted(latencies_ms, 0.50);
  result.probe_p99_ms = quantile_sorted(latencies_ms, 0.99);
  return result;
}

/// Expiry wave: a Bulk backlog, then deadline-tagged Bulk requests with a
/// sub-millisecond budget behind it. Returns (expired, computed-for-them).
std::pair<std::uint64_t, std::uint64_t> run_expiry(std::size_t doomed,
                                                   NodeId bulk_n) {
  SchedulingService service;  // cache ON: distinct keys, misses == computes
  Rng rng(0xdead11e);
  const TreeHandle tree =
      service.intern(synthetic_assembly_tree(bulk_n, 2.0, rng));
  // Pin every pool worker with queued work to spare, or an idle worker on
  // a many-core machine would answer a doomed request inside its budget.
  const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < backlog; ++i) {
    ScheduleRequest req;
    req.tree = tree;
    req.algo = "ParDeepestFirst";
    req.p = 2 + static_cast<int>(i);
    req.priority = Priority::kInteractive;  // always ahead of the doomed
    tickets.push_back(service.submit(std::move(req)));
  }
  std::uint64_t expired = 0;
  std::vector<Ticket> doomed_tickets;
  for (std::size_t i = 0; i < doomed; ++i) {
    ScheduleRequest req;
    req.tree = tree;
    // Distinct p per doomed request => distinct cache keys, so the miss
    // counter counts every doomed compute, not just the first.
    req.algo = "ParInnerFirst";
    req.p = 2 + static_cast<int>(backlog + i);
    req.priority = Priority::kBulk;
    req.deadline_ms = 0.05;
    doomed_tickets.push_back(service.submit(std::move(req)));
  }
  for (Ticket& t : tickets) (void)t.wait();
  for (Ticket& t : doomed_tickets) {
    const ServiceResult r = t.wait();
    if (!r.ok() && r.error().code == ErrorCode::kDeadlineExpired) ++expired;
  }
  const std::uint64_t computed_for_doomed =
      service.cache_stats().misses - backlog;
  return {expired, computed_for_doomed};
}

/// Experiment 3: the cost of the submission surface itself. One cache-hot
/// request, answered `ops` times through each path — all compute is a
/// cache hit, so the measured time is queue admission + completion
/// plumbing. Returns requests/sec per path.
struct TicketOverhead {
  double submit_wait_rps = 0.0;    ///< submit() + Ticket::wait()
  double legacy_async_rps = 0.0;   ///< schedule_async() + future.get()
};

TicketOverhead run_ticket_overhead(std::size_t ops) {
  SchedulingService service;
  Rng rng(0x71c4e7);
  ScheduleRequest req;
  req.tree = service.intern(synthetic_assembly_tree(200, 2.0, rng));
  req.algo = "ParInnerFirst";
  req.p = 4;
  (void)unwrap(service.submit(req).wait());  // warm the cache entry

  TicketOverhead result;
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      (void)unwrap(service.submit(req).wait());
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    result.submit_wait_rps = static_cast<double>(ops) / elapsed.count();
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      (void)service.schedule_async(req).get();
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    result.legacy_async_rps = static_cast<double>(ops) / elapsed.count();
  }
  return result;
}

/// Experiment 4: the whole networked stack over loopback, protocol v2
/// against protocol v3 at several pipeline depths.
struct LoopbackResult {
  double rps = 0.0;
  double p50_ms = 0.0;  ///< per-request RTT (batch=1) or per-batch RTT
  double p99_ms = 0.0;
};

struct LoopbackSpec {
  net::Protocol protocol = net::Protocol::kText;
  std::size_t batch = 1;  ///< 1 = synchronous; k = k requests per send
  bool cached = true;
  bool unix_socket = false;
  bool traced = false;  ///< run with the process tracer recording spans
};

/// The request line for slot (client, i): 4 distinct trees x 8 p values
/// = a 32-key spec pool, so cached runs settle into pure hits while
/// uncached ones pay full compute per request.
std::string loopback_line(NodeId tree_n, std::size_t client, std::size_t i) {
  return "synthetic:" + std::to_string(tree_n) + ":" +
         std::to_string((client + i) % 4) + " ParInnerFirst " +
         std::to_string(2 + static_cast<int>(i % 8)) +
         " id=" + std::to_string(i);
}

LoopbackResult run_loopback(const LoopbackSpec& spec, std::size_t clients,
                            std::size_t per_client, NodeId tree_n) {
  // Experiment 7 flips the process-wide tracer on for the whole run —
  // the server records its net and compute spans exactly as it would
  // after a production `trace start`.
  if (spec.traced) obs::Tracer::global().enable();
  ServiceConfig service_config;
  if (!spec.cached) service_config.cache_bytes = 0;
  SchedulingService service(service_config);
  net::ServerConfig server_config;  // TCP: port 0 = ephemeral
  const std::string unix_path =
      "/tmp/treesched_bench_" + std::to_string(::getpid()) + ".sock";
  if (spec.unix_socket) server_config.unix_path = unix_path;
  // Batched clients park up to `batch` requests per frame in the window.
  server_config.max_pending = std::max<std::size_t>(64, spec.batch + 8);
  net::Server server(service, server_config);
  std::thread io([&server] { server.run(); });
  const auto connect = [&] {
    return spec.unix_socket
               ? net::Client::connect_unix(unix_path, spec.protocol)
               : net::Client("127.0.0.1", server.port(), spec.protocol);
  };

  if (spec.cached) {
    // Warm every key in the pool so the timed phase is all cache hits —
    // the number should price the transport, not the first-pass misses.
    net::Client warm = connect();
    for (std::size_t i = 0; i < 4 * 8; ++i) {
      const ResponseLine resp = warm.request(loopback_line(tree_n, i, i));
      if (!resp.ok) {
        throw std::runtime_error("loopback warm-up failed: " + resp.message);
      }
    }
  }

  // Request lines (and their batch groupings) are built OUTSIDE the
  // timed loop: the bench prices the wire, not std::to_string.
  const std::size_t rounds = std::max<std::size_t>(1, per_client / spec.batch);
  const std::size_t actual_per_client = rounds * spec.batch;
  std::vector<std::vector<std::vector<std::string>>> batches(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    batches[c].resize(rounds);
    std::size_t i = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (std::size_t b = 0; b < spec.batch; ++b, ++i) {
        batches[c][r].push_back(loopback_line(tree_n, c, i));
      }
    }
  }

  std::vector<std::vector<double>> latencies(clients);
  // Failures are carried back to the main thread: an exception escaping
  // a std::thread body would terminate the whole bench with no message.
  std::vector<std::exception_ptr> failures(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      try {
        net::Client client = connect();
        std::vector<double>& lat = latencies[c];
        lat.reserve(rounds);
        for (const std::vector<std::string>& round : batches[c]) {
          const auto r0 = std::chrono::steady_clock::now();
          if (round.size() == 1) {
            const ResponseLine resp = client.request(round.front());
            if (!resp.ok) {
              throw std::runtime_error("loopback request failed: " +
                                       resp.message);
            }
          } else {
            client.send_batch(round);
            for (std::size_t i = 0; i < round.size(); ++i) {
              const auto resp = client.recv_response();
              if (!resp || !resp->ok) {
                throw std::runtime_error(
                    "loopback batch request failed: " +
                    (resp ? resp->message : std::string("connection closed")));
              }
            }
          }
          const std::chrono::duration<double, std::milli> rtt =
              std::chrono::steady_clock::now() - r0;
          lat.push_back(rtt.count());
        }
      } catch (...) {
        failures[c] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  server.stop();
  io.join();
  if (spec.traced) obs::Tracer::global().disable();
  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  LoopbackResult result;
  result.rps =
      static_cast<double>(clients * actual_per_client) / elapsed.count();
  result.p50_ms = quantile_sorted(all, 0.50);
  result.p99_ms = quantile_sorted(all, 0.99);
  return result;
}

/// Experiment 5: cache-hit scaling per backend. T threads hammer get()
/// on a pre-populated hot key set — no schedulers, no service, just the
/// index — so the number prices exactly what the backend choice changes:
/// shard mutex hand-offs vs. lock-free probes. Returns requests/sec.
double run_cache_scale(CacheBackend backend, std::size_t threads,
                       std::size_t ops_per_thread) {
  ResultCache cache(ResultCacheConfig{64u << 20, 16, backend});
  constexpr std::uint64_t kKeys = 64;
  const std::string algo = "ParDeepestFirst";
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    auto r = std::make_shared<CachedResult>();
    r->makespan = static_cast<double>(k + 1);
    r->schedule = Schedule(64);
    cache.put({k, algo, 4, 0}, std::move(r));
  }
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> missed{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local_missed = 0;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const ResultKey key{(t * 31 + i) % kKeys, algo, 4, 0};
        if (!cache.get(key)) ++local_missed;
      }
      missed.fetch_add(local_missed);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  if (missed.load() != 0) {
    throw std::runtime_error("cache-scale run missed " +
                             std::to_string(missed.load()) +
                             " pre-populated keys");
  }
  return static_cast<double>(threads * ops_per_thread) / elapsed.count();
}

/// Experiment 6: the router hop, priced within one run. The same
/// cache-hot closed loop (text v2, batch=1) runs twice against the SAME
/// backend service — once straight at its server port, once through a
/// cluster::Router fronting that single node — so routed/direct
/// isolates exactly what the router adds (spec fingerprint, ring walk,
/// upstream pipe, a second loopback hop) from the machine it ran on.
struct RouterCompare {
  double direct_rps = 0.0;
  double routed_rps = 0.0;
};

double run_closed_loop(std::uint16_t port, std::size_t clients,
                       std::size_t per_client, NodeId tree_n) {
  std::vector<std::exception_ptr> failures(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      try {
        net::Client client("127.0.0.1", port, net::Protocol::kText);
        for (std::size_t i = 0; i < per_client; ++i) {
          const ResponseLine resp =
              client.request(loopback_line(tree_n, c, i));
          if (!resp.ok) {
            throw std::runtime_error("router-compare request failed: " +
                                     resp.message);
          }
        }
      } catch (...) {
        failures[c] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }
  return static_cast<double>(clients * per_client) / elapsed.count();
}

RouterCompare run_router_compare(std::size_t clients, std::size_t per_client,
                                 NodeId tree_n) {
  SchedulingService service;  // cache ON: the timed loops are all hits
  net::Server server(service, net::ServerConfig{});
  std::thread io([&server] { server.run(); });

  cluster::RouterConfig router_config;
  router_config.nodes = {"127.0.0.1:" + std::to_string(server.port())};
  router_config.health_interval_ms = 10.0;
  router_config.reconnect_backoff_ms = 20.0;
  cluster::Router router(std::move(router_config));
  std::thread router_io([&router] { router.run(); });

  {
    // The router only forwards once a health ping marked the node up;
    // then warm the 32-key pool (one backend cache serves both loops).
    net::Client probe("127.0.0.1", router.port(), net::Protocol::kText);
    bool up = false;
    for (int tries = 0; tries < 500 && !up; ++tries) {
      const ResponseLine st = probe.request("stats");
      for (const auto& [key, value] : st.stats) {
        if (key == "nodes_up" && value >= 1) up = true;
      }
      if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!up) throw std::runtime_error("router never saw its backend up");
    for (std::size_t i = 0; i < 4 * 8; ++i) {
      const ResponseLine resp = probe.request(loopback_line(tree_n, i, i));
      if (!resp.ok) {
        throw std::runtime_error("router warm-up failed: " + resp.message);
      }
    }
  }

  RouterCompare result;
  result.direct_rps =
      run_closed_loop(server.port(), clients, per_client, tree_n);
  result.routed_rps =
      run_closed_loop(router.port(), clients, per_client, tree_n);

  router.stop();
  router_io.join();
  server.stop();
  io.join();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const auto num_trees = static_cast<std::size_t>(args.get_int("trees", 6));
    const auto n = static_cast<NodeId>(args.get_int("n", 2000));
    const auto repeat = static_cast<std::size_t>(args.get_int("repeat", 20));
    const std::string procs_csv = args.get("procs", "2,8,32");
    const std::string algos_csv = args.get(
        "algos", "ParSubtrees,ParInnerFirst,ParDeepestFirst,Liu,BestPostorder");
    const std::string json_path = args.get("json", "");
    const auto probes = static_cast<std::size_t>(args.get_int("probes", 30));
    const auto bulk_per_probe =
        static_cast<std::size_t>(args.get_int("bulk-per-probe", 3));
    const auto bulk_n = static_cast<NodeId>(args.get_int("bulk-n", 3000));
    const auto probe_n = static_cast<NodeId>(args.get_int("probe-n", 300));
    const auto ticket_ops =
        static_cast<std::size_t>(args.get_int("ticket-ops", 20000));
    const auto server_clients =
        static_cast<std::size_t>(args.get_int("server-clients", 4));
    // Long enough that each cached run reaches steady state even on a
    // small CI box — at batch=256 this is still only 8 timed rounds per
    // client, and short runs drown the v2-vs-v3 ratio in startup noise.
    const auto server_requests =
        static_cast<std::size_t>(args.get_int("server-requests", 2048));
    const auto server_n =
        static_cast<NodeId>(args.get_int("server-n", 500));
    // Per-thread get() count for the cache-scaling grid (0 skips it).
    const auto cache_scale_ops =
        static_cast<std::size_t>(args.get_int("cache-scale-ops", 200000));
    args.reject_unknown();

    std::vector<int> procs;
    for (const std::string& tok : split_csv(procs_csv)) {
      procs.push_back(std::stoi(tok));
    }
    const std::vector<std::string> algos = split_csv(algos_csv);

    // The distinct request set. Both services intern the same trees.
    SchedulingService uncached(ServiceConfig{.cache_bytes = 0});
    SchedulingService cached;
    std::vector<ScheduleRequest> uncached_reqs, cached_reqs;
    Rng rng(0x5e41ce);
    for (std::size_t t = 0; t < num_trees; ++t) {
      const Tree tree = synthetic_assembly_tree(n, 2.0, rng);
      const TreeHandle hu = uncached.intern(tree);
      const TreeHandle hc = cached.intern(tree);
      for (const std::string& algo : algos) {
        for (int p : procs) {
          ScheduleRequest req;
          req.algo = algo;
          req.p = p;
          req.tree = hu;
          uncached_reqs.push_back(req);
          req.tree = hc;
          cached_reqs.push_back(req);
        }
      }
    }
    const std::size_t distinct = cached_reqs.size();

    std::cout << "== bench_service ==\n"
              << "distinct requests: " << distinct << "  (" << num_trees
              << " trees x " << algos.size() << " algos x " << procs.size()
              << " procs, n = " << n << ")\n"
              << "workload: " << distinct * repeat
              << " requests (each distinct request repeated " << repeat
              << "x)\n\n";

    // Uncached: one pass is enough to price the compute path (every pass
    // costs the same; repeating it `repeat` times only wastes time).
    const double uncached_rps = run_requests(uncached, uncached_reqs, 1);
    const double cached_rps = run_requests(cached, cached_reqs, repeat);
    const double speedup = cached_rps / uncached_rps;

    const CacheStats cs = cached.cache_stats();
    std::cout << std::fixed << std::setprecision(0)
              << "uncached: " << uncached_rps << " requests/sec\n"
              << "cached:   " << cached_rps << " requests/sec\n"
              << std::setprecision(1) << "speedup:  " << speedup << "x"
              << (speedup >= 10.0 ? "  (meets the >= 10x bar)"
                                  : "  (BELOW the >= 10x bar)")
              << "\n"
              << "cache: " << cs.hits << " hits / " << cs.misses
              << " misses (" << std::setprecision(1)
              << 100.0 * cs.hit_rate() << "% hit rate), " << cs.entries
              << " entries, " << cs.bytes << " bytes\n";

    MixedResult with_queue, fifo;
    std::uint64_t expired = 0, computed_for_doomed = 0;
    std::size_t doomed = 0;
    if (probes > 0) {
      std::cout << "\n== mixed-priority latency ==\n"
                << probes << " interactive probes (n = " << probe_n
                << ") against " << probes * bulk_per_probe
                << " Bulk requests (n = " << bulk_n << "), uncached\n";
      with_queue = run_mixed(Priority::kInteractive, probes, bulk_per_probe,
                             bulk_n, probe_n);
      fifo = run_mixed(Priority::kBulk, probes, bulk_per_probe, bulk_n,
                       probe_n);
      std::cout << std::setprecision(2)
                << "probe latency, priority=interactive: p50 = "
                << with_queue.probe_p50_ms
                << " ms, p99 = " << with_queue.probe_p99_ms << " ms\n"
                << "probe latency, priority=bulk (FIFO): p50 = "
                << fifo.probe_p50_ms << " ms, p99 = " << fifo.probe_p99_ms
                << " ms\n"
                << "interactive p99 is " << std::setprecision(1)
                << fifo.probe_p99_ms /
                       std::max(with_queue.probe_p99_ms, 1e-9)
                << "x lower than FIFO\n";

      doomed = probes;
      const auto [exp, computed] = run_expiry(doomed, bulk_n);
      expired = exp;
      computed_for_doomed = computed;
      std::cout << "deadline wave: " << expired << "/" << doomed
                << " expired with the typed error, " << computed_for_doomed
                << " of them ever reached a scheduler\n";
    }

    TicketOverhead overhead;
    if (ticket_ops > 0) {
      overhead = run_ticket_overhead(ticket_ops);
      std::cout << "\n== ticket overhead ==\n"
                << ticket_ops << " cache-hot requests per path\n"
                << std::setprecision(0)
                << "submit+wait:            " << overhead.submit_wait_rps
                << " requests/sec\n"
                << "legacy async future:    " << overhead.legacy_async_rps
                << " requests/sec\n"
                << std::setprecision(2) << "legacy/ticket ratio:    "
                << overhead.legacy_async_rps /
                       std::max(overhead.submit_wait_rps, 1e-9)
                << "x\n";
    }

    // Experiment 4 grid. Indexed [protocol][batch depth] for the cached
    // runs; uncached and unix-domain runs are singletons.
    const std::size_t kBatches[] = {1, 16, 256};
    LoopbackResult grid[2][3];
    LoopbackResult v2_uncached, v3_uncached, uds_v2, uds_v3;
    double v3_over_v2 = 0.0;
    if (server_clients > 0) {
      std::cout << "\n== loopback server, v2 vs v3 (experiment 4) ==\n"
                << server_clients << " concurrent clients x ~"
                << server_requests << " requests (n = " << server_n
                << "), cache-hot unless marked\n";
      for (int proto = 0; proto < 2; ++proto) {
        for (int b = 0; b < 3; ++b) {
          LoopbackSpec spec;
          spec.protocol =
              proto == 0 ? net::Protocol::kText : net::Protocol::kV3;
          spec.batch = kBatches[b];
          grid[proto][b] =
              run_loopback(spec, server_clients, server_requests, server_n);
          std::cout << (proto == 0 ? "v2 text" : "v3 bin ") << " batch="
                    << std::setw(3) << kBatches[b] << ": "
                    << std::setprecision(0) << std::setw(8)
                    << grid[proto][b].rps << " requests/sec, "
                    << (kBatches[b] == 1 ? "per-request" : "per-batch")
                    << " p50/p99 = " << std::setprecision(3)
                    << grid[proto][b].p50_ms << "/" << grid[proto][b].p99_ms
                    << " ms\n";
        }
      }
      v3_over_v2 = grid[1][1].rps / std::max(grid[0][0].rps, 1e-9);
      std::cout << std::setprecision(1) << "v3 batch=16 over text v2: "
                << v3_over_v2 << "x"
                << (v3_over_v2 >= 3.0 ? "  (meets the >= 3x bar)"
                                      : "  (BELOW the >= 3x bar)")
                << "\n";
      {
        LoopbackSpec spec;
        spec.cached = false;
        v2_uncached =
            run_loopback(spec, server_clients, server_requests, server_n);
        spec.protocol = net::Protocol::kV3;
        v3_uncached =
            run_loopback(spec, server_clients, server_requests, server_n);
      }
      std::cout << std::setprecision(0) << "uncached, batch=1: v2 = "
                << v2_uncached.rps << " requests/sec (p99 = "
                << std::setprecision(3) << v2_uncached.p99_ms
                << " ms), v3 = " << std::setprecision(0) << v3_uncached.rps
                << " requests/sec (p99 = " << std::setprecision(3)
                << v3_uncached.p99_ms << " ms)\n";
      {
        LoopbackSpec spec;
        spec.unix_socket = true;
        uds_v2 = run_loopback(spec, server_clients, server_requests, server_n);
        spec.protocol = net::Protocol::kV3;
        spec.batch = 16;
        uds_v3 = run_loopback(spec, server_clients, server_requests, server_n);
      }
      std::cout << std::setprecision(0) << "unix socket: v2 batch=1 = "
                << uds_v2.rps << " requests/sec, v3 batch=16 = " << uds_v3.rps
                << " requests/sec\n";
    }

    // Experiment 5: cache-hit scaling per backend at 1/4/16/32 threads.
    const std::size_t kScaleThreads[] = {1, 4, 16, 32};
    double scale_rps[2][4] = {};
    double cache_scale_ratio_t16 = 0.0;
    if (cache_scale_ops > 0) {
      std::cout << "\n== cache-hit scaling, mutex vs lockfree backend ==\n"
                << cache_scale_ops
                << " get() ops per thread on a 64-key hot set\n";
      for (int backend = 0; backend < 2; ++backend) {
        for (int t = 0; t < 4; ++t) {
          scale_rps[backend][t] = run_cache_scale(
              backend == 0 ? CacheBackend::kMutex : CacheBackend::kLockFree,
              kScaleThreads[t], cache_scale_ops);
        }
        std::cout << (backend == 0 ? "mutex:    " : "lockfree: ")
                  << std::setprecision(0);
        for (int t = 0; t < 4; ++t) {
          std::cout << "t" << kScaleThreads[t] << " = "
                    << scale_rps[backend][t] << (t < 3 ? ", " : "");
        }
        std::cout << " hits/sec\n";
      }
      cache_scale_ratio_t16 =
          scale_rps[1][2] / std::max(scale_rps[0][2], 1e-9);
      std::cout << std::setprecision(2)
                << "lockfree over mutex at 16 threads: "
                << cache_scale_ratio_t16 << "x"
                << (cache_scale_ratio_t16 >= 1.0
                        ? "  (meets the >= 1.0x bar)"
                        : "  (BELOW the >= 1.0x bar)")
                << "\n";
    }

    // Experiment 6: direct vs routed cache-hot rps, same backend, same
    // run — the ratio is hardware-relative and gates in CI at >= 0.7x.
    RouterCompare router_compare;
    double router_over_direct = 0.0;
    if (server_clients > 0) {
      std::cout << "\n== router overhead, direct vs routed (experiment 6) =="
                << "\none backend node, " << server_clients
                << " clients x " << server_requests
                << " cache-hot text requests per path\n";
      router_compare =
          run_router_compare(server_clients, server_requests, server_n);
      router_over_direct = router_compare.routed_rps /
                           std::max(router_compare.direct_rps, 1e-9);
      std::cout << std::setprecision(0)
                << "direct to the node:  " << router_compare.direct_rps
                << " requests/sec\n"
                << "through the router:  " << router_compare.routed_rps
                << " requests/sec\n"
                << std::setprecision(2) << "routed/direct ratio: "
                << router_over_direct << "x"
                << (router_over_direct >= 0.7
                        ? "  (meets the >= 0.7x bar)"
                        : "  (BELOW the >= 0.7x bar)")
                << "\n";
    }

    // Experiment 7: tracing overhead. The same cache-hot v3 batch=1
    // run, tracer off vs on — the fractional rps loss is the price of
    // the span recorder's hot path, gated in CI at <= 5%.
    LoopbackResult trace_off, trace_on;
    double trace_overhead = 0.0;
    if (server_clients > 0) {
      std::cout << "\n== tracing overhead, recorder off vs on (experiment 7)"
                << " ==\n"
                << server_clients << " clients x " << server_requests
                << " cache-hot v3 batch=1 requests per path\n";
      LoopbackSpec spec;
      spec.protocol = net::Protocol::kV3;
      trace_off = run_loopback(spec, server_clients, server_requests, server_n);
      spec.traced = true;
      trace_on = run_loopback(spec, server_clients, server_requests, server_n);
      trace_overhead =
          1.0 - trace_on.rps / std::max(trace_off.rps, 1e-9);
      std::cout << std::setprecision(0)
                << "tracer off: " << trace_off.rps << " requests/sec\n"
                << "tracer on:  " << trace_on.rps << " requests/sec\n"
                << std::setprecision(1) << "overhead:   "
                << 100.0 * trace_overhead << "%"
                << (trace_overhead <= 0.05 ? "  (meets the <= 5% bar)"
                                           : "  (ABOVE the <= 5% bar)")
                << "\n";
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (!os) throw std::runtime_error("cannot open " + json_path);
      os << std::setprecision(17)
         << "{\n"
         << "  \"schema\": \"treesched-bench-service-v8\",\n"
         << "  \"distinct_requests\": " << distinct << ",\n"
         << "  \"repeat\": " << repeat << ",\n"
         << "  \"uncached_requests_per_sec\": " << uncached_rps << ",\n"
         << "  \"cached_requests_per_sec\": " << cached_rps << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"cache_hit_rate\": " << cs.hit_rate() << ",\n"
         << "  \"mixed_probes\": " << probes << ",\n"
         << "  \"interactive_probe_p50_ms\": " << with_queue.probe_p50_ms
         << ",\n"
         << "  \"interactive_probe_p99_ms\": " << with_queue.probe_p99_ms
         << ",\n"
         << "  \"fifo_probe_p50_ms\": " << fifo.probe_p50_ms << ",\n"
         << "  \"fifo_probe_p99_ms\": " << fifo.probe_p99_ms << ",\n"
         << "  \"deadline_wave_expired\": " << expired << ",\n"
         << "  \"deadline_wave_submitted\": " << doomed << ",\n"
         << "  \"deadline_wave_computed\": " << computed_for_doomed << ",\n"
         << "  \"ticket_ops\": " << ticket_ops << ",\n"
         << "  \"ticket_submit_wait_rps\": " << overhead.submit_wait_rps
         << ",\n"
         << "  \"legacy_async_rps\": " << overhead.legacy_async_rps << ",\n"
         << "  \"server_clients\": " << server_clients << ",\n"
         << "  \"server_requests_per_client\": " << server_requests << ",\n"
         // Legacy v4 keys, aliased to the closest v5 runs (text v2,
         // batch=1) so downstream trend tooling keeps a continuous
         // series across the schema bump.
         << "  \"server_cached_rps\": " << grid[0][0].rps << ",\n"
         << "  \"server_cached_p50_ms\": " << grid[0][0].p50_ms << ",\n"
         << "  \"server_cached_p99_ms\": " << grid[0][0].p99_ms << ",\n"
         << "  \"server_uncached_rps\": " << v2_uncached.rps << ",\n"
         << "  \"server_uncached_p50_ms\": " << v2_uncached.p50_ms << ",\n"
         << "  \"server_uncached_p99_ms\": " << v2_uncached.p99_ms << ",\n"
         << "  \"server_v2_batch1_rps\": " << grid[0][0].rps << ",\n"
         << "  \"server_v2_batch1_p50_ms\": " << grid[0][0].p50_ms << ",\n"
         << "  \"server_v2_batch1_p99_ms\": " << grid[0][0].p99_ms << ",\n"
         << "  \"server_v2_batch16_rps\": " << grid[0][1].rps << ",\n"
         << "  \"server_v2_batch256_rps\": " << grid[0][2].rps << ",\n"
         << "  \"server_v3_batch1_rps\": " << grid[1][0].rps << ",\n"
         << "  \"server_v3_batch1_p50_ms\": " << grid[1][0].p50_ms << ",\n"
         << "  \"server_v3_batch1_p99_ms\": " << grid[1][0].p99_ms << ",\n"
         << "  \"server_v3_batch16_rps\": " << grid[1][1].rps << ",\n"
         << "  \"server_v3_batch16_p50_ms\": " << grid[1][1].p50_ms << ",\n"
         << "  \"server_v3_batch16_p99_ms\": " << grid[1][1].p99_ms << ",\n"
         << "  \"server_v3_batch256_rps\": " << grid[1][2].rps << ",\n"
         << "  \"server_v3_over_v2_batch16\": " << v3_over_v2 << ",\n"
         << "  \"server_v3_uncached_rps\": " << v3_uncached.rps << ",\n"
         << "  \"server_v3_uncached_p99_ms\": " << v3_uncached.p99_ms
         << ",\n"
         << "  \"server_uds_v2_batch1_rps\": " << uds_v2.rps << ",\n"
         << "  \"server_uds_v3_batch16_rps\": " << uds_v3.rps << ",\n"
         << "  \"cache_scale_ops_per_thread\": " << cache_scale_ops << ",\n";
      for (int backend = 0; backend < 2; ++backend) {
        const char* label = backend == 0 ? "mutex" : "lockfree";
        for (int t = 0; t < 4; ++t) {
          os << "  \"cache_scale_" << label << "_t" << kScaleThreads[t]
             << "_rps\": " << scale_rps[backend][t] << ",\n";
        }
      }
      os << "  \"cache_scale_ratio_t16\": " << cache_scale_ratio_t16 << ",\n"
         << "  \"router_direct_rps\": " << router_compare.direct_rps << ",\n"
         << "  \"router_routed_rps\": " << router_compare.routed_rps << ",\n"
         << "  \"router_over_direct_ratio\": " << router_over_direct << ",\n"
         << "  \"trace_off_rps\": " << trace_off.rps << ",\n"
         << "  \"trace_on_rps\": " << trace_on.rps << ",\n"
         // Fraction of cache-hot rps lost with the span recorder on;
         // negative = noise in the tracer's favor. Within-run, so the
         // <= 0.05 CI gate holds on any machine.
         << "  \"trace_overhead_ratio\": " << trace_overhead << "\n"
         << "}\n";
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

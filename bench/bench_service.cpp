// Throughput of the scheduling service on a repeated-request workload:
// the same K = trees x algos x procs distinct requests cycled --repeat
// times, answered once with the result cache disabled (every request
// recomputes — the pre-service cost model) and once with it enabled.
// Reports requests/sec for both paths and the speedup; the PR 2
// acceptance bar is >= 10x on the cached path.
//
//   $ ./bench_service
//   $ ./bench_service --trees 8 --n 4000 --repeat 50 --json service.json
//
// --json writes the numbers machine-readably (merged into BENCH_PR2.json
// by the perf pipeline alongside bench_perf's per-algorithm ns/op).

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "sched/registry.hpp"
#include "service/service.hpp"
#include "campaign/dataset.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"

namespace {

using namespace treesched;

double run_requests(SchedulingService& service,
                    const std::vector<ScheduleRequest>& reqs,
                    std::size_t passes) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const auto responses = service.schedule_batch(reqs);
    for (const ScheduleResponse& resp : responses) {
      if (!resp.ok()) {
        throw std::runtime_error("bench_service request failed: " +
                                 resp.error);
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(reqs.size() * passes) / elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const auto num_trees = static_cast<std::size_t>(args.get_int("trees", 6));
    const auto n = static_cast<NodeId>(args.get_int("n", 2000));
    const auto repeat = static_cast<std::size_t>(args.get_int("repeat", 20));
    const std::string procs_csv = args.get("procs", "2,8,32");
    const std::string algos_csv = args.get(
        "algos", "ParSubtrees,ParInnerFirst,ParDeepestFirst,Liu,BestPostorder");
    const std::string json_path = args.get("json", "");
    args.reject_unknown();

    std::vector<int> procs;
    for (const std::string& tok : split_csv(procs_csv)) {
      procs.push_back(std::stoi(tok));
    }
    const std::vector<std::string> algos = split_csv(algos_csv);

    // The distinct request set. Both services intern the same trees.
    SchedulingService uncached(ServiceConfig{.cache_bytes = 0});
    SchedulingService cached;
    std::vector<ScheduleRequest> uncached_reqs, cached_reqs;
    Rng rng(0x5e41ce);
    for (std::size_t t = 0; t < num_trees; ++t) {
      const Tree tree = synthetic_assembly_tree(n, 2.0, rng);
      const TreeHandle hu = uncached.intern(tree);
      const TreeHandle hc = cached.intern(tree);
      for (const std::string& algo : algos) {
        for (int p : procs) {
          ScheduleRequest req;
          req.algo = algo;
          req.p = p;
          req.tree = hu;
          uncached_reqs.push_back(req);
          req.tree = hc;
          cached_reqs.push_back(req);
        }
      }
    }
    const std::size_t distinct = cached_reqs.size();

    std::cout << "== bench_service ==\n"
              << "distinct requests: " << distinct << "  (" << num_trees
              << " trees x " << algos.size() << " algos x " << procs.size()
              << " procs, n = " << n << ")\n"
              << "workload: " << distinct * repeat
              << " requests (each distinct request repeated " << repeat
              << "x)\n\n";

    // Uncached: one pass is enough to price the compute path (every pass
    // costs the same; repeating it `repeat` times only wastes time).
    const double uncached_rps = run_requests(uncached, uncached_reqs, 1);
    const double cached_rps = run_requests(cached, cached_reqs, repeat);
    const double speedup = cached_rps / uncached_rps;

    const CacheStats cs = cached.cache_stats();
    std::cout << std::fixed << std::setprecision(0)
              << "uncached: " << uncached_rps << " requests/sec\n"
              << "cached:   " << cached_rps << " requests/sec\n"
              << std::setprecision(1) << "speedup:  " << speedup << "x"
              << (speedup >= 10.0 ? "  (meets the >= 10x bar)"
                                  : "  (BELOW the >= 10x bar)")
              << "\n"
              << "cache: " << cs.hits << " hits / " << cs.misses
              << " misses (" << std::setprecision(1)
              << 100.0 * cs.hit_rate() << "% hit rate), " << cs.entries
              << " entries, " << cs.bytes << " bytes\n";

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (!os) throw std::runtime_error("cannot open " + json_path);
      os << std::setprecision(17)
         << "{\n"
         << "  \"schema\": \"treesched-bench-service-v1\",\n"
         << "  \"distinct_requests\": " << distinct << ",\n"
         << "  \"repeat\": " << repeat << ",\n"
         << "  \"uncached_requests_per_sec\": " << uncached_rps << ",\n"
         << "  \"cached_requests_per_sec\": " << cached_rps << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"cache_hit_rate\": " << cs.hit_rate() << "\n"
         << "}\n";
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

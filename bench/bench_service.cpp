// Throughput and latency of the scheduling service.
//
// Experiment 1 (throughput): the same K = trees x algos x procs distinct
// requests cycled --repeat times, answered once with the result cache
// disabled (every request recomputes — the pre-service cost model) and
// once with it enabled. Reports requests/sec for both paths and the
// speedup; the PR 2 acceptance bar is >= 10x on the cached path.
//
// Experiment 2 (mixed-priority latency): a stream of interactive probes
// submitted against a service saturated with heavy Bulk work, twice —
// once with the probes at priority=interactive (the admission queue lets
// them overtake the backlog) and once at priority=bulk (plain FIFO
// within the class: each probe waits out the whole backlog ahead of it).
// Reports probe p50/p99 latency for both; the PR 3 acceptance bar is a
// measurably lower interactive p99. A third wave of deadline-tagged
// requests is submitted behind the backlog with sub-millisecond budgets:
// all of them must expire with the typed error and none may ever reach a
// scheduler (cache-miss accounting proves it).
//
// Experiment 3 (ticket overhead): the same cache-hot request answered
// --ticket-ops times through submit()+Ticket::wait() and through the
// legacy schedule_async().get() future bridge, so the cost of the v2
// wrapper layer (queue admission + ticket settle vs. + promise/future)
// is on the perf record.
//
// Experiment 4 (loopback server): a real schedule_server (src/net/, an
// epoll TCP front-end on 127.0.0.1, port 0) driven by N concurrent
// client threads, each running a closed loop of synchronous protocol-v2
// requests through net::Client. Reports requests/sec and p50/p99
// round-trip latency, cached (every request after the first pass hits
// the result cache — the transport-dominated number) and uncached
// (every request recomputes — the compute-dominated number). These are
// the whole-stack numbers: framing, epoll, ticket completion hand-off,
// and kernel loopback included.
//
//   $ ./bench_service
//   $ ./bench_service --trees 8 --n 4000 --repeat 50 --json service.json
//   $ ./bench_service --probes 50 --bulk-per-probe 4 --bulk-n 4000
//   $ ./bench_service --server-clients 8 --server-requests 500
//
// --probes 0 skips experiment 2; --ticket-ops 0 skips experiment 3;
// --server-clients 0 skips experiment 4.
// --json writes the numbers machine-readably (merged into BENCH_PR2.json
// by the perf pipeline alongside bench_perf's per-algorithm ns/op).

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "sched/registry.hpp"
#include "service/service.hpp"
#include "campaign/dataset.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace treesched;

double run_requests(SchedulingService& service,
                    const std::vector<ScheduleRequest>& reqs,
                    std::size_t passes) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t pass = 0; pass < passes; ++pass) {
    const auto responses = service.schedule_batch(reqs);
    for (const ScheduleResponse& resp : responses) {
      if (!resp.ok()) {
        throw std::runtime_error("bench_service request failed: " +
                                 resp.error->message);
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(reqs.size() * passes) / elapsed.count();
}

struct MixedResult {
  double probe_p50_ms = 0.0;
  double probe_p99_ms = 0.0;
};

/// One mixed run: before each probe, top up the Bulk backlog with
/// `bulk_per_probe` heavy requests, then submit the probe at
/// `probe_priority` and block on its future — the interactive client's
/// view. The cache is disabled so every Bulk request costs real compute
/// and the backlog never collapses into hits.
MixedResult run_mixed(Priority probe_priority, std::size_t probes,
                      std::size_t bulk_per_probe, NodeId bulk_n,
                      NodeId probe_n) {
  ServiceConfig config;
  config.cache_bytes = 0;
  SchedulingService service(config);
  Rng rng(0x3713ed);
  const TreeHandle bulk_tree =
      service.intern(synthetic_assembly_tree(bulk_n, 2.0, rng));
  const TreeHandle probe_tree =
      service.intern(synthetic_assembly_tree(probe_n, 2.0, rng));

  std::vector<Ticket> bulk_tickets;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(probes);
  int bulk_p = 2;
  for (std::size_t i = 0; i < probes; ++i) {
    for (std::size_t b = 0; b < bulk_per_probe; ++b) {
      ScheduleRequest req;
      req.tree = bulk_tree;
      req.algo = "ParDeepestFirst";
      req.p = 2 + (bulk_p++ % 31);
      req.priority = Priority::kBulk;
      bulk_tickets.push_back(service.submit(std::move(req)));
    }
    ScheduleRequest probe;
    probe.tree = probe_tree;
    probe.algo = "ParInnerFirst";
    probe.p = 4;
    probe.priority = probe_priority;
    const auto t0 = std::chrono::steady_clock::now();
    const ServiceResult result = service.submit(std::move(probe)).wait();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t0;
    if (!result.ok()) {
      throw std::runtime_error("mixed probe failed: " +
                               result.error().message);
    }
    latencies_ms.push_back(elapsed.count());
  }
  for (Ticket& t : bulk_tickets) (void)t.wait();

  MixedResult result;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.probe_p50_ms = quantile_sorted(latencies_ms, 0.50);
  result.probe_p99_ms = quantile_sorted(latencies_ms, 0.99);
  return result;
}

/// Expiry wave: a Bulk backlog, then deadline-tagged Bulk requests with a
/// sub-millisecond budget behind it. Returns (expired, computed-for-them).
std::pair<std::uint64_t, std::uint64_t> run_expiry(std::size_t doomed,
                                                   NodeId bulk_n) {
  SchedulingService service;  // cache ON: distinct keys, misses == computes
  Rng rng(0xdead11e);
  const TreeHandle tree =
      service.intern(synthetic_assembly_tree(bulk_n, 2.0, rng));
  // Pin every pool worker with queued work to spare, or an idle worker on
  // a many-core machine would answer a doomed request inside its budget.
  const std::size_t backlog = 2 * ThreadPool::shared().size() + 6;
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < backlog; ++i) {
    ScheduleRequest req;
    req.tree = tree;
    req.algo = "ParDeepestFirst";
    req.p = 2 + static_cast<int>(i);
    req.priority = Priority::kInteractive;  // always ahead of the doomed
    tickets.push_back(service.submit(std::move(req)));
  }
  std::uint64_t expired = 0;
  std::vector<Ticket> doomed_tickets;
  for (std::size_t i = 0; i < doomed; ++i) {
    ScheduleRequest req;
    req.tree = tree;
    // Distinct p per doomed request => distinct cache keys, so the miss
    // counter counts every doomed compute, not just the first.
    req.algo = "ParInnerFirst";
    req.p = 2 + static_cast<int>(backlog + i);
    req.priority = Priority::kBulk;
    req.deadline_ms = 0.05;
    doomed_tickets.push_back(service.submit(std::move(req)));
  }
  for (Ticket& t : tickets) (void)t.wait();
  for (Ticket& t : doomed_tickets) {
    const ServiceResult r = t.wait();
    if (!r.ok() && r.error().code == ErrorCode::kDeadlineExpired) ++expired;
  }
  const std::uint64_t computed_for_doomed =
      service.cache_stats().misses - backlog;
  return {expired, computed_for_doomed};
}

/// Experiment 3: the cost of the submission surface itself. One cache-hot
/// request, answered `ops` times through each path — all compute is a
/// cache hit, so the measured time is queue admission + completion
/// plumbing. Returns requests/sec per path.
struct TicketOverhead {
  double submit_wait_rps = 0.0;    ///< submit() + Ticket::wait()
  double legacy_async_rps = 0.0;   ///< schedule_async() + future.get()
};

TicketOverhead run_ticket_overhead(std::size_t ops) {
  SchedulingService service;
  Rng rng(0x71c4e7);
  ScheduleRequest req;
  req.tree = service.intern(synthetic_assembly_tree(200, 2.0, rng));
  req.algo = "ParInnerFirst";
  req.p = 4;
  (void)unwrap(service.submit(req).wait());  // warm the cache entry

  TicketOverhead result;
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      (void)unwrap(service.submit(req).wait());
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    result.submit_wait_rps = static_cast<double>(ops) / elapsed.count();
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      (void)service.schedule_async(req).get();
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    result.legacy_async_rps = static_cast<double>(ops) / elapsed.count();
  }
  return result;
}

/// Experiment 4: the whole networked stack over loopback. N client
/// threads, each a closed synchronous loop of `per_client` protocol-v2
/// requests against an in-process schedule_server on an ephemeral port.
struct LoopbackResult {
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

LoopbackResult run_loopback(bool cached, std::size_t clients,
                            std::size_t per_client, NodeId tree_n) {
  ServiceConfig service_config;
  if (!cached) service_config.cache_bytes = 0;
  SchedulingService service(service_config);
  net::ServerConfig server_config;  // port 0 = ephemeral
  net::Server server(service, server_config);
  std::thread io([&server] { server.run(); });

  // A small spec pool: 4 distinct trees x 8 p values = 32 keys, so the
  // cached run settles into hits after the first pass while the
  // uncached one pays full compute per request.
  std::vector<std::vector<double>> latencies(clients);
  // Failures are carried back to the main thread: an exception escaping
  // a std::thread body would terminate the whole bench with no message.
  std::vector<std::exception_ptr> failures(clients);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      try {
        net::Client client("127.0.0.1", server.port());
        std::vector<double>& lat = latencies[c];
        lat.reserve(per_client);
        for (std::size_t i = 0; i < per_client; ++i) {
          const std::string line =
              "synthetic:" + std::to_string(tree_n) + ":" +
              std::to_string((c + i) % 4) + " ParInnerFirst " +
              std::to_string(2 + static_cast<int>(i % 8)) +
              " id=" + std::to_string(i);
          const auto r0 = std::chrono::steady_clock::now();
          const ResponseLine resp = client.request(line);
          const std::chrono::duration<double, std::milli> rtt =
              std::chrono::steady_clock::now() - r0;
          if (!resp.ok) {
            throw std::runtime_error("loopback request failed: " +
                                     resp.message);
          }
          lat.push_back(rtt.count());
        }
      } catch (...) {
        failures[c] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  server.stop();
  io.join();
  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  LoopbackResult result;
  result.rps =
      static_cast<double>(clients * per_client) / elapsed.count();
  result.p50_ms = quantile_sorted(all, 0.50);
  result.p99_ms = quantile_sorted(all, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treesched;
  try {
    CliArgs args(argc, argv);
    const auto num_trees = static_cast<std::size_t>(args.get_int("trees", 6));
    const auto n = static_cast<NodeId>(args.get_int("n", 2000));
    const auto repeat = static_cast<std::size_t>(args.get_int("repeat", 20));
    const std::string procs_csv = args.get("procs", "2,8,32");
    const std::string algos_csv = args.get(
        "algos", "ParSubtrees,ParInnerFirst,ParDeepestFirst,Liu,BestPostorder");
    const std::string json_path = args.get("json", "");
    const auto probes = static_cast<std::size_t>(args.get_int("probes", 30));
    const auto bulk_per_probe =
        static_cast<std::size_t>(args.get_int("bulk-per-probe", 3));
    const auto bulk_n = static_cast<NodeId>(args.get_int("bulk-n", 3000));
    const auto probe_n = static_cast<NodeId>(args.get_int("probe-n", 300));
    const auto ticket_ops =
        static_cast<std::size_t>(args.get_int("ticket-ops", 20000));
    const auto server_clients =
        static_cast<std::size_t>(args.get_int("server-clients", 4));
    const auto server_requests =
        static_cast<std::size_t>(args.get_int("server-requests", 200));
    const auto server_n =
        static_cast<NodeId>(args.get_int("server-n", 500));
    args.reject_unknown();

    std::vector<int> procs;
    for (const std::string& tok : split_csv(procs_csv)) {
      procs.push_back(std::stoi(tok));
    }
    const std::vector<std::string> algos = split_csv(algos_csv);

    // The distinct request set. Both services intern the same trees.
    SchedulingService uncached(ServiceConfig{.cache_bytes = 0});
    SchedulingService cached;
    std::vector<ScheduleRequest> uncached_reqs, cached_reqs;
    Rng rng(0x5e41ce);
    for (std::size_t t = 0; t < num_trees; ++t) {
      const Tree tree = synthetic_assembly_tree(n, 2.0, rng);
      const TreeHandle hu = uncached.intern(tree);
      const TreeHandle hc = cached.intern(tree);
      for (const std::string& algo : algos) {
        for (int p : procs) {
          ScheduleRequest req;
          req.algo = algo;
          req.p = p;
          req.tree = hu;
          uncached_reqs.push_back(req);
          req.tree = hc;
          cached_reqs.push_back(req);
        }
      }
    }
    const std::size_t distinct = cached_reqs.size();

    std::cout << "== bench_service ==\n"
              << "distinct requests: " << distinct << "  (" << num_trees
              << " trees x " << algos.size() << " algos x " << procs.size()
              << " procs, n = " << n << ")\n"
              << "workload: " << distinct * repeat
              << " requests (each distinct request repeated " << repeat
              << "x)\n\n";

    // Uncached: one pass is enough to price the compute path (every pass
    // costs the same; repeating it `repeat` times only wastes time).
    const double uncached_rps = run_requests(uncached, uncached_reqs, 1);
    const double cached_rps = run_requests(cached, cached_reqs, repeat);
    const double speedup = cached_rps / uncached_rps;

    const CacheStats cs = cached.cache_stats();
    std::cout << std::fixed << std::setprecision(0)
              << "uncached: " << uncached_rps << " requests/sec\n"
              << "cached:   " << cached_rps << " requests/sec\n"
              << std::setprecision(1) << "speedup:  " << speedup << "x"
              << (speedup >= 10.0 ? "  (meets the >= 10x bar)"
                                  : "  (BELOW the >= 10x bar)")
              << "\n"
              << "cache: " << cs.hits << " hits / " << cs.misses
              << " misses (" << std::setprecision(1)
              << 100.0 * cs.hit_rate() << "% hit rate), " << cs.entries
              << " entries, " << cs.bytes << " bytes\n";

    MixedResult with_queue, fifo;
    std::uint64_t expired = 0, computed_for_doomed = 0;
    std::size_t doomed = 0;
    if (probes > 0) {
      std::cout << "\n== mixed-priority latency ==\n"
                << probes << " interactive probes (n = " << probe_n
                << ") against " << probes * bulk_per_probe
                << " Bulk requests (n = " << bulk_n << "), uncached\n";
      with_queue = run_mixed(Priority::kInteractive, probes, bulk_per_probe,
                             bulk_n, probe_n);
      fifo = run_mixed(Priority::kBulk, probes, bulk_per_probe, bulk_n,
                       probe_n);
      std::cout << std::setprecision(2)
                << "probe latency, priority=interactive: p50 = "
                << with_queue.probe_p50_ms
                << " ms, p99 = " << with_queue.probe_p99_ms << " ms\n"
                << "probe latency, priority=bulk (FIFO): p50 = "
                << fifo.probe_p50_ms << " ms, p99 = " << fifo.probe_p99_ms
                << " ms\n"
                << "interactive p99 is " << std::setprecision(1)
                << fifo.probe_p99_ms /
                       std::max(with_queue.probe_p99_ms, 1e-9)
                << "x lower than FIFO\n";

      doomed = probes;
      const auto [exp, computed] = run_expiry(doomed, bulk_n);
      expired = exp;
      computed_for_doomed = computed;
      std::cout << "deadline wave: " << expired << "/" << doomed
                << " expired with the typed error, " << computed_for_doomed
                << " of them ever reached a scheduler\n";
    }

    TicketOverhead overhead;
    if (ticket_ops > 0) {
      overhead = run_ticket_overhead(ticket_ops);
      std::cout << "\n== ticket overhead ==\n"
                << ticket_ops << " cache-hot requests per path\n"
                << std::setprecision(0)
                << "submit+wait:            " << overhead.submit_wait_rps
                << " requests/sec\n"
                << "legacy async future:    " << overhead.legacy_async_rps
                << " requests/sec\n"
                << std::setprecision(2) << "legacy/ticket ratio:    "
                << overhead.legacy_async_rps /
                       std::max(overhead.submit_wait_rps, 1e-9)
                << "x\n";
    }

    LoopbackResult server_cached, server_uncached;
    if (server_clients > 0) {
      std::cout << "\n== loopback server (experiment 4) ==\n"
                << server_clients << " concurrent clients x "
                << server_requests << " synchronous requests (n = "
                << server_n << ") over 127.0.0.1\n";
      server_cached =
          run_loopback(true, server_clients, server_requests, server_n);
      server_uncached =
          run_loopback(false, server_clients, server_requests, server_n);
      std::cout << std::setprecision(0)
                << "cached:   " << server_cached.rps
                << " requests/sec, p50/p99 = " << std::setprecision(3)
                << server_cached.p50_ms << "/" << server_cached.p99_ms
                << " ms\n"
                << std::setprecision(0)
                << "uncached: " << server_uncached.rps
                << " requests/sec, p50/p99 = " << std::setprecision(3)
                << server_uncached.p50_ms << "/" << server_uncached.p99_ms
                << " ms\n";
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (!os) throw std::runtime_error("cannot open " + json_path);
      os << std::setprecision(17)
         << "{\n"
         << "  \"schema\": \"treesched-bench-service-v4\",\n"
         << "  \"distinct_requests\": " << distinct << ",\n"
         << "  \"repeat\": " << repeat << ",\n"
         << "  \"uncached_requests_per_sec\": " << uncached_rps << ",\n"
         << "  \"cached_requests_per_sec\": " << cached_rps << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"cache_hit_rate\": " << cs.hit_rate() << ",\n"
         << "  \"mixed_probes\": " << probes << ",\n"
         << "  \"interactive_probe_p50_ms\": " << with_queue.probe_p50_ms
         << ",\n"
         << "  \"interactive_probe_p99_ms\": " << with_queue.probe_p99_ms
         << ",\n"
         << "  \"fifo_probe_p50_ms\": " << fifo.probe_p50_ms << ",\n"
         << "  \"fifo_probe_p99_ms\": " << fifo.probe_p99_ms << ",\n"
         << "  \"deadline_wave_expired\": " << expired << ",\n"
         << "  \"deadline_wave_submitted\": " << doomed << ",\n"
         << "  \"deadline_wave_computed\": " << computed_for_doomed << ",\n"
         << "  \"ticket_ops\": " << ticket_ops << ",\n"
         << "  \"ticket_submit_wait_rps\": " << overhead.submit_wait_rps
         << ",\n"
         << "  \"legacy_async_rps\": " << overhead.legacy_async_rps << ",\n"
         << "  \"server_clients\": " << server_clients << ",\n"
         << "  \"server_requests_per_client\": " << server_requests << ",\n"
         << "  \"server_cached_rps\": " << server_cached.rps << ",\n"
         << "  \"server_cached_p50_ms\": " << server_cached.p50_ms << ",\n"
         << "  \"server_cached_p99_ms\": " << server_cached.p99_ms << ",\n"
         << "  \"server_uncached_rps\": " << server_uncached.rps << ",\n"
         << "  \"server_uncached_p50_ms\": " << server_uncached.p50_ms
         << ",\n"
         << "  \"server_uncached_p99_ms\": " << server_uncached.p99_ms
         << "\n"
         << "}\n";
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

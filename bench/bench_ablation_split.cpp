// Ablation A1: ParSubtrees design choices.
//  * plain (Algorithm 1) vs LPT packing of all subtrees (ParSubtreesOptim);
//  * sequential sub-algorithm: optimal postorder vs Liu exact vs natural
//    postorder.
// Reports campaign-average relative makespan and memory for each variant.
//
// Flags: --scale, --seed, --procs, --threads (as bench_table1).

#include <iostream>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "parallel/par_subtrees.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  // Liu-exact is O(n^2); keep the ablation to moderate trees by default.
  const auto maxn = args.get_int("maxn", 6000);
  args.reject_unknown();
  std::erase_if(setup.dataset, [&](const DatasetEntry& e) {
    return e.tree.size() > maxn;
  });
  bench::print_header("Ablation: ParSubtrees variants", setup);

  struct Variant {
    std::string name;
    ParSubtreesOptions opts;
  };
  std::vector<Variant> variants;
  for (bool optim : {false, true}) {
    for (auto seq : {SequentialAlgo::kOptimalPostorder,
                     SequentialAlgo::kLiuExact,
                     SequentialAlgo::kNaturalPostorder}) {
      Variant v;
      v.name = std::string(optim ? "LPT-pack" : "plain") + "+" +
               (seq == SequentialAlgo::kOptimalPostorder ? "opt-postorder"
                : seq == SequentialAlgo::kLiuExact       ? "liu-exact"
                                                         : "nat-postorder");
      v.opts.optimized_packing = optim;
      v.opts.sequential = seq;
      variants.push_back(v);
    }
  }

  // Reference: plain + optimal postorder (the paper's ParSubtrees).
  std::vector<std::vector<double>> rel_ms(variants.size()),
      rel_mem(variants.size());
  for (const auto& entry : setup.dataset) {
    for (int p : setup.params.processor_counts) {
      const auto ref = simulate(entry.tree, par_subtrees(entry.tree, p));
      for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const auto sim =
            simulate(entry.tree, par_subtrees(entry.tree, p, variants[vi].opts));
        rel_ms[vi].push_back(sim.makespan / ref.makespan);
        rel_mem[vi].push_back((double)sim.peak_memory /
                              (double)ref.peak_memory);
      }
    }
  }
  std::cout << "variant                     rel-makespan(mean)  "
               "rel-memory(mean)  rel-memory(p90)\n";
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const auto ms = summarize(rel_ms[vi]);
    const auto mem = summarize(rel_mem[vi]);
    std::cout << "  " << variants[vi].name;
    for (std::size_t pad = variants[vi].name.size(); pad < 26; ++pad) {
      std::cout << ' ';
    }
    std::cout << fmt(ms.mean, 3) << "\t\t" << fmt(mem.mean, 3) << "\t\t"
              << fmt(mem.p90, 3) << "\n";
  }
  std::cout << "\nExpected: LPT packing trades a makespan improvement for "
               "extra memory; Liu-exact vs optimal-postorder changes memory "
               "only marginally (the paper's §6.1 rationale for using the "
               "postorder).\n";
  return 0;
}

// Figure 5: ParDeepestFirst's memory is unbounded relative to the optimal
// sequential memory. On the equal-depth-chains tree, M_seq = 3 while
// ParDeepestFirst keeps every chain in flight simultaneously.
//
// Flags: --p (default 4), --len (default 16), --maxchains (default 256).

#include <iostream>

#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "sequential/postorder.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const int p = (int)args.get_int("p", 4);
  const int len = (int)args.get_int("len", 16);
  const int maxchains = (int)args.get_int("maxchains", 256);
  args.reject_unknown();

  std::cout << "== Figure 5: ParDeepestFirst memory adversary (p = " << p
            << ", chain length " << len << ") ==\n\n"
            << "  chains   nodes   M_seq   ParDeepestFirst-peak   ratio\n";
  for (int c = 4; c <= maxchains; c *= 2) {
    Tree t = chains_tree(c, len);
    const MemSize mseq = postorder(t).peak;
    const auto sim = simulate(t, par_deepest_first(t, p));
    std::cout << "  " << c << "\t" << t.size() << "\t" << mseq << "\t"
              << sim.peak_memory << "\t\t x"
              << fmt((double)sim.peak_memory / (double)mseq, 1) << "\n";
  }
  std::cout << "\nExpected: M_seq = 3 always; the parallel peak grows with "
               "the number of chains (every chain holds a live file).\n";
  return 0;
}

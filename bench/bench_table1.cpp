// Reproduces Table 1 of the paper: for each heuristic, the share of
// scenarios where it achieves the best (or within-5%-of-best) memory and
// makespan, and its average deviation from the sequential-optimal memory
// and from the best achieved makespan.
//
// The campaign roster defaults to every registered algorithm (paper
// heuristics + memory-capped schedulers + sequential baselines); restrict
// with --algos to reproduce the paper's exact four-row table.
//
// Flags: --scale S (instance sizes; 1.0 default), --seed, --procs list,
//        --threads, --algos "A,B,...", --csv PATH (raw per-scenario data).

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/report.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  const std::string csv = args.get("csv", "");
  const bool by_p = args.get_bool("by-p", false);
  args.reject_unknown();

  bench::print_header("Table 1: heuristic comparison", setup);
  const auto records = run_campaign(setup.dataset, setup.params);
  print_table1(std::cout, table1(records));

  if (by_p) {
    for (int p : setup.params.processor_counts) {
      std::cout << "\np = " << p << ":\n";
      print_table1(std::cout, table1_for_p(records, p));
    }
  }

  std::cout << "\nPaper reference for the four §5 heuristics "
               "(608 UF assembly trees):\n"
            << "  ParSubtrees      81.1%  85.2%  133.0%   0.2%  14.2%  34.7%\n"
            << "  ParSubtreesOptim 49.9%  65.6%  144.8%   1.1%  19.1%  28.5%\n"
            << "  ParInnerFirst    19.1%  26.2%  276.5%  37.2%  82.4%   2.6%\n"
            << "  ParDeepestFirst   3.0%   9.6%  325.8%  95.7%  99.9%   0.0%\n";

  if (!csv.empty()) {
    std::ofstream os(csv);
    write_scatter_csv(os, records, Normalization::kLowerBound);
    std::cout << "\nwrote raw scatter data to " << csv << "\n";
  }
  return 0;
}

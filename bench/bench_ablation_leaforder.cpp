// Ablation A2: how much does the reference leaf order matter for the list
// heuristics? The paper uses the *optimal* sequential postorder as the
// input order O; this ablation compares against the natural postorder and
// a deliberately bad (reversed-sibling) postorder.
//
// Flags: --scale, --seed, --procs, --threads.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "sequential/postorder.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  args.reject_unknown();
  bench::print_header("Ablation: reference leaf order in list heuristics",
                      setup);

  struct Variant {
    std::string name;
    PostorderPolicy policy;
  };
  const std::vector<Variant> variants{
      {"optimal-postorder", PostorderPolicy::kOptimal},
      {"natural-postorder", PostorderPolicy::kNatural},
      {"by-output-postorder", PostorderPolicy::kByOutput},
  };

  for (const char* heuristic : {"ParInnerFirst", "ParDeepestFirst"}) {
    std::cout << heuristic << ":\n";
    std::vector<std::vector<double>> rel_mem(variants.size());
    for (const auto& entry : setup.dataset) {
      for (int p : setup.params.processor_counts) {
        std::vector<MemSize> mems;
        for (const auto& v : variants) {
          const auto order = postorder(entry.tree, v.policy).order;
          Schedule s = std::string(heuristic) == "ParInnerFirst"
                           ? par_inner_first(entry.tree, p, order)
                           : par_deepest_first(entry.tree, p, order);
          mems.push_back(simulate(entry.tree, s).peak_memory);
        }
        const auto base = (double)mems[0];
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
          rel_mem[vi].push_back((double)mems[vi] / base);
        }
      }
    }
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      const auto s = summarize(rel_mem[vi]);
      std::cout << "  " << variants[vi].name << ": rel-memory mean "
                << fmt(s.mean, 3) << ", p90 " << fmt(s.p90, 3) << ", max "
                << fmt(s.max, 2) << "\n";
    }
  }
  std::cout << "\nExpected: the optimal-postorder reference gives the "
               "lowest memory on average, confirming the paper's choice of "
               "input order O.\n";
  return 0;
}

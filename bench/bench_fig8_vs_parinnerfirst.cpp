// Reproduces Figure 8: every heuristic normalized to ParInnerFirst.

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/report.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  auto setup = bench::make_campaign(args);
  const std::string csv = args.get("csv", "");
  args.reject_unknown();

  bench::print_header("Figure 8: comparison to ParInnerFirst", setup);
  const auto records = run_campaign(setup.dataset, setup.params);
  const auto series = figure_series(records, Normalization::kParInnerFirst);
  print_figure(std::cout, series,
               "relative (makespan, memory) vs ParInnerFirst");
  std::cout << "\nPaper shape: ParDeepestFirst uses more memory at a "
               "comparable makespan; ParSubtrees saves memory at a "
               "makespan premium.\n";
  if (!csv.empty()) {
    std::ofstream os(csv);
    write_scatter_csv(os, records, Normalization::kParInnerFirst);
    std::cout << "wrote scatter to " << csv << "\n";
  }
  return 0;
}

// Figure 2 / Theorem 2: no algorithm approximates both makespan and memory
// within constant factors. Replays the proof's memory-optimal sequential
// schedule (peak exactly n + delta) and shows that makespan-driven
// schedules (ParDeepestFirst with many processors) have memory that grows
// without bound relative to it while staying near the optimal makespan
// (critical path delta + 2).
//
// Flags: --delta (default 6), --maxn (default 64).

#include <iostream>

#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "sequential/liu.hpp"
#include "trees/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace treesched;
  CliArgs args(argc, argv);
  const int delta = (int)args.get_int("delta", 6);
  const int maxn = (int)args.get_int("maxn", 64);
  args.reject_unknown();

  std::cout << "== Figure 2 / Theorem 2: simultaneous approximation is "
               "impossible ==\n"
            << "delta=" << delta << ", critical path = " << delta + 2
            << "\n\n"
            << "     n   nodes  seq-peak(n+delta)  liu-exact  "
               "DF-makespan  DF-peak  peak-ratio\n";

  for (int n = 4; n <= maxn; n *= 2) {
    Tree t = inapprox_tree(n, delta);
    Schedule proof = inapprox_sequential_schedule(t, n, delta);
    const auto proof_sim = simulate(t, proof);
    const MemSize exact = min_sequential_memory(t);
    const int p = t.size();  // unbounded processors
    const auto df = simulate(t, par_deepest_first(t, p));
    std::cout << "  " << n << "\t" << t.size() << "\t"
              << proof_sim.peak_memory << "\t\t" << exact << "\t  "
              << df.makespan << "\t" << df.peak_memory << "\t x"
              << fmt((double)df.peak_memory / (double)exact, 1) << "\n";
  }
  std::cout << "\nExpected: seq-peak == liu-exact == n + delta; the "
               "deepest-first schedule stays within a small constant of "
               "the optimal makespan (delta + 2) while its memory ratio "
               "grows linearly in n -- no (alpha, beta) approximation "
               "pair can exist.\n";
  return 0;
}

#include "trees/io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace treesched {

void write_tree(std::ostream& os, const Tree& tree) {
  os << "treesched-tree v1\n" << tree.size() << "\n";
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (NodeId i = 0; i < tree.size(); ++i) {
    os << tree.parent(i) << ' ' << tree.output_size(i) << ' '
       << tree.exec_size(i) << ' ' << tree.work(i) << '\n';
  }
}

void write_tree_file(const std::string& path, const Tree& tree) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_tree_file: cannot open " + path);
  write_tree(os, tree);
  if (!os) throw std::runtime_error("write_tree_file: write failed " + path);
}

Tree read_tree(std::istream& is) {
  std::string line;
  // Skip comments/blank lines before the header.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '#') break;
  }
  if (line != "treesched-tree v1") {
    throw std::runtime_error("read_tree: bad header: '" + line + "'");
  }
  NodeId n = 0;
  if (!(is >> n) || n < 0) throw std::runtime_error("read_tree: bad size");
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  std::vector<MemSize> out(static_cast<std::size_t>(n));
  std::vector<MemSize> exec(static_cast<std::size_t>(n));
  std::vector<double> work(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    if (!(is >> parent[i] >> out[i] >> exec[i] >> work[i])) {
      std::ostringstream os;
      os << "read_tree: truncated at node " << i;
      throw std::runtime_error(os.str());
    }
  }
  return Tree(std::move(parent), std::move(out), std::move(exec),
              std::move(work));
}

Tree read_tree_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_tree_file: cannot open " + path);
  return read_tree(is);
}

}  // namespace treesched

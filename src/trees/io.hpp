#pragma once
// Plain-text tree serialization. Format (after optional '#' comment lines):
//
//   treesched-tree v1
//   <n>
//   <parent_0> <f_0> <n_0> <w_0>
//   ...
//   <parent_{n-1}> <f_{n-1}> <n_{n-1}> <w_{n-1}>
//
// parent is -1 for the root. Round-trip safe (works are printed with
// max_digits10 precision).

#include <iosfwd>
#include <string>

#include "core/tree.hpp"

namespace treesched {

void write_tree(std::ostream& os, const Tree& tree);
void write_tree_file(const std::string& path, const Tree& tree);

/// Throws std::runtime_error on malformed input.
Tree read_tree(std::istream& is);
Tree read_tree_file(const std::string& path);

}  // namespace treesched

#include "trees/generators.hpp"

#include <cmath>
#include <stdexcept>

namespace treesched {

namespace {
// Pebble-game weights: f=1, n=0, w=1.
constexpr MemSize kPebbleOut = 1;
constexpr MemSize kPebbleExec = 0;
constexpr double kPebbleWork = 1.0;
}  // namespace

// ---------------------------------------------------------------------------
// Figure 1 — 3-Partition gadget.
// Layout: node 0 = root; nodes 1..3m = N_i; then, for i = 1..3m in order,
// the 3m*a_i leaves of N_i.
// ---------------------------------------------------------------------------

Tree threepartition_gadget(const ThreePartitionInstance& inst) {
  const auto m = inst.m();
  if (m <= 0 || static_cast<std::int64_t>(inst.a.size()) != 3 * m) {
    throw std::invalid_argument("threepartition_gadget: |a| must be 3m");
  }
  TreeBuilder b;
  b.add_node(kNoNode, kPebbleOut, kPebbleExec, kPebbleWork);  // root
  for (std::int64_t i = 0; i < 3 * m; ++i) {
    b.add_node(0, kPebbleOut, kPebbleExec, kPebbleWork);  // N_i -> id i+1
  }
  for (std::int64_t i = 0; i < 3 * m; ++i) {
    const std::int64_t leaves = 3 * m * inst.a[i];
    for (std::int64_t l = 0; l < leaves; ++l) {
      b.add_node(static_cast<NodeId>(i + 1), kPebbleOut, kPebbleExec,
                 kPebbleWork);
    }
  }
  return std::move(b).build();
}

ThreePartitionBounds threepartition_bounds(
    const ThreePartitionInstance& inst) {
  const auto m = inst.m();
  ThreePartitionBounds bd{};
  bd.processors = static_cast<int>(3 * m * inst.B);
  bd.makespan_bound = static_cast<double>(2 * m + 1);
  bd.memory_bound = static_cast<MemSize>(3 * m * inst.B + 3 * m);
  return bd;
}

Schedule threepartition_schedule(
    const Tree& tree, const ThreePartitionInstance& inst,
    const std::vector<std::array<int, 3>>& groups) {
  const auto m = inst.m();
  if (static_cast<std::int64_t>(groups.size()) != m) {
    throw std::invalid_argument("threepartition_schedule: need m groups");
  }
  // First leaf id of N_i (ids are laid out contiguously per N_i).
  std::vector<NodeId> leaf_base(static_cast<std::size_t>(3 * m));
  NodeId cursor = static_cast<NodeId>(1 + 3 * m);
  for (std::int64_t i = 0; i < 3 * m; ++i) {
    leaf_base[i] = cursor;
    cursor += static_cast<NodeId>(3 * m * inst.a[i]);
  }
  Schedule s(tree.size());
  for (std::int64_t g = 0; g < m; ++g) {
    const double t_leaves = static_cast<double>(2 * g);      // step 2g+1
    const double t_inner = static_cast<double>(2 * g + 1);   // step 2g+2
    int proc = 0;
    for (int idx : groups[g]) {
      const std::int64_t leaves = 3 * m * inst.a[idx];
      for (std::int64_t l = 0; l < leaves; ++l) {
        const NodeId leaf = leaf_base[idx] + static_cast<NodeId>(l);
        s.start[leaf] = t_leaves;
        s.proc[leaf] = proc++;
      }
    }
    int iproc = 0;
    for (int idx : groups[g]) {
      const NodeId inner = static_cast<NodeId>(idx + 1);
      s.start[inner] = t_inner;
      s.proc[inner] = iproc++;
    }
  }
  s.start[0] = static_cast<double>(2 * m);  // root, step 2m+1
  s.proc[0] = 0;
  return s;
}

// ---------------------------------------------------------------------------
// Figure 2 — inapproximability tree.
// Per-subtree layout (0-based offsets within the subtree block):
//   cp_1..cp_{delta-1}, then for j = 1..delta-1: d_j followed by its
//   (delta-j+1) leaves, then b_delta, b_{delta+1}.
// ---------------------------------------------------------------------------

namespace {

struct InapproxLayout {
  int delta;
  NodeId per_subtree;  ///< nodes per subtree

  explicit InapproxLayout(int d)
      : delta(d),
        per_subtree(static_cast<NodeId>((d * d + 5 * d - 2) / 2)) {}

  [[nodiscard]] NodeId base(int subtree) const {
    return 1 + static_cast<NodeId>(subtree) * per_subtree;
  }
  [[nodiscard]] NodeId cp(int subtree, int j) const {  // j in 1..delta-1
    return base(subtree) + static_cast<NodeId>(j - 1);
  }
  [[nodiscard]] NodeId d_block(int subtree, int j) const {  // d_j id
    // After the delta-1 cp nodes, blocks of (1 + (delta - jj + 1)) for
    // jj = 1..j-1.
    NodeId off = static_cast<NodeId>(delta - 1);
    for (int jj = 1; jj < j; ++jj) {
      off += static_cast<NodeId>(1 + (delta - jj + 1));
    }
    return base(subtree) + off;
  }
  [[nodiscard]] NodeId leaf(int subtree, int j, int l) const {  // l >= 0
    return d_block(subtree, j) + 1 + static_cast<NodeId>(l);
  }
  [[nodiscard]] NodeId b_delta(int subtree) const {
    return base(subtree) + per_subtree - 2;
  }
  [[nodiscard]] NodeId b_delta1(int subtree) const {
    return base(subtree) + per_subtree - 1;
  }
};

}  // namespace

Tree inapprox_tree(int n_subtrees, int delta) {
  if (n_subtrees < 1 || delta < 2) {
    throw std::invalid_argument("inapprox_tree: need n >= 1, delta >= 2");
  }
  const InapproxLayout lay(delta);
  TreeBuilder b;
  b.add_node(kNoNode, kPebbleOut, kPebbleExec, kPebbleWork);  // root = 0
  for (int i = 0; i < n_subtrees; ++i) {
    // cp chain
    for (int j = 1; j <= delta - 1; ++j) {
      const NodeId parent = j == 1 ? 0 : lay.cp(i, j - 1);
      const NodeId id =
          b.add_node(parent, kPebbleOut, kPebbleExec, kPebbleWork);
      if (id != lay.cp(i, j)) throw std::logic_error("inapprox layout cp");
    }
    // d_j + leaves
    for (int j = 1; j <= delta - 1; ++j) {
      const NodeId id =
          b.add_node(lay.cp(i, j), kPebbleOut, kPebbleExec, kPebbleWork);
      if (id != lay.d_block(i, j)) throw std::logic_error("inapprox layout d");
      const int nleaves = delta - j + 1;
      for (int l = 0; l < nleaves; ++l) {
        b.add_node(id, kPebbleOut, kPebbleExec, kPebbleWork);
      }
    }
    // b_delta (child of cp_{delta-1}), b_{delta+1} (child of b_delta)
    const NodeId bd = b.add_node(lay.cp(i, delta - 1), kPebbleOut,
                                 kPebbleExec, kPebbleWork);
    if (bd != lay.b_delta(i)) throw std::logic_error("inapprox layout b");
    b.add_node(bd, kPebbleOut, kPebbleExec, kPebbleWork);
  }
  return std::move(b).build();
}

Schedule inapprox_sequential_schedule(const Tree& tree, int n_subtrees,
                                      int delta) {
  const InapproxLayout lay(delta);
  std::vector<NodeId> order;
  order.reserve(tree.size());
  for (int i = 0; i < n_subtrees; ++i) {
    for (int j = 1; j <= delta - 1; ++j) {
      const int nleaves = delta - j + 1;
      for (int l = 0; l < nleaves; ++l) order.push_back(lay.leaf(i, j, l));
      order.push_back(lay.d_block(i, j));
    }
    order.push_back(lay.b_delta1(i));
    order.push_back(lay.b_delta(i));
    for (int j = delta - 1; j >= 1; --j) order.push_back(lay.cp(i, j));
  }
  order.push_back(0);  // root
  if (static_cast<NodeId>(order.size()) != tree.size()) {
    throw std::logic_error("inapprox_sequential_schedule: bad order size");
  }
  return sequential_schedule(tree, order);
}

// ---------------------------------------------------------------------------
// Figure 3 — fork.
// ---------------------------------------------------------------------------

Tree fork_tree(int num_leaves) {
  TreeBuilder b;
  b.add_node(kNoNode, kPebbleOut, kPebbleExec, kPebbleWork);
  for (int i = 0; i < num_leaves; ++i) {
    b.add_node(0, kPebbleOut, kPebbleExec, kPebbleWork);
  }
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// Figure 4 — ParInnerFirst adversary.
// Spine s_1..s_{2k} (s_{2k} = root, s_1 = deepest leaf); every odd spine
// position 3, 5, ..., 2k-1 is a join with p-1 extra leaf children.
// ---------------------------------------------------------------------------

Tree innerfirst_adversary_tree(int k, int p) {
  if (k < 2 || p < 2) {
    throw std::invalid_argument("innerfirst_adversary_tree: k >= 2, p >= 2");
  }
  TreeBuilder b;
  // Build the spine top-down: root first.
  std::vector<NodeId> spine(static_cast<std::size_t>(2 * k));
  for (int pos = 2 * k; pos >= 1; --pos) {
    const NodeId parent = pos == 2 * k ? kNoNode : spine[pos];  // s_{pos+1}
    spine[pos - 1] =
        b.add_node(parent, kPebbleOut, kPebbleExec, kPebbleWork);
  }
  for (int pos = 3; pos <= 2 * k - 1; pos += 2) {
    for (int l = 0; l < p - 1; ++l) {
      b.add_node(spine[pos - 1], kPebbleOut, kPebbleExec, kPebbleWork);
    }
  }
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// Figure 5 — ParDeepestFirst adversary.
// Spine s_1..s_c (s_c = root); s_j carries a chain of length len + (j - 1)
// so that every chain leaf sits at the same depth.
// ---------------------------------------------------------------------------

Tree chains_tree(int chains, int len) {
  if (chains < 1 || len < 1) {
    throw std::invalid_argument("chains_tree: chains >= 1, len >= 1");
  }
  TreeBuilder b;
  std::vector<NodeId> spine(static_cast<std::size_t>(chains));
  for (int j = chains; j >= 1; --j) {
    const NodeId parent = j == chains ? kNoNode : spine[j];
    spine[j - 1] = b.add_node(parent, kPebbleOut, kPebbleExec, kPebbleWork);
  }
  for (int j = 1; j <= chains; ++j) {
    const int chain_len = len + (j - 1);
    NodeId parent = spine[j - 1];
    for (int l = 0; l < chain_len; ++l) {
      parent = b.add_node(parent, kPebbleOut, kPebbleExec, kPebbleWork);
    }
  }
  return std::move(b).build();
}

// ---------------------------------------------------------------------------
// Random trees.
// ---------------------------------------------------------------------------

Tree random_tree(const RandomTreeParams& params, Rng& rng) {
  if (params.n < 1) throw std::invalid_argument("random_tree: n >= 1");
  if (params.max_output < params.min_output ||
      params.max_exec < params.min_exec ||
      params.max_work < params.min_work) {
    throw std::invalid_argument("random_tree: empty weight range");
  }
  TreeBuilder b;
  for (NodeId i = 0; i < params.n; ++i) {
    NodeId parent = kNoNode;
    if (i > 0) {
      if (params.depth_bias <= 0.0) {
        parent = static_cast<NodeId>(rng.uniform(static_cast<std::uint64_t>(i)));
      } else {
        const double u = rng.uniform01();
        const double frac = std::pow(u, 1.0 / (1.0 + params.depth_bias));
        parent = static_cast<NodeId>(
            std::min<std::uint64_t>(static_cast<std::uint64_t>(i) - 1,
                                    static_cast<std::uint64_t>(
                                        frac * static_cast<double>(i))));
      }
    }
    const MemSize out =
        params.min_output +
        rng.uniform(params.max_output - params.min_output + 1);
    const MemSize ex =
        params.min_exec + rng.uniform(params.max_exec - params.min_exec + 1);
    const double wk = params.min_work == params.max_work
                          ? params.min_work
                          : rng.uniform_real(params.min_work, params.max_work);
    b.add_node(parent, out, ex, wk);
  }
  return std::move(b).build();
}

Tree random_pebble_tree(NodeId n, Rng& rng, double depth_bias) {
  RandomTreeParams params;
  params.n = n;
  params.depth_bias = depth_bias;
  return random_tree(params, rng);
}

std::vector<Tree> all_tree_shapes(NodeId n) {
  if (n < 1 || n > 10) {
    throw std::invalid_argument("all_tree_shapes: 1 <= n <= 10");
  }
  std::vector<Tree> trees;
  // parent[i] in [0, i); enumerate mixed-radix counter.
  std::vector<NodeId> choice(static_cast<std::size_t>(n), 0);
  for (;;) {
    TreeBuilder b;
    b.add_node(kNoNode, kPebbleOut, kPebbleExec, kPebbleWork);
    for (NodeId i = 1; i < n; ++i) {
      b.add_node(choice[i], kPebbleOut, kPebbleExec, kPebbleWork);
    }
    trees.push_back(std::move(b).build());
    // increment counter
    NodeId pos = n - 1;
    while (pos >= 1) {
      if (choice[pos] + 1 < pos) {
        ++choice[pos];
        break;
      }
      choice[pos] = 0;
      --pos;
    }
    if (pos == 0) break;
  }
  return trees;
}

}  // namespace treesched

#pragma once
// Tree instance generators: every tree family appearing in the paper's
// proofs and discussion (Figures 1-5), plus random trees for property tests
// and campaigns.

#include <array>
#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "core/tree.hpp"
#include "util/random.hpp"

namespace treesched {

// ---------------------------------------------------------------------------
// Figure 1 — NP-completeness gadget (Theorem 1).
// Instance of 3-Partition: 3m integers a_i summing to m*B, B/4 < a_i < B/2.
// Tree: root with 3m children N_i; N_i has 3m*a_i leaf children.
// Pebble-game weights (f=1, n=0, w=1).
// ---------------------------------------------------------------------------
struct ThreePartitionInstance {
  std::vector<std::int64_t> a;  ///< 3m values
  std::int64_t B = 0;           ///< target subset sum

  [[nodiscard]] std::int64_t m() const {
    return static_cast<std::int64_t>(a.size()) / 3;
  }
};

/// Builds the reduction tree of Figure 1. Node 0 is the root, nodes
/// 1..3m are the N_i (in the order of `inst.a`), leaves follow.
Tree threepartition_gadget(const ThreePartitionInstance& inst);

/// The proof's constructive schedule for a YES instance, given the solution
/// as m groups of 3 indices into `inst.a` (each group summing to B).
/// Uses p = 3mB processors; meets makespan 2m+1 and peak 3mB + 3m.
Schedule threepartition_schedule(
    const Tree& tree, const ThreePartitionInstance& inst,
    const std::vector<std::array<int, 3>>& groups);

/// Reduction parameters from Theorem 1, for assertions in tests/benches.
struct ThreePartitionBounds {
  int processors;
  double makespan_bound;   ///< B_Cmax = 2m + 1
  MemSize memory_bound;    ///< B_mem = 3mB + 3m
};
ThreePartitionBounds threepartition_bounds(const ThreePartitionInstance& inst);

// ---------------------------------------------------------------------------
// Figure 2 — inapproximability tree (Theorem 2).
// n identical subtrees under the root; each subtree: a chain of cp nodes
// cp_1..cp_{delta-1} with, hanging off each cp_j, a node d_j that has
// delta-j+1 leaf children; the chain ends with b_delta, b_{delta+1}.
// Pebble-game weights. Optimal makespan = delta + 2 (given enough
// processors); optimal sequential memory = n + delta.
// ---------------------------------------------------------------------------
Tree inapprox_tree(int n_subtrees, int delta);

/// The proof's memory-optimal sequential schedule (peak n + delta).
Schedule inapprox_sequential_schedule(const Tree& tree, int n_subtrees,
                                      int delta);

// ---------------------------------------------------------------------------
// Figure 3 — fork: root with p*k unit leaves. ParSubtrees' makespan
// worst case (ratio -> p as k grows).
// ---------------------------------------------------------------------------
Tree fork_tree(int num_leaves);

// ---------------------------------------------------------------------------
// Figure 4 — ParInnerFirst memory adversary: a spine of k join nodes; each
// spine node has p-1 extra leaf children; the spine bottom is a leaf.
// Optimal sequential memory is p + 1; ParInnerFirst with p processors
// needs ~ (k-1)(p-1) + ... (unbounded in k).
// ---------------------------------------------------------------------------
Tree innerfirst_adversary_tree(int k, int p);

// ---------------------------------------------------------------------------
// Figure 5 — ParDeepestFirst memory adversary: `chains` chains of length
// `len` joined by a binary-ish reduction to the root; all leaves at equal
// (deepest) depth. Optimal sequential memory is 3 in the pebble game;
// ParDeepestFirst's grows with the number of chains.
// ---------------------------------------------------------------------------
Tree chains_tree(int chains, int len);

// ---------------------------------------------------------------------------
// Random trees.
// ---------------------------------------------------------------------------
struct RandomTreeParams {
  NodeId n = 100;
  /// "Attachment bias": 0 = uniform random parent (shallow, bushy);
  /// larger values bias attachment towards recent nodes (deeper trees).
  double depth_bias = 0.0;
  // Weight ranges (inclusive). Defaults give the pebble-game model.
  MemSize min_output = 1, max_output = 1;
  MemSize min_exec = 0, max_exec = 0;
  double min_work = 1.0, max_work = 1.0;
};

/// Uniform-attachment random tree with the given weight distributions.
Tree random_tree(const RandomTreeParams& params, Rng& rng);

/// Pebble-game random tree (f=1, n=0, w=1) with n nodes.
Tree random_pebble_tree(NodeId n, Rng& rng, double depth_bias = 0.0);

/// Exhaustive enumeration of all rooted-tree shapes on n nodes (as parent
/// arrays with parent[i] < i). Pebble-game weights. For n <= 9 in tests.
std::vector<Tree> all_tree_shapes(NodeId n);

}  // namespace treesched

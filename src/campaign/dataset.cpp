#include "campaign/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>

#include "spmatrix/amalgamation.hpp"
#include "spmatrix/assembly.hpp"
#include "spmatrix/etree.hpp"
#include "spmatrix/ordering.hpp"
#include "spmatrix/sparse.hpp"
#include "spmatrix/symbolic.hpp"
#include "trees/generators.hpp"
#include "trees/io.hpp"
#include "util/cli.hpp"
#include "util/confine.hpp"

namespace treesched {

namespace {

Tree pattern_to_assembly(const SparsePattern& a, const Ordering& perm,
                         std::int64_t z) {
  const SymbolicResult sym = symbolic_cholesky(a, perm);
  const AssemblyTree at = amalgamate(sym, z);
  return assembly_to_task_tree(at);
}

}  // namespace

Tree grid2d_assembly_tree(int nx, int ny, std::int64_t z) {
  const SparsePattern a = grid2d_pattern(nx, ny);
  return pattern_to_assembly(a, nested_dissection_2d(nx, ny), z);
}

Tree grid3d_assembly_tree(int nx, int ny, int nz, std::int64_t z) {
  const SparsePattern a = grid3d_pattern(nx, ny, nz);
  return pattern_to_assembly(a, nested_dissection_3d(nx, ny, nz), z);
}

Tree random_md_assembly_tree(int n, double avg_degree, std::int64_t z,
                             Rng& rng) {
  const SparsePattern a = random_pattern(n, avg_degree, rng);
  return pattern_to_assembly(a, minimum_degree_ordering(a), z);
}

Tree synthetic_assembly_tree(NodeId n, double depth_bias, Rng& rng) {
  // Random topology, then assembly-style weights: each node gets
  // eta in [1, 16] and mu = 1 + round(c * sqrt(subtree node count)), the
  // front-size scaling of 2D nested dissection.
  RandomTreeParams params;
  params.n = n;
  params.depth_bias = depth_bias;
  Tree shape = random_tree(params, rng);
  const std::vector<NodeId> post = shape.natural_postorder();
  std::vector<std::int64_t> subtree_nodes(static_cast<std::size_t>(n), 0);
  for (NodeId i : post) {
    subtree_nodes[i] = 1;
    for (NodeId c : shape.children(i)) subtree_nodes[i] += subtree_nodes[c];
  }
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  std::vector<MemSize> out(static_cast<std::size_t>(n));
  std::vector<MemSize> exec(static_cast<std::size_t>(n));
  std::vector<double> work(static_cast<std::size_t>(n));
  const double scale = rng.uniform_real(0.5, 2.0);
  for (NodeId i = 0; i < n; ++i) {
    parent[i] = shape.parent(i);
    const auto eta = static_cast<std::int64_t>(1 + rng.uniform(16));
    auto mu = static_cast<std::int64_t>(
        1.0 + scale * std::sqrt(static_cast<double>(subtree_nodes[i])));
    mu = std::max<std::int64_t>(mu, 1);
    const AssemblyWeights w = assembly_weights(eta, mu);
    // The root of a factorization has an empty contribution block.
    out[i] = parent[i] == kNoNode ? 0 : w.output_size;
    exec[i] = w.exec_size;
    work[i] = w.work;
  }
  return Tree(std::move(parent), std::move(out), std::move(exec),
              std::move(work));
}

std::vector<DatasetEntry> build_dataset(const DatasetParams& params) {
  std::vector<DatasetEntry> out;
  Rng rng(params.seed);
  const double s = std::sqrt(std::max(0.05, params.scale));
  auto sz = [&](int base) {
    return std::max(4, static_cast<int>(std::lround(base * s)));
  };

  auto add = [&](std::string name, Tree tree) {
    // Tiny scales can round different base sizes to the same dimensions;
    // keep names unique regardless.
    for (const auto& e : out) {
      if (e.name == name) {
        name += "+";
      }
    }
    out.push_back({std::move(name), std::move(tree)});
  };

  // 2D grids + nested dissection (MeTiS analogue).
  for (int base : {24, 40, 64, 96}) {
    const int nx = sz(base);
    for (std::int64_t z : params.amalgamations) {
      std::ostringstream name;
      name << "grid2d-" << nx << "x" << nx << "-nd-z" << z;
      add(name.str(), grid2d_assembly_tree(nx, nx, z));
    }
  }
  // Anisotropic 2D grid.
  {
    const int nx = sz(120), ny = sz(24);
    for (std::int64_t z : params.amalgamations) {
      std::ostringstream name;
      name << "grid2d-" << nx << "x" << ny << "-nd-z" << z;
      add(name.str(), grid2d_assembly_tree(nx, ny, z));
    }
  }
  // 3D grids + nested dissection.
  for (int base : {8, 12, 16}) {
    const int nx = sz(base);
    for (std::int64_t z : params.amalgamations) {
      std::ostringstream name;
      name << "grid3d-" << nx << "^3-nd-z" << z;
      add(name.str(), grid3d_assembly_tree(nx, nx, nx, z));
    }
  }
  // Random symmetric matrices + minimum degree (amd analogue).
  for (int base : {300, 600, 1200}) {
    const int n = sz(base);
    for (double deg : {3.0, 6.0}) {
      for (std::int64_t z : params.amalgamations) {
        std::ostringstream name;
        name << "randmat-" << n << "-deg" << deg << "-md-z" << z;
        add(name.str(), random_md_assembly_tree(n, deg, z, rng));
      }
    }
  }
  // Direct synthetic assembly trees (largest sizes).
  for (int base : {2000, 8000, 20000}) {
    const auto n = static_cast<NodeId>(sz(base));
    for (double bias : {0.0, 2.0, 6.0}) {
      std::ostringstream name;
      name << "synth-" << n << "-bias" << bias;
      add(name.str(), synthetic_assembly_tree(n, bias, rng));
    }
  }
  return out;
}


namespace {

/// Parses one numeric field of a tree spec as a non-negative decimal
/// integer. Rejects negative values (no sign accepted at all) and turns
/// std::out_of_range's useless what() into a message naming the field —
/// the same contract request_line.cpp's parse_uint_field gives protocol
/// fields. `max_value` 0 means "only the 64-bit range bounds it".
std::uint64_t parse_spec_uint(const std::string& spec, const char* field,
                              const std::string& value,
                              std::uint64_t max_value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("tree spec \"" + spec + "\": " + field +
                                " must be a non-negative integer, got \"" +
                                value + "\"");
  }
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("tree spec \"" + spec + "\": " + field +
                                " value \"" + value +
                                "\" does not fit in 64 bits");
  }
  if (max_value != 0 && parsed > max_value) {
    throw std::invalid_argument(
        "tree spec \"" + spec + "\": " + field + " value " + value +
        " exceeds this front-end's limit of " + std::to_string(max_value));
  }
  return parsed;
}

}  // namespace

Tree tree_from_spec(const std::string& spec, const TreeSpecOptions& opts) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("tree spec \"" + spec +
                                "\" (want kind:args, e.g. random:500:1)");
  }
  const std::string kind = spec.substr(0, colon);
  // Specs use ':' separators; reuse split_csv by swapping them in. File
  // paths with ':' are not supported (rename the file).
  std::string rest = spec.substr(colon + 1);
  for (char& c : rest) {
    if (c == ':') c = ',';
  }
  const std::vector<std::string> args = split_csv(rest);
  // Generator node counts must fit NodeId and respect the caller's cap.
  const std::uint64_t node_cap =
      opts.max_nodes != 0
          ? std::min<std::uint64_t>(opts.max_nodes,
                                    std::numeric_limits<NodeId>::max())
          : std::numeric_limits<NodeId>::max();
  if (kind == "file") {
    if (args.size() != 1) {
      throw std::invalid_argument("tree spec file:<path>");
    }
    if (!opts.allow_file) {
      throw std::invalid_argument(
          "file: tree specs are disabled on this front-end (start the "
          "server with --tree-dir DIR to allow them)");
    }
    std::string path = args[0];
    if (!opts.file_dir.empty() &&
        !confine_relative_path(opts.file_dir, args[0], path)) {
      throw std::invalid_argument(
          "file: tree spec path must be a plain relative name inside the "
          "server's tree directory (no absolute paths, no \".\" or \"..\")");
    }
    if (opts.max_file_bytes != 0) {
      // Byte budget enforced against the on-disk size before the first
      // read: max_nodes bounds the parsed tree, this bounds the read
      // itself. A stat error falls through to read_tree_file, whose
      // open failure carries the better message.
      std::error_code ec;
      const std::uintmax_t size = std::filesystem::file_size(path, ec);
      if (!ec && size > opts.max_file_bytes) {
        throw std::invalid_argument(
            "tree spec \"" + spec + "\": file is " + std::to_string(size) +
            " bytes, over this front-end's " +
            std::to_string(opts.max_file_bytes) + "-byte limit");
      }
    }
    return read_tree_file(path);
  }
  if (kind == "random") {
    if (args.size() != 2) {
      throw std::invalid_argument("tree spec random:<n>:<seed>");
    }
    Rng rng(parse_spec_uint(spec, "seed", args[1], 0));
    RandomTreeParams params;
    params.n = static_cast<NodeId>(parse_spec_uint(spec, "n", args[0],
                                                   node_cap));
    params.max_output = 100;
    params.max_exec = 20;
    params.min_work = 1.0;
    params.max_work = 50.0;
    return random_tree(params, rng);
  }
  if (kind == "grid") {
    if (args.size() != 2) {
      throw std::invalid_argument("tree spec grid:<nx>:<z>");
    }
    // A grid spec allocates ~nx*nx matrix rows before amalgamation, so
    // the node cap bounds nx*nx (and nx*nx must itself fit an int).
    const auto grid_cap = static_cast<std::uint64_t>(std::floor(
        std::sqrt(static_cast<double>(
            std::min<std::uint64_t>(node_cap,
                                    std::numeric_limits<int>::max())))));
    const int nx =
        static_cast<int>(parse_spec_uint(spec, "nx", args[0], grid_cap));
    const auto z = static_cast<std::int64_t>(parse_spec_uint(
        spec, "z", args[1], std::numeric_limits<std::int64_t>::max()));
    return grid2d_assembly_tree(nx, nx, z);
  }
  if (kind == "synthetic") {
    if (args.size() != 2) {
      throw std::invalid_argument("tree spec synthetic:<n>:<seed>");
    }
    Rng rng(parse_spec_uint(spec, "seed", args[1], 0));
    return synthetic_assembly_tree(
        static_cast<NodeId>(parse_spec_uint(spec, "n", args[0], node_cap)),
        2.0, rng);
  }
  throw std::invalid_argument("unknown tree spec kind \"" + kind +
                              "\" (file|random|grid|synthetic)");
}

Tree tree_from_spec(const std::string& spec) {
  return tree_from_spec(spec, TreeSpecOptions{});
}

}  // namespace treesched

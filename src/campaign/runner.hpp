#pragma once
// Campaign runner: executes a roster of registered scheduling algorithms
// on every (tree, p) scenario, validates and scores the schedules, and
// collects per-scenario records — the raw material behind Table 1 and
// Figures 6-8.
//
// Algorithms are selected by SchedulerRegistry name; the default roster is
// default_campaign_algorithms() (paper heuristics + memory-capped
// schedulers + sequential baselines, oracles excluded).

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/dataset.hpp"
#include "core/schedule.hpp"
#include "core/tree.hpp"
#include "sched/registry.hpp"
#include "service/service.hpp"

namespace treesched {

/// One scenario = (tree, p); stores each algorithm's (makespan, memory)
/// plus the lower bounds, mirroring one dot per algorithm in Figure 6.
struct ScenarioRecord {
  std::string tree_name;
  NodeId tree_size = 0;
  int p = 0;
  double lb_makespan = 0.0;        ///< max(W/p, critical path)
  MemSize lb_memory = 0;           ///< best sequential postorder peak
  std::vector<std::string> algos;  ///< registry names, campaign order
  std::vector<double> makespan;    ///< indexed like algos
  std::vector<MemSize> memory;     ///< indexed like algos

  /// Position of `algo` in `algos`. Throws std::invalid_argument when the
  /// algorithm was not part of the campaign.
  [[nodiscard]] std::size_t index_of(const std::string& algo) const;
  [[nodiscard]] bool has(const std::string& algo) const;
};

struct CampaignParams {
  std::vector<int> processor_counts{2, 4, 8, 16, 32};
  /// SchedulerRegistry names to run; empty = default_campaign_algorithms().
  std::vector<std::string> algorithms;
  /// Validate every schedule (adds ~2x cost; on by default — the campaign
  /// doubles as an integration test).
  bool validate = true;
  /// 0 (default) = the shared pool's width, with requests routed through
  /// the service's admission queue at `priority`. A nonzero bound is a
  /// compute-parallelism promise the shared-pool queue cannot keep, so
  /// those campaigns run the synchronous path at exactly this width
  /// (identical results either way — the schedulers are deterministic).
  unsigned threads = 0;
  /// Admission class for the campaign's requests. Campaigns are sweeps,
  /// not probes: they default to kBulk so a service shared with
  /// interactive clients keeps answering those first.
  Priority priority = Priority::kBulk;
};

/// Runs every selected algorithm on every dataset entry and processor
/// count through a private SchedulingService — by default submitting
/// through the service's admission queue at params.priority (kBulk, so
/// interactive probes against a shared service overtake the sweep; see
/// CampaignParams::threads for the explicit-bound exception). Scenario
/// order is deterministic and independent of thread count, and the
/// records are bit-identical to direct SchedulerRegistry calls — the
/// service only amortizes: sequential-only algorithms are computed once
/// per tree and answered from cache across the whole processor sweep.
/// Throws std::invalid_argument up front on unknown algorithm names.
std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params);

/// Same, but through a caller-owned service: repeated campaigns (ablation
/// sweeps, report reruns) share its instance store and result cache.
std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params,
    SchedulingService& service);

}  // namespace treesched

#pragma once
// Campaign runner: executes every heuristic on every (tree, p) scenario,
// validates and scores the schedules, and collects per-scenario records —
// the raw material behind Table 1 and Figures 6-8.

#include <string>
#include <vector>

#include "campaign/dataset.hpp"
#include "core/schedule.hpp"
#include "core/tree.hpp"

namespace treesched {

enum class Heuristic {
  kParSubtrees,
  kParSubtreesOptim,
  kParInnerFirst,
  kParDeepestFirst,
};

/// The four heuristics, in the paper's Table 1 order.
const std::vector<Heuristic>& all_heuristics();

/// Display name matching the paper ("ParSubtrees", ...).
std::string heuristic_name(Heuristic h);

/// Dispatches to the heuristic implementation.
Schedule run_heuristic(const Tree& tree, int p, Heuristic h);

/// One scenario = (tree, p); stores each heuristic's (makespan, memory)
/// plus the lower bounds, mirroring one dot per heuristic in Figure 6.
struct ScenarioRecord {
  std::string tree_name;
  NodeId tree_size = 0;
  int p = 0;
  double lb_makespan = 0.0;      ///< max(W/p, critical path)
  MemSize lb_memory = 0;         ///< best sequential postorder peak
  std::vector<double> makespan;  ///< indexed like all_heuristics()
  std::vector<MemSize> memory;
};

struct CampaignParams {
  std::vector<int> processor_counts{2, 4, 8, 16, 32};
  /// Validate every schedule (adds ~2x cost; on by default — the campaign
  /// doubles as an integration test).
  bool validate = true;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

/// Runs every heuristic on every dataset entry and processor count.
/// Scenario order is deterministic and independent of thread count.
std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params);

}  // namespace treesched

#include "campaign/runner.hpp"

#include <stdexcept>
#include <utility>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "sequential/postorder.hpp"
#include "util/parallel.hpp"

namespace treesched {

std::size_t ScenarioRecord::index_of(const std::string& algo) const {
  for (std::size_t k = 0; k < algos.size(); ++k) {
    if (algos[k] == algo) return k;
  }
  throw std::invalid_argument("ScenarioRecord: algorithm \"" + algo +
                              "\" not in this campaign");
}

bool ScenarioRecord::has(const std::string& algo) const {
  for (const std::string& a : algos) {
    if (a == algo) return true;
  }
  return false;
}

std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params) {
  const std::vector<std::string> algos = params.algorithms.empty()
                                             ? default_campaign_algorithms()
                                             : params.algorithms;
  // Resolve all names up front: unknown names fail before any work, and
  // the (stateless, thread-safe) instances are shared across workers.
  std::vector<SchedulerPtr> schedulers;
  schedulers.reserve(algos.size());
  for (const std::string& name : algos) {
    schedulers.push_back(SchedulerRegistry::instance().create(name));
  }

  std::vector<ScenarioRecord> records(dataset.size() *
                                      params.processor_counts.size());
  parallel_for(
      records.size(),
      [&](std::size_t idx) {
        const std::size_t ti = idx / params.processor_counts.size();
        const std::size_t pi = idx % params.processor_counts.size();
        const DatasetEntry& entry = dataset[ti];
        const int p = params.processor_counts[pi];
        ScenarioRecord rec;
        rec.tree_name = entry.name;
        rec.tree_size = entry.tree.size();
        rec.p = p;
        rec.lb_makespan = makespan_lower_bound(entry.tree, p);
        rec.lb_memory = best_postorder_memory(entry.tree);
        rec.algos = algos;
        for (std::size_t k = 0; k < schedulers.size(); ++k) {
          const Schedule s =
              schedulers[k]->schedule(entry.tree, Resources{p, 0});
          if (params.validate) {
            const ValidationResult v = validate_schedule(entry.tree, s, p);
            if (!v.ok) {
              throw std::logic_error("campaign: invalid schedule from " +
                                     algos[k] + " on " + entry.name + ": " +
                                     v.error);
            }
          }
          const SimulationResult sim = simulate(entry.tree, s);
          rec.makespan.push_back(sim.makespan);
          rec.memory.push_back(sim.peak_memory);
        }
        records[idx] = std::move(rec);
      },
      params.threads);
  return records;
}

}  // namespace treesched

#include "campaign/runner.hpp"

#include <stdexcept>
#include <utility>

#include "core/lower_bounds.hpp"
#include "sequential/postorder.hpp"
#include "util/parallel.hpp"

namespace treesched {

std::size_t ScenarioRecord::index_of(const std::string& algo) const {
  for (std::size_t k = 0; k < algos.size(); ++k) {
    if (algos[k] == algo) return k;
  }
  throw std::invalid_argument("ScenarioRecord: algorithm \"" + algo +
                              "\" not in this campaign");
}

bool ScenarioRecord::has(const std::string& algo) const {
  for (const std::string& a : algos) {
    if (a == algo) return true;
  }
  return false;
}

std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params) {
  SchedulingService service;
  return run_campaign(dataset, params, service);
}

std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params,
    SchedulingService& service) {
  const std::vector<std::string> algos = params.algorithms.empty()
                                             ? default_campaign_algorithms()
                                             : params.algorithms;
  // Resolve all names up front: unknown names fail before any work.
  for (const std::string& name : algos) {
    (void)SchedulerRegistry::instance().create(name);
  }
  // Intern every tree once; scenarios share the immutable instances.
  std::vector<TreeHandle> handles;
  handles.reserve(dataset.size());
  for (const DatasetEntry& entry : dataset) {
    handles.push_back(service.intern(entry.tree));
  }
  // The memory lower bound is p-invariant: compute it once per tree
  // instead of once per (tree, p) scenario.
  std::vector<MemSize> lb_memory(dataset.size());
  parallel_for(
      dataset.size(),
      [&](std::size_t ti) {
        lb_memory[ti] = best_postorder_memory(dataset[ti].tree);
      },
      params.threads);

  std::vector<ScenarioRecord> records(dataset.size() *
                                      params.processor_counts.size());
  parallel_for(
      records.size(),
      [&](std::size_t idx) {
        const std::size_t ti = idx / params.processor_counts.size();
        const std::size_t pi = idx % params.processor_counts.size();
        const DatasetEntry& entry = dataset[ti];
        const int p = params.processor_counts[pi];
        ScenarioRecord rec;
        rec.tree_name = entry.name;
        rec.tree_size = entry.tree.size();
        rec.p = p;
        rec.lb_makespan = makespan_lower_bound(entry.tree, p);
        rec.lb_memory = lb_memory[ti];
        rec.algos = algos;
        for (const std::string& algo : algos) {
          ScheduleRequest req;
          req.tree = handles[ti];
          req.algo = algo;
          req.p = p;
          req.want_schedule = params.validate;
          // schedule() throws the scheduler's own exception (an oracle on
          // an oversized tree, a cap below the floor, ...), which
          // parallel_for rethrows on the campaign caller — the
          // pre-service behavior.
          const ScheduleResponse resp = service.schedule(req);
          if (params.validate) {
            const ValidationResult v =
                validate_schedule(entry.tree, *resp.schedule, p);
            if (!v.ok) {
              throw std::logic_error("campaign: invalid schedule from " +
                                     algo + " on " + entry.name + ": " +
                                     v.error);
            }
          }
          rec.makespan.push_back(resp.makespan);
          rec.memory.push_back(resp.peak_memory);
        }
        records[idx] = std::move(rec);
      },
      params.threads);
  return records;
}

}  // namespace treesched

#include "campaign/runner.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "core/lower_bounds.hpp"
#include "sched/validate.hpp"
#include "sequential/postorder.hpp"
#include "util/parallel.hpp"

namespace treesched {

std::size_t ScenarioRecord::index_of(const std::string& algo) const {
  for (std::size_t k = 0; k < algos.size(); ++k) {
    if (algos[k] == algo) return k;
  }
  throw std::invalid_argument("ScenarioRecord: algorithm \"" + algo +
                              "\" not in this campaign");
}

bool ScenarioRecord::has(const std::string& algo) const {
  for (const std::string& a : algos) {
    if (a == algo) return true;
  }
  return false;
}

std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params) {
  SchedulingService service;
  return run_campaign(dataset, params, service);
}

std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params,
    SchedulingService& service) {
  const std::vector<std::string> algos = params.algorithms.empty()
                                             ? default_campaign_algorithms()
                                             : params.algorithms;
  // Resolve all names up front: unknown names fail before any work.
  for (const std::string& name : algos) {
    (void)SchedulerRegistry::instance().create(name);
  }
  // Intern every tree once; scenarios share the immutable instances.
  std::vector<TreeHandle> handles;
  handles.reserve(dataset.size());
  for (const DatasetEntry& entry : dataset) {
    handles.push_back(service.intern(entry.tree));
  }
  // The memory lower bound is p-invariant: compute it once per tree
  // instead of once per (tree, p) scenario.
  std::vector<MemSize> lb_memory(dataset.size());
  parallel_for(
      dataset.size(),
      [&](std::size_t ti) {
        lb_memory[ti] = best_postorder_memory(dataset[ti].tree);
      },
      params.threads);

  std::vector<ScenarioRecord> records(dataset.size() *
                                      params.processor_counts.size());

  // Builds records[idx] from per-algorithm responses delivered by `get`
  // (failed tickets rethrow the scheduler's own exception through
  // unwrap() — an oracle on an oversized tree, a cap below the floor,
  // ... — which lands on the campaign caller, the pre-service behavior).
  const auto build_record =
      [&](std::size_t idx,
          const std::function<ScheduleResponse(std::size_t)>& get) {
        const std::size_t ti = idx / params.processor_counts.size();
        const std::size_t pi = idx % params.processor_counts.size();
        const DatasetEntry& entry = dataset[ti];
        const int p = params.processor_counts[pi];
        ScenarioRecord rec;
        rec.tree_name = entry.name;
        rec.tree_size = entry.tree.size();
        rec.p = p;
        rec.lb_makespan = makespan_lower_bound(entry.tree, p);
        rec.lb_memory = lb_memory[ti];
        rec.algos = algos;
        for (std::size_t k = 0; k < algos.size(); ++k) {
          const ScheduleResponse resp = get(k);
          if (params.validate) {
            const ScheduleCheck v =
                check_schedule(entry.tree, *resp.schedule, p);
            if (!v.ok) {
              throw std::logic_error("campaign: invalid schedule from " +
                                     algos[k] + " on " + entry.name + ": " +
                                     v.error);
            }
          }
          rec.makespan.push_back(resp.makespan);
          rec.memory.push_back(resp.peak_memory);
        }
        records[idx] = std::move(rec);
      };

  const auto request_for = [&](std::size_t idx, std::size_t k) {
    ScheduleRequest req;
    req.tree = handles[idx / params.processor_counts.size()];
    req.algo = algos[k];
    req.p = params.processor_counts[idx % params.processor_counts.size()];
    req.want_schedule = params.validate;
    req.priority = params.priority;
    return req;
  };

  if (params.threads != 0) {
    // An explicit thread bound is a compute-parallelism promise the
    // shared-pool admission queue cannot keep (drain jobs fan out over
    // the whole pool), so honor it with worker-inline submissions:
    // exactly `threads`-wide, same results, still through submit().
    parallel_for(
        records.size(),
        [&](std::size_t idx) {
          build_record(idx, [&](std::size_t k) {
            return unwrap(service.submit(request_for(idx, k)).wait());
          });
        },
        params.threads);
    return records;
  }

  // Default: submit through the admission queue at params.priority in
  // bounded windows of scenarios — the queue keeps a real backlog (so an
  // interactive probe arriving at a shared service mid-campaign is the
  // next request any worker answers) while the schedules pinned live by
  // unconsumed responses stay bounded by the window, not the campaign
  // (with validate on, every response carries its full schedule).
  constexpr std::size_t kWindowScenarios = 32;
  for (std::size_t window = 0; window < records.size();
       window += kWindowScenarios) {
    const std::size_t end =
        std::min(records.size(), window + kWindowScenarios);
    std::vector<Ticket> tickets;
    tickets.reserve((end - window) * algos.size());
    for (std::size_t idx = window; idx < end; ++idx) {
      for (std::size_t k = 0; k < algos.size(); ++k) {
        tickets.push_back(service.submit(request_for(idx, k)));
      }
    }
    parallel_for(end - window, [&](std::size_t off) {
      build_record(window + off, [&](std::size_t k) {
        return unwrap(tickets[off * algos.size() + k].wait());
      });
    });
  }
  return records;
}

}  // namespace treesched

#include "campaign/runner.hpp"

#include <stdexcept>

#include "core/lower_bounds.hpp"
#include "core/simulator.hpp"
#include "parallel/par_deepest_first.hpp"
#include "parallel/par_inner_first.hpp"
#include "parallel/par_subtrees.hpp"
#include "sequential/postorder.hpp"
#include "util/parallel.hpp"

namespace treesched {

const std::vector<Heuristic>& all_heuristics() {
  static const std::vector<Heuristic> kAll{
      Heuristic::kParSubtrees,
      Heuristic::kParSubtreesOptim,
      Heuristic::kParInnerFirst,
      Heuristic::kParDeepestFirst,
  };
  return kAll;
}

std::string heuristic_name(Heuristic h) {
  switch (h) {
    case Heuristic::kParSubtrees:
      return "ParSubtrees";
    case Heuristic::kParSubtreesOptim:
      return "ParSubtreesOptim";
    case Heuristic::kParInnerFirst:
      return "ParInnerFirst";
    case Heuristic::kParDeepestFirst:
      return "ParDeepestFirst";
  }
  throw std::logic_error("unknown heuristic");
}

Schedule run_heuristic(const Tree& tree, int p, Heuristic h) {
  switch (h) {
    case Heuristic::kParSubtrees:
      return par_subtrees(tree, p);
    case Heuristic::kParSubtreesOptim:
      return par_subtrees_optim(tree, p);
    case Heuristic::kParInnerFirst:
      return par_inner_first(tree, p);
    case Heuristic::kParDeepestFirst:
      return par_deepest_first(tree, p);
  }
  throw std::logic_error("unknown heuristic");
}

std::vector<ScenarioRecord> run_campaign(
    const std::vector<DatasetEntry>& dataset, const CampaignParams& params) {
  std::vector<ScenarioRecord> records(dataset.size() *
                                      params.processor_counts.size());
  parallel_for(
      records.size(),
      [&](std::size_t idx) {
        const std::size_t ti = idx / params.processor_counts.size();
        const std::size_t pi = idx % params.processor_counts.size();
        const DatasetEntry& entry = dataset[ti];
        const int p = params.processor_counts[pi];
        ScenarioRecord rec;
        rec.tree_name = entry.name;
        rec.tree_size = entry.tree.size();
        rec.p = p;
        rec.lb_makespan = makespan_lower_bound(entry.tree, p);
        rec.lb_memory = best_postorder_memory(entry.tree);
        for (Heuristic h : all_heuristics()) {
          const Schedule s = run_heuristic(entry.tree, p, h);
          if (params.validate) {
            const ValidationResult v = validate_schedule(entry.tree, s, p);
            if (!v.ok) {
              throw std::logic_error("campaign: invalid schedule from " +
                                     heuristic_name(h) + " on " + entry.name +
                                     ": " + v.error);
            }
          }
          const SimulationResult sim = simulate(entry.tree, s);
          rec.makespan.push_back(sim.makespan);
          rec.memory.push_back(sim.peak_memory);
        }
        records[idx] = std::move(rec);
      },
      params.threads);
  return records;
}

}  // namespace treesched

#pragma once
// Builds the experimental data set (the paper's §6.2 at laptop scale).
//
// The paper uses 608 assembly trees from 76 UF-collection matrices ordered
// with MeTiS and amd, with relaxed amalgamation caps 1/2/4/16. We rebuild
// the same pipeline with synthetic matrices:
//  * 2D grid Laplacians + geometric nested dissection (the MeTiS analogue),
//  * 3D grid Laplacians + nested dissection,
//  * random symmetric patterns + minimum degree (the amd analogue),
//  * random symmetric patterns + reverse Cuthill-McKee,
// each put through symbolic Cholesky + relaxed amalgamation (η caps
// 1/2/4/16) + the paper's (η, µ) weight formulas, plus directly synthesized
// assembly-like trees for the largest sizes (front size ~ sqrt of subtree
// size, the 2D-ND scaling law).

#include <string>
#include <vector>

#include "core/tree.hpp"
#include "util/random.hpp"

namespace treesched {

struct DatasetEntry {
  std::string name;
  Tree tree;
};

struct DatasetParams {
  /// Multiplies all instance sizes; 1.0 keeps the default bench runtime
  /// around a minute, larger values approach the paper's tree sizes.
  double scale = 1.0;
  std::uint64_t seed = 42;
  /// Amalgamation caps applied to each matrix (the paper's variants).
  std::vector<std::int64_t> amalgamations{1, 2, 4, 16};
};

/// Builds the full campaign data set.
std::vector<DatasetEntry> build_dataset(const DatasetParams& params);

/// One assembly tree from a 2D grid + nested dissection + amalgamation z.
Tree grid2d_assembly_tree(int nx, int ny, std::int64_t z);

/// One assembly tree from a 3D grid + nested dissection + amalgamation z.
Tree grid3d_assembly_tree(int nx, int ny, int nz, std::int64_t z);

/// One assembly tree from a random pattern + minimum degree + amalgamation.
Tree random_md_assembly_tree(int n, double avg_degree, std::int64_t z,
                             Rng& rng);

/// Directly synthesized assembly-like tree with front sizes following the
/// sqrt-of-subtree scaling.
Tree synthetic_assembly_tree(NodeId n, double depth_bias, Rng& rng);

/// Limits applied to a tree spec BEFORE any allocation or filesystem
/// access happens. The defaults are fully permissive (trusted CLI
/// callers); network front-ends tighten both knobs because the spec is
/// raw client input — `random:2000000000:1` is otherwise a one-line
/// memory bomb and `file:/etc/passwd` an arbitrary file probe.
struct TreeSpecOptions {
  /// Upper bound on the node count a generator spec may request
  /// (`random:<n>`, `synthetic:<n>`, and `grid:<nx>` via nx*nx).
  /// 0 = unlimited. Node counts must always fit NodeId (int32).
  std::uint64_t max_nodes = 0;
  /// false refuses `file:` specs outright (server started without
  /// --tree-dir). When true and `file_dir` is non-empty, the path must
  /// be a plain relative name confined inside `file_dir` (absolute
  /// paths and "." / ".." components rejected). When true and
  /// `file_dir` is empty the path is used as given (CLI trust).
  bool allow_file = true;
  std::string file_dir;
  /// Upper bound on the size of a `file:` tree file, checked against
  /// the on-disk size BEFORE any byte is read — max_nodes bounds what a
  /// parsed tree may allocate, but without this a client could point
  /// the server at a multi-gigabyte file and make it read the whole
  /// thing just to fail the parse. 0 = unlimited (CLI trust).
  std::uint64_t max_file_bytes = 0;
};

/// Resolves a protocol tree spec — the `<tree-spec>` token of a request
/// line, shared by the stdin and TCP front-ends:
///   file:<path>             a treesched-tree v1 file
///   random:<n>:<seed>       random weighted tree
///   grid:<nx>:<z>           2D-grid assembly tree
///   synthetic:<n>:<seed>    assembly-like synthetic tree
/// Throws std::invalid_argument naming the offending spec (file paths
/// containing ':' are not supported — rename the file). Numeric fields
/// must be non-negative decimal integers; negative or overflowing
/// values get a descriptive invalid_argument instead of wrapping.
Tree tree_from_spec(const std::string& spec);

/// As above, with limits enforced before anything is allocated or read.
Tree tree_from_spec(const std::string& spec, const TreeSpecOptions& opts);

}  // namespace treesched

#include "campaign/report.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace treesched {

namespace {

/// The shared algorithm roster of a record set. Campaigns run every
/// algorithm on every scenario, so the first record is authoritative;
/// mixing records from campaigns with different rosters is rejected
/// rather than read out of bounds.
const std::vector<std::string>& roster(
    const std::vector<ScenarioRecord>& records) {
  static const std::vector<std::string> kEmpty;
  if (records.empty()) return kEmpty;
  for (const ScenarioRecord& rec : records) {
    if (rec.algos != records.front().algos) {
      throw std::invalid_argument(
          "report: records mix different algorithm rosters");
    }
  }
  return records.front().algos;
}

std::string norm_reference(Normalization norm) {
  return norm == Normalization::kParSubtrees ? "ParSubtrees"
                                             : "ParInnerFirst";
}

/// Name -> roster position, built once per record batch so report code
/// never rescans the roster per lookup (ScenarioRecord::index_of is a
/// linear scan). Today only the normalization reference is looked up;
/// new report paths doing per-record name lookups should go through this.
class RosterIndex {
 public:
  explicit RosterIndex(const std::vector<std::string>& algos) {
    for (std::size_t k = 0; k < algos.size(); ++k) index_.emplace(algos[k], k);
  }

  [[nodiscard]] std::size_t at(const std::string& algo) const {
    const auto it = index_.find(algo);
    if (it == index_.end()) {
      throw std::invalid_argument("ScenarioRecord: algorithm \"" + algo +
                                  "\" not in this campaign");
    }
    return it->second;
  }

 private:
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace

std::vector<Table1Row> table1(const std::vector<ScenarioRecord>& records) {
  const std::vector<std::string>& algos = roster(records);
  const std::size_t H = algos.size();
  std::vector<Table1Row> rows(H);
  for (std::size_t k = 0; k < H; ++k) rows[k].algorithm = algos[k];
  if (records.empty()) return rows;

  std::vector<std::vector<double>> mem_dev(H), ms_dev(H);
  std::vector<double> best_mem_cnt(H, 0), within5_mem_cnt(H, 0);
  std::vector<double> best_ms_cnt(H, 0), within5_ms_cnt(H, 0);

  for (const ScenarioRecord& rec : records) {
    const MemSize best_mem =
        *std::min_element(rec.memory.begin(), rec.memory.end());
    const double best_ms =
        *std::min_element(rec.makespan.begin(), rec.makespan.end());
    for (std::size_t k = 0; k < H; ++k) {
      const auto mem = static_cast<double>(rec.memory[k]);
      const double ms = rec.makespan[k];
      if (rec.memory[k] == best_mem) best_mem_cnt[k] += 1;
      if (mem <= 1.05 * static_cast<double>(best_mem)) within5_mem_cnt[k] += 1;
      if (ms == best_ms) best_ms_cnt[k] += 1;
      if (ms <= 1.05 * best_ms) within5_ms_cnt[k] += 1;
      mem_dev[k].push_back(mem / static_cast<double>(rec.lb_memory) - 1.0);
      ms_dev[k].push_back(ms / best_ms - 1.0);
    }
  }
  const auto n = static_cast<double>(records.size());
  for (std::size_t k = 0; k < H; ++k) {
    rows[k].best_memory_share = best_mem_cnt[k] / n;
    rows[k].within5_memory_share = within5_mem_cnt[k] / n;
    rows[k].avg_memory_deviation = mean(mem_dev[k]);
    rows[k].best_makespan_share = best_ms_cnt[k] / n;
    rows[k].within5_makespan_share = within5_ms_cnt[k] / n;
    rows[k].avg_makespan_deviation = mean(ms_dev[k]);
  }
  return rows;
}

std::vector<Table1Row> table1_for_p(const std::vector<ScenarioRecord>& records,
                                    int p) {
  std::vector<ScenarioRecord> filtered;
  for (const ScenarioRecord& rec : records) {
    if (rec.p == p) filtered.push_back(rec);
  }
  return table1(filtered);
}

void print_table1(std::ostream& os, const std::vector<Table1Row>& rows) {
  os << "Table 1: shares of best (or near-best) performance and average "
        "deviations\n";
  os << std::left << std::setw(18) << "Algorithm" << std::right
     << std::setw(12) << "BestMem" << std::setw(12) << "Mem<=5%"
     << std::setw(14) << "AvgDevMem" << std::setw(12) << "BestMs"
     << std::setw(12) << "Ms<=5%" << std::setw(14) << "AvgDevMs" << "\n";
  for (const Table1Row& r : rows) {
    os << std::left << std::setw(18) << r.algorithm << std::right
       << std::setw(12) << fmt_pct(r.best_memory_share) << std::setw(12)
       << fmt_pct(r.within5_memory_share) << std::setw(14)
       << fmt_pct(r.avg_memory_deviation) << std::setw(12)
       << fmt_pct(r.best_makespan_share) << std::setw(12)
       << fmt_pct(r.within5_makespan_share) << std::setw(14)
       << fmt_pct(r.avg_makespan_deviation) << "\n";
  }
}

std::vector<FigureSeries> figure_series(
    const std::vector<ScenarioRecord>& records, Normalization norm) {
  const std::vector<std::string>& algos = roster(records);
  const std::size_t H = algos.size();
  std::vector<FigureSeries> series(H);
  for (std::size_t k = 0; k < H; ++k) {
    series[k].algorithm = algos[k];
  }
  if (records.empty()) return series;
  const RosterIndex index(algos);
  const std::size_t ref_idx = norm == Normalization::kLowerBound
                                  ? 0  // unused
                                  : index.at(norm_reference(norm));
  for (const ScenarioRecord& rec : records) {
    double ms_ref, mem_ref;
    if (norm == Normalization::kLowerBound) {
      ms_ref = rec.lb_makespan;
      mem_ref = static_cast<double>(rec.lb_memory);
    } else {
      ms_ref = rec.makespan[ref_idx];
      mem_ref = static_cast<double>(rec.memory[ref_idx]);
    }
    if (ms_ref <= 0.0 || mem_ref <= 0.0) continue;
    for (std::size_t k = 0; k < H; ++k) {
      series[k].rel_makespan.push_back(rec.makespan[k] / ms_ref);
      series[k].rel_memory.push_back(static_cast<double>(rec.memory[k]) /
                                     mem_ref);
    }
  }
  for (std::size_t k = 0; k < H; ++k) {
    series[k].makespan_summary = summarize(series[k].rel_makespan);
    series[k].memory_summary = summarize(series[k].rel_memory);
  }
  return series;
}

void print_figure(std::ostream& os, const std::vector<FigureSeries>& series,
                  const std::string& title) {
  os << title << "\n";
  os << std::left << std::setw(18) << "Algorithm" << std::right
     << std::setw(34) << "rel. makespan (p10/mean/p90)" << std::setw(34)
     << "rel. memory (p10/mean/p90)" << "\n";
  for (const FigureSeries& s : series) {
    os << std::left << std::setw(18) << s.algorithm << std::right
       << std::setw(12) << fmt(s.makespan_summary.p10) << std::setw(10)
       << fmt(s.makespan_summary.mean) << std::setw(10)
       << fmt(s.makespan_summary.p90) << std::setw(16)
       << fmt(s.memory_summary.p10) << std::setw(10)
       << fmt(s.memory_summary.mean) << std::setw(10)
       << fmt(s.memory_summary.p90) << "\n";
  }
}

void write_scatter_csv(std::ostream& os,
                       const std::vector<ScenarioRecord>& records,
                       Normalization norm) {
  os << "tree,n,p,algorithm,rel_makespan,rel_memory,makespan,memory\n";
  if (records.empty()) return;
  const RosterIndex index(roster(records));  // rejects mixed rosters
  const std::size_t ref_idx = norm == Normalization::kLowerBound
                                  ? 0  // unused
                                  : index.at(norm_reference(norm));
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const ScenarioRecord& rec : records) {
    double ms_ref, mem_ref;
    if (norm == Normalization::kLowerBound) {
      ms_ref = rec.lb_makespan;
      mem_ref = static_cast<double>(rec.lb_memory);
    } else {
      ms_ref = rec.makespan[ref_idx];
      mem_ref = static_cast<double>(rec.memory[ref_idx]);
    }
    for (std::size_t k = 0; k < rec.algos.size(); ++k) {
      os << rec.tree_name << ',' << rec.tree_size << ',' << rec.p << ','
         << rec.algos[k] << ',' << rec.makespan[k] / ms_ref << ','
         << static_cast<double>(rec.memory[k]) / mem_ref << ','
         << rec.makespan[k] << ',' << rec.memory[k] << "\n";
    }
  }
}

}  // namespace treesched

#pragma once
// Renders campaign results as the paper's artifacts:
//  * Table 1: best-memory / best-makespan shares and average deviations;
//  * Figures 6-8: per-algorithm (relative makespan, relative memory) series
//    with mean / 10th / 90th percentile "crosses".
//
// Rows are keyed by SchedulerRegistry name and derived from the records
// themselves, so any campaign roster (paper heuristics, memory-capped
// schedulers, sequential baselines) renders without code changes.

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "util/stats.hpp"

namespace treesched {

/// One Table 1 row.
struct Table1Row {
  std::string algorithm;                ///< SchedulerRegistry name
  double best_memory_share = 0.0;       ///< scenarios where it is best
  double within5_memory_share = 0.0;    ///< within 5% of the best
  double avg_memory_deviation = 0.0;    ///< mean(mem / postorder bound - 1);
                                        ///< can dip below 0 for Liu
  double best_makespan_share = 0.0;
  double within5_makespan_share = 0.0;
  double avg_makespan_deviation = 0.0;  ///< mean(ms / best ms - 1)
};

std::vector<Table1Row> table1(const std::vector<ScenarioRecord>& records);
void print_table1(std::ostream& os, const std::vector<Table1Row>& rows);

/// Table 1 restricted to scenarios with processor count `p` (per-p
/// breakdown; the paper aggregates over p = 2..32).
std::vector<Table1Row> table1_for_p(const std::vector<ScenarioRecord>& records,
                                    int p);

/// Reference for figure normalization.
enum class Normalization {
  kLowerBound,      ///< Figure 6: divide by the scenario's lower bounds
  kParSubtrees,     ///< Figure 7
  kParInnerFirst,   ///< Figure 8
};

/// Per-algorithm scatter series (one point per scenario) plus summaries.
struct FigureSeries {
  std::string algorithm;
  std::vector<double> rel_makespan;
  std::vector<double> rel_memory;
  Summary makespan_summary;
  Summary memory_summary;
};

/// Throws std::invalid_argument when the normalization reference algorithm
/// is not part of the campaign roster.
std::vector<FigureSeries> figure_series(
    const std::vector<ScenarioRecord>& records, Normalization norm);

/// Prints the percentile crosses (the visual anchors of Figures 6-8).
void print_figure(std::ostream& os, const std::vector<FigureSeries>& series,
                  const std::string& title);

/// Dumps one CSV line per (scenario, algorithm) for external plotting.
void write_scatter_csv(std::ostream& os,
                       const std::vector<ScenarioRecord>& records,
                       Normalization norm);

}  // namespace treesched

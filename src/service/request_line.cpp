#include "service/request_line.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace treesched {

namespace {

MemSize parse_memory_cap(const std::string& token) {
  // Parsed from the token, not extracted as an unsigned directly —
  // istream extraction would wrap "-5" into a huge cap without setting
  // failbit.
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("memory cap \"" + token +
                                "\" is not a non-negative integer");
  }
  return std::stoull(token);
}

void apply_field(RequestLine& out, const std::string& key,
                 const std::string& value) {
  if (key == "priority") {
    const auto cls = parse_priority(value);
    if (!cls) {
      throw std::invalid_argument(
          "priority \"" + value + "\" (want interactive|batch|bulk)");
    }
    out.priority = *cls;
    return;
  }
  if (key == "deadline_ms") {
    std::size_t used = 0;
    double ms = 0.0;
    try {
      ms = std::stod(value, &used);
    } catch (const std::exception&) {
      used = std::string::npos;  // flag as unparsable below
    }
    if (used != value.size() || !(ms > 0.0)) {
      throw std::invalid_argument("deadline_ms \"" + value +
                                  "\" is not a positive number");
    }
    out.deadline_ms = ms;
    return;
  }
  throw std::invalid_argument(
      "unknown request field \"" + key +
      "\" (known fields: priority, deadline_ms)");
}

}  // namespace

RequestLine parse_request_line(const std::string& line) {
  std::istringstream is(line);
  RequestLine out;
  if (!(is >> out.tree_spec >> out.algo >> out.p)) {
    throw std::invalid_argument(
        "request line must be: <tree-spec> <algo> <p> [<memory-cap>] "
        "[priority=...] [deadline_ms=...]");
  }
  bool saw_cap = false;
  bool saw_named = false;
  std::set<std::string> seen_keys;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (saw_named || saw_cap) {
        throw std::invalid_argument("trailing token \"" + token + "\"");
      }
      out.memory_cap = parse_memory_cap(token);
      saw_cap = true;
      continue;
    }
    saw_named = true;
    const std::string key = token.substr(0, eq);
    if (!seen_keys.insert(key).second) {
      throw std::invalid_argument("duplicate request field \"" + key + "\"");
    }
    apply_field(out, key, token.substr(eq + 1));
  }
  return out;
}

}  // namespace treesched

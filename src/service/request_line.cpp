#include "service/request_line.hpp"

#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace treesched {

namespace {

std::uint64_t parse_uint_field(const std::string& key,
                               const std::string& value) {
  // Parsed from the token, not extracted as an unsigned directly —
  // istream extraction would wrap "-5" into a huge value without
  // setting failbit.
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(key + " \"" + value +
                                "\" is not a non-negative integer");
  }
  try {
    return std::stoull(value);
  } catch (const std::out_of_range&) {
    // The documented contract is std::invalid_argument for every parse
    // failure; overflow must not leak std::out_of_range past it.
    throw std::invalid_argument(key + " \"" + value +
                                "\" does not fit 64 bits");
  }
}

MemSize parse_memory_cap(const std::string& token) {
  return parse_uint_field("memory cap", token);
}

/// parse_uint_field plus an upper bound — int-typed response fields must
/// reject out-of-range values, not truncate them through a cast.
std::uint64_t parse_bounded_field(const std::string& key,
                                  const std::string& value,
                                  std::uint64_t max) {
  const std::uint64_t parsed = parse_uint_field(key, value);
  if (parsed > max) {
    throw std::invalid_argument(key + " \"" + value + "\" exceeds " +
                                std::to_string(max));
  }
  return parsed;
}

void apply_field(RequestLine& out, const std::string& key,
                 const std::string& value) {
  if (key == "priority") {
    const auto cls = parse_priority(value);
    if (!cls) {
      throw std::invalid_argument(
          "priority \"" + value + "\" (want interactive|batch|bulk)");
    }
    out.priority = *cls;
    return;
  }
  if (key == "deadline_ms") {
    std::size_t used = 0;
    double ms = 0.0;
    try {
      ms = std::stod(value, &used);
    } catch (const std::exception&) {
      used = std::string::npos;  // flag as unparsable below
    }
    if (used != value.size() || !(ms > 0.0)) {
      throw std::invalid_argument("deadline_ms \"" + value +
                                  "\" is not a positive number");
    }
    out.deadline_ms = ms;
    return;
  }
  if (key == "id") {
    out.id = parse_uint_field(key, value);
    return;
  }
  throw std::invalid_argument(
      "unknown request field \"" + key +
      "\" (known fields: priority, deadline_ms, id)");
}

RequestLine parse_cancel_line(std::istringstream& is) {
  RequestLine out;
  out.kind = RequestLine::Kind::kCancel;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != "id") {
      throw std::invalid_argument("cancel line must be: cancel id=<n> (got \"" +
                                  token + "\")");
    }
    if (out.id) {
      throw std::invalid_argument("duplicate request field \"id\"");
    }
    out.id = parse_uint_field("id", token.substr(eq + 1));
  }
  if (!out.id) {
    throw std::invalid_argument("cancel line must name a request: cancel id=<n>");
  }
  return out;
}

/// `trace start|stop|status|pull [id=<n>]` / `trace dump=<path>
/// [id=<n>]`: exactly one action, an optional tag. `pull` answers with
/// the recorder's spans encoded as stats pairs — the router's merged
/// dump collects every backend's ring through it.
RequestLine parse_trace_line(std::istringstream& is) {
  RequestLine out;
  out.kind = RequestLine::Kind::kTrace;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (!out.trace_action.empty()) {
        throw std::invalid_argument("trailing token \"" + token + "\"");
      }
      if (token != "start" && token != "stop" && token != "status" &&
          token != "pull") {
        throw std::invalid_argument(
            "trace line must be: trace start|stop|status|pull|dump=<path> "
            "[id=<n>] (got \"" + token + "\")");
      }
      out.trace_action = token;
      continue;
    }
    const std::string key = token.substr(0, eq);
    if (key == "id") {
      if (out.id) {
        throw std::invalid_argument("duplicate request field \"id\"");
      }
      out.id = parse_uint_field("id", token.substr(eq + 1));
      continue;
    }
    if (key == "dump") {
      if (!out.trace_action.empty()) {
        throw std::invalid_argument("duplicate trace action \"" + token +
                                    "\"");
      }
      out.trace_path = token.substr(eq + 1);
      if (out.trace_path.empty()) {
        throw std::invalid_argument("trace dump= needs a path");
      }
      out.trace_action = "dump";
      continue;
    }
    throw std::invalid_argument("unknown trace field \"" + key +
                                "\" (known fields: dump, id)");
  }
  if (out.trace_action.empty()) {
    throw std::invalid_argument(
        "trace line must name an action: "
        "trace start|stop|status|pull|dump=<path>");
  }
  return out;
}

/// `ping [id=<n>]` and `stats [id=<n>]` share one shape: the verb plus
/// an optional tag, nothing else.
RequestLine parse_control_line(const std::string& verb,
                               RequestLine::Kind kind,
                               std::istringstream& is) {
  RequestLine out;
  out.kind = kind;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != "id") {
      throw std::invalid_argument(verb + " line must be: " + verb +
                                  " [id=<n>] (got \"" + token + "\")");
    }
    if (out.id) {
      throw std::invalid_argument("duplicate request field \"id\"");
    }
    out.id = parse_uint_field("id", token.substr(eq + 1));
  }
  return out;
}

}  // namespace

RequestLine parse_request_line(const std::string& line) {
  std::istringstream is(line);
  RequestLine out;
  if (!(is >> out.tree_spec)) {
    throw std::invalid_argument("empty request line");
  }
  if (out.tree_spec == "cancel") return parse_cancel_line(is);
  if (out.tree_spec == "ping") {
    return parse_control_line("ping", RequestLine::Kind::kPing, is);
  }
  if (out.tree_spec == "stats") {
    return parse_control_line("stats", RequestLine::Kind::kStats, is);
  }
  if (out.tree_spec == "trace") return parse_trace_line(is);
  if (!(is >> out.algo >> out.p)) {
    throw std::invalid_argument(
        "request line must be: <tree-spec> <algo> <p> [<memory-cap>] "
        "[priority=...] [deadline_ms=...] [id=...] | cancel id=<n>");
  }
  bool saw_cap = false;
  bool saw_named = false;
  std::set<std::string> seen_keys;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (saw_named || saw_cap) {
        throw std::invalid_argument("trailing token \"" + token + "\"");
      }
      out.memory_cap = parse_memory_cap(token);
      saw_cap = true;
      continue;
    }
    saw_named = true;
    const std::string key = token.substr(0, eq);
    if (!seen_keys.insert(key).second) {
      throw std::invalid_argument("duplicate request field \"" + key + "\"");
    }
    apply_field(out, key, token.substr(eq + 1));
  }
  return out;
}

std::string format_response_line(const ResponseLine& resp) {
  std::ostringstream os;
  // Full double fidelity: the line is machine-read; shortest-exact would
  // be nicer but setprecision(17) round-trips and needs no helper.
  os << std::setprecision(17);
  if (resp.kind == ResponseLine::Kind::kPong) {
    os << "pong";
    if (resp.id) os << " id=" << *resp.id;
    return os.str();
  }
  if (resp.kind == ResponseLine::Kind::kStats ||
      resp.kind == ResponseLine::Kind::kTrace) {
    os << (resp.kind == ResponseLine::Kind::kStats ? "stats" : "trace");
    if (resp.id) os << " id=" << *resp.id;
    for (const auto& [key, value] : resp.stats) {
      os << " " << key << "=" << value;
    }
    return os.str();
  }
  if (resp.ok) {
    os << "ok";
    if (resp.id) os << " id=" << *resp.id;
    os << " tree=" << std::hex << resp.tree_hash << std::dec
       << " n=" << resp.n << " algo=" << resp.algo << " p=" << resp.p
       << " makespan=" << resp.makespan
       << " peak_memory=" << resp.peak_memory
       << " cache=" << (resp.cache_hit ? "hit" : "miss")
       << " priority=" << to_string(resp.priority);
    return os.str();
  }
  os << "error";
  if (resp.id) os << " id=" << *resp.id;
  os << " code=" << to_string(resp.code);
  if (!resp.message.empty()) {
    // One response = one physical line: a message carrying a newline
    // (a multi-line what() from some scheduler) must not split the
    // framing.
    std::string flat = resp.message;
    for (char& c : flat) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    os << " " << flat;
  }
  return os.str();
}

namespace {

/// Splits a "key=value" token; throws naming the token otherwise.
std::pair<std::string, std::string> split_kv(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("response field \"" + token +
                                "\" is not key=value");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

ResponseLine parse_ok_line(std::istringstream& is) {
  ResponseLine out;
  out.ok = true;
  std::set<std::string> seen;
  std::string token;
  while (is >> token) {
    const auto [key, value] = split_kv(token);
    if (!seen.insert(key).second) {
      throw std::invalid_argument("duplicate response field \"" + key + "\"");
    }
    if (key == "id") {
      out.id = parse_uint_field(key, value);
    } else if (key == "tree") {
      // Strict bare hex: no sign, no 0x prefix (stoull would accept
      // both and wrap negatives), at most 16 digits.
      if (value.empty() || value.size() > 16 ||
          value.find_first_not_of("0123456789abcdefABCDEF") !=
              std::string::npos) {
        throw std::invalid_argument("tree \"" + value +
                                    "\" is not a 64-bit hex hash");
      }
      out.tree_hash = std::stoull(value, nullptr, 16);
    } else if (key == "n") {
      out.n = static_cast<NodeId>(parse_bounded_field(
          key, value, std::numeric_limits<NodeId>::max()));
    } else if (key == "algo") {
      out.algo = value;
    } else if (key == "p") {
      out.p = static_cast<int>(
          parse_bounded_field(key, value, std::numeric_limits<int>::max()));
    } else if (key == "makespan") {
      try {
        std::size_t used = 0;
        out.makespan = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("makespan \"" + value +
                                    "\" is not a number");
      }
    } else if (key == "peak_memory") {
      out.peak_memory = parse_uint_field(key, value);
    } else if (key == "cache") {
      if (value != "hit" && value != "miss") {
        throw std::invalid_argument("cache \"" + value +
                                    "\" (want hit|miss)");
      }
      out.cache_hit = value == "hit";
    } else if (key == "priority") {
      const auto cls = parse_priority(value);
      if (!cls) {
        throw std::invalid_argument("priority \"" + value +
                                    "\" (want interactive|batch|bulk)");
      }
      out.priority = *cls;
    } else {
      throw std::invalid_argument("unknown response field \"" + key + "\"");
    }
  }
  // A truncated line (partial write, crashed server) must not parse into
  // default-zero measurements; only id= is optional.
  for (const char* required :
       {"tree", "n", "algo", "p", "makespan", "peak_memory", "cache",
        "priority"}) {
    if (!seen.count(required)) {
      throw std::invalid_argument(std::string("ok line missing required \"") +
                                  required + "\" field");
    }
  }
  return out;
}

ResponseLine parse_error_line(std::istringstream& is) {
  ResponseLine out;
  out.ok = false;
  bool saw_code = false;
  std::string token;
  // id= and code= lead; everything after code= is free-form message.
  while (is >> token) {
    const std::size_t eq = token.find('=');
    const std::string key =
        eq == std::string::npos ? std::string() : token.substr(0, eq);
    if (!saw_code && key == "id") {
      if (out.id) {
        throw std::invalid_argument("duplicate response field \"id\"");
      }
      out.id = parse_uint_field(key, token.substr(eq + 1));
      continue;
    }
    if (!saw_code && key == "code") {
      const std::string value = token.substr(eq + 1);
      const auto code = parse_error_code(value);
      if (!code) {
        throw std::invalid_argument("unknown error code \"" + value + "\"");
      }
      out.code = *code;
      saw_code = true;
      continue;
    }
    if (!saw_code) {
      throw std::invalid_argument(
          "error line must carry code=<error-code> before the message (got \"" +
          token + "\")");
    }
    if (!out.message.empty()) out.message += ' ';
    out.message += token;
  }
  if (!saw_code) {
    throw std::invalid_argument("error line without a code= field");
  }
  return out;
}

ResponseLine parse_pong_line(std::istringstream& is) {
  ResponseLine out;
  out.kind = ResponseLine::Kind::kPong;
  out.ok = true;
  std::string token;
  while (is >> token) {
    const auto [key, value] = split_kv(token);
    if (key != "id" || out.id) {
      throw std::invalid_argument("pong line must be: pong [id=<n>] (got \"" +
                                  token + "\")");
    }
    out.id = parse_uint_field(key, value);
  }
  return out;
}

ResponseLine parse_stats_line(std::istringstream& is,
                              ResponseLine::Kind kind) {
  ResponseLine out;
  out.kind = kind;
  out.ok = true;
  std::set<std::string> seen;
  std::string token;
  while (is >> token) {
    const auto [key, value] = split_kv(token);
    if (!seen.insert(key).second) {
      throw std::invalid_argument("duplicate response field \"" + key + "\"");
    }
    if (key == "id") {
      out.id = parse_uint_field(key, value);
      continue;
    }
    // Keys are free-form so servers can grow counters; values must still
    // parse — a truncated line fails loudly instead of dropping digits.
    out.stats.emplace_back(key, parse_uint_field(key, value));
  }
  return out;
}

}  // namespace

ResponseLine parse_response_line(const std::string& line) {
  std::istringstream is(line);
  std::string verb;
  if (!(is >> verb)) throw std::invalid_argument("empty response line");
  if (verb == "ok") return parse_ok_line(is);
  if (verb == "error") return parse_error_line(is);
  if (verb == "pong") return parse_pong_line(is);
  if (verb == "stats") {
    return parse_stats_line(is, ResponseLine::Kind::kStats);
  }
  if (verb == "trace") {
    return parse_stats_line(is, ResponseLine::Kind::kTrace);
  }
  throw std::invalid_argument(
      "response line must start with ok|error|pong|stats|trace (got \"" +
      verb + "\")");
}

}  // namespace treesched

#include "service/request_queue.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "util/stats.hpp"

namespace treesched {

RequestQueue::RequestQueue(RequestQueueConfig config) : config_(config) {}

std::optional<std::uint64_t> RequestQueue::push(
    ScheduleRequest req, std::shared_ptr<detail::TicketState> ticket) {
  const Clock::time_point now = Clock::now();
  const Priority cls = req.priority;
  std::unique_lock<std::mutex> lock(mutex_);
  ++counters(cls).admitted;
  if (config_.max_pending != 0 && pending_ >= config_.max_pending) {
    ++counters(cls).rejected;
    lock.unlock();
    detail::complete_ticket(
        ticket,
        ServiceError{ErrorCode::kQueueFull,
                     "queue full: " + std::to_string(config_.max_pending) +
                         " requests already pending",
                     nullptr});
    return std::nullopt;
  }

  Stored stored;
  stored.entry.request = std::move(req);
  stored.entry.ticket = std::move(ticket);
  stored.entry.submitted = cls;
  stored.entry.admitted = now;
  // Budgets beyond ~30 years (inf included) mean "no deadline": converting
  // a double past the clock-rep range would be UB, not a far-future point.
  constexpr double kMaxDeadlineMs = 1e12;
  const double deadline_ms = stored.entry.request.deadline_ms;
  if (deadline_ms > 0.0 && deadline_ms < kMaxDeadlineMs) {
    stored.entry.deadline =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));
  }
  stored.last_aged = now;

  const std::uint64_t seq = next_seq_++;
  const EdfKey key{stored.entry.deadline, seq};
  Bucket& b = bucket(static_cast<int>(cls));
  b.by_age.emplace(stored.last_aged, key);
  b.items.emplace(key, std::move(stored));
  by_seq_.emplace(seq, std::make_pair(static_cast<int>(cls), key.deadline));
  ++pending_;
  ++pending_by_class_[static_cast<std::size_t>(cls)];
  return seq;
}

void RequestQueue::age_pending(Clock::time_point now) {
  if (config_.age_after.count() <= 0) return;
  // Top-down: an entry promoted into class c this round was stamped
  // last_aged = now, so it cannot climb two levels in one sweep.
  for (int cls = 1; cls < kPriorityClasses; ++cls) {
    Bucket& from = bucket(cls);
    while (!from.by_age.empty() &&
           from.by_age.begin()->first + config_.age_after <= now) {
      const EdfKey key = from.by_age.begin()->second;
      from.by_age.erase(from.by_age.begin());
      auto it = from.items.find(key);
      Stored stored = std::move(it->second);
      from.items.erase(it);
      stored.last_aged = now;
      ++counters(stored.entry.submitted).aged;
      by_seq_[key.seq].first = cls - 1;
      Bucket& to = bucket(cls - 1);
      to.by_age.emplace(stored.last_aged, key);
      to.items.emplace(key, std::move(stored));
    }
  }
}

RequestQueue::Stored RequestQueue::remove_stored(int cls, const EdfKey& key) {
  Bucket& b = bucket(cls);
  auto it = b.items.find(key);
  Stored stored = std::move(it->second);
  // The aging index holds exactly one entry per item; find it among the
  // few sharing last_aged by the item's unique sequence number.
  auto range = b.by_age.equal_range(stored.last_aged);
  for (auto a = range.first; a != range.second; ++a) {
    if (a->second.seq == key.seq) {
      b.by_age.erase(a);
      break;
    }
  }
  b.items.erase(it);
  by_seq_.erase(key.seq);
  --pending_;
  --pending_by_class_[static_cast<std::size_t>(stored.entry.submitted)];
  return stored;
}

void RequestQueue::record_wait(Priority cls, Clock::time_point admitted,
                               Clock::time_point now) {
  const double ms =
      std::chrono::duration<double, std::milli>(now - admitted).count();
  auto& samples = wait_samples_[static_cast<std::size_t>(cls)];
  auto& next = wait_next_[static_cast<std::size_t>(cls)];
  if (samples.size() < kWaitSampleCap) {
    samples.push_back(ms);
  } else {
    samples[next] = ms;
    next = (next + 1) % kWaitSampleCap;
  }
}

RequestQueue::PopResult RequestQueue::pop() {
  PopResult result;
  const Clock::time_point now = Clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  age_pending(now);
  for (int cls = 0; cls < kPriorityClasses; ++cls) {
    Bucket& b = bucket(cls);
    while (!b.items.empty()) {
      const EdfKey key = b.items.begin()->first;  // EDF, then FIFO
      Stored stored = remove_stored(cls, key);
      record_wait(stored.entry.submitted, stored.entry.admitted, now);
      if (stored.entry.deadline <= now) {
        ++counters(stored.entry.submitted).expired;
        result.expired.push_back(std::move(stored.entry));
        continue;  // expired entries are an EDF prefix; keep scanning
      }
      ++counters(stored.entry.submitted).completed;
      result.entry = std::move(stored.entry);
      return result;
    }
  }
  return result;
}

bool RequestQueue::cancel(std::uint64_t seq) {
  Entry entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_seq_.find(seq);
    if (it == by_seq_.end()) return false;  // popped, cancelled, or unknown
    const auto [cls, deadline] = it->second;
    Stored stored = remove_stored(cls, EdfKey{deadline, seq});
    ++counters(stored.entry.submitted).cancelled;
    entry = std::move(stored.entry);
  }
  // Settle outside the queue mutex: completion wakes ticket waiters and
  // must not nest their lock under ours.
  std::ostringstream os;
  os << "cancelled while queued: " << to_string(entry.submitted)
     << " request (" << entry.request.algo << ") spent "
     << std::chrono::duration<double, std::milli>(Clock::now() -
                                                  entry.admitted)
            .count()
     << " ms queued, never reached a worker";
  detail::complete_ticket(
      entry.ticket,
      ServiceError{ErrorCode::kCancelled, os.str(), nullptr});
  return true;
}

QueueStats RequestQueue::stats() const {
  QueueStats stats;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (int cls = 0; cls < kPriorityClasses; ++cls) {
    const auto i = static_cast<std::size_t>(cls);
    ClassQueueStats& out = stats.by_class[i];
    out.admitted = counters_[i].admitted;
    out.rejected = counters_[i].rejected;
    out.expired = counters_[i].expired;
    out.completed = counters_[i].completed;
    out.cancelled = counters_[i].cancelled;
    out.aged = counters_[i].aged;
    out.pending = pending_by_class_[i];
    if (!wait_samples_[i].empty()) {
      std::vector<double> sorted = wait_samples_[i];
      std::sort(sorted.begin(), sorted.end());
      out.wait_ms_p50 = quantile_sorted(sorted, 0.50);
      out.wait_ms_p90 = quantile_sorted(sorted, 0.90);
      out.wait_ms_p99 = quantile_sorted(sorted, 0.99);
    }
  }
  return stats;
}

std::size_t RequestQueue::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace treesched

#include "service/request_queue.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/stats.hpp"

namespace treesched {

QueueBackend parse_queue_backend(const std::string& name) {
  if (name == "mutex") return QueueBackend::kMutex;
  if (name == "lockfree") return QueueBackend::kLockFree;
  throw std::invalid_argument("unknown queue backend \"" + name +
                              "\" (mutex|lockfree)");
}

const char* to_string(QueueBackend backend) {
  return backend == QueueBackend::kLockFree ? "lockfree" : "mutex";
}

RequestQueue::RequestQueue(RequestQueueConfig config) : config_(config) {}

RequestQueue::~RequestQueue() {
  for (FastLane& lane : lanes_) {
    while (std::optional<Stored*> parked = lane.ring.try_pop()) {
      delete *parked;
    }
  }
}

bool RequestQueue::reserve_pending() {
  if (config_.max_pending == 0) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (pending_.fetch_add(1, std::memory_order_relaxed) >=
      config_.max_pending) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::optional<std::uint64_t> RequestQueue::push(
    ScheduleRequest req, std::shared_ptr<detail::TicketState> ticket) {
  const Clock::time_point now = Clock::now();
  const Priority cls = req.priority;
  counters(cls).admitted.fetch_add(1, std::memory_order_relaxed);
  if (!reserve_pending()) {
    counters(cls).rejected.fetch_add(1, std::memory_order_relaxed);
    detail::complete_ticket(
        ticket,
        ServiceError{ErrorCode::kQueueFull,
                     "queue full: " + std::to_string(config_.max_pending) +
                         " requests already pending",
                     nullptr});
    return std::nullopt;
  }
  pending_by_class_[static_cast<std::size_t>(cls)].fetch_add(
      1, std::memory_order_relaxed);

  Stored stored;
  stored.entry.request = std::move(req);
  stored.entry.ticket = std::move(ticket);
  stored.entry.submitted = cls;
  stored.entry.admitted = now;
  // Budgets beyond ~30 years (inf included) mean "no deadline": converting
  // a double past the clock-rep range would be UB, not a far-future point.
  constexpr double kMaxDeadlineMs = 1e12;
  const double deadline_ms = stored.entry.request.deadline_ms;
  if (deadline_ms > 0.0 && deadline_ms < kMaxDeadlineMs) {
    stored.entry.deadline =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(deadline_ms));
  }
  stored.last_aged = now;
  stored.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seq = stored.seq;

  if (config_.backend == QueueBackend::kLockFree &&
      stored.entry.deadline == Clock::time_point::max()) {
    // Fast lane: deadline-less entries have no EDF position (they sort
    // after every deadline-tagged entry, FIFO among themselves), so the
    // MPMC ring preserves the mutex backend's pop order by itself.
    // Stamp `oldest` BEFORE pushing so the aging check can never miss a
    // parked entry.
    FastLane& lane = lanes_[static_cast<std::size_t>(cls)];
    const std::int64_t tick = now.time_since_epoch().count();
    std::int64_t cur = lane.oldest.load(std::memory_order_relaxed);
    while (tick < cur &&
           !lane.oldest.compare_exchange_weak(cur, tick,
                                              std::memory_order_relaxed)) {
    }
    auto* parked = new Stored(std::move(stored));
    if (lane.ring.try_push(parked)) return seq;
    // Ring full: fall back to the mutex buckets (the entry keeps its
    // seq, so the locked pop still merges it in FIFO position).
    stored = std::move(*parked);
    delete parked;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  insert_locked(static_cast<int>(cls), seq, std::move(stored));
  return seq;
}

void RequestQueue::insert_locked(int cls, std::uint64_t seq, Stored stored) {
  const EdfKey key{stored.entry.deadline, seq};
  Bucket& b = bucket(cls);
  b.by_age.emplace(stored.last_aged, key);
  b.items.emplace(key, std::move(stored));
  by_seq_.emplace(seq, std::make_pair(cls, key.deadline));
  bucket_count_[static_cast<std::size_t>(cls)].fetch_add(
      1, std::memory_order_relaxed);
}

void RequestQueue::age_pending(Clock::time_point now) {
  if (config_.age_after.count() <= 0) return;
  // Top-down: an entry promoted into class c this round was stamped
  // last_aged = now, so it cannot climb two levels in one sweep.
  for (int cls = 1; cls < kPriorityClasses; ++cls) {
    Bucket& from = bucket(cls);
    while (!from.by_age.empty() &&
           from.by_age.begin()->first + config_.age_after <= now) {
      const EdfKey key = from.by_age.begin()->second;
      from.by_age.erase(from.by_age.begin());
      auto it = from.items.find(key);
      Stored stored = std::move(it->second);
      from.items.erase(it);
      stored.last_aged = now;
      counters(stored.entry.submitted)
          .aged.fetch_add(1, std::memory_order_relaxed);
      by_seq_[key.seq].first = cls - 1;
      bucket_count_[static_cast<std::size_t>(cls)].fetch_sub(
          1, std::memory_order_relaxed);
      bucket_count_[static_cast<std::size_t>(cls - 1)].fetch_add(
          1, std::memory_order_relaxed);
      Bucket& to = bucket(cls - 1);
      to.by_age.emplace(stored.last_aged, key);
      to.items.emplace(key, std::move(stored));
    }
  }
}

RequestQueue::Stored RequestQueue::remove_stored(int cls, const EdfKey& key) {
  Bucket& b = bucket(cls);
  auto it = b.items.find(key);
  Stored stored = std::move(it->second);
  // The aging index holds exactly one entry per item; find it among the
  // few sharing last_aged by the item's unique sequence number.
  auto range = b.by_age.equal_range(stored.last_aged);
  for (auto a = range.first; a != range.second; ++a) {
    if (a->second.seq == key.seq) {
      b.by_age.erase(a);
      break;
    }
  }
  b.items.erase(it);
  by_seq_.erase(key.seq);
  bucket_count_[static_cast<std::size_t>(cls)].fetch_sub(
      1, std::memory_order_relaxed);
  pending_.fetch_sub(1, std::memory_order_relaxed);
  pending_by_class_[static_cast<std::size_t>(stored.entry.submitted)]
      .fetch_sub(1, std::memory_order_relaxed);
  return stored;
}

void RequestQueue::record_wait(Priority cls, Clock::time_point admitted,
                               Clock::time_point now) {
  const double ms =
      std::chrono::duration<double, std::milli>(now - admitted).count();
  WaitRing& ring = wait_rings_[static_cast<std::size_t>(cls)];
  const std::size_t slot =
      ring.count.fetch_add(1, std::memory_order_relaxed) % kWaitSampleCap;
  ring.samples[slot].store(ms, std::memory_order_relaxed);
}

bool RequestQueue::lane_aging_due(Clock::time_point now) const {
  if (config_.age_after.count() <= 0) return false;
  // Class 0 entries never promote, so only the lower lanes matter.
  for (int cls = 1; cls < kPriorityClasses; ++cls) {
    const std::int64_t oldest =
        lanes_[static_cast<std::size_t>(cls)].oldest.load(
            std::memory_order_relaxed);
    if (oldest == kLaneIdle) continue;
    const Clock::time_point stamp{Clock::duration{oldest}};
    if (stamp + config_.age_after <= now) return true;
  }
  return false;
}

void RequestQueue::drain_lanes_locked() {
  for (int cls = 0; cls < kPriorityClasses; ++cls) {
    FastLane& lane = lanes_[static_cast<std::size_t>(cls)];
    bool drained_any = false;
    while (std::optional<Stored*> parked = lane.ring.try_pop()) {
      Stored stored = std::move(**parked);
      delete *parked;
      // Drained entries keep last_aged = admission time, so the ring
      // wait counts toward their aging credit exactly as if they had
      // been in the buckets all along.
      const std::uint64_t seq = stored.seq;
      insert_locked(cls, seq, std::move(stored));
      drained_any = true;
    }
    if (drained_any || lane.oldest.load(std::memory_order_relaxed) !=
                           kLaneIdle) {
      // Conservative re-stamp: `now` rather than idle, so a push racing
      // this drain can never leave a parked entry unwatched. Costs at
      // most one false drain per aging interval on an idle lane.
      lane.oldest.store(Clock::now().time_since_epoch().count(),
                        std::memory_order_relaxed);
    }
  }
}

RequestQueue::PopResult RequestQueue::pop() {
  const Clock::time_point now = Clock::now();
  if (config_.backend == QueueBackend::kLockFree && !lane_aging_due(now)) {
    // Pure fast path: class preemption by scan order; a nonzero bucket
    // forces the locked path because bucket entries (deadline-tagged,
    // overflowed, or previously drained) must merge ahead of or among
    // the lane's FIFO by EDF-then-seq order.
    PopResult result;
    for (int cls = 0; cls < kPriorityClasses; ++cls) {
      if (bucket_count_[static_cast<std::size_t>(cls)].load(
              std::memory_order_acquire) != 0) {
        return pop_locked(now);
      }
      FastLane& lane = lanes_[static_cast<std::size_t>(cls)];
      if (std::optional<Stored*> parked = lane.ring.try_pop()) {
        Stored stored = std::move(**parked);
        delete *parked;
        record_wait(stored.entry.submitted, stored.entry.admitted, now);
        counters(stored.entry.submitted)
            .completed.fetch_add(1, std::memory_order_relaxed);
        pending_.fetch_sub(1, std::memory_order_relaxed);
        pending_by_class_[static_cast<std::size_t>(stored.entry.submitted)]
            .fetch_sub(1, std::memory_order_relaxed);
        result.entry = std::move(stored.entry);
        return result;
      }
    }
    return result;
  }
  return pop_locked(now);
}

RequestQueue::PopResult RequestQueue::pop_locked(Clock::time_point now) {
  PopResult result;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (config_.backend == QueueBackend::kLockFree) drain_lanes_locked();
  age_pending(now);
  for (int cls = 0; cls < kPriorityClasses; ++cls) {
    Bucket& b = bucket(cls);
    while (!b.items.empty()) {
      const EdfKey key = b.items.begin()->first;  // EDF, then FIFO
      Stored stored = remove_stored(cls, key);
      record_wait(stored.entry.submitted, stored.entry.admitted, now);
      if (stored.entry.deadline <= now) {
        counters(stored.entry.submitted)
            .expired.fetch_add(1, std::memory_order_relaxed);
        result.expired.push_back(std::move(stored.entry));
        continue;  // expired entries are an EDF prefix; keep scanning
      }
      counters(stored.entry.submitted)
          .completed.fetch_add(1, std::memory_order_relaxed);
      result.entry = std::move(stored.entry);
      return result;
    }
  }
  return result;
}

bool RequestQueue::cancel(std::uint64_t seq) {
  Entry entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Lane entries are invisible to by_seq_; pull them into the buckets
    // first so the lookup below arbitrates ownership exactly once (the
    // MPMC pop means a concurrently popping worker and this drain can
    // never both obtain the same entry).
    if (config_.backend == QueueBackend::kLockFree) drain_lanes_locked();
    const auto it = by_seq_.find(seq);
    if (it == by_seq_.end()) return false;  // popped, cancelled, or unknown
    const auto [cls, deadline] = it->second;
    Stored stored = remove_stored(cls, EdfKey{deadline, seq});
    counters(stored.entry.submitted)
        .cancelled.fetch_add(1, std::memory_order_relaxed);
    entry = std::move(stored.entry);
  }
  // Settle outside the queue mutex: completion wakes ticket waiters and
  // must not nest their lock under ours.
  std::ostringstream os;
  os << "cancelled while queued: " << to_string(entry.submitted)
     << " request (" << entry.request.algo << ") spent "
     << std::chrono::duration<double, std::milli>(Clock::now() -
                                                  entry.admitted)
            .count()
     << " ms queued, never reached a worker";
  detail::complete_ticket(
      entry.ticket,
      ServiceError{ErrorCode::kCancelled, os.str(), nullptr});
  return true;
}

QueueStats RequestQueue::stats() const {
  QueueStats stats;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (int cls = 0; cls < kPriorityClasses; ++cls) {
    const auto i = static_cast<std::size_t>(cls);
    ClassQueueStats& out = stats.by_class[i];
    out.admitted = counters_[i].admitted.load(std::memory_order_relaxed);
    out.rejected = counters_[i].rejected.load(std::memory_order_relaxed);
    out.expired = counters_[i].expired.load(std::memory_order_relaxed);
    out.completed = counters_[i].completed.load(std::memory_order_relaxed);
    out.cancelled = counters_[i].cancelled.load(std::memory_order_relaxed);
    out.aged = counters_[i].aged.load(std::memory_order_relaxed);
    out.pending = pending_by_class_[i].load(std::memory_order_relaxed);
    const WaitRing& ring = wait_rings_[i];
    const std::size_t n =
        std::min(ring.count.load(std::memory_order_relaxed), kWaitSampleCap);
    if (n != 0) {
      std::vector<double> sorted;
      sorted.reserve(n);
      for (std::size_t s = 0; s < n; ++s) {
        sorted.push_back(ring.samples[s].load(std::memory_order_relaxed));
      }
      std::sort(sorted.begin(), sorted.end());
      out.wait_ms_p50 = quantile_sorted(sorted, 0.50);
      out.wait_ms_p90 = quantile_sorted(sorted, 0.90);
      out.wait_ms_p99 = quantile_sorted(sorted, 0.99);
    }
  }
  return stats;
}

std::size_t RequestQueue::pending() const {
  return pending_.load(std::memory_order_relaxed);
}

}  // namespace treesched

#pragma once
// Deadline-aware priority admission queue for the scheduling service: the
// stage between submit() and the shared thread pool.
//
// Ordering at dequeue time:
//   1. class preemption — any pending Interactive request is taken before
//      any Batch one, any Batch before any Bulk;
//   2. earliest-deadline-first within a class — deadline-tagged requests
//      in deadline order, then deadline-less ones in admission (FIFO)
//      order;
//   3. aging — a request that has waited longer than `age_after` in a
//      non-top class is promoted one class (and can keep climbing after
//      another full interval per level), so sustained Interactive load
//      cannot starve Bulk work.
//
// Expiry: a request whose deadline has passed when a worker pops is never
// handed out as work; pop() returns it in `expired` so the caller can
// answer it with the typed kDeadlineExpired error — expired requests cost
// no scheduler compute.
//
// Cancellation: cancel(seq) removes a still-queued entry, settles its
// ticket with the kCancelled error, and counts it per class — the queue
// mutex arbitrates the race against worker pickup, so exactly one of
// {cancel, pop} ever owns an entry. Per-class counters satisfy, once the
// queue has drained,
//     admitted == completed + expired + rejected + cancelled
// where `admitted` counts every push (accepted or not), `rejected` the
// pushes turned away at admission (queue full), `expired` the
// deadline-lapsed entries, `cancelled` the entries removed by cancel()
// and `completed` the entries handed to workers.
//
// The queue is a passive data structure: it owns no threads and never
// runs scheduler code. It settles tickets only for the failures it
// detects itself (kQueueFull at push, kCancelled at cancel); the service
// settles everything else (results and expiry).
// SchedulingService pairs each admitted entry with one thread-pool job;
// because any job pops the *currently* most urgent entry (not the one
// whose admission created the job), class preemption works even though
// the pool itself is FIFO — and a job whose entry was cancelled simply
// finds less work.
//
// Backends (RequestQueueConfig::backend): kMutex keeps every entry in
// the fully locked buckets above. kLockFree adds a per-class bounded
// MPMC fast lane (util/mpmc_queue.hpp) for the COMMON case — a
// deadline-less request admitted and popped with no aging due — so the
// hot push/pop path costs a few atomic ops instead of the queue mutex.
// Everything that needs global ordering falls back to the mutex path:
// deadline-tagged entries go straight to the EDF buckets (they sort
// before every deadline-less entry of their class, so the two-structure
// pop order matches the mutex backend exactly); cancel() and
// aging-due pops first drain the lanes into the buckets under the
// mutex, then run the classic logic — the MPMC pop arbitrates entry
// ownership, so exactly one of {cancel, pop} wins, and the per-class
// balance (admitted == completed + expired + rejected + cancelled)
// stays exact because every entry hits exactly one terminal counter.
// Lane aging is conservative: a lane entry is promoted within at most
// two aging intervals of becoming due (the mutex backend promotes
// within one pop of due).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/request.hpp"
#include "service/ticket.hpp"
#include "util/mpmc_queue.hpp"

namespace treesched {

/// Selects the admission queue's implementation (see file comment).
enum class QueueBackend { kMutex, kLockFree };

/// Parses a CLI flag value ("mutex" | "lockfree") into a backend;
/// throws std::invalid_argument on anything else.
QueueBackend parse_queue_backend(const std::string& name);
const char* to_string(QueueBackend backend);

struct RequestQueueConfig {
  /// Wait time after which a pending request is promoted one priority
  /// class (applied per level: Bulk needs two full intervals to reach
  /// Interactive). <= 0 disables aging.
  std::chrono::milliseconds age_after{250};
  /// Upper bound on pending entries; pushes beyond it are rejected with
  /// kQueueFull. 0 = unbounded.
  std::size_t max_pending = 0;
  /// kMutex (default) or kLockFree (MPMC fast lane for deadline-less
  /// entries; identical ordering and counter contracts).
  QueueBackend backend = QueueBackend::kMutex;
};

/// Monotonic per-class counters plus wait-time percentiles. All counters
/// are attributed to the class a request was *submitted* with, even after
/// aging promotes it.
struct ClassQueueStats {
  std::uint64_t admitted = 0;   ///< every push, accepted or rejected
  std::uint64_t rejected = 0;   ///< turned away at admission (queue full)
  std::uint64_t expired = 0;    ///< deadline passed while queued
  std::uint64_t completed = 0;  ///< popped live and handed to a worker
  std::uint64_t cancelled = 0;  ///< removed while queued by Ticket::cancel
  std::uint64_t aged = 0;       ///< class promotions granted
  /// Currently queued (point-in-time), by submitted class — an aged Bulk
  /// entry still counts as Bulk here.
  std::size_t pending = 0;
  /// Admission-to-pop wait percentiles in milliseconds over the most
  /// recent dequeues (completed and expired alike; cancelled entries
  /// never reached a worker and are not sampled); 0 with no samples.
  double wait_ms_p50 = 0.0;
  double wait_ms_p90 = 0.0;
  double wait_ms_p99 = 0.0;
};

struct QueueStats {
  std::array<ClassQueueStats, kPriorityClasses> by_class;

  [[nodiscard]] const ClassQueueStats& of(Priority cls) const {
    return by_class[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const ClassQueueStats& c : by_class) n += c.pending;
    return n;
  }
};

class RequestQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// One admitted request: the work item plus the ticket state its
  /// submitter holds. The queue moves entries around; the service
  /// settles the tickets (except kQueueFull/kCancelled, above).
  struct Entry {
    ScheduleRequest request;
    std::shared_ptr<detail::TicketState> ticket;
    Priority submitted = Priority::kBatch;  ///< class at admission
    Clock::time_point admitted{};
    /// Absolute deadline; time_point::max() = none.
    Clock::time_point deadline = Clock::time_point::max();
  };

  struct PopResult {
    /// The most urgent live entry, if any.
    std::optional<Entry> entry;
    /// Entries whose deadline lapsed while queued; the caller must answer
    /// each with kDeadlineExpired. Already counted as `expired`.
    std::vector<Entry> expired;
  };

  explicit RequestQueue(RequestQueueConfig config = {});

  /// Frees any entries still parked in the lock-free lanes. The service
  /// drains every admitted request before tearing the queue down, so
  /// this only matters for queues destroyed mid-test.
  ~RequestQueue();

  /// Admits `req` under its own priority/deadline_ms fields and returns
  /// its cancellation sequence. On rejection (queue full) settles the
  /// ticket with the typed kQueueFull error itself and returns
  /// std::nullopt — the caller must not enqueue a worker for a rejected
  /// push.
  std::optional<std::uint64_t> push(
      ScheduleRequest req, std::shared_ptr<detail::TicketState> ticket);

  /// Ages, expires, and takes the most urgent live entry (none when the
  /// queue is empty or everything pending just expired). Never blocks.
  PopResult pop();

  /// Removes the entry admitted as `seq` iff it is still queued, counts
  /// it as cancelled, and settles its ticket with kCancelled. Returns
  /// false when no such entry is pending (already popped, already
  /// cancelled, or never admitted).
  bool cancel(std::uint64_t seq);

  [[nodiscard]] QueueStats stats() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const RequestQueueConfig& config() const { return config_; }

 private:
  /// EDF position within a class: deadline, then admission order.
  struct EdfKey {
    Clock::time_point deadline;
    std::uint64_t seq;
    bool operator<(const EdfKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return seq < o.seq;
    }
  };

  struct Stored {
    Entry entry;
    Clock::time_point last_aged{};  ///< admission, reset on each promotion
    std::uint64_t seq = 0;          ///< cancellation sequence (push order)
  };

  struct Bucket {
    std::map<EdfKey, Stored> items;
    /// Aging index: last_aged -> position in `items`.
    std::multimap<Clock::time_point, EdfKey> by_age;
  };

  /// Relaxed atomics: in the lock-free backend terminal counters are
  /// bumped off-mutex, and each entry hits exactly one of them, so the
  /// per-class balance stays exact without any lock.
  struct Counters {
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> aged{0};
  };

  static constexpr std::size_t kLaneCapacity = 1024;
  static constexpr std::size_t kWaitSampleCap = 8192;
  /// `oldest` sentinel: lane never used (aging check skips it).
  static constexpr std::int64_t kLaneIdle =
      std::numeric_limits<std::int64_t>::max();

  /// One lock-free fast lane per class: deadline-less admissions ride
  /// the MPMC ring; `oldest` is a conservative lower bound (CAS-min) on
  /// the admission tick of anything still parked in the ring, kIdle
  /// until the lane is first used. Ring overflow falls back to the
  /// mutex buckets.
  struct FastLane {
    MpmcRing<Stored*> ring{kLaneCapacity};
    std::atomic<std::int64_t> oldest{kLaneIdle};
  };

  Bucket& bucket(int cls) { return buckets_[static_cast<std::size_t>(cls)]; }
  Counters& counters(Priority cls) {
    return counters_[static_cast<std::size_t>(cls)];
  }
  /// Reserves one pending slot against max_pending; exact under
  /// concurrency (over-reservers undo before rejecting).
  bool reserve_pending();
  /// Promotes every due entry one class (config_.age_after elapsed since
  /// its last promotion or admission). Called under mutex_.
  void age_pending(Clock::time_point now);
  /// Inserts an already-reserved, already-sequenced entry into its
  /// class bucket. Called under mutex_.
  void insert_locked(int cls, std::uint64_t seq, Stored stored);
  /// Removes `key` from bucket `cls` (items + aging index + cancel
  /// index + pending counters) and returns the stored entry. Called
  /// under mutex_.
  Stored remove_stored(int cls, const EdfKey& key);
  /// Records an admission-to-pop wait sample for percentile reporting.
  /// Lock-free (atomic ring), callable from any path.
  void record_wait(Priority cls, Clock::time_point admitted,
                   Clock::time_point now);
  /// True when some fast-lane entry (class >= 1) has plausibly waited
  /// past age_after and the lanes must be drained into the buckets
  /// before the next pop decision.
  [[nodiscard]] bool lane_aging_due(Clock::time_point now) const;
  /// Moves every fast-lane entry into its class bucket. Called under
  /// mutex_ (cancel, and any pop that cannot take the pure fast path).
  void drain_lanes_locked();
  /// The classic fully-locked pop (drains lanes first in the lock-free
  /// backend).
  PopResult pop_locked(Clock::time_point now);

  RequestQueueConfig config_;
  mutable std::mutex mutex_;
  std::array<Bucket, kPriorityClasses> buckets_;
  std::array<Counters, kPriorityClasses> counters_;
  /// Mirror of buckets_[c].items.size(), readable off-mutex: a nonzero
  /// bucket forces the ordering-preserving locked pop path.
  std::array<std::atomic<std::size_t>, kPriorityClasses> bucket_count_{};
  std::array<FastLane, kPriorityClasses> lanes_;
  /// Cancellation index: seq -> (current class, EDF deadline), enough to
  /// rebuild the EdfKey and find the entry wherever aging moved it.
  /// Covers bucket entries only; cancel() drains the lanes first.
  std::unordered_map<std::uint64_t, std::pair<int, Clock::time_point>>
      by_seq_;
  /// Lock-free ring buffers of recent wait samples (ms), one per class:
  /// a slot index ticket plus kWaitSampleCap atomic slots.
  struct WaitRing {
    std::unique_ptr<std::atomic<double>[]> samples{
        new std::atomic<double>[kWaitSampleCap]};
    std::atomic<std::size_t> count{0};
  };
  std::array<WaitRing, kPriorityClasses> wait_rings_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> pending_{0};
  std::array<std::atomic<std::size_t>, kPriorityClasses> pending_by_class_{};
};

}  // namespace treesched

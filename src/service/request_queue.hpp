#pragma once
// Deadline-aware priority admission queue for the scheduling service: the
// stage between submit() and the shared thread pool.
//
// Ordering at dequeue time:
//   1. class preemption — any pending Interactive request is taken before
//      any Batch one, any Batch before any Bulk;
//   2. earliest-deadline-first within a class — deadline-tagged requests
//      in deadline order, then deadline-less ones in admission (FIFO)
//      order;
//   3. aging — a request that has waited longer than `age_after` in a
//      non-top class is promoted one class (and can keep climbing after
//      another full interval per level), so sustained Interactive load
//      cannot starve Bulk work.
//
// Expiry: a request whose deadline has passed when a worker pops is never
// handed out as work; pop() returns it in `expired` so the caller can
// answer it with the typed kDeadlineExpired error — expired requests cost
// no scheduler compute.
//
// Cancellation: cancel(seq) removes a still-queued entry, settles its
// ticket with the kCancelled error, and counts it per class — the queue
// mutex arbitrates the race against worker pickup, so exactly one of
// {cancel, pop} ever owns an entry. Per-class counters satisfy, once the
// queue has drained,
//     admitted == completed + expired + rejected + cancelled
// where `admitted` counts every push (accepted or not), `rejected` the
// pushes turned away at admission (queue full), `expired` the
// deadline-lapsed entries, `cancelled` the entries removed by cancel()
// and `completed` the entries handed to workers.
//
// The queue is a passive, fully locked data structure: it owns no threads
// and never runs scheduler code. It settles tickets only for the
// failures it detects itself (kQueueFull at push, kCancelled at cancel);
// the service settles everything else (results and expiry).
// SchedulingService pairs each admitted entry with one thread-pool job;
// because any job pops the *currently* most urgent entry (not the one
// whose admission created the job), class preemption works even though
// the pool itself is FIFO — and a job whose entry was cancelled simply
// finds less work.

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "service/request.hpp"
#include "service/ticket.hpp"

namespace treesched {

struct RequestQueueConfig {
  /// Wait time after which a pending request is promoted one priority
  /// class (applied per level: Bulk needs two full intervals to reach
  /// Interactive). <= 0 disables aging.
  std::chrono::milliseconds age_after{250};
  /// Upper bound on pending entries; pushes beyond it are rejected with
  /// kQueueFull. 0 = unbounded.
  std::size_t max_pending = 0;
};

/// Monotonic per-class counters plus wait-time percentiles. All counters
/// are attributed to the class a request was *submitted* with, even after
/// aging promotes it.
struct ClassQueueStats {
  std::uint64_t admitted = 0;   ///< every push, accepted or rejected
  std::uint64_t rejected = 0;   ///< turned away at admission (queue full)
  std::uint64_t expired = 0;    ///< deadline passed while queued
  std::uint64_t completed = 0;  ///< popped live and handed to a worker
  std::uint64_t cancelled = 0;  ///< removed while queued by Ticket::cancel
  std::uint64_t aged = 0;       ///< class promotions granted
  /// Currently queued (point-in-time), by submitted class — an aged Bulk
  /// entry still counts as Bulk here.
  std::size_t pending = 0;
  /// Admission-to-pop wait percentiles in milliseconds over the most
  /// recent dequeues (completed and expired alike; cancelled entries
  /// never reached a worker and are not sampled); 0 with no samples.
  double wait_ms_p50 = 0.0;
  double wait_ms_p90 = 0.0;
  double wait_ms_p99 = 0.0;
};

struct QueueStats {
  std::array<ClassQueueStats, kPriorityClasses> by_class;

  [[nodiscard]] const ClassQueueStats& of(Priority cls) const {
    return by_class[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const ClassQueueStats& c : by_class) n += c.pending;
    return n;
  }
};

class RequestQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// One admitted request: the work item plus the ticket state its
  /// submitter holds. The queue moves entries around; the service
  /// settles the tickets (except kQueueFull/kCancelled, above).
  struct Entry {
    ScheduleRequest request;
    std::shared_ptr<detail::TicketState> ticket;
    Priority submitted = Priority::kBatch;  ///< class at admission
    Clock::time_point admitted{};
    /// Absolute deadline; time_point::max() = none.
    Clock::time_point deadline = Clock::time_point::max();
  };

  struct PopResult {
    /// The most urgent live entry, if any.
    std::optional<Entry> entry;
    /// Entries whose deadline lapsed while queued; the caller must answer
    /// each with kDeadlineExpired. Already counted as `expired`.
    std::vector<Entry> expired;
  };

  explicit RequestQueue(RequestQueueConfig config = {});

  /// Admits `req` under its own priority/deadline_ms fields and returns
  /// its cancellation sequence. On rejection (queue full) settles the
  /// ticket with the typed kQueueFull error itself and returns
  /// std::nullopt — the caller must not enqueue a worker for a rejected
  /// push.
  std::optional<std::uint64_t> push(
      ScheduleRequest req, std::shared_ptr<detail::TicketState> ticket);

  /// Ages, expires, and takes the most urgent live entry (none when the
  /// queue is empty or everything pending just expired). Never blocks.
  PopResult pop();

  /// Removes the entry admitted as `seq` iff it is still queued, counts
  /// it as cancelled, and settles its ticket with kCancelled. Returns
  /// false when no such entry is pending (already popped, already
  /// cancelled, or never admitted).
  bool cancel(std::uint64_t seq);

  [[nodiscard]] QueueStats stats() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] const RequestQueueConfig& config() const { return config_; }

 private:
  /// EDF position within a class: deadline, then admission order.
  struct EdfKey {
    Clock::time_point deadline;
    std::uint64_t seq;
    bool operator<(const EdfKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return seq < o.seq;
    }
  };

  struct Stored {
    Entry entry;
    Clock::time_point last_aged{};  ///< admission, reset on each promotion
  };

  struct Bucket {
    std::map<EdfKey, Stored> items;
    /// Aging index: last_aged -> position in `items`.
    std::multimap<Clock::time_point, EdfKey> by_age;
  };

  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t expired = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t aged = 0;
  };

  Bucket& bucket(int cls) { return buckets_[static_cast<std::size_t>(cls)]; }
  Counters& counters(Priority cls) {
    return counters_[static_cast<std::size_t>(cls)];
  }
  /// Promotes every due entry one class (config_.age_after elapsed since
  /// its last promotion or admission). Called under mutex_.
  void age_pending(Clock::time_point now);
  /// Removes `key` from bucket `cls` (items + aging index + cancel
  /// index + pending counters) and returns the stored entry. Called
  /// under mutex_.
  Stored remove_stored(int cls, const EdfKey& key);
  /// Records an admission-to-pop wait sample for percentile reporting.
  void record_wait(Priority cls, Clock::time_point admitted,
                   Clock::time_point now);

  RequestQueueConfig config_;
  mutable std::mutex mutex_;
  std::array<Bucket, kPriorityClasses> buckets_;
  std::array<Counters, kPriorityClasses> counters_;
  /// Cancellation index: seq -> (current class, EDF deadline), enough to
  /// rebuild the EdfKey and find the entry wherever aging moved it.
  std::unordered_map<std::uint64_t, std::pair<int, Clock::time_point>>
      by_seq_;
  /// Ring buffers of recent wait samples (ms), one per class.
  std::array<std::vector<double>, kPriorityClasses> wait_samples_;
  std::array<std::size_t, kPriorityClasses> wait_next_{};
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
  std::array<std::size_t, kPriorityClasses> pending_by_class_{};

  static constexpr std::size_t kWaitSampleCap = 8192;
};

}  // namespace treesched

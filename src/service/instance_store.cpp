#include "service/instance_store.hpp"

#include <bit>
#include <utility>

#include "util/hash.hpp"

namespace treesched {

namespace {

struct HashAcc {
  std::uint64_t state = 0x5eed5eed5eed5eedULL;
  void feed(std::uint64_t v) { state = mix64(state ^ v); }
};

}  // namespace

TreeHash tree_fingerprint(const Tree& tree) {
  HashAcc acc;
  const NodeId n = tree.size();
  acc.feed(static_cast<std::uint64_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    acc.feed(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(tree.parent(i))));
    acc.feed(tree.output_size(i));
    acc.feed(tree.exec_size(i));
    acc.feed(std::bit_cast<std::uint64_t>(tree.work(i)));
  }
  return acc.state;
}

bool trees_identical(const Tree& a, const Tree& b) {
  if (a.size() != b.size()) return false;
  for (NodeId i = 0; i < a.size(); ++i) {
    // Work compares bitwise, matching tree_fingerprint: floating == would
    // make a NaN-weighted tree unequal to itself and defeat interning.
    if (a.parent(i) != b.parent(i) || a.output_size(i) != b.output_size(i) ||
        a.exec_size(i) != b.exec_size(i) ||
        std::bit_cast<std::uint64_t>(a.work(i)) !=
            std::bit_cast<std::uint64_t>(b.work(i))) {
      return false;
    }
  }
  return true;
}

TreeHandle InstanceStore::intern(Tree tree) {
  const TreeHash hash = tree_fingerprint(tree);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, end] = by_hash_.equal_range(hash);
  for (; it != end; ++it) {
    if (trees_identical(*it->second.tree, tree)) {
      ++hits_;
      return it->second;
    }
  }
  ++misses_;
  const TreeHandle handle{std::make_shared<const Tree>(std::move(tree)),
                          hash, ++next_uid_};
  by_hash_.emplace(hash, handle);
  return handle;
}

InstanceStore::Stats InstanceStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {by_hash_.size(), hits_, misses_};
}

std::size_t InstanceStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_hash_.size();
}

void InstanceStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  by_hash_.clear();
}

}  // namespace treesched

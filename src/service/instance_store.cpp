#include "service/instance_store.hpp"

#include <bit>
#include <string>
#include <utility>

#include "util/hash.hpp"

namespace treesched {

namespace {

struct HashAcc {
  std::uint64_t state = 0x5eed5eed5eed5eedULL;
  void feed(std::uint64_t v) { state = mix64(state ^ v); }
};

}  // namespace

TreeHash tree_fingerprint(const Tree& tree) {
  HashAcc acc;
  const NodeId n = tree.size();
  acc.feed(static_cast<std::uint64_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    acc.feed(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(tree.parent(i))));
    acc.feed(tree.output_size(i));
    acc.feed(tree.exec_size(i));
    acc.feed(std::bit_cast<std::uint64_t>(tree.work(i)));
  }
  return acc.state;
}

bool trees_identical(const Tree& a, const Tree& b) {
  if (a.size() != b.size()) return false;
  for (NodeId i = 0; i < a.size(); ++i) {
    // Work compares bitwise, matching tree_fingerprint: floating == would
    // make a NaN-weighted tree unequal to itself and defeat interning.
    if (a.parent(i) != b.parent(i) || a.output_size(i) != b.output_size(i) ||
        a.exec_size(i) != b.exec_size(i) ||
        std::bit_cast<std::uint64_t>(a.work(i)) !=
            std::bit_cast<std::uint64_t>(b.work(i))) {
      return false;
    }
  }
  return true;
}

std::size_t tree_bytes(const Tree& tree) {
  // Per node: parent id, output/exec sizes, work, one CSR child slot and
  // one child_begin offset. Sizes, not capacities — close enough for a
  // budget that guards against unbounded growth, and independent of
  // allocator rounding.
  const auto n = static_cast<std::size_t>(tree.size());
  return sizeof(Tree) +
         n * (2 * sizeof(NodeId) + 2 * sizeof(MemSize) + sizeof(double) +
              sizeof(NodeId));
}

InstanceStore::InstanceStore(InstanceStoreConfig config) : config_(config) {}

Result<TreeHandle, ServiceError> InstanceStore::try_intern(Tree tree) {
  const TreeHash hash = tree_fingerprint(tree);
  const std::size_t cost = tree_bytes(tree);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, end] = by_hash_.equal_range(hash);
  for (; it != end; ++it) {
    if (trees_identical(*it->second.tree, tree)) {
      ++hits_;
      return it->second;
    }
  }
  if (config_.max_bytes != 0 && bytes_ + cost > config_.max_bytes) {
    ++rejected_;
    return ServiceError{
        ErrorCode::kStoreFull,
        "instance store full: " + std::to_string(bytes_) + " bytes held + " +
            std::to_string(cost) + " for this tree exceeds the " +
            std::to_string(config_.max_bytes) + "-byte budget",
        nullptr};
  }
  ++misses_;
  bytes_ += cost;
  const TreeHandle handle{std::make_shared<const Tree>(std::move(tree)),
                          hash, ++next_uid_};
  by_hash_.emplace(hash, handle);
  return handle;
}

TreeHandle InstanceStore::intern(Tree tree) {
  Result<TreeHandle, ServiceError> result = try_intern(std::move(tree));
  if (!result.ok()) throw_error(result.error());
  return std::move(result).value();
}

InstanceStore::Stats InstanceStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {by_hash_.size(), hits_, misses_, rejected_, bytes_};
}

std::size_t InstanceStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_hash_.size();
}

void InstanceStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  by_hash_.clear();
  bytes_ = 0;
}

}  // namespace treesched

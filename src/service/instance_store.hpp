#pragma once
// Tree interning for the scheduling service (layer 1 of src/service/).
//
// Trees are identified by a 64-bit content fingerprint over structure and
// weights; interning a tree whose fingerprint (and, on the rare collision,
// full content) matches an already-stored instance returns a handle to the
// shared immutable copy instead of storing a duplicate. Every downstream
// layer — the result cache key, in-flight deduplication, request logs —
// speaks fingerprints, never tree copies.
//
// The store can be byte-budgeted (InstanceStoreConfig::max_bytes): an
// intern that would push the held bytes past the budget is rejected with
// the typed StoreFull error through the Result path instead of growing
// without bound — a service fed unboundedly many distinct trees stays
// bounded. Already-interned trees always resolve (a hit stores nothing).

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/tree.hpp"
#include "service/errors.hpp"
#include "util/result.hpp"

namespace treesched {

using TreeHash = std::uint64_t;

/// Content fingerprint of `tree`: parents, output/exec sizes, and the bit
/// patterns of the work values, mixed with splitmix64. Structural and
/// weight changes both change the hash; node order matters (two
/// relabelings of the same tree are distinct instances).
///
/// The fingerprint is 64 bits, and at production scale that is NOT
/// collision-free: the birthday bound puts 50% collision odds near 2^32
/// distinct trees, and an adversary who knows the (unkeyed, invertible)
/// mixer can construct colliding pairs outright — tests do exactly that.
/// Every consumer must therefore treat it as a ROUTING key, never an
/// identity:
///  * intern time: InstanceStore::try_intern verifies full structural
///    equality (trees_identical) on every fingerprint match before
///    aliasing, so two colliding trees get two distinct uids — the
///    comparison only runs on hash matches, i.e. it is free until the
///    day a collision actually happens;
///  * cache keys: the result cache is keyed by the store-assigned uid,
///    not the fingerprint, so colliding trees can never share a cached
///    schedule;
///  * the wire: response lines spell the fingerprint (tree=<hex>) as a
///    human-checkable label only;
///  * the cluster: the router shards requests across nodes by
///    fingerprint (cluster/ring.hpp). A collision there merely lands
///    two distinct trees on the same node, where the node's own store
///    disambiguates them — placement is allowed to collide, identity is
///    not. Widening to 128 bits would shrink the placement-collision
///    rate but is deliberately NOT a correctness requirement anywhere.
[[nodiscard]] TreeHash tree_fingerprint(const Tree& tree);

/// Exact content equality (used to disambiguate fingerprint collisions).
[[nodiscard]] bool trees_identical(const Tree& a, const Tree& b);

/// Approximate in-memory footprint of `tree` (node arrays + CSR children),
/// the unit the store budget is accounted in.
[[nodiscard]] std::size_t tree_bytes(const Tree& tree);

/// A shared, immutable, interned tree plus its fingerprint and its
/// store-assigned identity.
struct TreeHandle {
  std::shared_ptr<const Tree> tree;
  TreeHash hash = 0;
  /// Unique per distinct tree within its InstanceStore (1, 2, ...;
  /// 0 = null handle). Downstream keys (result cache, in-flight dedup)
  /// use this, not the raw fingerprint, so a fingerprint collision can
  /// never alias two different trees onto one cache entry — the store
  /// disambiguates collisions by full content comparison at intern time.
  std::uint64_t uid = 0;

  explicit operator bool() const { return tree != nullptr; }
  const Tree& operator*() const { return *tree; }
  const Tree* operator->() const { return tree.get(); }
};

struct InstanceStoreConfig {
  /// Byte budget for stored trees; 0 = unbudgeted. An intern of a new
  /// (not yet stored) tree that would exceed the budget returns the
  /// typed kStoreFull error; live handles keep already-stored trees
  /// valid regardless.
  std::size_t max_bytes = 0;
};

/// Thread-safe interning store. Handles stay valid after clear(): the
/// store drops its reference, existing handles keep theirs.
class InstanceStore {
 public:
  struct Stats {
    std::size_t unique_trees = 0;  ///< distinct instances currently stored
    std::uint64_t hits = 0;        ///< interns resolved to an existing tree
    std::uint64_t misses = 0;      ///< interns that stored a new tree
    std::uint64_t rejected = 0;    ///< interns refused by the byte budget
    std::size_t bytes = 0;         ///< approximate bytes currently held
  };

  explicit InstanceStore(InstanceStoreConfig config = {});

  /// Interns `tree` (copied in when passed an lvalue, moved from an
  /// rvalue) and returns the shared handle, or the typed kStoreFull
  /// error when storing it would exceed the byte budget.
  [[nodiscard]] Result<TreeHandle, ServiceError> try_intern(Tree tree);

  /// Legacy surface: try_intern that throws StoreFull on rejection.
  TreeHandle intern(Tree tree);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const InstanceStoreConfig& config() const { return config_; }
  void clear();

 private:
  InstanceStoreConfig config_;
  mutable std::mutex mutex_;
  std::unordered_multimap<TreeHash, TreeHandle> by_hash_;
  std::uint64_t next_uid_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace treesched

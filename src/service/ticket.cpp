#include "service/ticket.hpp"

#include <utility>

#include "service/request_queue.hpp"

namespace treesched {

namespace detail {

namespace {

/// Fulfills the legacy promise from a settled result. Caller holds the
/// state mutex.
void fulfill_legacy(TicketState& state) {
  if (!state.legacy_promise.has_value() || state.legacy_fulfilled) return;
  state.legacy_fulfilled = true;
  const ServiceResult& result = *state.result;
  if (result.ok()) {
    state.legacy_promise->set_value(result.value());
  } else {
    state.legacy_promise->set_exception(to_exception(result.error()));
  }
}

ServiceError empty_ticket_error() {
  return ServiceError{ErrorCode::kBadRequest,
                      "wait on an empty ticket (not obtained from submit())",
                      nullptr};
}

}  // namespace

void complete_ticket(const std::shared_ptr<TicketState>& state,
                     ServiceResult result) {
  std::function<void(const ServiceResult&)> hook;
  {
    const std::lock_guard<std::mutex> lock(state->mutex);
    if (state->result.has_value()) return;  // already settled
    state->result.emplace(std::move(result));
    fulfill_legacy(*state);
    // Claim the completion hook under the mutex — exactly one of
    // {settler, late subscriber} ever sees it non-empty — but run it
    // after unlocking so it may touch the ticket or block.
    hook = std::move(state->on_complete);
    state->on_complete = nullptr;
  }
  state->cv.notify_all();
  if (hook) hook(*state->result);
}

}  // namespace detail

ServiceResult Ticket::wait() {
  if (!state_) return detail::empty_ticket_error();
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->result.has_value(); });
  return *state_->result;
}

std::optional<ServiceResult> Ticket::wait_for(
    std::chrono::milliseconds timeout) {
  if (!state_) return detail::empty_ticket_error();
  std::unique_lock<std::mutex> lock(state_->mutex);
  if (!state_->cv.wait_for(lock, timeout,
                           [&] { return state_->result.has_value(); })) {
    return std::nullopt;
  }
  return *state_->result;
}

std::optional<ServiceResult> Ticket::try_get() {
  if (!state_) return detail::empty_ticket_error();
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (!state_->result.has_value()) return std::nullopt;
  return *state_->result;
}

bool Ticket::cancel() {
  if (!state_ || !queue_) return false;
  // The queue arbitrates the race against worker pickup under its own
  // mutex: either the entry is still queued (we remove and settle it) or
  // a pop already claimed it (false, and the worker's answer stands).
  return queue_->cancel(seq_);
}

void Ticket::on_complete(std::function<void(const ServiceResult&)> fn) {
  if (!state_) {
    const ServiceResult result = detail::empty_ticket_error();
    fn(result);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->on_complete_attached) {
      throw std::logic_error(
          "Ticket::on_complete() may only be called once per ticket");
    }
    state_->on_complete_attached = true;
    if (!state_->result.has_value()) {
      state_->on_complete = std::move(fn);
      return;
    }
    // Already settled (the settle-before-subscribe race): fall through
    // and invoke on this thread, outside the lock.
  }
  fn(*state_->result);
}

std::future<ScheduleResponse> Ticket::legacy_future() {
  if (!state_) {
    std::promise<ScheduleResponse> promise;
    promise.set_exception(to_exception(detail::empty_ticket_error()));
    return promise.get_future();
  }
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->legacy_promise.has_value()) {
    // The shared promise is single-shot; fail with a clear message
    // instead of leaking std::future_error from deep inside.
    throw std::logic_error(
        "Ticket::legacy_future() may only be called once per ticket");
  }
  std::future<ScheduleResponse> future =
      state_->legacy_promise.emplace().get_future();
  if (state_->result.has_value()) detail::fulfill_legacy(*state_);
  return future;
}

}  // namespace treesched

#include "service/result_cache.hpp"

#include <functional>
#include <stdexcept>
#include <utility>

#include "service/concurrent_map.hpp"
#include "util/hash.hpp"

namespace treesched {

std::size_t ResultKeyHash::operator()(const ResultKey& k) const noexcept {
  std::uint64_t h = mix64(k.tree_uid);
  h = mix64(h ^ std::hash<std::string>{}(k.algo));
  h = mix64(h ^ static_cast<std::uint64_t>(k.p));
  h = mix64(h ^ k.memory_cap);
  return static_cast<std::size_t>(h);
}

CacheBackend parse_cache_backend(const std::string& name) {
  if (name == "mutex") return CacheBackend::kMutex;
  if (name == "lockfree") return CacheBackend::kLockFree;
  throw std::invalid_argument("unknown cache backend \"" + name +
                              "\" (mutex|lockfree)");
}

const char* to_string(CacheBackend backend) {
  return backend == CacheBackend::kLockFree ? "lockfree" : "mutex";
}

ResultCache::ResultCache(std::size_t byte_budget, unsigned shards)
    : byte_budget_(byte_budget) {
  if (shards == 0) shards = 1;
  shard_budget_ = byte_budget_ == 0 ? 0 : std::max<std::size_t>(byte_budget_ / shards, 1);
  shards_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::ResultCache(const ResultCacheConfig& config)
    : ResultCache(config.byte_budget, config.shards) {
  backend_ = config.backend;
  if (backend_ == CacheBackend::kLockFree) {
    lockfree_ = std::make_unique<ConcurrentResultMap>(byte_budget_);
  }
}

ResultCache::~ResultCache() = default;

ResultCache::Shard& ResultCache::shard_for(const ResultKey& key) {
  // Re-mix the map hash so shard choice and in-shard bucket choice use
  // independent bits.
  const std::uint64_t h = mix64(ResultKeyHash{}(key) ^ 0xc0ffee1234abcdefULL);
  return *shards_[h % shards_.size()];
}

CachedResultPtr ResultCache::get(const ResultKey& key) {
  if (lockfree_) return lockfree_->get(key);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

CachedResultPtr ResultCache::peek(const ResultKey& key) {
  if (lockfree_) return lockfree_->peek(key);
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ResultCache::put(const ResultKey& key, CachedResultPtr value) {
  if (!enabled() || !value) return;
  if (lockfree_) {
    lockfree_->put(key, std::move(value));
    return;
  }
  const std::size_t cost = value->bytes();
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Overwrite in place (same key recomputed, e.g. after clear() raced a
    // concurrent compute). Keeps the LRU position fresh.
    shard.bytes -= it->second->second->bytes();
    shard.bytes += cost;
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += cost;
    ++shard.insertions;
  }
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const auto victim = std::prev(shard.lru.end());
    shard.bytes -= victim->second->bytes();
    shard.map.erase(victim->first);
    shard.lru.erase(victim);
    ++shard.evictions;
  }
}

CacheStats ResultCache::stats() const {
  if (lockfree_) return lockfree_->stats();
  CacheStats out;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.insertions += shard->insertions;
    out.entries += shard->map.size();
    out.bytes += shard->bytes;
  }
  return out;
}

void ResultCache::clear() {
  if (lockfree_) {
    lockfree_->clear();
    return;
  }
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

}  // namespace treesched

#include "service/request_view.hpp"

#include <charconv>

namespace treesched {

namespace {

constexpr std::string_view kSpace = " \t\r\n\v\f";

/// Pops the next whitespace-delimited token; empty view when exhausted.
std::string_view next_token(std::string_view& rest) {
  const std::size_t start = rest.find_first_not_of(kSpace);
  if (start == std::string_view::npos) {
    rest = {};
    return {};
  }
  std::size_t end = rest.find_first_of(kSpace, start);
  if (end == std::string_view::npos) end = rest.size();
  const std::string_view token = rest.substr(start, end - start);
  rest.remove_prefix(end);
  return token;
}

bool parse_u64(std::string_view key, std::string_view value,
               std::uint64_t& out, std::string& error) {
  // Digits only: from_chars would accept nothing else anyway, but the
  // explicit scan keeps "-5" and "0x10" rejections message-for-message
  // aligned with the v2 parser.
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string_view::npos) {
    error = std::string(key) + " \"" + std::string(value) +
            "\" is not a non-negative integer";
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    error = std::string(key) + " \"" + std::string(value) +
            "\" does not fit 64 bits";
    return false;
  }
  return true;
}

bool parse_int_token(std::string_view token, int& out) {
  // istream extraction accepts an optional leading '+'; from_chars does
  // not — strip it so the two parsers accept the same tokens.
  if (!token.empty() && token.front() == '+') token.remove_prefix(1);
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parse_positive_double(std::string_view value, double& out) {
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  return ec == std::errc() && ptr == value.data() + value.size() &&
         out > 0.0;
}

/// `cancel id=<n>` / `ping [id=<n>]` / `stats [id=<n>]`: the verb plus
/// (depending on `id_required`) an id tag, nothing else.
bool parse_control_view(std::string_view verb, RequestLine::Kind kind,
                        bool id_required, std::string_view rest,
                        RequestView& out, std::string& error) {
  out.kind = kind;
  for (std::string_view token = next_token(rest); !token.empty();
       token = next_token(rest)) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || token.substr(0, eq) != "id") {
      error = std::string(verb) +
              (id_required ? " line must be: cancel id=<n> (got \""
                           : " line must carry only [id=<n>] (got \"") +
              std::string(token) + "\")";
      return false;
    }
    if (out.id) {
      error = "duplicate request field \"id\"";
      return false;
    }
    std::uint64_t id = 0;
    if (!parse_u64("id", token.substr(eq + 1), id, error)) return false;
    out.id = id;
  }
  if (id_required && !out.id) {
    error = "cancel line must name a request: cancel id=<n>";
    return false;
  }
  return true;
}

/// `trace start|stop|status|pull [id=<n>]` / `trace dump=<path>
/// [id=<n>]`, acceptance-identical to the v2 parse_trace_line.
bool parse_trace_view(std::string_view rest, RequestView& out,
                      std::string& error) {
  out.kind = RequestLine::Kind::kTrace;
  for (std::string_view token = next_token(rest); !token.empty();
       token = next_token(rest)) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      if (!out.trace_action.empty()) {
        error = "trailing token \"" + std::string(token) + "\"";
        return false;
      }
      if (token != "start" && token != "stop" && token != "status" &&
          token != "pull") {
        error =
            "trace line must be: trace start|stop|status|pull|dump=<path> "
            "[id=<n>] (got \"" + std::string(token) + "\")";
        return false;
      }
      out.trace_action = token;
      continue;
    }
    const std::string_view key = token.substr(0, eq);
    if (key == "id") {
      if (out.id) {
        error = "duplicate request field \"id\"";
        return false;
      }
      std::uint64_t id = 0;
      if (!parse_u64("id", token.substr(eq + 1), id, error)) return false;
      out.id = id;
      continue;
    }
    if (key == "dump") {
      if (!out.trace_action.empty()) {
        error = "duplicate trace action \"" + std::string(token) + "\"";
        return false;
      }
      out.trace_path = token.substr(eq + 1);
      if (out.trace_path.empty()) {
        error = "trace dump= needs a path";
        return false;
      }
      out.trace_action = "dump";
      continue;
    }
    error = "unknown trace field \"" + std::string(key) +
            "\" (known fields: dump, id)";
    return false;
  }
  if (out.trace_action.empty()) {
    error =
        "trace line must name an action: "
        "trace start|stop|status|pull|dump=<path>";
    return false;
  }
  return true;
}

}  // namespace

bool parse_request_view(std::string_view line, RequestView& out,
                        std::string& error) {
  out = RequestView{};
  std::string_view rest = line;
  out.tree_spec = next_token(rest);
  if (out.tree_spec.empty()) {
    error = "empty request line";
    return false;
  }
  // The verb is not a tree spec — clear the field so a control-line
  // view is indistinguishable from the v2 parser's output.
  if (out.tree_spec == "cancel") {
    out.tree_spec = {};
    return parse_control_view("cancel", RequestLine::Kind::kCancel,
                              /*id_required=*/true, rest, out, error);
  }
  if (out.tree_spec == "ping") {
    out.tree_spec = {};
    return parse_control_view("ping", RequestLine::Kind::kPing,
                              /*id_required=*/false, rest, out, error);
  }
  if (out.tree_spec == "stats") {
    out.tree_spec = {};
    return parse_control_view("stats", RequestLine::Kind::kStats,
                              /*id_required=*/false, rest, out, error);
  }
  if (out.tree_spec == "trace") {
    out.tree_spec = {};
    return parse_trace_view(rest, out, error);
  }

  out.algo = next_token(rest);
  const std::string_view p_token = next_token(rest);
  if (out.algo.empty() || p_token.empty() ||
      !parse_int_token(p_token, out.p)) {
    error =
        "request line must be: <tree-spec> <algo> <p> [<memory-cap>] "
        "[priority=...] [deadline_ms=...] [id=...] | cancel id=<n>";
    return false;
  }

  bool saw_cap = false;
  bool saw_named = false;
  // Known named fields, tracked as bits — an unknown key errors outright,
  // so a three-bit mask is a complete duplicate detector.
  bool seen_priority = false, seen_deadline = false, seen_id = false;
  for (std::string_view token = next_token(rest); !token.empty();
       token = next_token(rest)) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      if (saw_named || saw_cap) {
        error = "trailing token \"" + std::string(token) + "\"";
        return false;
      }
      if (!parse_u64("memory cap", token, out.memory_cap, error)) {
        return false;
      }
      saw_cap = true;
      continue;
    }
    saw_named = true;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "priority") {
      if (seen_priority) {
        error = "duplicate request field \"priority\"";
        return false;
      }
      seen_priority = true;
      const auto cls = parse_priority(value);
      if (!cls) {
        error = "priority \"" + std::string(value) +
                "\" (want interactive|batch|bulk)";
        return false;
      }
      out.priority = *cls;
    } else if (key == "deadline_ms") {
      if (seen_deadline) {
        error = "duplicate request field \"deadline_ms\"";
        return false;
      }
      seen_deadline = true;
      if (!parse_positive_double(value, out.deadline_ms)) {
        error = "deadline_ms \"" + std::string(value) +
                "\" is not a positive number";
        return false;
      }
    } else if (key == "id") {
      if (seen_id) {
        error = "duplicate request field \"id\"";
        return false;
      }
      seen_id = true;
      std::uint64_t id = 0;
      if (!parse_u64("id", value, id, error)) return false;
      out.id = id;
    } else {
      error = "unknown request field \"" + std::string(key) +
              "\" (known fields: priority, deadline_ms, id)";
      return false;
    }
  }
  return true;
}

RequestView as_view(const RequestLine& line) {
  RequestView view;
  view.kind = line.kind;
  view.id = line.id;
  view.tree_spec = line.tree_spec;
  view.algo = line.algo;
  view.p = line.p;
  view.memory_cap = line.memory_cap;
  view.priority = line.priority;
  view.deadline_ms = line.deadline_ms;
  view.trace_action = line.trace_action;
  view.trace_path = line.trace_path;
  return view;
}

}  // namespace treesched

#pragma once
// The scheduling service (layer 3 of src/service/): a high-throughput
// request engine over the SchedulerRegistry.
//
//   request --> intern tree --> cache lookup --> hit? answer
//                                  |
//                                miss --> in-flight table: someone already
//                                         computing this key? wait for them
//                                  |
//                                first --> registry scheduler + simulator,
//                                          insert into cache, wake waiters
//
// Two submission surfaces share that engine:
//  * synchronous — schedule() / schedule_batch() answer immediately on the
//    calling thread (plus the shared pool for batches), ignoring priority;
//  * queued — schedule_async() / schedule_prioritized() admit the request
//    into a deadline-aware priority queue (service/request_queue.hpp) and
//    answer through a future. Whenever a pool worker frees up it takes the
//    most urgent admitted request (Interactive before Batch before Bulk,
//    EDF within a class, aging against starvation), so interactive probes
//    overtake a backlog of bulk work, and requests whose deadline lapsed
//    in the queue are answered with the typed DeadlineExpired error
//    without ever running a scheduler.
//
// Guarantees:
//  * Determinism: a response carries exactly the (makespan, peak memory,
//    schedule) a direct SchedulerRegistry call would produce — schedulers
//    are deterministic, results are computed once and shared. Priority
//    and deadline fields are never part of the cache key: they change
//    when a request is answered, not what the answer is.
//  * Deduplication: identical (tree, algo, p, cap) work in flight at the
//    same time is computed once; concurrent duplicates block until the
//    computing thread publishes. Sequential-only algorithms normalize
//    p to 1 in the key, so a cross-p sweep hits one entry. With the
//    cache disabled (cache_bytes = 0) there is no sharing of any kind:
//    every request pays its own compute — the honest uncached baseline.
//  * Failure isolation: schedule() throws what the scheduler threw;
//    schedule_batch() captures per-request errors into the response so one
//    bad request cannot poison a batch; schedule_async() delivers the
//    exception through the future. Failed computations are never cached,
//    and waiters on a failed in-flight computation receive the same
//    exception.

#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/registry.hpp"
#include "service/instance_store.hpp"
#include "service/request.hpp"
#include "service/request_queue.hpp"
#include "service/result_cache.hpp"

namespace treesched {

struct ServiceConfig {
  /// Result-cache budget; 0 disables caching (every request recomputes).
  std::size_t cache_bytes = ResultCache::kDefaultByteBudget;
  unsigned cache_shards = 16;
  /// Parallelism for schedule_batch (0 = the shared thread pool's size).
  unsigned threads = 0;
  /// Validate every computed schedule (sched/validate.hpp, including the
  /// request's memory cap) before caching it — defense in depth at ~2x
  /// compute cost; off by default, the simulator already rejects
  /// precedence violations.
  bool validate = false;
  /// Admission-queue tuning for the schedule_async path.
  RequestQueueConfig queue;
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceConfig config = {});

  /// Waits for every admitted async request to be answered (their futures
  /// all become ready) before tearing down.
  ~SchedulingService();

  /// Interns a tree into the instance store; the handle is what requests
  /// carry. Repeated interns of identical trees share one instance.
  TreeHandle intern(Tree tree);

  /// Answers one request synchronously, bypassing the admission queue.
  /// Throws std::invalid_argument on an unknown algorithm, invalid
  /// resources, an un-interned (null) tree handle, or whatever the
  /// scheduler itself throws.
  ScheduleResponse schedule(const ScheduleRequest& req);

  /// Answers a batch, in request order, fanning out over the shared
  /// thread pool. Per-request failures land in ScheduleResponse::error.
  /// FIFO: priority/deadline fields are ignored on this path.
  std::vector<ScheduleResponse> schedule_batch(
      const std::vector<ScheduleRequest>& reqs);

  /// Admits `req` into the priority queue under its priority/deadline_ms
  /// fields and returns the future of its response. The future throws
  /// what schedule() would throw, DeadlineExpired when the deadline
  /// lapsed before a worker picked the request up, or QueueFull when the
  /// queue bound turned it away at admission. Called from a pool worker
  /// (a nested fan-out), the request is computed synchronously instead of
  /// queued — the worker participates like a parallel_for caller, which
  /// rules out self-deadlock; such requests never wait and never appear
  /// in queue_stats().
  std::future<ScheduleResponse> schedule_async(ScheduleRequest req);

  /// Priority-aware batch: admits every request through the queue, waits
  /// for all of them, and returns responses in request order with
  /// failures (including DeadlineExpired) captured per-request in
  /// ScheduleResponse::error.
  std::vector<ScheduleResponse> schedule_prioritized(
      const std::vector<ScheduleRequest>& reqs);

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] QueueStats queue_stats() const { return queue_.stats(); }
  [[nodiscard]] InstanceStore::Stats store_stats() const {
    return store_.stats();
  }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// Drops all cached results (counters survive; interned trees stay).
  void clear_cache() { cache_.clear(); }

 private:
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    CachedResultPtr result;
    std::exception_ptr error;
  };

  /// The (stateless, shared) scheduler for `algo`, created through the
  /// registry on first use.
  std::shared_ptr<const Scheduler> resolve(const std::string& algo);

  /// Cache identity of `req` (normalizes p for sequential-only algos).
  ResultKey key_for(const ScheduleRequest& req, const Scheduler& sched) const;

  /// Computes (or waits for a concurrent twin computing) `key`.
  /// `shared_from_twin` is set when the result came from a concurrent
  /// twin's computation rather than our own.
  CachedResultPtr compute_deduplicated(const ResultKey& key,
                                       const ScheduleRequest& req,
                                       const Scheduler& sched,
                                       bool& shared_from_twin);
  CachedResultPtr compute(const ScheduleRequest& req, const Scheduler& sched);

  /// Services one admission-queue pop: answers every expired entry with
  /// DeadlineExpired and computes the live one, if any. One call per
  /// admitted entry is enqueued on the shared pool; any call may answer a
  /// request other than the one whose admission enqueued it — that is
  /// what makes class preemption work on a FIFO pool.
  void drain_one();

  ServiceConfig config_;
  InstanceStore store_;
  ResultCache cache_;
  RequestQueue queue_;

  /// Read-mostly after warm-up: every request resolves its scheduler, so
  /// the found path takes only a shared lock.
  mutable std::shared_mutex schedulers_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Scheduler>>
      schedulers_;

  std::mutex inflight_mutex_;
  std::unordered_map<ResultKey, std::shared_ptr<InFlight>, ResultKeyHash>
      inflight_;

  /// Active servicers — pool-submitted drain jobs plus in-progress inline
  /// worker drains, each registered before its entry is admitted; the
  /// destructor waits for zero so nothing outlives the service.
  std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::size_t async_outstanding_ = 0;
};

}  // namespace treesched

#pragma once
// The scheduling service (layer 3 of src/service/): a high-throughput
// request engine over the SchedulerRegistry.
//
//   request --> intern tree --> cache lookup --> hit? answer
//                                  |
//                                miss --> in-flight table: someone already
//                                         computing this key? wait for them
//                                  |
//                                first --> registry scheduler + simulator,
//                                          insert into cache, wake waiters
//
// Guarantees:
//  * Determinism: a response carries exactly the (makespan, peak memory,
//    schedule) a direct SchedulerRegistry call would produce — schedulers
//    are deterministic, results are computed once and shared.
//  * Deduplication: identical (tree, algo, p, cap) work in flight at the
//    same time is computed once; concurrent duplicates block until the
//    computing thread publishes. Sequential-only algorithms normalize
//    p to 1 in the key, so a cross-p sweep hits one entry. With the
//    cache disabled (cache_bytes = 0) there is no sharing of any kind:
//    every request pays its own compute — the honest uncached baseline.
//  * Failure isolation: schedule() throws what the scheduler threw;
//    schedule_batch() captures per-request errors into the response so one
//    bad request cannot poison a batch. Failed computations are never
//    cached, and waiters on a failed in-flight computation receive the
//    same exception.

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/registry.hpp"
#include "service/instance_store.hpp"
#include "service/result_cache.hpp"

namespace treesched {

struct ServiceConfig {
  /// Result-cache budget; 0 disables caching (every request recomputes).
  std::size_t cache_bytes = ResultCache::kDefaultByteBudget;
  unsigned cache_shards = 16;
  /// Parallelism for schedule_batch (0 = the shared thread pool's size).
  unsigned threads = 0;
  /// Validate every computed schedule before caching it (defense in depth
  /// at ~2x compute cost; off by default, the simulator already rejects
  /// precedence violations).
  bool validate = false;
};

struct ScheduleRequest {
  TreeHandle tree;        ///< interned via SchedulingService::intern()
  std::string algo;       ///< SchedulerRegistry name
  int p = 1;              ///< processors (Resources::p)
  MemSize memory_cap = 0; ///< Resources::memory_cap
  /// Fill ScheduleResponse::schedule (the full start/proc vectors) rather
  /// than just the scores.
  bool want_schedule = false;
};

struct ScheduleResponse {
  double makespan = 0.0;
  MemSize peak_memory = 0;
  bool cache_hit = false;  ///< answered from cache (or a concurrent twin)
  /// Shares the cached result's schedule; only set when want_schedule.
  std::shared_ptr<const Schedule> schedule;
  /// schedule_batch only: empty on success, the error text otherwise (the
  /// scores are meaningless when set). schedule() throws instead.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceConfig config = {});

  /// Interns a tree into the instance store; the handle is what requests
  /// carry. Repeated interns of identical trees share one instance.
  TreeHandle intern(Tree tree);

  /// Answers one request. Throws std::invalid_argument on an unknown
  /// algorithm, invalid resources, an un-interned (null) tree handle, or
  /// whatever the scheduler itself throws.
  ScheduleResponse schedule(const ScheduleRequest& req);

  /// Answers a batch, in request order, fanning out over the shared
  /// thread pool. Per-request failures land in ScheduleResponse::error.
  std::vector<ScheduleResponse> schedule_batch(
      const std::vector<ScheduleRequest>& reqs);

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] InstanceStore::Stats store_stats() const {
    return store_.stats();
  }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// Drops all cached results (counters survive; interned trees stay).
  void clear_cache() { cache_.clear(); }

 private:
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    CachedResultPtr result;
    std::exception_ptr error;
  };

  /// The (stateless, shared) scheduler for `algo`, created through the
  /// registry on first use.
  std::shared_ptr<const Scheduler> resolve(const std::string& algo);

  /// Cache identity of `req` (normalizes p for sequential-only algos).
  ResultKey key_for(const ScheduleRequest& req, const Scheduler& sched) const;

  /// Computes (or waits for a concurrent twin computing) `key`.
  /// `shared_from_twin` is set when the result came from a concurrent
  /// twin's computation rather than our own.
  CachedResultPtr compute_deduplicated(const ResultKey& key,
                                       const ScheduleRequest& req,
                                       const Scheduler& sched,
                                       bool& shared_from_twin);
  CachedResultPtr compute(const ScheduleRequest& req, const Scheduler& sched);

  ServiceConfig config_;
  InstanceStore store_;
  ResultCache cache_;

  /// Read-mostly after warm-up: every request resolves its scheduler, so
  /// the found path takes only a shared lock.
  mutable std::shared_mutex schedulers_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Scheduler>>
      schedulers_;

  std::mutex inflight_mutex_;
  std::unordered_map<ResultKey, std::shared_ptr<InFlight>, ResultKeyHash>
      inflight_;
};

}  // namespace treesched

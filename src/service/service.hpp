#pragma once
// The scheduling service (layer 3 of src/service/): a high-throughput
// request engine over the SchedulerRegistry, with ONE submission path:
//
//   Ticket t = service.submit(req);   // every request goes through here
//   ServiceResult r = t.wait();       // response, or typed ServiceError
//
// submit() admits the request into the deadline-aware priority queue
// (service/request_queue.hpp) under its priority/deadline_ms fields and
// pairs it with one thread-pool job; whenever a pool worker frees up it
// takes the most urgent admitted request (Interactive before Batch
// before Bulk, EDF within a class, aging against starvation). The
// compute engine behind it is unchanged:
//
//   request --> intern tree --> cache lookup --> hit? answer
//                                  |
//                                miss --> in-flight table: someone already
//                                         computing this key? wait for them
//                                  |
//                                first --> registry scheduler + simulator,
//                                          insert into cache, wake waiters
//
// Failures are values: a ticket resolves to Result<ScheduleResponse,
// ServiceError> with a machine-readable code (service/errors.hpp) —
// kUnknownAlgorithm, kInvalidResources, kDeadlineExpired, kQueueFull,
// kCancelled, kSchedulerFailure, kStoreFull. Cancelling a still-queued
// ticket removes it from the queue (counted in QueueStats) and resolves
// it with kCancelled; cancelling anything else is a no-op returning
// false.
//
// The four pre-v2 entry points — schedule(), schedule_batch(),
// schedule_async(), schedule_prioritized() — are thin wrappers over
// submit() (batch = N tickets + ordered collect), so determinism, dedup,
// priority ordering and the destructor's drain guarantee are enforced in
// exactly one place. The wrappers translate errors back into the legacy
// conventions (thrown exceptions / ScheduleResponse::error).
//
// Guarantees:
//  * Determinism: a response carries exactly the (makespan, peak memory,
//    schedule) a direct SchedulerRegistry call would produce — schedulers
//    are deterministic, results are computed once and shared. Priority
//    and deadline fields are never part of the cache key: they change
//    when a request is answered, not what the answer is.
//  * Deduplication: identical (tree, algo, p, cap) work in flight at the
//    same time is computed once; concurrent duplicates block until the
//    computing thread publishes. Sequential-only algorithms normalize
//    p to 1 in the key, so a cross-p sweep hits one entry. With the
//    cache disabled (cache_bytes = 0) there is no sharing of any kind:
//    every request pays its own compute — the honest uncached baseline.
//  * Failure isolation: errors are per-ticket values; one bad request
//    cannot poison a batch. Failed computations are never cached, and
//    concurrent twins of a failed in-flight computation receive the same
//    error.
//  * Drain: the destructor waits until every admitted request has been
//    answered — it counts servicers, not tickets, so tickets abandoned
//    without wait() (and cancelled tickets) neither leak an in-flight
//    entry nor deadlock the drain.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/registry.hpp"
#include "service/instance_store.hpp"
#include "service/request.hpp"
#include "service/request_queue.hpp"
#include "service/result_cache.hpp"
#include "service/ticket.hpp"
#include "util/result.hpp"

namespace treesched {

struct ServiceConfig {
  /// Result-cache budget; 0 disables caching (every request recomputes).
  std::size_t cache_bytes = ResultCache::kDefaultByteBudget;
  unsigned cache_shards = 16;
  /// Result-cache index implementation: kMutex (sharded exact LRU, the
  /// default) or kLockFree (concurrent CLOCK map — see
  /// service/concurrent_map.hpp). Results are bit-identical either way.
  CacheBackend cache_backend = CacheBackend::kMutex;
  /// Parallelism bound for schedule_batch (0 = the shared thread pool's
  /// size via the admission queue; nonzero runs the batch exactly this
  /// wide).
  unsigned threads = 0;
  /// Validate every computed schedule (sched/validate.hpp, including the
  /// request's memory cap) before caching it — defense in depth at ~2x
  /// compute cost; off by default, the simulator already rejects
  /// precedence violations.
  bool validate = false;
  /// Admission-queue tuning (all submissions flow through the queue).
  RequestQueueConfig queue;
  /// Instance-store byte budget (0 = unbudgeted); when set, intern()
  /// throws StoreFull and try_intern() returns kStoreFull past it.
  InstanceStoreConfig store;
  /// Metrics registry the service records into (stage histograms,
  /// per-algorithm distributions) and bridges its legacy stats onto
  /// (cache/queue/store/pool collectors for the Prometheus exposition).
  /// null = the service creates a private one; share a registry to
  /// co-export front-end counters from the same scrape endpoint.
  std::shared_ptr<obs::MetricsRegistry> registry;
};

class SchedulingService {
 public:
  explicit SchedulingService(ServiceConfig config = {});

  /// Waits for every admitted request to be answered (all tickets
  /// settle) before tearing down. Tickets nobody waits on and cancelled
  /// tickets are covered: the drain counts servicer jobs, one per
  /// admission, each of which runs to completion.
  ~SchedulingService();

  /// Interns a tree into the instance store; the handle is what requests
  /// carry. Repeated interns of identical trees share one instance. A
  /// new tree past ServiceConfig::store.max_bytes is rejected with the
  /// typed kStoreFull error.
  [[nodiscard]] Result<TreeHandle, ServiceError> try_intern(Tree tree);

  /// Legacy surface of try_intern: throws StoreFull on rejection.
  TreeHandle intern(Tree tree);

  /// THE submission path: admits `req` under its priority/deadline_ms
  /// fields and returns the ticket that will resolve to its
  /// ServiceResult. Called from a pool worker (a nested fan-out), the
  /// request is computed synchronously instead of queued — the worker
  /// participates like a parallel_for caller, which rules out
  /// self-deadlock; such requests resolve immediately, are invisible to
  /// queue_stats(), and cannot be cancelled.
  [[nodiscard]] Ticket submit(ScheduleRequest req);

  /// Latency fast path: answers `req` immediately iff it is a pure
  /// result-cache hit — no admission queue, no pool job, no ticket.
  /// Safe to call from a front-end's I/O thread; a hit costs one shard
  /// lock. nullopt means "not answerable here" (cache disabled, the
  /// algorithm never resolved, resources that would fail validation, or
  /// a plain miss): fall back to submit(), which produces the typed
  /// error or computes — and records the one authoritative cache miss
  /// (a probe miss counts nothing).
  [[nodiscard]] std::optional<ScheduleResponse> try_cached(
      const ScheduleRequest& req);

  // --- legacy wrappers, all delegating to submit() ---------------------

  /// submit(req).wait(), rethrowing the legacy exception on error (the
  /// scheduler's own exception when one caused it). Unlike v1's
  /// queue-bypassing synchronous path, this flows through the admission
  /// queue: with a bounded queue (RequestQueueConfig::max_pending) it
  /// can throw QueueFull under load.
  ScheduleResponse schedule(const ScheduleRequest& req);

  /// N tickets + ordered collect; failures land per-request in
  /// ScheduleResponse::error. Deadlines are ignored on this path (the
  /// v1 batch contract — use schedule_prioritized or submit() for
  /// deadline-aware batches). With ServiceConfig::threads nonzero the
  /// batch runs that wide (worker-inline submissions); otherwise
  /// requests flow through the admission queue under their own
  /// priorities — and, unlike the v1 queue-bypassing batch, a bounded
  /// queue (max_pending) can reject items with kQueueFull.
  std::vector<ScheduleResponse> schedule_batch(
      const std::vector<ScheduleRequest>& reqs);

  /// submit(req) bridged to a std::future that throws the legacy
  /// exception on error (DeadlineExpired, QueueFull, the scheduler's
  /// own, ...).
  std::future<ScheduleResponse> schedule_async(ScheduleRequest req);

  /// N tickets through the queue + ordered collect with failures
  /// (including kDeadlineExpired) captured per-request in
  /// ScheduleResponse::error.
  std::vector<ScheduleResponse> schedule_prioritized(
      const std::vector<ScheduleRequest>& reqs);

  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] QueueStats queue_stats() const { return queue_->stats(); }
  [[nodiscard]] InstanceStore::Stats store_stats() const {
    return store_.stats();
  }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// The registry this service records into (the configured one, or the
  /// private default). Snapshot it for the Prometheus exposition; its
  /// collectors reference this service, so don't snapshot a registry
  /// that outlives the service it was configured into.
  [[nodiscard]] obs::MetricsRegistry& registry() const { return *registry_; }
  [[nodiscard]] const std::shared_ptr<obs::MetricsRegistry>&
  registry_ptr() const {
    return registry_;
  }

  /// Drops all cached results (counters survive; interned trees stay).
  void clear_cache() { cache_.clear(); }

 private:
  struct InFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    CachedResultPtr result;
    std::exception_ptr error;
  };

  /// The single enforcement point: resolves, validates, computes (via
  /// cache + in-flight dedup) and classifies every failure into a
  /// ServiceError. Never throws. Mutable `req` because it stamps the
  /// compute stages and hands the stamps back in the response.
  ServiceResult evaluate(ScheduleRequest& req);

  /// Wires the stage/algorithm histograms and the legacy-stats bridge
  /// into registry_. Called once from the constructor.
  void init_metrics();

  /// Feeds the per-class and aggregate stage histograms from a settled
  /// request's stamps (queued requests only; inline worker submissions
  /// have no admit/dequeue stamps and skip the queue stages).
  void record_stage_metrics(const ScheduleRequest& req);

  /// The (stateless, shared) scheduler for `algo`, created through the
  /// registry on first use.
  std::shared_ptr<const Scheduler> resolve(const std::string& algo);

  /// Cache identity of `req` (normalizes p for sequential-only algos).
  ResultKey key_for(const ScheduleRequest& req, const Scheduler& sched) const;

  /// Computes (or waits for a concurrent twin computing) `key`.
  /// `shared_from_twin` is set when the result came from a concurrent
  /// twin's computation rather than our own.
  CachedResultPtr compute_deduplicated(const ResultKey& key,
                                       const ScheduleRequest& req,
                                       const Scheduler& sched,
                                       bool& shared_from_twin);
  CachedResultPtr compute(const ScheduleRequest& req, const Scheduler& sched);

  /// Waits out `tickets` and folds each result into the batch response
  /// shape, in ticket order.
  static std::vector<ScheduleResponse> collect_ordered(
      std::vector<Ticket> tickets);

  /// Services one admission-queue pop: answers every expired entry with
  /// kDeadlineExpired and computes the live one, if any. One call per
  /// admitted entry is enqueued on the shared pool; any call may answer a
  /// request other than the one whose admission enqueued it — that is
  /// what makes class preemption work on a FIFO pool — and a call whose
  /// entry was cancelled finds correspondingly less work.
  void drain_one();

  ServiceConfig config_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  /// Collector liveness guard: collectors capture a weak_ptr to this and
  /// bail once the service is gone, so a shared registry that outlives
  /// the service degrades to missing samples instead of UB.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Stage histograms, indexed by priority class; [kPriorityClasses] is
  /// the class="all" aggregate (the one the decomposition test and the
  /// stats-verb quantiles read). Raw unit: nanoseconds.
  obs::Histogram* h_queue_wait_[kPriorityClasses + 1] = {};
  obs::Histogram* h_dispatch_ = nullptr;
  obs::Histogram* h_compute_[kPriorityClasses + 1] = {};
  obs::Histogram* h_e2e_[kPriorityClasses + 1] = {};
  InstanceStore store_;
  ResultCache cache_;
  /// Shared with every queued Ticket so cancel() stays safe even after
  /// the service is destroyed (the queue is drained by then, so such a
  /// cancel finds nothing and returns false).
  std::shared_ptr<RequestQueue> queue_;

  /// Read-mostly after warm-up: every request resolves its scheduler, so
  /// the found path takes only a shared lock.
  mutable std::shared_mutex schedulers_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Scheduler>>
      schedulers_;

  std::mutex inflight_mutex_;
  std::unordered_map<ResultKey, std::shared_ptr<InFlight>, ResultKeyHash>
      inflight_;

  /// Active servicers — pool-submitted drain jobs plus in-progress inline
  /// worker computations, each registered before its entry is admitted;
  /// the destructor waits for zero so nothing outlives the service.
  std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::size_t async_outstanding_ = 0;
};

/// The queue/cache/store counters a `stats` protocol line reports, in a
/// stable order — the single source both wire front-ends (stdin and
/// TCP) share, so their stats vocabularies cannot silently diverge.
/// Front-ends prepend their transport-specific keys (connection counts,
/// window depth) before these. The legacy fourteen keys lead unchanged;
/// after them come the per-class queue keys, the shared pool's
/// counters, and the stage-histogram summaries
/// (<key>_count/_p50_us/_p90_us/_p99_us) from the service's registry.
std::vector<std::pair<std::string, std::uint64_t>> service_stats_pairs(
    const SchedulingService& service);

}  // namespace treesched

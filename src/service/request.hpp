#pragma once
// Request/response vocabulary shared by the scheduling service and its
// admission queue (service/request_queue.hpp). Split out of service.hpp so
// the queue can speak requests without a circular include.
//
// Priority classes order requests at dequeue time, not at compute time:
// a running computation is never preempted, but whenever a worker frees
// up it takes the most urgent admitted request — Interactive before
// Batch before Bulk, earliest deadline first within a class.

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/schedule.hpp"
#include "service/instance_store.hpp"

namespace treesched {

/// Admission class of a request. Lower value = more urgent. kInteractive
/// is meant for latency-sensitive probes (a CLI user waiting on the
/// answer), kBatch for ordinary programmatic batches, kBulk for campaign
/// sweeps that value throughput only. Aging promotes starved lower-class
/// requests one class at a time (RequestQueueConfig::age_after).
enum class Priority : int {
  kInteractive = 0,
  kBatch = 1,
  kBulk = 2,
};

inline constexpr int kPriorityClasses = 3;

inline const char* to_string(Priority cls) {
  switch (cls) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBulk:
      return "bulk";
  }
  return "?";
}

/// Parses the wire spelling ("interactive" | "batch" | "bulk");
/// std::nullopt on anything else.
inline std::optional<Priority> parse_priority(std::string_view text) {
  if (text == "interactive") return Priority::kInteractive;
  if (text == "batch") return Priority::kBatch;
  if (text == "bulk") return Priority::kBulk;
  return std::nullopt;
}

struct ScheduleRequest {
  TreeHandle tree;        ///< interned via SchedulingService::intern()
  std::string algo;       ///< SchedulerRegistry name
  int p = 1;              ///< processors (Resources::p)
  MemSize memory_cap = 0; ///< Resources::memory_cap
  /// Fill ScheduleResponse::schedule (the full start/proc vectors) rather
  /// than just the scores.
  bool want_schedule = false;
  /// Admission class; only consulted by the queued paths (schedule_async
  /// and schedule_prioritized) — the synchronous schedule()/schedule_batch
  /// paths answer immediately regardless. Never part of the cache key.
  Priority priority = Priority::kBatch;
  /// Deadline relative to submission; <= 0 means none. A request whose
  /// deadline passes while it is still queued is answered with
  /// DeadlineExpired instead of ever reaching a compute worker.
  double deadline_ms = 0.0;
};

struct ScheduleResponse {
  double makespan = 0.0;
  MemSize peak_memory = 0;
  bool cache_hit = false;  ///< answered from cache (or a concurrent twin)
  /// Shares the cached result's schedule; only set when want_schedule.
  std::shared_ptr<const Schedule> schedule;
  /// batch paths only: empty on success, the error text otherwise (the
  /// scores are meaningless when set). schedule() and futures throw
  /// instead.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Typed admission-queue rejection, delivered through schedule_async's
/// future (or as ScheduleResponse::error on the batch path).
class QueueError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The request's deadline passed while it was queued, before any worker
/// picked it up. The scheduler was never run. Detected at dequeue time:
/// the error arrives when a worker next services the queue.
class DeadlineExpired : public QueueError {
  using QueueError::QueueError;
};

/// The queue's max_pending bound was hit; the request was turned away at
/// admission.
class QueueFull : public QueueError {
  using QueueError::QueueError;
};

}  // namespace treesched

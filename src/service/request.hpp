#pragma once
// Request/response vocabulary shared by the scheduling service, its
// admission queue (service/request_queue.hpp) and the ticket surface
// (service/ticket.hpp). Split out of service.hpp so those layers can
// speak requests without a circular include.
//
// Priority classes order requests at dequeue time, not at compute time:
// a running computation is never preempted, but whenever a worker frees
// up it takes the most urgent admitted request — Interactive before
// Batch before Bulk, earliest deadline first within a class.
//
// Failures are values: ScheduleResponse carries an optional ServiceError
// (service/errors.hpp) with a machine-readable code, and the ticket
// surface returns ServiceResult = Result<ScheduleResponse, ServiceError>.
// Callers branch on the code, never on message text.

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/schedule.hpp"
#include "obs/stages.hpp"
#include "service/errors.hpp"
#include "service/instance_store.hpp"
#include "util/result.hpp"

namespace treesched {

/// Admission class of a request. Lower value = more urgent. kInteractive
/// is meant for latency-sensitive probes (a CLI user waiting on the
/// answer), kBatch for ordinary programmatic batches, kBulk for campaign
/// sweeps that value throughput only. Aging promotes starved lower-class
/// requests one class at a time (RequestQueueConfig::age_after).
enum class Priority : int {
  kInteractive = 0,
  kBatch = 1,
  kBulk = 2,
};

inline constexpr int kPriorityClasses = 3;

inline const char* to_string(Priority cls) {
  switch (cls) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBulk:
      return "bulk";
  }
  return "?";
}

/// Parses the wire spelling ("interactive" | "batch" | "bulk");
/// std::nullopt on anything else.
inline std::optional<Priority> parse_priority(std::string_view text) {
  if (text == "interactive") return Priority::kInteractive;
  if (text == "batch") return Priority::kBatch;
  if (text == "bulk") return Priority::kBulk;
  return std::nullopt;
}

struct ScheduleRequest {
  TreeHandle tree;        ///< interned via SchedulingService::intern()
  std::string algo;       ///< SchedulerRegistry name
  int p = 1;              ///< processors (Resources::p)
  MemSize memory_cap = 0; ///< Resources::memory_cap
  /// Fill ScheduleResponse::schedule (the full start/proc vectors) rather
  /// than just the scores.
  bool want_schedule = false;
  /// Admission class. Every submission goes through the queue (except
  /// nested submissions from pool workers, which compute inline), so the
  /// class is honored uniformly across submit() and all legacy wrappers.
  /// Never part of the cache key.
  Priority priority = Priority::kBatch;
  /// Deadline relative to submission; <= 0 means none. A request whose
  /// deadline passes while it is still queued is answered with the
  /// kDeadlineExpired error instead of ever reaching a compute worker.
  double deadline_ms = 0.0;
  /// Per-stage timestamps (obs/stages.hpp). The front-end stamps
  /// accept/parse before submitting; the service stamps
  /// admit/dequeue/compute as the request moves through it. Never part
  /// of the cache key.
  obs::StageStamps stamps;
};

struct ScheduleResponse {
  double makespan = 0.0;
  MemSize peak_memory = 0;
  bool cache_hit = false;  ///< answered from cache (or a concurrent twin)
  /// Shares the cached result's schedule; only set when want_schedule.
  std::shared_ptr<const Schedule> schedule;
  /// Engaged iff the request failed (the scores are meaningless then).
  /// Set on the batch collection paths; Ticket::wait() returns the same
  /// error through ServiceResult instead, and the legacy schedule() /
  /// future surfaces convert it into the corresponding exception.
  std::optional<ServiceError> error;
  /// The request's stamps as of settlement, so the front-end that
  /// submitted it can stamp serialize/flush and log a full stage
  /// breakdown for slow requests.
  obs::StageStamps stamps;

  [[nodiscard]] bool ok() const { return !error.has_value(); }
};

/// What a Ticket resolves to: the response, or the typed failure.
using ServiceResult = Result<ScheduleResponse, ServiceError>;

/// Legacy bridge: the response, or throw what the pre-v2 API would have
/// thrown (the original scheduler exception when one caused the error,
/// the mapped typed exception otherwise).
inline ScheduleResponse unwrap(ServiceResult result) {
  if (!result.ok()) throw_error(result.error());
  return std::move(result).value();
}

/// Folds a ServiceResult into the batch-path response shape: failures
/// land in ScheduleResponse::error instead of throwing.
inline ScheduleResponse to_response(ServiceResult result) {
  if (result.ok()) return std::move(result).value();
  ScheduleResponse resp;
  resp.error = std::move(result.error());
  return resp;
}

}  // namespace treesched

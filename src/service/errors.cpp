#include "service/errors.hpp"

namespace treesched {

namespace {

struct CodeName {
  ErrorCode code;
  std::string_view name;
};

// The protocol-v2 wire spellings. Order mirrors the enum; both lookup
// directions walk this one table so the spellings cannot drift apart.
constexpr CodeName kCodeNames[] = {
    {ErrorCode::kUnknownAlgorithm, "unknown_algorithm"},
    {ErrorCode::kInvalidResources, "invalid_resources"},
    {ErrorCode::kDeadlineExpired, "deadline_expired"},
    {ErrorCode::kQueueFull, "queue_full"},
    {ErrorCode::kCancelled, "cancelled"},
    {ErrorCode::kSchedulerFailure, "scheduler_failure"},
    {ErrorCode::kStoreFull, "store_full"},
    {ErrorCode::kBadRequest, "bad_request"},
    {ErrorCode::kNodeUnavailable, "node_unavailable"},
};

}  // namespace

std::string_view to_string(ErrorCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "?";
}

std::optional<ErrorCode> parse_error_code(std::string_view text) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.name == text) return entry.code;
  }
  return std::nullopt;
}

std::exception_ptr to_exception(const ServiceError& error) {
  if (error.cause) return error.cause;
  switch (error.code) {
    case ErrorCode::kDeadlineExpired:
      return std::make_exception_ptr(DeadlineExpired(error.message));
    case ErrorCode::kQueueFull:
      return std::make_exception_ptr(QueueFull(error.message));
    case ErrorCode::kCancelled:
      return std::make_exception_ptr(Cancelled(error.message));
    case ErrorCode::kStoreFull:
      return std::make_exception_ptr(StoreFull(error.message));
    case ErrorCode::kUnknownAlgorithm:
    case ErrorCode::kInvalidResources:
    case ErrorCode::kBadRequest:
      return std::make_exception_ptr(std::invalid_argument(error.message));
    case ErrorCode::kSchedulerFailure:
    case ErrorCode::kNodeUnavailable:
      break;
  }
  return std::make_exception_ptr(std::runtime_error(error.message));
}

}  // namespace treesched

#pragma once
// Result cache (layer 2 of src/service/): maps a scheduling request key
// (interned tree uid, algorithm, p, memory cap) to the fully scored
// result (makespan, peak memory, schedule).
//
// Entries are immutable and shared: get() hands out shared_ptrs, so an
// entry evicted while a reader still holds it simply lives until the last
// reader drops it. Two index backends sit behind one interface
// (ResultCacheConfig::backend):
//  * kMutex — sharded exact LRU: each shard has its own mutex, map, LRU
//    list and slice of the byte budget, so concurrent requests for
//    different keys rarely touch the same lock.
//  * kLockFree — a concurrent open-addressing table (concurrent_map.hpp)
//    with CAS insertion and approximate CLOCK eviction; readers never
//    take a lock, so cache-hit throughput keeps scaling where the
//    sharded-mutex curve flattens.
// Both backends keep the same get/peek/put/stats/clear contracts and
// return bit-identical results — the scheduler roster is deterministic,
// so a dropped or evicted entry only ever costs a recompute.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule.hpp"
#include "service/instance_store.hpp"

namespace treesched {

/// Cache identity of one scheduling request. `tree_uid` is the interned
/// tree's store-assigned identity (TreeHandle::uid) — not the raw
/// fingerprint, which could collide. `p` is pre-normalized by the service
/// (sequential-only algorithms store p = 1, since they ignore it);
/// `memory_cap` is 0 unless the algorithm is memory-capped.
struct ResultKey {
  std::uint64_t tree_uid = 0;
  std::string algo;
  int p = 1;
  MemSize memory_cap = 0;

  bool operator==(const ResultKey&) const = default;
};

struct ResultKeyHash {
  std::size_t operator()(const ResultKey& k) const noexcept;
};

/// A scored schedule: what the service returns and the cache stores.
struct CachedResult {
  double makespan = 0.0;
  MemSize peak_memory = 0;
  Schedule schedule;

  /// Approximate footprint used for the cache byte budget.
  [[nodiscard]] std::size_t bytes() const {
    return sizeof(CachedResult) +
           schedule.start.capacity() * sizeof(double) +
           schedule.proc.capacity() * sizeof(int);
  }
};

using CachedResultPtr = std::shared_ptr<const CachedResult>;

/// Monotonic counters plus a point-in-time size snapshot, aggregated over
/// all shards. Counters from different shards are read one shard at a
/// time, so under contention totals are momentarily approximate but never
/// lose increments (each is bumped under its shard mutex).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class ConcurrentResultMap;

/// Selects the cache's index implementation. kMutex is the default —
/// exact LRU, predictable under memory pressure; kLockFree trades exact
/// recency for lock-free hit paths (see file comment).
enum class CacheBackend { kMutex, kLockFree };

/// Parses a CLI flag value ("mutex" | "lockfree") into a backend;
/// throws std::invalid_argument on anything else.
CacheBackend parse_cache_backend(const std::string& name);
const char* to_string(CacheBackend backend);

struct ResultCacheConfig {
  /// 0 disables the cache entirely (every get misses, every put is
  /// dropped) — the service's "uncached" mode.
  std::size_t byte_budget = 256u << 20;
  /// Mutex backend only: the budget is split evenly across this many
  /// shards, each with its own lock and LRU list.
  unsigned shards = 16;
  CacheBackend backend = CacheBackend::kMutex;
};

class ResultCache {
 public:
  /// `byte_budget` 0 disables the cache entirely (every get misses, every
  /// put is dropped) — the service's "uncached" mode. Otherwise the budget
  /// is split evenly across `shards`; each shard LRU-evicts past its
  /// slice but always retains at least its most recent entry, so one
  /// oversized result still caches.
  explicit ResultCache(std::size_t byte_budget = kDefaultByteBudget,
                       unsigned shards = 16);

  /// Backend-selecting constructor; the two-argument form above is the
  /// mutex backend with the same budget semantics.
  explicit ResultCache(const ResultCacheConfig& config);

  ~ResultCache();

  /// Looks up `key`, refreshing its LRU position. Counts a hit or miss.
  [[nodiscard]] CachedResultPtr get(const ResultKey& key);

  /// get() for opportunistic probes (the service's I/O-thread fast
  /// path): a hit counts and refreshes LRU, but a miss counts nothing —
  /// the prober falls back to the full path, whose get() records the
  /// one authoritative miss.
  [[nodiscard]] CachedResultPtr peek(const ResultKey& key);

  /// Inserts (or overwrites) `key`. Never throws on a full cache; evicts
  /// least-recently-used entries from the shard instead.
  void put(const ResultKey& key, CachedResultPtr value);

  [[nodiscard]] CacheStats stats() const;
  void clear();  ///< Drops all entries; counters are preserved.

  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }
  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] bool enabled() const { return byte_budget_ != 0; }
  [[nodiscard]] CacheBackend backend() const { return backend_; }

  static constexpr std::size_t kDefaultByteBudget = 256u << 20;  // 256 MiB

 private:
  struct Shard {
    std::mutex mutex;
    /// Most-recently-used at the front.
    std::list<std::pair<ResultKey, CachedResultPtr>> lru;
    std::unordered_map<ResultKey, decltype(lru)::iterator, ResultKeyHash> map;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  Shard& shard_for(const ResultKey& key);

  std::size_t byte_budget_ = 0;
  std::size_t shard_budget_ = 0;
  CacheBackend backend_ = CacheBackend::kMutex;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Non-null iff backend_ == kLockFree (concurrent_map.hpp).
  std::unique_ptr<ConcurrentResultMap> lockfree_;
};

}  // namespace treesched

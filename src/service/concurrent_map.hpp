#pragma once
// Concurrent open-addressing index for the result cache: a fixed-capacity
// power-of-two table of tagged slots probed linearly, with CAS slot
// claiming, seqlock-validated key reads, refcount-safe value hand-out
// through hazard-pointer-pinned shared_ptr copies, and approximate
// CLOCK (second-chance) eviction in place of the mutex backend's LRU.
//
// Concurrency protocol (every shared word is a std::atomic — the
// structure is data-race-free by construction, which is what lets the
// TSan stress suite run it at full speed):
//
//  * state tags each slot kEmpty / kBusy / kReady / kTombstone. All
//    mutation happens under slot OWNERSHIP: a writer CASes the state to
//    kBusy first, so at most one mutator (inserter, overwriter, evictor,
//    clear) touches a slot at a time. Readers never wait — a kBusy slot
//    is simply skipped (a miss recomputes a bit-identical result, so
//    false misses are benign; false HITS are what the protocol forbids).
//  * version is a per-slot seqlock generation: every claim that changes
//    the slot's identity bumps it to odd before mutating and back to
//    even after. A reader samples version (even), compares the key
//    fields, loads the value, then re-samples; any generation change in
//    between voids the match. All loads use acquire ordering, which
//    (paired with the acq_rel bump / release publish on the writer
//    side) pins the sample window without fences.
//  * value hand-out is hazard-pointer protected: each slot publishes an
//    immutable heap CachedResultPtr through a plain atomic raw pointer
//    (writers install a fresh allocation, never mutate a published
//    one). A reader claims a hazard record, publishes the pointer it is
//    about to copy (seq_cst), re-validates the slot still holds it, and
//    only then bumps the refcount; retired values are freed in batches
//    once no hazard record names them. Readers therefore never spin on
//    a writer — libstdc++'s std::atomic<shared_ptr> guards every load
//    with a NON-yielding spinlock, which collapses the hit path as soon
//    as threads outnumber cores (a descheduled writer stalls every
//    reader for a scheduling quantum).
//  * Lookups terminate at the first kEmpty slot or after kMaxProbe
//    slots; inserts reuse the first tombstone in that window. A put
//    that finds no claimable slot is DROPPED after nudging the CLOCK
//    hand — for a cache of deterministic results this only costs a
//    recompute, never correctness. A lookup that cannot claim a hazard
//    record (more than kHazardSlots concurrent readers) reports a miss,
//    which is equally benign.
//  * Algorithm names are interned once into an append-only array of
//    atomic pointers so the hot paths compare a u32 id instead of a
//    string, keeping every key field a plain scalar atomic.
//
// Two same-key entries can briefly coexist (two racing first-time puts
// claim different slots); lookups return whichever they meet first and
// eviction eventually collects the loser — results for one key are
// bit-identical by construction, so this is invisible to callers.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/result_cache.hpp"

namespace treesched {

class ConcurrentResultMap {
 public:
  /// `byte_budget` 0 disables the map (every lookup misses, every put is
  /// dropped), mirroring ResultCache's "uncached" mode.
  explicit ConcurrentResultMap(std::size_t byte_budget)
      : byte_budget_(byte_budget),
        capacity_(capacity_for(byte_budget)),
        mask_(capacity_ - 1),
        slots_(new Slot[capacity_]) {}

  ~ConcurrentResultMap() {
    // Single-threaded by contract here: no reader can hold a hazard on
    // a value once the owning ResultCache is being destroyed.
    for (std::size_t i = 0; i < capacity_; ++i) {
      delete slots_[i].value.load(std::memory_order_relaxed);
    }
    for (const CachedResultPtr* p : retired_) delete p;
    for (auto& name : algo_names_) {
      delete name.load(std::memory_order_relaxed);
    }
  }

  ConcurrentResultMap(const ConcurrentResultMap&) = delete;
  ConcurrentResultMap& operator=(const ConcurrentResultMap&) = delete;

  /// Lookup counting a hit or a miss (the ResultCache::get contract).
  /// A hit refreshes the slot's CLOCK reference bit — the approximate
  /// analogue of the mutex backend's LRU splice.
  [[nodiscard]] CachedResultPtr get(const ResultKey& key) {
    CachedResultPtr found = lookup(key);
    if (found) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return found;
  }

  /// Lookup counting only hits (the ResultCache::peek contract: the
  /// prober's fallback path records the one authoritative miss).
  [[nodiscard]] CachedResultPtr peek(const ResultKey& key) {
    CachedResultPtr found = lookup(key);
    if (found) hits_.fetch_add(1, std::memory_order_relaxed);
    return found;
  }

  /// Insert or overwrite. Never throws and never blocks a reader; past
  /// the byte budget (or table occupancy) the CLOCK hand evicts
  /// unreferenced entries.
  void put(const ResultKey& key, CachedResultPtr value) {
    if (byte_budget_ == 0 || !value) return;
    const std::size_t cost = value->bytes();
    const std::uint32_t algo = intern_algo(key.algo);
    if (algo == 0) return;  // interner full — drop, a miss just recomputes
    const std::size_t h = ResultKeyHash{}(key);
    for (int attempt = 0; attempt < kPutRetries; ++attempt) {
      const TryPut outcome = try_put(h, key, algo, value, cost);
      if (outcome == TryPut::kDone) {
        maybe_evict();
        return;
      }
      if (outcome == TryPut::kNoSlot) break;
    }
    // Contended or full probe window: drop the insert, but advance the
    // CLOCK so a hot window frees up for the next put.
    maybe_evict();
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    out.insertions = insertions_.load(std::memory_order_relaxed);
    out.entries = entries_.load(std::memory_order_relaxed);
    out.bytes = bytes_.load(std::memory_order_relaxed);
    return out;
  }

  /// Drops every entry present at the start of the call; counters are
  /// preserved. Entries inserted concurrently with clear() may survive.
  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      retire(slots_[i], /*count_as_eviction=*/false);
    }
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  enum : std::uint32_t { kEmpty = 0, kBusy = 1, kReady = 2, kTombstone = 3 };
  enum class TryPut { kDone, kRetry, kNoSlot };

  static constexpr std::size_t kMaxProbe = 64;
  static constexpr int kPutRetries = 8;
  static constexpr std::size_t kMaxAlgos = 256;
  static constexpr std::size_t kHazardSlots = 64;
  static constexpr std::size_t kReclaimBatch = 128;

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    std::atomic<std::uint32_t> version{0};
    std::atomic<std::uint64_t> tree_uid{0};
    std::atomic<std::uint64_t> memory_cap{0};
    std::atomic<std::uint32_t> algo_id{0};
    std::atomic<std::int32_t> p{0};
    std::atomic<bool> ref{false};
    // Immutable heap CachedResultPtr, hazard-pointer protected. Writers
    // install fresh allocations and retire the old one; they never
    // mutate a published object, so readers may copy it concurrently.
    std::atomic<const CachedResultPtr*> value{nullptr};
  };

  // One cache line per record: the owning thread re-claims the same
  // record on every lookup, so claim + publish stay core-local.
  struct alignas(64) HazardRecord {
    std::atomic<std::size_t> owner{0};
    std::atomic<const CachedResultPtr*> ptr{nullptr};
  };

  static std::size_t capacity_for(std::size_t byte_budget) {
    if (byte_budget == 0) return 1;
    // Cached schedules run a few KiB each; size the table so the slot
    // array itself stays a small fraction of the budget while leaving
    // headroom for CLOCK to breathe.
    const std::size_t want = std::clamp<std::size_t>(
        byte_budget / 2048, 1024, std::size_t{1} << 20);
    return std::bit_ceil(want);
  }

  /// Seqlock-validated, hazard-protected probe shared by get and peek.
  [[nodiscard]] CachedResultPtr lookup(const ResultKey& key) {
    if (byte_budget_ == 0) return nullptr;
    const std::uint32_t algo = find_algo(key.algo);
    if (algo == 0) return nullptr;  // algo never inserted -> cannot be cached
    HazardRecord* hp = acquire_hazard();
    if (hp == nullptr) return nullptr;  // > kHazardSlots readers: benign miss
    CachedResultPtr found;
    const std::size_t h = ResultKeyHash{}(key);
    for (std::size_t i = 0; i < kMaxProbe; ++i) {
      Slot& s = slots_[(h + i) & mask_];
      const std::uint32_t state = s.state.load(std::memory_order_acquire);
      if (state == kEmpty) break;     // end of the probe chain
      if (state != kReady) continue;  // kBusy / kTombstone
      const std::uint32_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 & 1u) continue;  // a writer owns this slot right now
      if (s.tree_uid.load(std::memory_order_acquire) != key.tree_uid ||
          s.algo_id.load(std::memory_order_acquire) != algo ||
          s.p.load(std::memory_order_acquire) != key.p ||
          s.memory_cap.load(std::memory_order_acquire) != key.memory_cap) {
        continue;
      }
      const CachedResultPtr* raw = s.value.load(std::memory_order_acquire);
      if (raw == nullptr) continue;
      // Publish the hazard, then re-validate that the slot still holds
      // `raw` AND the same key generation: if both held at the recheck,
      // any retirer's exchange is ordered after our publish, so its
      // hazard scan must observe `raw` pinned and spare it.
      hp->ptr.store(raw, std::memory_order_seq_cst);
      if (s.value.load(std::memory_order_seq_cst) != raw ||
          s.version.load(std::memory_order_acquire) != v1) {
        hp->ptr.store(nullptr, std::memory_order_relaxed);
        continue;  // generation changed under us — the match is void
      }
      found = *raw;  // refcount bump on a hazard-pinned, immutable object
      s.ref.store(true, std::memory_order_relaxed);
      break;
    }
    release_hazard(hp);
    return found;
  }

  TryPut try_put(std::size_t h, const ResultKey& key, std::uint32_t algo,
                 const CachedResultPtr& value, std::size_t cost) {
    constexpr std::size_t kNone = ~std::size_t{0};
    std::size_t claim = kNone;
    for (std::size_t i = 0; i < kMaxProbe; ++i) {
      const std::size_t idx = (h + i) & mask_;
      Slot& s = slots_[idx];
      const std::uint32_t state = s.state.load(std::memory_order_acquire);
      if (state == kEmpty) {
        if (claim == kNone) claim = idx;
        break;  // nothing beyond the first empty can match
      }
      if (state == kTombstone) {
        if (claim == kNone) claim = idx;
        continue;
      }
      if (state != kReady) continue;  // kBusy
      const std::uint32_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 & 1u) continue;
      if (s.tree_uid.load(std::memory_order_acquire) != key.tree_uid ||
          s.algo_id.load(std::memory_order_acquire) != algo ||
          s.p.load(std::memory_order_acquire) != key.p ||
          s.memory_cap.load(std::memory_order_acquire) != key.memory_cap) {
        continue;
      }
      // Same key already cached: overwrite in place under ownership.
      std::uint32_t expected = kReady;
      if (!s.state.compare_exchange_strong(expected, kBusy,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return TryPut::kRetry;  // another mutator got there first
      }
      if (s.version.load(std::memory_order_acquire) != v1) {
        // Evicted and re-used between our compare and our claim; this
        // slot no longer holds our key.
        s.state.store(kReady, std::memory_order_release);
        return TryPut::kRetry;
      }
      const CachedResultPtr* old =
          s.value.exchange(new CachedResultPtr(value), std::memory_order_seq_cst);
      s.ref.store(true, std::memory_order_relaxed);
      s.state.store(kReady, std::memory_order_release);
      bytes_.fetch_add(cost, std::memory_order_relaxed);
      if (old != nullptr) {
        bytes_.fetch_sub((*old)->bytes(), std::memory_order_relaxed);
        retire_value(old);
      }
      return TryPut::kDone;
    }
    if (claim == kNone) return TryPut::kNoSlot;
    Slot& s = slots_[claim];
    std::uint32_t expected = kEmpty;
    if (!s.state.compare_exchange_strong(expected, kBusy,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      expected = kTombstone;
      if (!s.state.compare_exchange_strong(expected, kBusy,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return TryPut::kRetry;
      }
    }
    s.version.fetch_add(1, std::memory_order_acq_rel);  // odd: new identity
    s.tree_uid.store(key.tree_uid, std::memory_order_relaxed);
    s.algo_id.store(algo, std::memory_order_relaxed);
    s.p.store(key.p, std::memory_order_relaxed);
    s.memory_cap.store(key.memory_cap, std::memory_order_relaxed);
    s.value.store(new CachedResultPtr(value), std::memory_order_release);
    s.ref.store(true, std::memory_order_relaxed);
    s.version.fetch_add(1, std::memory_order_release);  // even: key stable
    s.state.store(kReady, std::memory_order_release);
    bytes_.fetch_add(cost, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return TryPut::kDone;
  }

  /// Takes ownership of a kReady slot and empties it. Returns false if
  /// the slot was not claimable (not kReady, or lost the CAS).
  bool retire(Slot& s, bool count_as_eviction) {
    std::uint32_t expected = kReady;
    if (!s.state.compare_exchange_strong(expected, kBusy,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return false;
    }
    s.version.fetch_add(1, std::memory_order_acq_rel);
    const CachedResultPtr* old =
        s.value.exchange(nullptr, std::memory_order_seq_cst);
    s.version.fetch_add(1, std::memory_order_release);
    s.state.store(kTombstone, std::memory_order_release);
    if (old != nullptr) {
      bytes_.fetch_sub((*old)->bytes(), std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      if (count_as_eviction) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      retire_value(old);
    }
    return true;
  }

  /// Claims a hazard record for the calling thread, probing from a
  /// per-thread home slot so repeat claims stay on a local cache line.
  [[nodiscard]] HazardRecord* acquire_hazard() {
    const std::size_t tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
    for (std::size_t i = 0; i < kHazardSlots; ++i) {
      HazardRecord& h = hazards_[(tid + i) % kHazardSlots];
      std::size_t expected = 0;
      if (h.owner.compare_exchange_strong(expected, tid,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        return &h;
      }
    }
    return nullptr;
  }

  void release_hazard(HazardRecord* h) {
    h->ptr.store(nullptr, std::memory_order_release);
    h->owner.store(0, std::memory_order_release);
  }

  /// Queues a replaced/evicted value for deferred deletion; once a batch
  /// accumulates, frees every queued value no hazard record still pins.
  /// Writer-side only — the read path never touches this mutex.
  void retire_value(const CachedResultPtr* p) {
    std::lock_guard<std::mutex> lock(retire_mutex_);
    retired_.push_back(p);
    if (retired_.size() < kReclaimBatch) return;
    std::array<const CachedResultPtr*, kHazardSlots> pinned;
    std::size_t n = 0;
    for (auto& h : hazards_) {
      const CachedResultPtr* q = h.ptr.load(std::memory_order_seq_cst);
      if (q != nullptr) pinned[n++] = q;
    }
    auto keep = std::partition(
        retired_.begin(), retired_.end(), [&](const CachedResultPtr* q) {
          return std::find(pinned.begin(), pinned.begin() + n, q) !=
                 pinned.begin() + n;
        });
    for (auto it = keep; it != retired_.end(); ++it) delete *it;
    retired_.erase(keep, retired_.end());
  }

  /// CLOCK sweep: while over the byte budget (or close to table
  /// occupancy limits), advance the hand; a set reference bit buys the
  /// slot a second chance, a clear one evicts it. Bounded to two laps
  /// per call so a put can never spin forever. Always retains at least
  /// one entry, so one oversized result still caches.
  void maybe_evict() {
    const std::size_t occupancy_limit = capacity_ - capacity_ / 8;
    std::size_t sweep = 2 * capacity_;
    while (sweep-- != 0 &&
           entries_.load(std::memory_order_relaxed) > 1 &&
           (bytes_.load(std::memory_order_relaxed) > byte_budget_ ||
            entries_.load(std::memory_order_relaxed) > occupancy_limit)) {
      Slot& s = slots_[hand_.fetch_add(1, std::memory_order_relaxed) & mask_];
      if (s.state.load(std::memory_order_acquire) != kReady) continue;
      if (s.ref.exchange(false, std::memory_order_relaxed)) continue;
      (void)retire(s, /*count_as_eviction=*/true);
    }
  }

  /// Returns the 1-based id of `name` if it was ever interned, else 0.
  [[nodiscard]] std::uint32_t find_algo(const std::string& name) const {
    for (std::size_t i = 0; i < kMaxAlgos; ++i) {
      const std::string* s = algo_names_[i].load(std::memory_order_acquire);
      if (s == nullptr) return 0;
      if (*s == name) return static_cast<std::uint32_t>(i + 1);
    }
    return 0;
  }

  /// Interns `name`, returning its 1-based id; 0 when the (generously
  /// sized — the roster has ~10 algorithms) interner is full.
  std::uint32_t intern_algo(const std::string& name) {
    for (std::size_t i = 0; i < kMaxAlgos; ++i) {
      const std::string* s = algo_names_[i].load(std::memory_order_acquire);
      if (s == nullptr) {
        auto* fresh = new std::string(name);
        if (algo_names_[i].compare_exchange_strong(
                s, fresh, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          return static_cast<std::uint32_t>(i + 1);
        }
        delete fresh;  // lost the race; `s` now holds the winner
      }
      if (*s == name) return static_cast<std::uint32_t>(i + 1);
    }
    return 0;
  }

  std::size_t byte_budget_ = 0;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::array<HazardRecord, kHazardSlots> hazards_{};
  std::mutex retire_mutex_;
  std::vector<const CachedResultPtr*> retired_;
  std::array<std::atomic<const std::string*>, kMaxAlgos> algo_names_{};
  std::atomic<std::size_t> hand_{0};
  std::atomic<std::size_t> entries_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace treesched

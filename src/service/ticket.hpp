#pragma once
// Ticket: the move-only handle SchedulingService::submit() returns for
// every request — the one submission surface of the v2 API.
//
//   Ticket t = service.submit(req);
//   ServiceResult r = t.wait();          // block until answered
//   if (auto r = t.try_get()) ...        // poll without blocking
//   if (auto r = t.wait_for(50ms)) ...   // bounded wait
//   bool was_queued = t.cancel();        // cancel while still queued
//
// A ticket resolves exactly once, to a ServiceResult: the response, or a
// ServiceError with a machine-readable code. wait()/try_get() may be
// called repeatedly; each returns a copy of the same settled result
// (responses share the cached schedule, so copies are cheap).
//
// cancel() succeeds only while the request is still in the admission
// queue: the entry is removed, counted as `cancelled` in QueueStats, and
// the ticket resolves immediately with the kCancelled error. Cancelling
// a request a worker already picked up, one already answered, or one
// computed inline (a submission from a pool worker) is a documented
// no-op that returns false — a running computation is never preempted.
//
// Abandoning a ticket without waiting is safe: the service still answers
// the underlying request (the destructor's drain guarantee counts
// servicers, not tickets), and the shared state dies with its last
// owner. Tickets outlive their service safely too — cancel() goes
// through a shared queue reference, and a destroyed service has already
// drained the queue, so such a cancel simply returns false.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "service/request.hpp"

namespace treesched {

class RequestQueue;

namespace detail {

/// Completion state shared by a Ticket, the queue entry that answers it,
/// and any legacy future bridged from it.
struct TicketState {
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<ServiceResult> result;
  /// Legacy future bridge (Ticket::legacy_future). Constructed lazily —
  /// only the schedule_async bridge pays the promise's shared-state
  /// allocation, never the plain submit()+wait() hot path. Fulfilled on
  /// completion iff attached; attaching after completion fulfills
  /// immediately.
  std::optional<std::promise<ScheduleResponse>> legacy_promise;
  bool legacy_fulfilled = false;
  /// Completion hook (Ticket::on_complete). Stored under the mutex,
  /// invoked exactly once OUTSIDE it (so the callback may touch the
  /// ticket, cancel other tickets, or block without deadlocking):
  /// by the settling thread when attached before settlement, by the
  /// subscribing thread when attached after.
  std::function<void(const ServiceResult&)> on_complete;
  /// Single-shot guard for Ticket::on_complete — survives the settler
  /// moving the callback out, so a second subscription is rejected even
  /// after the first already ran.
  bool on_complete_attached = false;
};

/// Settles `state` (idempotent: a second call is ignored — by
/// construction each ticket has exactly one answerer, the guard is
/// defense in depth) and wakes every waiter and the legacy future.
void complete_ticket(const std::shared_ptr<TicketState>& state,
                     ServiceResult result);

}  // namespace detail

class Ticket {
 public:
  /// An empty ticket (not obtained from submit()); wait()/try_get()
  /// resolve to a kBadRequest error, cancel() to false.
  Ticket() = default;

  Ticket(Ticket&&) noexcept = default;
  Ticket& operator=(Ticket&&) noexcept = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Blocks until the request is answered; returns the settled result.
  [[nodiscard]] ServiceResult wait();

  /// Bounded wait: the settled result, or std::nullopt on timeout.
  [[nodiscard]] std::optional<ServiceResult> wait_for(
      std::chrono::milliseconds timeout);

  /// Non-blocking poll: the settled result, or std::nullopt while the
  /// request is still pending.
  [[nodiscard]] std::optional<ServiceResult> try_get();

  /// Cancels the request iff it is still in the admission queue: removes
  /// the entry (counted per class in QueueStats::cancelled) and settles
  /// this ticket with the kCancelled error. Returns false — and changes
  /// nothing — when the request is already running, already answered,
  /// was computed inline, or was cancelled before.
  bool cancel();

  /// Subscribes `fn` to this ticket's completion: invoked exactly once
  /// with the settled result, on whichever thread settles the ticket (a
  /// pool worker for computed answers, the cancelling thread for
  /// cancellations) — or immediately on THIS thread when the ticket has
  /// already settled, which closes the settle-before-subscribe race: no
  /// completion is ever missed. The callback runs outside the ticket's
  /// internal lock, so it may wait, cancel, or submit freely; it must
  /// not throw. The Ticket object itself may be discarded after
  /// subscribing — the hook lives in the shared completion state. This
  /// is what lets an event-driven caller (the net/ server's I/O thread)
  /// be woken on completion instead of polling try_get().
  /// Single-shot: a second subscription throws std::logic_error. An
  /// empty ticket invokes `fn` immediately with the kBadRequest error.
  void on_complete(std::function<void(const ServiceResult&)> fn);

  /// Legacy bridge: a std::future carrying the response, throwing the
  /// legacy exception on error (see to_exception). The future is bound
  /// to this ticket's completion; the Ticket itself may be discarded.
  /// Single-shot: a second call throws std::logic_error (the underlying
  /// promise has one future).
  [[nodiscard]] std::future<ScheduleResponse> legacy_future();

 private:
  friend class SchedulingService;

  Ticket(std::shared_ptr<detail::TicketState> state,
         std::shared_ptr<RequestQueue> queue, std::uint64_t seq)
      : state_(std::move(state)), queue_(std::move(queue)), seq_(seq) {}

  std::shared_ptr<detail::TicketState> state_;
  /// Shared so cancel() stays safe after the owning service is gone.
  /// Null for inline-computed (never queued) tickets.
  std::shared_ptr<RequestQueue> queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace treesched

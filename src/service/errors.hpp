#pragma once
// The service's error taxonomy: every way a scheduling request can fail,
// as a machine-readable code plus a human-readable message. This is the
// single failure vocabulary of the v2 API — tickets return
// Result<ScheduleResponse, ServiceError>, batch responses embed the same
// ServiceError, and the wire protocol spells the code (`code=queue_full`)
// so clients never parse prose.
//
// Exceptions still exist in two places only:
//   * the legacy wrapper surfaces (schedule(), schedule_async() futures)
//     rethrow the original exception when one caused the error (the
//     `cause` field) or a typed exception mapped from the code;
//   * inside the compute engine, where scheduler code throws — submit()
//     catches at the boundary and converts to a ServiceError.

#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace treesched {

/// Machine-readable failure code. The wire spelling (to_string) is part
/// of the protocol-v2 contract; parse_error_code rejects unknown codes.
/// The NUMERIC values are part of the protocol-v3 contract (binary error
/// frames carry them verbatim — net/frame.hpp): existing values must
/// never be renumbered; new codes append at the end.
enum class ErrorCode : int {
  kUnknownAlgorithm = 0,  ///< algo name not in the SchedulerRegistry
  kInvalidResources = 1,  ///< bad p / stray memory cap / missing tree
  kDeadlineExpired = 2,   ///< deadline lapsed while the request was queued
  kQueueFull = 3,         ///< admission queue at max_pending, turned away
  kCancelled = 4,         ///< cancelled via Ticket::cancel() while queued
  kSchedulerFailure = 5,  ///< the scheduler itself failed on the instance
  kStoreFull = 6,         ///< instance store byte budget exhausted
  kBadRequest = 7,        ///< protocol-level violation (parse error,
                          ///< unknown id, malformed cancel, bad frame)
  kNodeUnavailable = 8,   ///< cluster router: the backend node chosen for
                          ///< this request died (or no node is up) and no
                          ///< retry on an alternate succeeded
};

/// Wire spelling of `code` ("unknown_algorithm", "queue_full", ...).
[[nodiscard]] std::string_view to_string(ErrorCode code);

/// Inverse of to_string; std::nullopt on an unknown spelling.
[[nodiscard]] std::optional<ErrorCode> parse_error_code(std::string_view text);

/// One failure, as a value. `cause` is set when the error was converted
/// from a thrown exception — it lets the legacy wrappers rethrow exactly
/// what the scheduler threw; errors born as values leave it empty.
struct ServiceError {
  ErrorCode code = ErrorCode::kSchedulerFailure;
  std::string message;
  std::exception_ptr cause;
};

// ---------------------------------------------------------------------------
// Exception types for the legacy (throwing) surfaces. QueueError is kept
// as the base of the admission-queue family so pre-v2 catch sites keep
// compiling.
// ---------------------------------------------------------------------------

/// Typed admission-queue rejection, delivered through the legacy
/// schedule_async future (value-path callers get the ServiceError code).
class QueueError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The request's deadline passed while it was queued, before any worker
/// picked it up. The scheduler was never run.
class DeadlineExpired : public QueueError {
  using QueueError::QueueError;
};

/// The queue's max_pending bound was hit; the request was turned away at
/// admission.
class QueueFull : public QueueError {
  using QueueError::QueueError;
};

/// The request was cancelled through its Ticket while still queued.
class Cancelled : public QueueError {
  using QueueError::QueueError;
};

/// The instance store's byte budget is exhausted; the tree was not
/// interned.
class StoreFull : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The exception the legacy surfaces throw for `error`: the original
/// `cause` when one exists, otherwise a typed exception mapped from the
/// code (kDeadlineExpired -> DeadlineExpired, kQueueFull -> QueueFull,
/// kCancelled -> Cancelled, kStoreFull -> StoreFull, kUnknownAlgorithm /
/// kInvalidResources / kBadRequest -> std::invalid_argument,
/// kSchedulerFailure / kNodeUnavailable -> std::runtime_error).
[[nodiscard]] std::exception_ptr to_exception(const ServiceError& error);

[[noreturn]] inline void throw_error(const ServiceError& error) {
  std::rethrow_exception(to_exception(error));
}

}  // namespace treesched

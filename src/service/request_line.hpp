#pragma once
// The schedule_service wire grammar, protocol v2 — parsed and formatted
// here (instead of inside the example binary) so tests can pin it, in
// particular that unknown fields and unknown error codes are rejected by
// name, never silently accepted.
//
// Request lines (one per line):
//   <tree-spec> <algo> <p> [<memory-cap>] [<key>=<value> ...]
//   cancel id=<n>
//   ping [id=<n>]
//   stats [id=<n>]
//   trace start|stop|status|pull [id=<n>]
//   trace dump=<path> [id=<n>]
// with the named fields
//   priority=interactive|batch|bulk   admission class (default batch)
//   deadline_ms=<positive float>      give up if still queued after this
//   id=<n>                            client-chosen request tag (v2)
// Positional fields keep the PR 2 wire format; named fields are
// order-insensitive and must come after the positional ones. An unknown
// or repeated <key>= raises a parse error naming the field; a bare
// trailing token raises the classic trailing-token error.
//
// The id= tag is what makes out-of-order answering possible: a tagged
// request's response carries the same id, so the server may stream it
// the moment it completes instead of holding the line order, and a
// later `cancel id=<n>` line can name it. Untagged requests are still
// answered in submission order.
//
// `ping` and `stats` are control lines for load balancers and health
// probes: both are answered immediately by the front-end itself (no
// scheduler compute, never queued), out of band of any pending window —
// a server drowning in Bulk work still answers its health check.
//
// `trace` drives the in-process span recorder (obs/trace.hpp): start
// and stop toggle it, status reports counters (per-ring drop counts
// included), dump=<path> writes the collected spans as Chrome
// trace_event JSON to a server-side file, and pull answers the spans
// themselves encoded as stats pairs — how the cluster router collects
// backend rings for a merged cross-tier dump. Like ping/stats it is
// answered immediately by the front-end.
//
// Response lines (v2):
//   ok [id=<n>] tree=<hex> n=<nodes> algo=<name> p=<p> makespan=<f>
//      peak_memory=<bytes> cache=hit|miss priority=<class>   (one line)
//   error [id=<n>] code=<error-code> <message...>
//   pong [id=<n>]
//   stats [id=<n>] <key>=<non-negative integer> ...
//   trace [id=<n>] <key>=<non-negative integer> ...
// where <error-code> is an ErrorCode wire spelling (service/errors.hpp).
// parse_response_line rejects unknown codes by name — a client never has
// to guess what a new server means. A stats line's keys are free-form
// (servers grow counters without breaking old clients); its values must
// all be non-negative integers.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/tree.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"

namespace treesched {

/// One parsed request line. The tree is still a spec string — resolving
/// it (file IO, generators, interning) is the caller's business.
struct RequestLine {
  enum class Kind { kSchedule, kCancel, kPing, kStats, kTrace };
  Kind kind = Kind::kSchedule;

  /// Client-chosen tag (id=); required for kCancel, optional otherwise.
  std::optional<std::uint64_t> id;

  // kSchedule fields.
  std::string tree_spec;
  std::string algo;
  int p = 1;
  MemSize memory_cap = 0;
  Priority priority = Priority::kBatch;
  double deadline_ms = 0.0;  ///< <= 0 = none

  // kTrace fields: the action ("start" | "stop" | "status" | "dump")
  // and, for dump only, the server-side output path.
  std::string trace_action;
  std::string trace_path;
};

/// Parses a nonempty, comment-stripped request line. Throws
/// std::invalid_argument with a message naming the offending token or
/// field on any violation of the grammar above.
RequestLine parse_request_line(const std::string& line);

/// One response, either direction of the wire. kSchedule lines carry a
/// schedule answer (`ok` discriminates ok/error); kPong answers ping;
/// kStats answers stats with free-form integer counters.
struct ResponseLine {
  enum class Kind { kSchedule, kPong, kStats, kTrace };
  Kind kind = Kind::kSchedule;
  bool ok = false;
  std::optional<std::uint64_t> id;

  /// kStats/kTrace payload, emitted/parsed in the order given. Keys are
  /// free-form identifiers; values non-negative integers. (A trace
  /// answer is a stats-shaped line under the `trace` verb: enabled,
  /// spans, dropped, and for dump the spans written.)
  std::vector<std::pair<std::string, std::uint64_t>> stats;

  // ok payload.
  TreeHash tree_hash = 0;
  NodeId n = 0;
  std::string algo;
  int p = 1;
  double makespan = 0.0;
  MemSize peak_memory = 0;
  bool cache_hit = false;
  Priority priority = Priority::kBatch;

  // error payload.
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

/// Renders `resp` as one v2 response line (no trailing newline).
std::string format_response_line(const ResponseLine& resp);

/// Parses a v2 response line. Throws std::invalid_argument on a
/// malformed line or — the contract worth pinning — an error code whose
/// spelling the taxonomy does not know.
ResponseLine parse_response_line(const std::string& line);

}  // namespace treesched

#pragma once
// The schedule_service line protocol, parsed here (instead of inside the
// example binary) so tests can pin the grammar — in particular that
// unknown fields are rejected by name, never silently accepted.
//
// Grammar (one request per line):
//   <tree-spec> <algo> <p> [<memory-cap>] [<key>=<value> ...]
// with the named fields
//   priority=interactive|batch|bulk   admission class (default batch)
//   deadline_ms=<positive float>      give up if still queued after this
// Positional fields keep the PR 2 wire format; named fields are
// order-insensitive and must come after the positional ones. An unknown
// or repeated <key>= raises a parse error naming the field; a bare
// trailing token raises the classic trailing-token error.

#include <string>

#include "core/tree.hpp"
#include "service/request.hpp"

namespace treesched {

/// One parsed request line. The tree is still a spec string — resolving
/// it (file IO, generators, interning) is the caller's business.
struct RequestLine {
  std::string tree_spec;
  std::string algo;
  int p = 1;
  MemSize memory_cap = 0;
  Priority priority = Priority::kBatch;
  double deadline_ms = 0.0;  ///< <= 0 = none
};

/// Parses a nonempty, comment-stripped request line. Throws
/// std::invalid_argument with a message naming the offending token or
/// field on any violation of the grammar above.
RequestLine parse_request_line(const std::string& line);

}  // namespace treesched

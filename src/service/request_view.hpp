#pragma once
// Zero-copy decode path for the request grammar (protocol v3's parser,
// living beside request_line.hpp which keeps owning the v2 text path).
// parse_request_view() tokenizes one request line in place: every field
// is a std::string_view into the caller's buffer, numbers go through
// std::from_chars, and the success path performs no allocation at all —
// no istringstream, no per-field std::string, no field map. The single
// owned copy of a request happens where it must: when the connection
// builds the ScheduleRequest that crosses into the service layer.
//
// The grammar is exactly protocol v2's (request_line.hpp):
//   <tree-spec> <algo> <p> [<memory-cap>] [priority=...] [deadline_ms=...]
//       [id=...]
//   cancel id=<n>
//   ping [id=<n>]
//   stats [id=<n>]
//   trace start|stop|status|pull|dump=<path> [id=<n>]
// Equivalence with parse_request_line is pinned by tests/test_frame.cpp:
// every line either parses to the same fields through both parsers or is
// rejected by both (messages may differ; acceptance may not).
//
// Lifetime: a RequestView borrows the input buffer. It is valid only
// while that buffer is (for the v3 front-end: until the FrameReader
// compacts, i.e. until the next read) — consume it before reading on.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/tree.hpp"
#include "service/request_line.hpp"

namespace treesched {

/// One request, parsed in place. Mirrors RequestLine field-for-field
/// with string_views instead of strings.
struct RequestView {
  RequestLine::Kind kind = RequestLine::Kind::kSchedule;
  std::optional<std::uint64_t> id;

  // kSchedule fields (views into the parsed buffer).
  std::string_view tree_spec;
  std::string_view algo;
  int p = 1;
  MemSize memory_cap = 0;
  Priority priority = Priority::kBatch;
  double deadline_ms = 0.0;  ///< <= 0 = none

  // kTrace fields (mirror RequestLine's).
  std::string_view trace_action;
  std::string_view trace_path;
};

/// Parses one nonempty request line in place. Returns true and fills
/// `out` on success (no allocation); returns false and assigns a message
/// naming the offending token to `error` on any grammar violation.
bool parse_request_view(std::string_view line, RequestView& out,
                        std::string& error);

/// Borrow-view of an already-parsed v2 line, so both protocol front-ends
/// funnel into one schedule/cancel/control dispatch path. The view
/// borrows `line`'s strings — same lifetime rules as any RequestView.
RequestView as_view(const RequestLine& line);

}  // namespace treesched

#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/simulator.hpp"
#include "obs/trace.hpp"
#include "sched/validate.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace treesched {

namespace {
using obs::Stage;

constexpr const char* kClassLabel[kPriorityClasses + 1] = {
    "interactive", "batch", "bulk", "all"};
}  // namespace

SchedulingService::SchedulingService(ServiceConfig config)
    : config_(config),
      registry_(config.registry ? config.registry
                                : std::make_shared<obs::MetricsRegistry>()),
      store_(config.store),
      cache_(ResultCacheConfig{config.cache_bytes, config.cache_shards,
                               config.cache_backend}),
      queue_(std::make_shared<RequestQueue>(config.queue)) {
  init_metrics();
}

void SchedulingService::init_metrics() {
  auto stage_hist = [&](const char* stage, std::size_t cls,
                        const std::string& stats_key) -> obs::Histogram* {
    std::string labels = "stage=\"";
    labels += stage;
    labels += "\",class=\"";
    labels += kClassLabel[cls];
    labels += "\"";
    return &registry_->histogram(
        "treesched_stage_seconds", labels,
        "Per-stage request latency by priority class",
        obs::Histogram::latency_bounds_ns(), 1e-9, stats_key);
  };
  for (std::size_t c = 0; c <= kPriorityClasses; ++c) {
    // Only the class="all" aggregates carry stats keys: the stats verb
    // stays bounded while Prometheus gets every class series.
    const bool agg = c == kPriorityClasses;
    h_queue_wait_[c] =
        stage_hist("queue_wait", c, agg ? "stage_queue_wait" : "");
    h_compute_[c] = stage_hist("compute", c, agg ? "stage_compute" : "");
    h_e2e_[c] = c == kPriorityClasses
                    ? &registry_->histogram(
                          "treesched_request_e2e_seconds", "",
                          "Admission-to-settlement request latency",
                          obs::Histogram::latency_bounds_ns(), 1e-9, "e2e")
                    : &registry_->histogram(
                          "treesched_request_e2e_seconds",
                          std::string("class=\"") + kClassLabel[c] + "\"",
                          "Admission-to-settlement request latency",
                          obs::Histogram::latency_bounds_ns(), 1e-9, "");
  }
  h_dispatch_ = stage_hist("dispatch", kPriorityClasses, "stage_dispatch");

  // Legacy-stats bridge: cache/queue/store/pool accessors stay the
  // source of truth; this collector projects them into the exposition
  // at snapshot time. All of them read atomics or take their own locks,
  // so a scrape from any thread is safe.
  registry_->register_collector(
      [this, alive = std::weak_ptr<bool>(alive_)](obs::RegistrySnapshot& out) {
        if (alive.expired()) return;
        const CacheStats cs = cache_stats();
        const QueueStats qs = queue_stats();
        const InstanceStore::Stats ss = store_stats();
        const ThreadPool::Stats ps = ThreadPool::shared().stats();
        auto counter = [&](const char* name, const char* help,
                           std::string labels, double v) {
          out.samples.push_back(obs::MetricSample{
              name, std::move(labels), help, obs::MetricKind::kCounter, v, ""});
        };
        auto gauge = [&](const char* name, const char* help,
                         std::string labels, double v) {
          out.samples.push_back(obs::MetricSample{
              name, std::move(labels), help, obs::MetricKind::kGauge, v, ""});
        };
        for (std::size_t c = 0; c < kPriorityClasses; ++c) {
          const ClassQueueStats& q = qs.by_class[c];
          std::string cls = "class=\"";
          cls += kClassLabel[c];
          cls += "\"";
          counter("treesched_queue_admitted_total",
                  "Requests pushed at admission, accepted or rejected", cls,
                  static_cast<double>(q.admitted));
          counter("treesched_queue_rejected_total",
                  "Requests turned away at admission (queue full)", cls,
                  static_cast<double>(q.rejected));
          counter("treesched_queue_completed_total",
                  "Requests popped live and handed to a worker", cls,
                  static_cast<double>(q.completed));
          counter("treesched_queue_expired_total",
                  "Requests whose deadline lapsed while queued", cls,
                  static_cast<double>(q.expired));
          counter("treesched_queue_cancelled_total",
                  "Requests removed while queued by cancel", cls,
                  static_cast<double>(q.cancelled));
          counter("treesched_queue_aged_total",
                  "Priority-class promotions granted to waiting requests",
                  cls, static_cast<double>(q.aged));
          gauge("treesched_queue_pending", "Currently queued requests", cls,
                static_cast<double>(q.pending));
        }
        // The backend label tells dashboards which index produced the
        // series (mutex sharded LRU vs lock-free CLOCK map) without
        // renaming any metric.
        std::string cache_labels = "backend=\"";
        cache_labels += to_string(cache_.backend());
        cache_labels += "\"";
        counter("treesched_cache_hits_total", "Result-cache hits",
                cache_labels, static_cast<double>(cs.hits));
        counter("treesched_cache_misses_total", "Result-cache misses",
                cache_labels, static_cast<double>(cs.misses));
        counter("treesched_cache_evictions_total", "Result-cache evictions",
                cache_labels, static_cast<double>(cs.evictions));
        gauge("treesched_cache_entries", "Cached results resident",
              cache_labels, static_cast<double>(cs.entries));
        gauge("treesched_cache_bytes", "Result-cache bytes resident",
              cache_labels, static_cast<double>(cs.bytes));
        gauge("treesched_store_trees", "Interned trees resident", "",
              static_cast<double>(ss.unique_trees));
        gauge("treesched_store_bytes", "Instance-store bytes resident", "",
              static_cast<double>(ss.bytes));
        counter("treesched_store_rejected_total",
                "Trees rejected by the instance-store byte budget", "",
                static_cast<double>(ss.rejected));
        gauge("treesched_pool_threads", "Shared thread-pool workers", "",
              static_cast<double>(ps.threads));
        counter("treesched_pool_submitted_total",
                "Jobs enqueued on the shared pool", "",
                static_cast<double>(ps.submitted));
        counter("treesched_pool_executed_total",
                "Jobs finished on the shared pool", "",
                static_cast<double>(ps.executed));
        gauge("treesched_pool_pending", "Jobs enqueued, not yet picked up",
              "", static_cast<double>(ps.pending));
      });
}

void SchedulingService::record_stage_metrics(const ScheduleRequest& req) {
  const auto& st = req.stamps;
  if (!st.has(Stage::kAdmit) || !st.has(Stage::kComputeEnd)) return;
  const auto cls = static_cast<std::size_t>(req.priority);
  const std::uint64_t queue_wait = st.between(Stage::kAdmit, Stage::kDequeue);
  const std::uint64_t dispatch =
      st.between(Stage::kDequeue, Stage::kComputeStart);
  const std::uint64_t compute =
      st.between(Stage::kComputeStart, Stage::kComputeEnd);
  const std::uint64_t e2e = st.between(Stage::kAdmit, Stage::kComputeEnd);
  h_queue_wait_[cls]->record(queue_wait);
  h_queue_wait_[kPriorityClasses]->record(queue_wait);
  h_dispatch_->record(dispatch);
  h_compute_[cls]->record(compute);
  h_compute_[kPriorityClasses]->record(compute);
  h_e2e_[cls]->record(e2e);
  h_e2e_[kPriorityClasses]->record(e2e);
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.record("queue_wait", st.at(Stage::kAdmit), queue_wait,
                  req.tree.uid);
  }
}

SchedulingService::~SchedulingService() {
  // One registered servicer covers every queued entry from before it is
  // admitted until it is answered (nested worker submissions never touch
  // the queue — they compute synchronously), so once the count reaches
  // zero the queue is empty, every ticket has settled, and nothing still
  // references this service — tearing down cannot strand a ticket or
  // leave a drain touching freed state. Cancelled entries leave their
  // servicer job with less work, never with a dangling reference, and
  // abandoned tickets are irrelevant here: the drain counts servicers,
  // not waiters.
  std::unique_lock<std::mutex> lock(async_mutex_);
  async_cv_.wait(lock, [&] { return async_outstanding_ == 0; });
}

Result<TreeHandle, ServiceError> SchedulingService::try_intern(Tree tree) {
  return store_.try_intern(std::move(tree));
}

TreeHandle SchedulingService::intern(Tree tree) {
  return store_.intern(std::move(tree));
}

std::shared_ptr<const Scheduler> SchedulingService::resolve(
    const std::string& algo) {
  {
    const std::shared_lock<std::shared_mutex> lock(schedulers_mutex_);
    const auto it = schedulers_.find(algo);
    if (it != schedulers_.end()) return it->second;
  }
  const std::unique_lock<std::shared_mutex> lock(schedulers_mutex_);
  const auto it = schedulers_.find(algo);  // re-check: we raced a writer
  if (it != schedulers_.end()) return it->second;
  // Throws std::invalid_argument listing the known names on a typo.
  std::shared_ptr<const Scheduler> sched =
      SchedulerRegistry::instance().create(algo);
  schedulers_.emplace(algo, sched);
  return sched;
}

ResultKey SchedulingService::key_for(const ScheduleRequest& req,
                                     const Scheduler& sched) const {
  ResultKey key;
  key.tree_uid = req.tree.uid;
  key.algo = req.algo;
  // Sequential-only algorithms ignore p, so every p maps to one cache
  // entry — a campaign's cross-p sweep of Liu/BestPostorder/... computes
  // each tree once and hits thereafter.
  key.p = sched.capabilities().sequential_only ? 1 : req.p;
  key.memory_cap = req.memory_cap;
  return key;
}

std::optional<ScheduleResponse> SchedulingService::try_cached(
    const ScheduleRequest& req) {
  if (!cache_.enabled() || !req.tree) return std::nullopt;
  std::shared_ptr<const Scheduler> sched;
  {
    const std::shared_lock<std::shared_mutex> lock(schedulers_mutex_);
    const auto it = schedulers_.find(req.algo);
    // Never resolved means never computed, so there cannot be a cache
    // entry — and an unknown algorithm's typed error stays on the slow
    // path instead of being re-diagnosed per probe.
    if (it == schedulers_.end()) return std::nullopt;
    sched = it->second;
  }
  try {
    // Sequential-only algorithms normalize p to 1 in the key, so an
    // invalid p could still collide with a cached entry: requests the
    // slow path would reject must never be answered from the cache.
    validate_resources(Resources{req.p, req.memory_cap},
                       sched->capabilities(), req.algo);
  } catch (...) {
    return std::nullopt;
  }
  CachedResultPtr result = cache_.peek(key_for(req, *sched));
  if (!result) return std::nullopt;
  ScheduleResponse resp;
  resp.makespan = result->makespan;
  resp.peak_memory = result->peak_memory;
  resp.cache_hit = true;
  resp.stamps = req.stamps;  // no queue/compute stages on the fast path
  if (req.want_schedule) {
    resp.schedule = std::shared_ptr<const Schedule>(result, &result->schedule);
  }
  return resp;
}

ServiceResult SchedulingService::evaluate(ScheduleRequest& req) {
  req.stamps.stamp(Stage::kComputeStart);
  if (!req.tree) {
    return ServiceError{
        ErrorCode::kInvalidResources,
        "service: request carries no tree (intern one first)", nullptr};
  }
  std::shared_ptr<const Scheduler> sched;
  try {
    sched = resolve(req.algo);
  } catch (const std::exception& e) {
    return ServiceError{ErrorCode::kUnknownAlgorithm, e.what(),
                        std::current_exception()};
  } catch (...) {
    return ServiceError{ErrorCode::kUnknownAlgorithm,
                        "non-standard exception resolving " + req.algo,
                        std::current_exception()};
  }
  try {
    // Fail invalid resources before they reach the cache or in-flight
    // table; same uniform message the scheduler itself would produce.
    validate_resources(Resources{req.p, req.memory_cap},
                       sched->capabilities(), req.algo);
  } catch (const std::exception& e) {
    return ServiceError{ErrorCode::kInvalidResources, e.what(),
                        std::current_exception()};
  } catch (...) {
    return ServiceError{ErrorCode::kInvalidResources,
                        "non-standard exception validating resources for " +
                            req.algo,
                        std::current_exception()};
  }

  try {
    bool hit = false;
    CachedResultPtr result;
    if (cache_.enabled()) {
      const ResultKey key = key_for(req, *sched);
      result = cache_.get(key);
      if (result) {
        hit = true;
      } else {
        result = compute_deduplicated(key, req, *sched, hit);
      }
    } else {
      // Cache disabled: the honest uncached path. No in-flight sharing
      // either — every request pays its own compute, which is exactly
      // what bench_service's baseline must measure.
      result = compute(req, *sched);
    }

    ScheduleResponse resp;
    resp.makespan = result->makespan;
    resp.peak_memory = result->peak_memory;
    resp.cache_hit = hit;
    if (req.want_schedule) {
      resp.schedule =
          std::shared_ptr<const Schedule>(result, &result->schedule);
    }
    req.stamps.stamp(Stage::kComputeEnd);
    resp.stamps = req.stamps;
    record_stage_metrics(req);
    return resp;
  } catch (const std::exception& e) {
    return ServiceError{ErrorCode::kSchedulerFailure, e.what(),
                        std::current_exception()};
  } catch (...) {
    // The Scheduler interface does not forbid non-std exceptions. They
    // must still become values here: escaping would skip the servicer's
    // release() (deadlocking the destructor's drain) and terminate the
    // pool worker.
    return ServiceError{ErrorCode::kSchedulerFailure,
                        "non-standard exception from " + req.algo,
                        std::current_exception()};
  }
}

CachedResultPtr SchedulingService::compute_deduplicated(
    const ResultKey& key, const ScheduleRequest& req, const Scheduler& sched,
    bool& shared_from_twin) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto& slot = inflight_[key];
    if (!slot) {
      slot = std::make_shared<InFlight>();
      leader = true;
    }
    flight = slot;
  }

  if (!leader) {
    // A twin request is already computing this key: wait for its result
    // instead of duplicating the work. (If the leader published to the
    // cache and retired before we reached the in-flight table, we become
    // a leader ourselves and recompute — a rare, benign duplication.)
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    shared_from_twin = true;  // answered without computing: a cache_hit
    return flight->result;
  }

  CachedResultPtr result;
  std::exception_ptr error;
  try {
    result = compute(req, sched);
    cache_.put(key, result);
  } catch (...) {
    error = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  {
    const std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = result;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return result;
}

CachedResultPtr SchedulingService::compute(const ScheduleRequest& req,
                                           const Scheduler& sched) {
  const std::uint64_t started = obs::now_ns();
  Schedule s =
      sched.schedule(*req.tree, Resources{req.p, req.memory_cap});
  if (config_.validate) {
    const ScheduleCheck v =
        check_schedule(*req.tree, s, req.p, req.memory_cap);
    if (!v.ok) {
      throw std::logic_error("service: invalid schedule from " + req.algo +
                             ": " + v.error);
    }
  }
  const SimulationResult sim = simulate(*req.tree, s);
  auto result = std::make_shared<CachedResult>();
  result->makespan = sim.makespan;
  result->peak_memory = sim.peak_memory;
  result->schedule = std::move(s);

  // Per-algorithm distributions (ISSUE 7 satellite): actual scheduler
  // compute only — cache hits and twin-shared results never get here,
  // so these histograms answer "what does algorithm X cost" without a
  // campaign rerun. Registry get-or-create takes a lock, which is noise
  // against a real scheduler run.
  const std::uint64_t took = obs::now_ns() - started;
  const std::string algo_label = "algo=\"" + req.algo + "\"";
  registry_
      ->histogram("treesched_algo_compute_seconds", algo_label,
                  "Scheduler compute time by algorithm",
                  obs::Histogram::latency_bounds_ns(), 1e-9)
      .record(took);
  registry_
      ->histogram("treesched_algo_peak_memory_bytes", algo_label,
                  "Schedule peak memory by algorithm",
                  obs::Histogram::bytes_bounds(), 1.0)
      .record(static_cast<std::uint64_t>(sim.peak_memory));
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    tracer.record(tracer.intern_name("compute:" + req.algo), started, took,
                  req.tree.uid);
  }
  return result;
}

void SchedulingService::drain_one() {
  RequestQueue::PopResult popped = queue_->pop();
  for (RequestQueue::Entry& e : popped.expired) {
    std::ostringstream os;
    os << "deadline expired: " << to_string(e.submitted) << " request ("
       << e.request.algo << ", deadline " << e.request.deadline_ms
       << " ms) spent "
       << std::chrono::duration<double, std::milli>(
              RequestQueue::Clock::now() - e.admitted)
              .count()
       << " ms queued";
    detail::complete_ticket(
        e.ticket,
        ServiceError{ErrorCode::kDeadlineExpired, os.str(), nullptr});
  }
  if (popped.entry) {
    popped.entry->request.stamps.stamp(Stage::kDequeue);
    detail::complete_ticket(popped.entry->ticket,
                            evaluate(popped.entry->request));
  }
}

Ticket SchedulingService::submit(ScheduleRequest req) {
  auto state = std::make_shared<detail::TicketState>();

  if (ThreadPool::shared().on_worker_thread()) {
    // A nested submission (a batch item or campaign fanning out from a
    // pool worker) already holds a worker: routing it through the queue
    // could deadlock — its drain job may only ever be runnable on this
    // very thread — and any inline-draining scheme must then re-balance
    // pops against entries (an entry taken by someone else's job leaves
    // that job's entry short a servicer). Compute synchronously instead,
    // like a parallel_for caller participating in its own work: the
    // request never waits, so its class and deadline are trivially
    // honored, and it is invisible to queue_stats() (never queued, so
    // never cancellable either).
    detail::complete_ticket(state, evaluate(req));
    return Ticket(std::move(state), nullptr, 0);
  }

  req.stamps.stamp(Stage::kAdmit);
  // The servicer is registered in async_outstanding_ BEFORE the entry is
  // admitted: at no instant does the queue hold an entry whose answerer
  // the destructor cannot see.
  {
    const std::lock_guard<std::mutex> lock(async_mutex_);
    ++async_outstanding_;
  }
  auto release = [this] {
    // Notify under the mutex: the moment it unlocks, the destructor may
    // observe zero and free `this`, so the cv must not be touched after.
    const std::lock_guard<std::mutex> lock(async_mutex_);
    --async_outstanding_;
    async_cv_.notify_all();
  };
  const std::optional<std::uint64_t> seq = queue_->push(std::move(req), state);
  if (!seq) {
    release();
    // Rejected at admission; the ticket already carries kQueueFull.
    return Ticket(std::move(state), nullptr, 0);
  }
  ThreadPool::shared().submit([this, release] {
    drain_one();
    release();
  });
  return Ticket(std::move(state), queue_, *seq);
}

ScheduleResponse SchedulingService::schedule(const ScheduleRequest& req) {
  return unwrap(submit(req).wait());
}

std::vector<ScheduleResponse> SchedulingService::schedule_batch(
    const std::vector<ScheduleRequest>& reqs) {
  std::vector<ScheduleResponse> responses(reqs.size());
  if (config_.threads != 0) {
    // An explicit thread bound is a compute-parallelism promise the
    // shared-pool admission queue cannot keep (drain jobs fan out over
    // the whole pool), so honor it with `threads`-wide submissions —
    // worker-claimed items compute inline; items claimed by the
    // participating caller flow through the queue (they may finish
    // after the workers' share, but the compute width stays bounded).
    // Deadlines are ignored on the whole of schedule_batch, as on the
    // v1 synchronous batch: on this width-bound path whether an item
    // lands on a worker (inline, deadline moot) or the caller (queued)
    // is a scheduling accident that must not pick which items expire.
    parallel_for(
        reqs.size(),
        [&](std::size_t i) {
          ScheduleRequest req = reqs[i];
          req.deadline_ms = 0.0;
          responses[i] = to_response(submit(std::move(req)).wait());
        },
        config_.threads);
    return responses;
  }
  // Same tickets + ordered collect as schedule_prioritized, minus the
  // deadlines (stripped above for the width-bound path too): the v1
  // batch contract. schedule_prioritized is the deadline-honoring batch.
  std::vector<Ticket> tickets;
  tickets.reserve(reqs.size());
  for (const ScheduleRequest& r : reqs) {
    ScheduleRequest req = r;
    req.deadline_ms = 0.0;
    tickets.push_back(submit(std::move(req)));
  }
  return collect_ordered(std::move(tickets));
}

std::future<ScheduleResponse> SchedulingService::schedule_async(
    ScheduleRequest req) {
  return submit(std::move(req)).legacy_future();
}

std::vector<ScheduleResponse> SchedulingService::schedule_prioritized(
    const std::vector<ScheduleRequest>& reqs) {
  std::vector<Ticket> tickets;
  tickets.reserve(reqs.size());
  for (const ScheduleRequest& req : reqs) tickets.push_back(submit(req));
  return collect_ordered(std::move(tickets));
}

std::vector<ScheduleResponse> SchedulingService::collect_ordered(
    std::vector<Ticket> tickets) {
  std::vector<ScheduleResponse> responses(tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    responses[i] = to_response(tickets[i].wait());
  }
  return responses;
}

std::vector<std::pair<std::string, std::uint64_t>> service_stats_pairs(
    const SchedulingService& service) {
  const CacheStats cs = service.cache_stats();
  const QueueStats qs = service.queue_stats();
  const InstanceStore::Stats ss = service.store_stats();
  std::uint64_t admitted = 0, completed = 0, expired = 0, cancelled = 0,
                rejected = 0;
  for (const ClassQueueStats& c : qs.by_class) {
    admitted += c.admitted;
    completed += c.completed;
    expired += c.expired;
    cancelled += c.cancelled;
    rejected += c.rejected;
  }
  std::vector<std::pair<std::string, std::uint64_t>> pairs = {
      {"queue_pending", qs.pending()},
      {"queue_admitted", admitted},
      {"queue_completed", completed},
      {"queue_expired", expired},
      {"queue_cancelled", cancelled},
      {"queue_rejected", rejected},
      {"cache_hits", cs.hits},
      {"cache_misses", cs.misses},
      {"cache_entries", cs.entries},
      {"cache_bytes", cs.bytes},
      {"cache_evictions", cs.evictions},
      {"store_trees", ss.unique_trees},
      {"store_bytes", ss.bytes},
      {"store_rejected", ss.rejected},
  };
  // Everything after the legacy block is additive vocabulary (ISSUE 7):
  // per-class queue keys (both front-ends get them from this one
  // function — that is the parity guarantee), the shared pool, and the
  // stage-histogram summaries from the service's registry.
  static constexpr const char* kClassKey[kPriorityClasses] = {
      "interactive", "batch", "bulk"};
  for (std::size_t c = 0; c < kPriorityClasses; ++c) {
    const ClassQueueStats& q = qs.by_class[c];
    const std::string suffix = std::string("_") + kClassKey[c];
    pairs.emplace_back("queue_pending" + suffix, q.pending);
    pairs.emplace_back("queue_admitted" + suffix, q.admitted);
    pairs.emplace_back("queue_completed" + suffix, q.completed);
    pairs.emplace_back("queue_expired" + suffix, q.expired);
    pairs.emplace_back("queue_cancelled" + suffix, q.cancelled);
    pairs.emplace_back("queue_rejected" + suffix, q.rejected);
    pairs.emplace_back("queue_aged" + suffix, q.aged);
    pairs.emplace_back(
        "queue_wait_p99_us" + suffix,
        static_cast<std::uint64_t>(std::max(0.0, q.wait_ms_p99 * 1000.0)));
  }
  const ThreadPool::Stats ps = ThreadPool::shared().stats();
  pairs.emplace_back("pool_threads", ps.threads);
  pairs.emplace_back("pool_submitted", ps.submitted);
  pairs.emplace_back("pool_executed", ps.executed);
  pairs.emplace_back("pool_pending", ps.pending);
  for (auto& kv : service.registry().snapshot().stats_pairs()) {
    pairs.push_back(std::move(kv));
  }
  return pairs;
}

}  // namespace treesched

#include "service/service.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/simulator.hpp"
#include "sched/validate.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace treesched {

SchedulingService::SchedulingService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_bytes, config.cache_shards),
      queue_(config.queue) {}

SchedulingService::~SchedulingService() {
  // One registered pool job covers every queued entry from before it is
  // admitted until it is answered (nested worker submissions never touch
  // the queue — they compute synchronously), so once the count reaches
  // zero the queue is empty, every promise has been completed, and
  // nothing still references this service — tearing down cannot strand a
  // future or leave a drain touching freed state.
  std::unique_lock<std::mutex> lock(async_mutex_);
  async_cv_.wait(lock, [&] { return async_outstanding_ == 0; });
}

TreeHandle SchedulingService::intern(Tree tree) {
  return store_.intern(std::move(tree));
}

std::shared_ptr<const Scheduler> SchedulingService::resolve(
    const std::string& algo) {
  {
    const std::shared_lock<std::shared_mutex> lock(schedulers_mutex_);
    const auto it = schedulers_.find(algo);
    if (it != schedulers_.end()) return it->second;
  }
  const std::unique_lock<std::shared_mutex> lock(schedulers_mutex_);
  const auto it = schedulers_.find(algo);  // re-check: we raced a writer
  if (it != schedulers_.end()) return it->second;
  // Throws std::invalid_argument listing the known names on a typo.
  std::shared_ptr<const Scheduler> sched =
      SchedulerRegistry::instance().create(algo);
  schedulers_.emplace(algo, sched);
  return sched;
}

ResultKey SchedulingService::key_for(const ScheduleRequest& req,
                                     const Scheduler& sched) const {
  ResultKey key;
  key.tree_uid = req.tree.uid;
  key.algo = req.algo;
  // Sequential-only algorithms ignore p, so every p maps to one cache
  // entry — a campaign's cross-p sweep of Liu/BestPostorder/... computes
  // each tree once and hits thereafter.
  key.p = sched.capabilities().sequential_only ? 1 : req.p;
  key.memory_cap = req.memory_cap;
  return key;
}

ScheduleResponse SchedulingService::schedule(const ScheduleRequest& req) {
  if (!req.tree) {
    throw std::invalid_argument(
        "service: request carries no tree (intern one first)");
  }
  const std::shared_ptr<const Scheduler> sched = resolve(req.algo);
  // Fail invalid resources before they reach the cache or in-flight
  // table; same uniform message the scheduler itself would produce.
  validate_resources(Resources{req.p, req.memory_cap}, sched->capabilities(),
                     req.algo);

  bool hit = false;
  CachedResultPtr result;
  if (cache_.enabled()) {
    const ResultKey key = key_for(req, *sched);
    result = cache_.get(key);
    if (result) {
      hit = true;
    } else {
      result = compute_deduplicated(key, req, *sched, hit);
    }
  } else {
    // Cache disabled: the honest uncached path. No in-flight sharing
    // either — every request pays its own compute, which is exactly
    // what bench_service's baseline must measure.
    result = compute(req, *sched);
  }

  ScheduleResponse resp;
  resp.makespan = result->makespan;
  resp.peak_memory = result->peak_memory;
  resp.cache_hit = hit;
  if (req.want_schedule) {
    resp.schedule =
        std::shared_ptr<const Schedule>(result, &result->schedule);
  }
  return resp;
}

CachedResultPtr SchedulingService::compute_deduplicated(
    const ResultKey& key, const ScheduleRequest& req, const Scheduler& sched,
    bool& shared_from_twin) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto& slot = inflight_[key];
    if (!slot) {
      slot = std::make_shared<InFlight>();
      leader = true;
    }
    flight = slot;
  }

  if (!leader) {
    // A twin request is already computing this key: wait for its result
    // instead of duplicating the work. (If the leader published to the
    // cache and retired before we reached the in-flight table, we become
    // a leader ourselves and recompute — a rare, benign duplication.)
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    shared_from_twin = true;  // answered without computing: a cache_hit
    return flight->result;
  }

  CachedResultPtr result;
  std::exception_ptr error;
  try {
    result = compute(req, sched);
    cache_.put(key, result);
  } catch (...) {
    error = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  {
    const std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = result;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return result;
}

CachedResultPtr SchedulingService::compute(const ScheduleRequest& req,
                                           const Scheduler& sched) {
  Schedule s =
      sched.schedule(*req.tree, Resources{req.p, req.memory_cap});
  if (config_.validate) {
    const ScheduleCheck v =
        check_schedule(*req.tree, s, req.p, req.memory_cap);
    if (!v.ok) {
      throw std::logic_error("service: invalid schedule from " + req.algo +
                             ": " + v.error);
    }
  }
  const SimulationResult sim = simulate(*req.tree, s);
  auto result = std::make_shared<CachedResult>();
  result->makespan = sim.makespan;
  result->peak_memory = sim.peak_memory;
  result->schedule = std::move(s);
  return result;
}

std::vector<ScheduleResponse> SchedulingService::schedule_batch(
    const std::vector<ScheduleRequest>& reqs) {
  std::vector<ScheduleResponse> responses(reqs.size());
  parallel_for(
      reqs.size(),
      [&](std::size_t i) {
        try {
          responses[i] = schedule(reqs[i]);
        } catch (const std::exception& e) {
          responses[i] = ScheduleResponse{};
          responses[i].error = e.what();
        }
      },
      config_.threads);
  return responses;
}

void SchedulingService::drain_one() {
  RequestQueue::PopResult popped = queue_.pop();
  for (RequestQueue::Entry& e : popped.expired) {
    std::ostringstream os;
    os << "deadline expired: " << to_string(e.submitted) << " request ("
       << e.request.algo << ", deadline " << e.request.deadline_ms
       << " ms) spent "
       << std::chrono::duration<double, std::milli>(
              RequestQueue::Clock::now() - e.admitted)
              .count()
       << " ms queued";
    e.promise.set_exception(std::make_exception_ptr(DeadlineExpired(os.str())));
  }
  if (popped.entry) {
    try {
      popped.entry->promise.set_value(schedule(popped.entry->request));
    } catch (...) {
      popped.entry->promise.set_exception(std::current_exception());
    }
  }
}

std::future<ScheduleResponse> SchedulingService::schedule_async(
    ScheduleRequest req) {
  std::promise<ScheduleResponse> promise;
  std::future<ScheduleResponse> future = promise.get_future();

  if (ThreadPool::shared().on_worker_thread()) {
    // A nested submission (a batch item or campaign fanning out from a
    // pool worker) already holds a worker: routing it through the queue
    // could deadlock — its drain job may only ever be runnable on this
    // very thread — and any inline-draining scheme must then re-balance
    // pops against entries (an entry taken by someone else's job leaves
    // that job's entry short a servicer). Compute synchronously instead,
    // like a parallel_for caller participating in its own work: the
    // request never waits, so its class and deadline are trivially
    // honored, and it is invisible to queue_stats() (never queued).
    try {
      promise.set_value(schedule(req));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    return future;
  }

  // The servicer is registered in async_outstanding_ BEFORE the entry is
  // admitted: at no instant does the queue hold an entry whose answerer
  // the destructor cannot see.
  {
    const std::lock_guard<std::mutex> lock(async_mutex_);
    ++async_outstanding_;
  }
  auto release = [this] {
    // Notify under the mutex: the moment it unlocks, the destructor may
    // observe zero and free `this`, so the cv must not be touched after.
    const std::lock_guard<std::mutex> lock(async_mutex_);
    --async_outstanding_;
    async_cv_.notify_all();
  };
  if (!queue_.push(std::move(req), std::move(promise))) {
    release();
    return future;  // rejected at admission; the promise already carries
                    // the typed error
  }
  ThreadPool::shared().submit([this, release] {
    drain_one();
    release();
  });
  return future;
}

std::vector<ScheduleResponse> SchedulingService::schedule_prioritized(
    const std::vector<ScheduleRequest>& reqs) {
  std::vector<std::future<ScheduleResponse>> futures;
  futures.reserve(reqs.size());
  for (const ScheduleRequest& req : reqs) {
    futures.push_back(schedule_async(req));
  }
  std::vector<ScheduleResponse> responses(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    try {
      responses[i] = futures[i].get();
    } catch (const std::exception& e) {
      responses[i] = ScheduleResponse{};
      responses[i].error = e.what();
    }
  }
  return responses;
}

}  // namespace treesched

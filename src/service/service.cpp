#include "service/service.hpp"

#include <stdexcept>
#include <utility>

#include "core/simulator.hpp"
#include "util/parallel.hpp"

namespace treesched {

SchedulingService::SchedulingService(ServiceConfig config)
    : config_(config), cache_(config.cache_bytes, config.cache_shards) {}

TreeHandle SchedulingService::intern(Tree tree) {
  return store_.intern(std::move(tree));
}

std::shared_ptr<const Scheduler> SchedulingService::resolve(
    const std::string& algo) {
  {
    const std::shared_lock<std::shared_mutex> lock(schedulers_mutex_);
    const auto it = schedulers_.find(algo);
    if (it != schedulers_.end()) return it->second;
  }
  const std::unique_lock<std::shared_mutex> lock(schedulers_mutex_);
  const auto it = schedulers_.find(algo);  // re-check: we raced a writer
  if (it != schedulers_.end()) return it->second;
  // Throws std::invalid_argument listing the known names on a typo.
  std::shared_ptr<const Scheduler> sched =
      SchedulerRegistry::instance().create(algo);
  schedulers_.emplace(algo, sched);
  return sched;
}

ResultKey SchedulingService::key_for(const ScheduleRequest& req,
                                     const Scheduler& sched) const {
  ResultKey key;
  key.tree_uid = req.tree.uid;
  key.algo = req.algo;
  // Sequential-only algorithms ignore p, so every p maps to one cache
  // entry — a campaign's cross-p sweep of Liu/BestPostorder/... computes
  // each tree once and hits thereafter.
  key.p = sched.capabilities().sequential_only ? 1 : req.p;
  key.memory_cap = req.memory_cap;
  return key;
}

ScheduleResponse SchedulingService::schedule(const ScheduleRequest& req) {
  if (!req.tree) {
    throw std::invalid_argument(
        "service: request carries no tree (intern one first)");
  }
  const std::shared_ptr<const Scheduler> sched = resolve(req.algo);
  // Fail invalid resources before they reach the cache or in-flight
  // table; same uniform message the scheduler itself would produce.
  validate_resources(Resources{req.p, req.memory_cap}, sched->capabilities(),
                     req.algo);

  bool hit = false;
  CachedResultPtr result;
  if (cache_.enabled()) {
    const ResultKey key = key_for(req, *sched);
    result = cache_.get(key);
    if (result) {
      hit = true;
    } else {
      result = compute_deduplicated(key, req, *sched, hit);
    }
  } else {
    // Cache disabled: the honest uncached path. No in-flight sharing
    // either — every request pays its own compute, which is exactly
    // what bench_service's baseline must measure.
    result = compute(req, *sched);
  }

  ScheduleResponse resp;
  resp.makespan = result->makespan;
  resp.peak_memory = result->peak_memory;
  resp.cache_hit = hit;
  if (req.want_schedule) {
    resp.schedule =
        std::shared_ptr<const Schedule>(result, &result->schedule);
  }
  return resp;
}

CachedResultPtr SchedulingService::compute_deduplicated(
    const ResultKey& key, const ScheduleRequest& req, const Scheduler& sched,
    bool& shared_from_twin) {
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto& slot = inflight_[key];
    if (!slot) {
      slot = std::make_shared<InFlight>();
      leader = true;
    }
    flight = slot;
  }

  if (!leader) {
    // A twin request is already computing this key: wait for its result
    // instead of duplicating the work. (If the leader published to the
    // cache and retired before we reached the in-flight table, we become
    // a leader ourselves and recompute — a rare, benign duplication.)
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    shared_from_twin = true;  // answered without computing: a cache_hit
    return flight->result;
  }

  CachedResultPtr result;
  std::exception_ptr error;
  try {
    result = compute(req, sched);
    cache_.put(key, result);
  } catch (...) {
    error = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(key);
  }
  {
    const std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = result;
    flight->error = error;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return result;
}

CachedResultPtr SchedulingService::compute(const ScheduleRequest& req,
                                           const Scheduler& sched) {
  Schedule s =
      sched.schedule(*req.tree, Resources{req.p, req.memory_cap});
  if (config_.validate) {
    const ValidationResult v = validate_schedule(*req.tree, s, req.p);
    if (!v.ok) {
      throw std::logic_error("service: invalid schedule from " + req.algo +
                             ": " + v.error);
    }
  }
  const SimulationResult sim = simulate(*req.tree, s);
  auto result = std::make_shared<CachedResult>();
  result->makespan = sim.makespan;
  result->peak_memory = sim.peak_memory;
  result->schedule = std::move(s);
  return result;
}

std::vector<ScheduleResponse> SchedulingService::schedule_batch(
    const std::vector<ScheduleRequest>& reqs) {
  std::vector<ScheduleResponse> responses(reqs.size());
  parallel_for(
      reqs.size(),
      [&](std::size_t i) {
        try {
          responses[i] = schedule(reqs[i]);
        } catch (const std::exception& e) {
          responses[i] = ScheduleResponse{};
          responses[i].error = e.what();
        }
      },
      config_.threads);
  return responses;
}

}  // namespace treesched

#pragma once
// Node amalgamation: elimination tree -> assembly tree.
//
// The paper (§6.2) performs "a relaxed node amalgamation ... allowing
// 1, 2, 4, and 16 relaxed amalgamations per node". We implement:
//  * fundamental supernode merging (a child that is the ONLY child of its
//    parent and whose factor column is the parent's column plus one row,
//    mu_c == mu_p + 1, is merged: no zero entries are introduced), and
//  * relaxed merging with a cap z on the number of original columns eta
//    amalgamated into one assembly node (z = 1 disables relaxed merging).
// Amalgamated node: eta = number of original columns, mu = column count of
// the highest (last eliminated) column — exactly the (eta, mu) the paper
// feeds into its weight formulas.

#include <cstdint>
#include <vector>

#include "spmatrix/symbolic.hpp"

namespace treesched {

struct AssemblyNode {
  int parent = -1;        ///< assembly-tree parent (-1 for the root)
  std::int64_t eta = 0;   ///< #original columns amalgamated (paper's η)
  std::int64_t mu = 0;    ///< column count of the highest column (paper's µ)
};

struct AssemblyTree {
  std::vector<AssemblyNode> nodes;
  /// assembly node of each original column.
  std::vector<int> node_of_column;
};

/// Builds the assembly tree from symbolic factorization output.
/// `max_amalgamation` = the paper's 1 / 2 / 4 / 16 cap on η.
AssemblyTree amalgamate(const SymbolicResult& symbolic,
                        std::int64_t max_amalgamation,
                        bool fundamental_supernodes = true);

}  // namespace treesched

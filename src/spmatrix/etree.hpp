#pragma once
// Elimination tree of a permuted symmetric matrix (Liu's parent-pointer
// algorithm with path compression, O(nnz * alpha)).
//
// Column k of the permuted matrix corresponds to original vertex perm[k].
// parent[k] is the etree parent column of column k (-1 for roots). For a
// connected pattern the etree is a single tree rooted at column n-1.

#include <vector>

#include "spmatrix/ordering.hpp"
#include "spmatrix/sparse.hpp"

namespace treesched {

/// Elimination-tree parents in the permuted index space.
std::vector<int> elimination_tree(const SparsePattern& a,
                                  const Ordering& perm);

/// Dense-Gaussian-elimination reference: simulates symbolic elimination on
/// an explicit bitset and derives parents as the first fill row below the
/// diagonal. O(n^3 / 64); test oracle only.
std::vector<int> elimination_tree_dense_reference(const SparsePattern& a,
                                                  const Ordering& perm);

}  // namespace treesched

#pragma once
// Fill-reducing orderings, replacing MeTiS and amd in the paper's pipeline.
//
// An ordering is the pivot sequence: perm[k] = original vertex eliminated
// at step k (so the permuted matrix's column k is original vertex perm[k]).

#include <vector>

#include "spmatrix/sparse.hpp"
#include "util/random.hpp"

namespace treesched {

using Ordering = std::vector<int>;

/// Identity ordering (natural).
Ordering natural_ordering(int n);

/// Inverse of an ordering: inv[perm[k]] = k.
Ordering inverse_ordering(const Ordering& perm);

/// Minimum-degree ordering by explicit clique updates (the amd analogue).
/// Exact-degree greedy with lazy-heap tie-breaking; O(sum of eliminated
/// clique sizes squared) — fine up to a few thousand vertices.
Ordering minimum_degree_ordering(const SparsePattern& a);

/// Reverse Cuthill-McKee (bandwidth-reducing baseline).
Ordering rcm_ordering(const SparsePattern& a);

/// Geometric nested dissection for a 2D grid laid out as x + nx * y
/// (the MeTiS analogue for model problems). `min_block`: boxes at most
/// this wide are ordered naturally.
Ordering nested_dissection_2d(int nx, int ny, int min_block = 4);

/// Geometric nested dissection for a 3D grid laid out as
/// x + nx * (y + ny * z).
Ordering nested_dissection_3d(int nx, int ny, int nz, int min_block = 3);

/// Uniformly random permutation (stress-test baseline).
Ordering random_ordering(int n, Rng& rng);

}  // namespace treesched

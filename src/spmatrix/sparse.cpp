#include "spmatrix/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace treesched {

SparsePattern::SparsePattern(int n, std::vector<std::pair<int, int>> edges)
    : n_(n) {
  if (n < 0) throw std::invalid_argument("SparsePattern: n < 0");
  // Normalize: both directions, dedupe, drop self loops.
  std::vector<std::pair<int, int>> dir;
  dir.reserve(edges.size() * 2);
  for (auto [i, j] : edges) {
    if (i == j) continue;
    if (i < 0 || i >= n || j < 0 || j >= n) {
      throw std::invalid_argument("SparsePattern: vertex out of range");
    }
    dir.emplace_back(i, j);
    dir.emplace_back(j, i);
  }
  std::sort(dir.begin(), dir.end());
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());
  begin_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (auto& [i, j] : dir) ++begin_[i + 1];
  for (int i = 0; i < n; ++i) begin_[i + 1] += begin_[i];
  adj_.resize(dir.size());
  std::vector<std::int64_t> cursor(begin_.begin(), begin_.end() - 1);
  for (auto& [i, j] : dir) adj_[cursor[i]++] = j;
}

SparsePattern grid2d_pattern(int nx, int ny) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("grid2d: bad dims");
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(nx) * ny * 2);
  auto id = [nx](int x, int y) { return x + nx * y; };
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      if (x + 1 < nx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ny) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return SparsePattern(nx * ny, std::move(edges));
}

SparsePattern grid3d_pattern(int nx, int ny, int nz) {
  if (nx < 1 || ny < 1 || nz < 1) {
    throw std::invalid_argument("grid3d: bad dims");
  }
  std::vector<std::pair<int, int>> edges;
  auto id = [nx, ny](int x, int y, int z) { return x + nx * (y + ny * z); };
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        if (x + 1 < nx) edges.emplace_back(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) edges.emplace_back(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) edges.emplace_back(id(x, y, z), id(x, y, z + 1));
      }
    }
  }
  return SparsePattern(nx * ny * nz, std::move(edges));
}

SparsePattern random_pattern(int n, double avg_degree, Rng& rng) {
  if (n < 1) throw std::invalid_argument("random_pattern: n < 1");
  std::vector<std::pair<int, int>> edges;
  // Random spanning tree for connectivity.
  for (int v = 1; v < n; ++v) {
    edges.emplace_back(v, static_cast<int>(rng.uniform(v)));
  }
  const auto extra = static_cast<std::int64_t>(
      std::max(0.0, avg_degree / 2.0 - 1.0) * n);
  for (std::int64_t e = 0; e < extra; ++e) {
    int i = static_cast<int>(rng.uniform(n));
    int j = static_cast<int>(rng.uniform(n));
    if (i != j) edges.emplace_back(i, j);
  }
  return SparsePattern(n, std::move(edges));
}

}  // namespace treesched

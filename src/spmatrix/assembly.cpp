#include "spmatrix/assembly.hpp"

#include <stdexcept>

namespace treesched {

AssemblyWeights assembly_weights(std::int64_t eta, std::int64_t mu) {
  if (eta < 1 || mu < 1) {
    throw std::invalid_argument("assembly_weights: eta, mu >= 1");
  }
  AssemblyWeights w{};
  const auto e = static_cast<double>(eta);
  const auto m1 = static_cast<double>(mu - 1);
  w.exec_size = static_cast<MemSize>(eta * eta + 2 * eta * (mu - 1));
  w.output_size = static_cast<MemSize>((mu - 1) * (mu - 1));
  w.work = (2.0 / 3.0) * e * e * e + e * e * m1 + e * m1 * m1;
  return w;
}

Tree assembly_to_task_tree(const AssemblyTree& at,
                           std::vector<int>* assembly_of_task) {
  const int n = static_cast<int>(at.nodes.size());
  if (n == 0) throw std::invalid_argument("assembly_to_task_tree: empty");
  int num_roots = 0;
  for (const auto& node : at.nodes) num_roots += node.parent == -1 ? 1 : 0;
  const bool virtual_root = num_roots > 1;

  std::vector<NodeId> parent;
  std::vector<MemSize> out, exec;
  std::vector<double> work;
  const int total = n + (virtual_root ? 1 : 0);
  parent.reserve(total);
  out.reserve(total);
  exec.reserve(total);
  work.reserve(total);
  if (assembly_of_task) assembly_of_task->clear();

  for (int i = 0; i < n; ++i) {
    const AssemblyNode& node = at.nodes[i];
    const AssemblyWeights w = assembly_weights(node.eta, node.mu);
    NodeId par;
    if (node.parent == -1) {
      par = virtual_root ? static_cast<NodeId>(n) : kNoNode;
    } else {
      par = static_cast<NodeId>(node.parent);
    }
    parent.push_back(par);
    out.push_back(w.output_size);
    exec.push_back(w.exec_size);
    work.push_back(w.work);
    if (assembly_of_task) assembly_of_task->push_back(i);
  }
  if (virtual_root) {
    parent.push_back(kNoNode);
    out.push_back(0);
    exec.push_back(0);
    work.push_back(0.0);
    if (assembly_of_task) assembly_of_task->push_back(-1);
  }
  return Tree(std::move(parent), std::move(out), std::move(exec),
              std::move(work));
}

}  // namespace treesched

#pragma once
// Symbolic Cholesky factorization: column counts of the factor L
// (the paper's Matlab `symbfact` analogue).
//
// struct(L_{*j}) = {j} ∪ {i > j : A_{ij} != 0}
//                ∪ ( ∪_{c child of j in etree} struct(L_{*c}) \ {c} )
// computed bottom-up with a marker array; the explicit per-column pattern
// of a child is freed as soon as its parent consumed it, so the working
// set stays proportional to the frontier.

#include <cstdint>
#include <vector>

#include "spmatrix/ordering.hpp"
#include "spmatrix/sparse.hpp"

namespace treesched {

struct SymbolicResult {
  /// mu[j] = |struct(L_{*j})| including the diagonal (the paper's µ).
  std::vector<std::int64_t> col_counts;
  /// nnz(L) = sum of column counts.
  std::int64_t factor_nnz = 0;
  /// Elimination-tree parents (same as elimination_tree()).
  std::vector<int> etree_parent;
};

SymbolicResult symbolic_cholesky(const SparsePattern& a, const Ordering& perm);

/// O(n^2)-space reference via the dense boolean elimination; test oracle.
std::vector<std::int64_t> column_counts_dense_reference(const SparsePattern& a,
                                                        const Ordering& perm);

}  // namespace treesched

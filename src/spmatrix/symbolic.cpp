#include "spmatrix/symbolic.hpp"

#include <algorithm>
#include <stdexcept>

#include "spmatrix/etree.hpp"

namespace treesched {

SymbolicResult symbolic_cholesky(const SparsePattern& a,
                                 const Ordering& perm) {
  const int n = a.size();
  SymbolicResult res;
  res.etree_parent = elimination_tree(a, perm);
  res.col_counts.assign(static_cast<std::size_t>(n), 0);
  const Ordering inv = inverse_ordering(perm);

  // Children lists of the etree.
  std::vector<std::vector<int>> children(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    if (res.etree_parent[j] != -1) children[res.etree_parent[j]].push_back(j);
  }
  // Explicit column patterns, freed once merged into the parent. Columns
  // are processed in increasing index order, which is a valid etree
  // postorder refinement (parent index > child index).
  std::vector<std::vector<int>> pattern(static_cast<std::size_t>(n));
  std::vector<int> mark(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    std::vector<int>& pat = pattern[j];
    mark[j] = j;
    pat.push_back(j);
    for (int u : a.neighbors(perm[j])) {
      const int i = inv[u];
      if (i > j && mark[i] != j) {
        mark[i] = j;
        pat.push_back(i);
      }
    }
    for (int c : children[j]) {
      for (int i : pattern[c]) {
        if (i > j && mark[i] != j) {
          mark[i] = j;
          pat.push_back(i);
        }
      }
      pattern[c].clear();
      pattern[c].shrink_to_fit();
    }
    std::sort(pat.begin(), pat.end());
    res.col_counts[j] = static_cast<std::int64_t>(pat.size());
    res.factor_nnz += res.col_counts[j];
  }
  return res;
}

std::vector<std::int64_t> column_counts_dense_reference(const SparsePattern& a,
                                                        const Ordering& perm) {
  const int n = a.size();
  const Ordering inv = inverse_ordering(perm);
  std::vector<std::vector<char>> lower(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (int j = 0; j < n; ++j) {
    for (int u : a.neighbors(perm[j])) {
      const int i = inv[u];
      if (i > j) lower[j][i] = 1;
    }
  }
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    int par = -1;
    std::int64_t cnt = 1;  // diagonal
    for (int i = j + 1; i < n; ++i) {
      if (lower[j][i]) {
        ++cnt;
        if (par == -1) par = i;
      }
    }
    counts[j] = cnt;
    if (par == -1) continue;
    for (int i = par + 1; i < n; ++i) {
      if (lower[j][i]) lower[par][i] = 1;
    }
  }
  return counts;
}

}  // namespace treesched

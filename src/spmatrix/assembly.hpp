#pragma once
// Assembly tree -> scheduling task tree with the paper's weight model
// (§6.2). For an assembly node with η amalgamated columns and column count
// µ (of its highest column):
//
//   n_i = η² + 2η(µ−1)                      (frontal-matrix memory)
//   w_i = (2/3)η³ + η²(µ−1) + η(µ−1)²       (factorization flops)
//   f_i = (µ−1)²                            (contribution block)
//
// These correspond to one η×η Gaussian elimination, two triangular
// η×η · η×(µ−1) multiplications, and one (µ−1)×η · η×(µ−1) update.

#include "core/tree.hpp"
#include "spmatrix/amalgamation.hpp"

namespace treesched {

/// The paper's weight formulas for a single (η, µ) node.
struct AssemblyWeights {
  MemSize exec_size;    // n_i
  MemSize output_size;  // f_i
  double work;          // w_i
};
AssemblyWeights assembly_weights(std::int64_t eta, std::int64_t mu);

/// Converts the assembly tree to a scheduling Tree. If the assembly tree is
/// a forest (disconnected matrix), a zero-weight virtual root is added.
/// `assembly_of_task`, when given, maps task ids back to assembly nodes
/// (-1 for the virtual root).
Tree assembly_to_task_tree(const AssemblyTree& at,
                           std::vector<int>* assembly_of_task = nullptr);

}  // namespace treesched

#include "spmatrix/etree.hpp"

#include <stdexcept>

namespace treesched {

std::vector<int> elimination_tree(const SparsePattern& a,
                                  const Ordering& perm) {
  const int n = a.size();
  if (static_cast<int>(perm.size()) != n) {
    throw std::invalid_argument("elimination_tree: bad permutation");
  }
  const Ordering inv = inverse_ordering(perm);
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> ancestor(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    for (int u : a.neighbors(perm[j])) {
      int i = inv[u];
      if (i >= j) continue;
      // Walk from i to the root of its current subtree, compressing the
      // ancestor path onto j.
      int r = i;
      while (ancestor[r] != -1 && ancestor[r] != j) {
        const int next = ancestor[r];
        ancestor[r] = j;
        r = next;
      }
      if (ancestor[r] == -1) {
        ancestor[r] = j;
        parent[r] = j;
      }
    }
  }
  return parent;
}

std::vector<int> elimination_tree_dense_reference(const SparsePattern& a,
                                                  const Ordering& perm) {
  const int n = a.size();
  const Ordering inv = inverse_ordering(perm);
  // full[j] = set of rows i > j with L_{ij} != 0 (structurally), as a
  // simple boolean matrix.
  std::vector<std::vector<char>> lower(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (int j = 0; j < n; ++j) {
    for (int u : a.neighbors(perm[j])) {
      const int i = inv[u];
      if (i > j) lower[j][i] = 1;
    }
  }
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    // First subdiagonal nonzero is the parent; spread fill to it.
    int par = -1;
    for (int i = j + 1; i < n; ++i) {
      if (lower[j][i]) {
        par = i;
        break;
      }
    }
    parent[j] = par;
    if (par == -1) continue;
    for (int i = par + 1; i < n; ++i) {
      if (lower[j][i]) lower[par][i] = 1;
    }
  }
  return parent;
}

}  // namespace treesched

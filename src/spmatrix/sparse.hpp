#pragma once
// Symmetric sparse-matrix *patterns* (structure only — the scheduling
// problem never needs numerical values). Stored as full (both-direction)
// CSR adjacency without the diagonal.
//
// This module replaces the University of Florida collection in the paper's
// pipeline: grid Laplacians are the classic model problem for multifrontal
// solvers (what MeTiS-ordered matrices look like), random symmetric
// patterns model irregular problems (what amd-ordered matrices look like).

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.hpp"

namespace treesched {

class SparsePattern {
 public:
  SparsePattern() = default;

  /// From an edge list (i, j), i != j; duplicates and both orientations are
  /// tolerated and normalized.
  SparsePattern(int n, std::vector<std::pair<int, int>> edges);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(adj_.size()) / 2;
  }
  [[nodiscard]] std::span<const int> neighbors(int v) const {
    return {adj_.data() + begin_[v], adj_.data() + begin_[v + 1]};
  }
  [[nodiscard]] int degree(int v) const {
    return static_cast<int>(begin_[v + 1] - begin_[v]);
  }

 private:
  int n_ = 0;
  std::vector<std::int64_t> begin_;
  std::vector<int> adj_;
};

/// 5-point 2D grid Laplacian pattern on nx * ny vertices
/// (vertex (x, y) has index x + nx * y).
SparsePattern grid2d_pattern(int nx, int ny);

/// 7-point 3D grid Laplacian pattern on nx * ny * nz vertices
/// (vertex (x, y, z) has index x + nx * (y + ny * z)).
SparsePattern grid3d_pattern(int nx, int ny, int nz);

/// Connected random symmetric pattern with ~avg_degree neighbors per
/// vertex: a random spanning tree plus uniform random edges.
SparsePattern random_pattern(int n, double avg_degree, Rng& rng);

}  // namespace treesched

#include "spmatrix/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace treesched {

Ordering natural_ordering(int n) {
  Ordering perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  return perm;
}

Ordering inverse_ordering(const Ordering& perm) {
  Ordering inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    inv[perm[k]] = static_cast<int>(k);
  }
  return inv;
}

Ordering minimum_degree_ordering(const SparsePattern& a) {
  const int n = a.size();
  std::vector<std::unordered_set<int>> adj(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (int u : a.neighbors(v)) adj[v].insert(u);
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  // Lazy min-heap of (degree, vertex); stale entries skipped on pop.
  using Entry = std::pair<int, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int v = 0; v < n; ++v) {
    heap.emplace(static_cast<int>(adj[v].size()), v);
  }
  Ordering perm;
  perm.reserve(static_cast<std::size_t>(n));
  while (!heap.empty()) {
    auto [deg, v] = heap.top();
    heap.pop();
    if (eliminated[v] || deg != static_cast<int>(adj[v].size())) continue;
    eliminated[v] = 1;
    perm.push_back(v);
    // Clique update: neighbors of v become pairwise adjacent.
    std::vector<int> nbrs(adj[v].begin(), adj[v].end());
    for (int u : nbrs) adj[u].erase(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        adj[nbrs[i]].insert(nbrs[j]);
        adj[nbrs[j]].insert(nbrs[i]);
      }
    }
    adj[v].clear();
    for (int u : nbrs) {
      heap.emplace(static_cast<int>(adj[u].size()), u);
    }
  }
  if (static_cast<int>(perm.size()) != n) {
    throw std::logic_error("minimum_degree_ordering: incomplete");
  }
  return perm;
}

Ordering rcm_ordering(const SparsePattern& a) {
  const int n = a.size();
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  Ordering order;
  order.reserve(static_cast<std::size_t>(n));
  // Process every connected component, starting from a min-degree vertex.
  for (int seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Pick the lowest-degree unvisited vertex of this component as start:
    // BFS once to collect the component, then restart from its min-degree
    // member (a cheap pseudo-peripheral heuristic).
    std::vector<int> comp{seed};
    visited[seed] = 1;
    for (std::size_t k = 0; k < comp.size(); ++k) {
      for (int u : a.neighbors(comp[k])) {
        if (!visited[u]) {
          visited[u] = 1;
          comp.push_back(u);
        }
      }
    }
    int start = comp.front();
    for (int v : comp) {
      if (a.degree(v) < a.degree(start)) start = v;
    }
    for (int v : comp) visited[v] = 0;
    // Cuthill-McKee BFS with neighbors sorted by degree.
    std::vector<int> frontier{start};
    visited[start] = 1;
    const std::size_t base = order.size();
    order.push_back(start);
    for (std::size_t k = base; k < order.size(); ++k) {
      std::vector<int> nbrs;
      for (int u : a.neighbors(order[k])) {
        if (!visited[u]) {
          visited[u] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](int x, int y) {
        if (a.degree(x) != a.degree(y)) return a.degree(x) < a.degree(y);
        return x < y;
      });
      order.insert(order.end(), nbrs.begin(), nbrs.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

namespace {

// Recursive geometric bisection over an axis-aligned box of the grid.
// Appends interior vertex orderings first, the separator last, so the
// separator's columns are eliminated after both halves (= the etree root
// region), exactly like graph-partitioning ND codes.
struct Box {
  int lo[3];
  int hi[3];  // inclusive
};

template <typename IdFn>
void nd_recurse(const Box& box, int min_block, const IdFn& id,
                Ordering& out) {
  int widths[3];
  for (int d = 0; d < 3; ++d) widths[d] = box.hi[d] - box.lo[d] + 1;
  const int longest = std::max_element(widths, widths + 3) - widths;
  if (widths[longest] <= min_block) {
    for (int z = box.lo[2]; z <= box.hi[2]; ++z) {
      for (int y = box.lo[1]; y <= box.hi[1]; ++y) {
        for (int x = box.lo[0]; x <= box.hi[0]; ++x) {
          out.push_back(id(x, y, z));
        }
      }
    }
    return;
  }
  const int cut = (box.lo[longest] + box.hi[longest]) / 2;
  Box left = box, right = box, sep = box;
  left.hi[longest] = cut - 1;
  right.lo[longest] = cut + 1;
  sep.lo[longest] = sep.hi[longest] = cut;
  if (left.lo[longest] <= left.hi[longest]) {
    nd_recurse(left, min_block, id, out);
  }
  if (right.lo[longest] <= right.hi[longest]) {
    nd_recurse(right, min_block, id, out);
  }
  // Separator plane ordered naturally (it is itself a lower-dimensional
  // grid; recursing on it matters little for tree shape).
  for (int z = sep.lo[2]; z <= sep.hi[2]; ++z) {
    for (int y = sep.lo[1]; y <= sep.hi[1]; ++y) {
      for (int x = sep.lo[0]; x <= sep.hi[0]; ++x) {
        out.push_back(id(x, y, z));
      }
    }
  }
}

}  // namespace

Ordering nested_dissection_2d(int nx, int ny, int min_block) {
  if (nx < 1 || ny < 1) throw std::invalid_argument("nd2d: bad dims");
  Ordering out;
  out.reserve(static_cast<std::size_t>(nx) * ny);
  Box box{{0, 0, 0}, {nx - 1, ny - 1, 0}};
  nd_recurse(box, min_block,
             [nx](int x, int y, int) { return x + nx * y; }, out);
  return out;
}

Ordering nested_dissection_3d(int nx, int ny, int nz, int min_block) {
  if (nx < 1 || ny < 1 || nz < 1) {
    throw std::invalid_argument("nd3d: bad dims");
  }
  Ordering out;
  out.reserve(static_cast<std::size_t>(nx) * ny * nz);
  Box box{{0, 0, 0}, {nx - 1, ny - 1, nz - 1}};
  nd_recurse(box, min_block,
             [nx, ny](int x, int y, int z) { return x + nx * (y + ny * z); },
             out);
  return out;
}

Ordering random_ordering(int n, Rng& rng) {
  Ordering perm = natural_ordering(n);
  rng.shuffle(perm);
  return perm;
}

}  // namespace treesched

#include "spmatrix/amalgamation.hpp"

#include <stdexcept>

namespace treesched {

AssemblyTree amalgamate(const SymbolicResult& symbolic,
                        std::int64_t max_amalgamation,
                        bool fundamental_supernodes) {
  const int n = static_cast<int>(symbolic.col_counts.size());
  if (max_amalgamation < 1) {
    throw std::invalid_argument("amalgamate: max_amalgamation >= 1");
  }
  const auto& parent = symbolic.etree_parent;
  const auto& mu = symbolic.col_counts;

  std::vector<std::vector<int>> children(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    if (parent[j] != -1) children[parent[j]].push_back(j);
  }

  // merged_into[c] = column whose group absorbed c's group (-1: c is a
  // group representative, i.e. the group's topmost column).
  std::vector<int> merged_into(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> eta(static_cast<std::size_t>(n), 1);

  // Columns are processed in increasing order, so every child's group is
  // final when its parent considers it (child groups are rooted at the
  // child column itself: merging always attaches below the parent column).
  for (int p = 0; p < n; ++p) {
    const bool single_child = children[p].size() == 1;
    for (int c : children[p]) {
      const bool fundamental =
          fundamental_supernodes && single_child && mu[c] == mu[p] + 1;
      const bool relaxed = eta[p] + eta[c] <= max_amalgamation;
      if (fundamental || relaxed) {
        merged_into[c] = p;
        eta[p] += eta[c];
      }
    }
  }

  // Group representative of every column. merged_into[c] > c always (groups
  // merge upwards), so a single descending pass resolves all chains.
  std::vector<int> group_of(static_cast<std::size_t>(n));
  for (int c = n - 1; c >= 0; --c) {
    group_of[c] = merged_into[c] == -1 ? c : group_of[merged_into[c]];
  }

  // Densely number the groups (representatives) and emit nodes.
  AssemblyTree out;
  std::vector<int> node_id(static_cast<std::size_t>(n), -1);
  for (int c = 0; c < n; ++c) {
    if (group_of[c] == c) {
      node_id[c] = static_cast<int>(out.nodes.size());
      AssemblyNode node;
      node.eta = eta[c];
      node.mu = mu[c];
      out.nodes.push_back(node);
    }
  }
  for (int c = 0; c < n; ++c) {
    if (group_of[c] != c) continue;
    const int up = parent[c];
    out.nodes[node_id[c]].parent =
        up == -1 ? -1 : node_id[group_of[up]];
  }
  out.node_of_column.resize(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    out.node_of_column[c] = node_id[group_of[c]];
  }
  return out;
}

}  // namespace treesched

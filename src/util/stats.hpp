#pragma once
// Descriptive statistics for the experimental campaign (Table 1 and the
// percentile "crosses" of Figures 6-8).

#include <cstddef>
#include <string>
#include <vector>

namespace treesched {

/// Summary of a sample: mean, geometric mean, min/max and selected quantiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double geomean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p10 = 0.0;  ///< 10th percentile
  double p50 = 0.0;  ///< median
  double p90 = 0.0;  ///< 90th percentile
};

/// Computes a Summary. Empty input yields a zeroed Summary.
Summary summarize(std::vector<double> values);

/// Linear-interpolation quantile of a *sorted* sample, q in [0,1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Arithmetic mean (0 for empty input).
double mean(const std::vector<double>& values);

/// Geometric mean (0 for empty input; requires positive values).
double geomean(const std::vector<double>& values);

/// Fraction of entries within `tol` of the minimum of `values`, i.e.
/// v <= min * (1 + tol). Used for the "within 5% of best" columns of Table 1.
double fraction_within_of_best(const std::vector<double>& values, double tol);

/// Formats `x` with `digits` significant decimals (fixed notation).
std::string fmt(double x, int digits = 2);

/// Formats a ratio as a percentage string, e.g. 0.812 -> "81.2 %".
std::string fmt_pct(double ratio, int digits = 1);

}  // namespace treesched

#pragma once
// Path confinement for client-supplied file names. Network clients may
// name files the server reads or writes (trace dumps, file: tree specs),
// so those names must stay strictly inside an operator-chosen directory.

#include <string>
#include <string_view>

namespace treesched {

/// Resolves a client-supplied path against a confinement directory.
/// The path may only be a plain relative name inside `dir`: absolute
/// paths, "." / ".." components, and empty components ("a//b") are all
/// rejected. On success writes `dir + "/" + path` to `resolved` and
/// returns true; on rejection returns false and leaves `resolved` alone.
bool confine_relative_path(const std::string& dir, std::string_view path,
                           std::string& resolved);

}  // namespace treesched

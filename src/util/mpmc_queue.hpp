#pragma once
// Bounded lock-free MPMC ring (Vyukov's array queue): each cell carries a
// sequence ticket; producers and consumers claim positions with one
// fetch_add + CAS race and then synchronize on the cell ticket alone, so
// neither side ever takes a lock and a stalled thread can only delay its
// own cell, not the whole ring. Used by the admission queue's lock-free
// fast lane (service/request_queue.hpp).
//
// try_push moves the value in and returns false when the ring is full;
// try_pop returns nullopt when it is empty. Exactly-once hand-off: a
// value pushed once is popped by exactly one consumer — which is what
// lets RequestQueue keep its admitted == completed + ... balance exact
// without the queue mutex.

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

namespace treesched {

template <typename T>
class MpmcRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].ticket.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t ticket = cell.ticket.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(ticket) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.ticket.store(pos + 1, std::memory_order_release);
          return true;
        }
        // pos reloaded by the failed CAS; retry there.
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  std::optional<T> try_pop() {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t ticket = cell.ticket.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(ticket) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          std::optional<T> out(std::move(cell.value));
          cell.ticket.store(pos + mask_ + 1, std::memory_order_release);
          return out;
        }
      } else if (diff < 0) {
        return std::nullopt;  // the cell was never filled: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> ticket{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // next push position
  alignas(64) std::atomic<std::size_t> head_{0};  // next pop position
};

}  // namespace treesched

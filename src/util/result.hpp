#pragma once
// Result<T, E>: a C++20-compatible expected-style sum type — either a
// value or a typed error, never both, never neither. The service layer
// returns these instead of throwing: failures travel as values through
// tickets, batch collections and the wire protocol, and only the legacy
// wrapper surfaces convert them back into exceptions.
//
// Contract (pinned by tests/test_tickets.cpp):
//   * implicitly constructible from T (ok) and from E (error);
//   * ok() / operator bool report which side is held;
//   * value() on an error and error() on a value throw std::logic_error —
//     misusing the accessor is a programming bug, not a recoverable state;
//   * value_or(fallback) never throws;
//   * map(f) transforms the value and forwards the error unchanged;
//     and_then(f) chains a Result-returning continuation.

#include <stdexcept>
#include <type_traits>
#include <utility>
#include <variant>

namespace treesched {

template <typename T, typename E>
class [[nodiscard]] Result {
  static_assert(!std::is_same_v<std::remove_cvref_t<T>,
                                std::remove_cvref_t<E>>,
                "Result<T, E> needs distinguishable value and error types");

 public:
  using value_type = T;
  using error_type = E;

  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(E error) : state_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    require(ok(), "Result::value() called on an error");
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const& {
    require(ok(), "Result::value() called on an error");
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    require(ok(), "Result::value() called on an error");
    return std::get<0>(std::move(state_));
  }

  [[nodiscard]] E& error() & {
    require(!ok(), "Result::error() called on a value");
    return std::get<1>(state_);
  }
  [[nodiscard]] const E& error() const& {
    require(!ok(), "Result::error() called on a value");
    return std::get<1>(state_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(state_) : std::move(fallback);
  }

  /// Applies `f` to the value; an error passes through untouched.
  template <typename F>
  [[nodiscard]] auto map(F&& f) const& -> Result<decltype(f(std::declval<const T&>())), E> {
    if (ok()) return std::forward<F>(f)(std::get<0>(state_));
    return std::get<1>(state_);
  }

  /// Chains a continuation that itself returns Result<U, E>.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) const& -> decltype(f(std::declval<const T&>())) {
    using Next = decltype(f(std::declval<const T&>()));
    static_assert(std::is_same_v<typename Next::error_type, E>,
                  "and_then must keep the error type");
    if (ok()) return std::forward<F>(f)(std::get<0>(state_));
    return Next(std::get<1>(state_));
  }

 private:
  static void require(bool cond, const char* what) {
    if (!cond) throw std::logic_error(what);
  }

  std::variant<T, E> state_;
};

}  // namespace treesched

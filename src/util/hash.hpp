#pragma once
// Shared integer hashing primitives. The service subsystem keys
// everything off these: tree fingerprints (service/instance_store.cpp)
// and result-cache key/shard hashing (service/result_cache.cpp) must mix
// with the same finalizer, so it lives here rather than per-file.

#include <cstdint>

namespace treesched {

/// splitmix64 finalizer: the standard cheap 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace treesched

#include "util/thread_pool.hpp"

#include <utility>

namespace treesched {

ThreadPool::ThreadPool(unsigned threads) {
  num_threads_ = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (num_threads_ == 0) num_threads_ = 1;
  workers_.reserve(num_threads_);
  for (unsigned t = 0; t < num_threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_.notify_one();
}

ThreadPool::Stats ThreadPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.threads = num_threads_;
  s.submitted = submitted_;
  s.executed = executed_;
  s.pending = queue_.size();
  return s;
}

bool ThreadPool::on_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++executed_;
    }
  }
}

}  // namespace treesched

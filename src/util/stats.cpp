#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace treesched {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += std::log(v);
  return std::exp(s / static_cast<double>(values.size()));
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.mean = mean(values);
  s.min = values.front();
  s.max = values.back();
  s.p10 = quantile_sorted(values, 0.10);
  s.p50 = quantile_sorted(values, 0.50);
  s.p90 = quantile_sorted(values, 0.90);
  bool all_positive = values.front() > 0.0;
  s.geomean = all_positive ? geomean(values) : 0.0;
  return s;
}

double fraction_within_of_best(const std::vector<double>& values, double tol) {
  if (values.empty()) return 0.0;
  const double best = *std::min_element(values.begin(), values.end());
  std::size_t n = 0;
  for (double v : values) {
    if (v <= best * (1.0 + tol)) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

std::string fmt(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

std::string fmt_pct(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f %%", digits, 100.0 * ratio);
  return buf;
}

}  // namespace treesched

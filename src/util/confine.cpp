#include "util/confine.hpp"

namespace treesched {

bool confine_relative_path(const std::string& dir, std::string_view path,
                           std::string& resolved) {
  if (path.empty() || path.front() == '/') return false;
  std::string_view rest = path;
  while (!rest.empty()) {
    const std::size_t slash = rest.find('/');
    const std::string_view component = rest.substr(0, slash);
    if (component.empty() || component == "." || component == "..") {
      return false;
    }
    rest = slash == std::string_view::npos ? std::string_view{}
                                           : rest.substr(slash + 1);
  }
  std::string out = dir;
  if (!out.empty() && out.back() != '/') out += '/';
  out.append(path);
  resolved = std::move(out);
  return true;
}

}  // namespace treesched

#pragma once
// Persistent worker-thread pool shared by everything that fans work out:
// parallel_for (campaign scenarios), the scheduling service's batch
// executor, and any future async surface. Replaces the old
// spawn-threads-per-call pattern: workers are started once and reused, so
// a service handling many small batches does not pay thread creation per
// request.
//
// The pool is deliberately minimal: fire-and-forget `submit()` plus a
// blocking helper (`parallel_for` in util/parallel.hpp) built on top. The
// caller of a blocking helper always participates in the work itself, so
// submitting from inside a pool worker (nested parallelism) degrades to
// serial execution instead of deadlocking on a saturated pool.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treesched {

class ThreadPool {
 public:
  /// Point-in-time pool telemetry (obs: the `pool_*` stats keys and the
  /// treesched_pool_* exported metrics).
  struct Stats {
    unsigned threads = 0;
    std::uint64_t submitted = 0;  ///< jobs ever enqueued
    std::uint64_t executed = 0;   ///< jobs finished
    std::size_t pending = 0;      ///< enqueued, not yet picked up
  };

  /// Starts `threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains nothing: pending jobs are abandoned unexecuted; running jobs
  /// are joined. Blocking helpers never leave pending jobs behind (they
  /// wait for their own jobs), so this only matters at process exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job for execution on some worker. Jobs must not throw;
  /// wrap user code that can throw (parallel_for captures exceptions into
  /// its own shared state).
  void submit(std::function<void()> job);

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const { return num_threads_; }

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  /// Consistent snapshot of the job counters (taken under the queue
  /// mutex, so submitted - executed - pending is never negative).
  [[nodiscard]] Stats stats() const;

  /// The process-wide pool (hardware-concurrency workers, started on
  /// first use).
  static ThreadPool& shared();

 private:
  void worker_loop();

  unsigned num_threads_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::uint64_t submitted_ = 0;  ///< guarded by mutex_
  std::uint64_t executed_ = 0;   ///< guarded by mutex_
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace treesched

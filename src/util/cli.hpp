#pragma once
// Minimal command-line flag parsing shared by the bench/ and examples/
// binaries. Flags are of the form `--name value` or `--name=value`;
// unknown flags raise an error so typos do not silently change experiments.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treesched {

/// Splits "a,b,c" into its non-empty components (for list-valued flags
/// like --algo and --procs).
std::vector<std::string> split_csv(const std::string& csv);

class CliArgs {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  CliArgs(int argc, char** argv);

  /// True if the flag was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Marks a flag as recognized (for unknown-flag detection).
  void describe(const std::string& name);

  /// Throws if any parsed flag was never `describe`d or `get`ed.
  void reject_unknown() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> seen_;
  std::vector<std::string> positional_;
};

}  // namespace treesched

#pragma once
// Binary heap with O(log n) push/pop, mirroring the data structure the paper
// uses for its priority queues ("priority queues have been implemented using
// binary heap", §6.1). A thin wrapper over a flat vector so that heuristics
// can also inspect the raw contents (SplitSubtrees needs the sum of the
// elements beyond the p largest at every step).

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace treesched {

/// Max-heap by default ("highest priority first") under `Less`:
/// the top element is the one for which Less puts everything else before it.
template <typename T, typename Less = std::less<T>>
class BinaryHeap {
 public:
  BinaryHeap() = default;
  explicit BinaryHeap(Less less) : less_(std::move(less)) {}

  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  const T& top() const { return data_.front(); }

  void push(T value) {
    data_.push_back(std::move(value));
    sift_up(data_.size() - 1);
  }

  T pop() {
    T out = std::move(data_.front());
    data_.front() = std::move(data_.back());
    data_.pop_back();
    if (!data_.empty()) sift_down(0);
    return out;
  }

  /// Heap-ordered raw storage (not sorted). Useful for whole-heap scans.
  const std::vector<T>& raw() const noexcept { return data_; }

  void clear() noexcept { data_.clear(); }

  void reserve(std::size_t n) { data_.reserve(n); }

 private:
  // `less_(a, b)` == a has lower priority than b.
  void sift_up(std::size_t i) {
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!less_(data_[parent], data_[i])) break;
      std::swap(data_[parent], data_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = data_.size();
    for (;;) {
      std::size_t l = 2 * i + 1;
      std::size_t r = l + 1;
      std::size_t best = i;
      if (l < n && less_(data_[best], data_[l])) best = l;
      if (r < n && less_(data_[best], data_[r])) best = r;
      if (best == i) break;
      std::swap(data_[i], data_[best]);
      i = best;
    }
  }

  std::vector<T> data_;
  Less less_;
};

}  // namespace treesched

#pragma once
// Minimal deterministic parallel-for used by the campaign runner and the
// scheduling service: results are written to pre-sized slots indexed by
// the loop variable, so the output is identical regardless of thread
// count.
//
// Work runs on the shared persistent ThreadPool (util/thread_pool.hpp)
// instead of threads spawned per call: the calling thread always
// participates, and up to `threads - 1` helper jobs are enqueued on the
// pool. A parallel_for issued from inside a pool worker (nested
// parallelism) runs serially on that worker instead — queueing helpers
// there and blocking on them could deadlock a saturated pool, since the
// queued helpers might only ever be runnable on the blocked worker
// itself. Pool workers therefore never wait on their own pool.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

#include "util/thread_pool.hpp"

namespace treesched {

/// Runs fn(i) for i in [0, n) on the calling thread plus up to
/// `threads - 1` shared-pool workers (threads == 0 means the pool size).
/// fn must be safe to call concurrently for distinct i. If any fn(i)
/// throws, the first exception (by completion time) is captured, the
/// remaining iterations are abandoned as workers notice the failure, and
/// the exception is rethrown on the calling thread after every helper
/// drained.
inline void parallel_for(std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (n == 0) return;
  unsigned width = threads == 0 ? ThreadPool::shared().size() : threads;
  if (width == 0) width = 1;
  width = static_cast<unsigned>(std::min<std::size_t>(width, n));
  if (ThreadPool::shared().on_worker_thread()) width = 1;
  if (width == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable done_cv;
    unsigned pending = 0;  ///< helper jobs not yet finished
  } state;

  const auto drain = [&state, &fn, n] {
    for (;;) {
      if (state.failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (!state.first_error) state.first_error = std::current_exception();
        state.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const unsigned helpers = width - 1;
  {
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.pending = helpers;
  }
  for (unsigned t = 0; t < helpers; ++t) {
    // `state` outlives the helpers: the caller blocks below until every
    // helper reported completion.
    ThreadPool::shared().submit([&state, &drain] {
      drain();
      // Notify while holding the mutex: once this helper unlocks, the
      // caller may observe pending == 0 and destroy `state`, so the CV
      // must not be touched after the unlock.
      const std::lock_guard<std::mutex> lock(state.mutex);
      --state.pending;
      state.done_cv.notify_one();
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done_cv.wait(lock, [&state] { return state.pending == 0; });
    if (state.first_error) std::rethrow_exception(state.first_error);
  }
}

}  // namespace treesched

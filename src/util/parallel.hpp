#pragma once
// Minimal deterministic parallel-for used by the campaign runner: results
// are written to pre-sized slots indexed by the loop variable, so the
// output is identical regardless of thread count.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treesched {

/// Runs fn(i) for i in [0, n) on up to `threads` worker threads
/// (0 = hardware concurrency). fn must be safe to call concurrently for
/// distinct i. If any fn(i) throws, the first exception (by completion
/// time) is captured, the remaining iterations are abandoned as workers
/// notice the failure, and the exception is rethrown on the calling thread
/// after all workers joined.
inline void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (n == 0) return;
  unsigned hw = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (hw == 0) hw = 1;
  hw = static_cast<unsigned>(std::min<std::size_t>(hw, n));
  if (hw == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace treesched

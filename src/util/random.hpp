#pragma once
// Small, fast, reproducible PRNG utilities.
//
// All randomized components of the library (tree generators, sparse-pattern
// generators, the simulation campaign) take an explicit `Rng&` so that every
// experiment is reproducible from a single seed. We use xoshiro256** seeded
// via SplitMix64 rather than std::mt19937 for speed and for identical output
// across standard-library implementations.

#include <cstdint>
#include <limits>
#include <vector>

namespace treesched {

/// SplitMix64: used to expand a single 64-bit seed into a full PRNG state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide pseudo random generator.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1d5cafe5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Unbiased (Lemire rejection).
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    // Bound 0 would be a caller bug; map it to a full-range draw.
    if (bound == 0) return (*this)();
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli draw.
  bool flip(double prob) noexcept { return uniform01() < prob; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace treesched

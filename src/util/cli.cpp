#include "util/cli.hpp"

#include <stdexcept>

namespace treesched {

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' argument");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";  // boolean-style flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  seen_[name] = true;
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  seen_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  seen_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer value for --" + name + ": '" +
                                it->second + "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  seen_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value for --" + name + ": '" +
                                it->second + "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  seen_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes")
    return true;
  if (it->second == "0" || it->second == "false" || it->second == "no")
    return false;
  throw std::invalid_argument("bad boolean value for --" + name + ": " +
                              it->second);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

void CliArgs::describe(const std::string& name) { seen_[name] = true; }

void CliArgs::reject_unknown() const {
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!seen_.count(name)) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

}  // namespace treesched

#pragma once
// The Pebble Game model (paper §4): f_i = 1, n_i = 0, w_i = 1 for every
// task. This module provides closed-form pebble numbers that serve as an
// independent oracle for the general algorithms: they are derived from the
// Sethi-Ullman register-allocation recursion (adapted to this paper's
// accounting, where a node's output pebble coexists with its inputs), not
// from the postorder/Liu machinery, so agreement is a real cross-check.

#include "core/tree.hpp"

namespace treesched {

/// True iff every task has f = 1, n = 0, w = 1.
bool is_pebble_tree(const Tree& tree);

/// Minimum pebbles to play the sequential pebble game on `tree`
/// (= minimum sequential memory). Closed-form recursion over children
/// peaks sorted in non-increasing order:
///   P(leaf) = 1,
///   P(v)    = max( max_j (j - 1 + P_(j)),  k + 1 )
/// where P_(1) >= P_(2) >= ... are the k children's pebble numbers.
/// Throws std::invalid_argument if the tree is not a pebble tree.
/// For trees, contiguous (postorder) pebbling is optimal, so this equals
/// min_sequential_memory(tree).
MemSize pebble_number(const Tree& tree);

/// Sethi-Ullman-style recursion specialized to BINARY pebble trees:
///   P(leaf) = 1,
///   P(v) = P(c) >= 2 ? ... single child: max(P(c), 2);
///   P(v) = P1 == P2 ? P1 + 1 : max(P1, P2 + 1, 3)   (two children,
///                                                    P1 >= P2).
/// Throws if any node has more than two children or the weights are not
/// the pebble-game weights.
MemSize pebble_number_binary(const Tree& tree);

}  // namespace treesched

#include "pebble/pebble.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace treesched {

bool is_pebble_tree(const Tree& tree) {
  for (NodeId i = 0; i < tree.size(); ++i) {
    if (tree.output_size(i) != 1 || tree.exec_size(i) != 0 ||
        tree.work(i) != 1.0) {
      return false;
    }
  }
  return true;
}

namespace {

void require_pebble(const Tree& tree) {
  if (!is_pebble_tree(tree)) {
    throw std::invalid_argument("pebble_number: not a pebble tree");
  }
}

}  // namespace

MemSize pebble_number(const Tree& tree) {
  require_pebble(tree);
  if (tree.empty()) return 0;
  std::vector<MemSize> peak(static_cast<std::size_t>(tree.size()), 0);
  for (NodeId i : tree.natural_postorder()) {
    auto ch = tree.children(i);
    if (ch.empty()) {
      peak[i] = 1;
      continue;
    }
    std::vector<MemSize> kids;
    kids.reserve(ch.size());
    for (NodeId c : ch) kids.push_back(peak[c]);
    std::sort(kids.rbegin(), kids.rend());
    MemSize pk = static_cast<MemSize>(kids.size()) + 1;  // firing the node
    for (std::size_t j = 0; j < kids.size(); ++j) {
      pk = std::max(pk, static_cast<MemSize>(j) + kids[j]);
    }
    peak[i] = pk;
  }
  return peak[tree.root()];
}

MemSize pebble_number_binary(const Tree& tree) {
  require_pebble(tree);
  if (tree.empty()) return 0;
  if (tree.max_degree() > 2) {
    throw std::invalid_argument("pebble_number_binary: tree is not binary");
  }
  std::vector<MemSize> peak(static_cast<std::size_t>(tree.size()), 0);
  for (NodeId i : tree.natural_postorder()) {
    auto ch = tree.children(i);
    if (ch.empty()) {
      peak[i] = 1;
    } else if (ch.size() == 1) {
      peak[i] = std::max<MemSize>(peak[ch[0]], 2);
    } else {
      MemSize p1 = peak[ch[0]], p2 = peak[ch[1]];
      if (p1 < p2) std::swap(p1, p2);
      const MemSize unequal_hill = p1 == p2 ? p1 + 1 : p1;
      peak[i] = std::max<MemSize>({unequal_hill, p2 + 1, 3});
    }
  }
  return peak[tree.root()];
}

}  // namespace treesched
